"""Offline catalog checker: scan a BlockStore for torn or orphaned state.

The in-memory :class:`~repro.dataplat.blockstore.BlockStore` has no disk
image, so this tool operates on JSON *snapshots* (``BlockStore.to_snapshot``)
— the same mechanism the crash tests use to freeze a store mid-commit.  It
is a thin CLI over :func:`repro.dataplat.journal.fsck_store`: the exact
resolution engine ``Catalog.open`` runs, rendered as a report instead of
applied silently.

Usage::

    python scripts/fsck.py SNAPSHOT.json [--repair [--out FIXED.json]]
    python scripts/fsck.py --demo [--repair]

``--demo`` builds a small catalog, kills it at a crash point mid-overwrite
(leaving a staged-but-uncommitted transaction plus a committed one pending
replay), then fscks the wreckage — a self-contained tour of what the
checker finds.  With ``--repair`` the plan is applied and the catalog is
reopened to prove the repaired store is clean.

Exit codes: 0 clean, 1 issues found (report mode) or repaired (repair
mode re-checks and fails if still dirty), 2 unusable input.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
)

import numpy as np

from repro.dataplat.blockstore import BlockStore
from repro.dataplat.catalog import Catalog
from repro.dataplat.journal import fsck_store
from repro.dataplat.resilience import CrashPoint, FaultInjector, SimulatedCrash
from repro.dataplat.table import Table


def _load_store(path: pathlib.Path) -> BlockStore:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read snapshot {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)
    try:
        return BlockStore.from_snapshot(doc)
    except Exception as exc:  # malformed snapshot, not a crash artifact
        print(f"cannot restore snapshot {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _demo_store() -> BlockStore:
    """A store crashed mid-overwrite: one txn staged, one pending replay."""
    crash = CrashPoint()
    store = BlockStore(fault_injector=FaultInjector(crash_point=crash))
    catalog = Catalog(store=store)
    table = Table.from_arrays(
        imsi=np.arange(20), dur=np.linspace(0.0, 5.0, 20)
    )
    catalog.save(table, "calls", partition="month=1")
    catalog.save(table, "calls", partition="month=2")

    # Crash after the commit record but before the renames publish: the
    # transaction is decided (fsck plans a replay) and its staging files
    # are still present.
    crash.raise_at(crash_index(crash, catalog, table, "catalog.save.commit"))
    try:
        catalog.save(
            table.with_column("dur", np.zeros(20)),
            "calls",
            partition="month=1",
            overwrite=True,
        )
    except SimulatedCrash:
        pass
    crash.reset()

    # And one undecided transaction: crash before the commit record, so
    # fsck plans a rollback of the staged files.
    crash.raise_at(crash_index(crash, catalog, table, "catalog.save.barrier"))
    try:
        catalog.save(table, "calls", partition="month=3")
    except SimulatedCrash:
        pass
    return store


def crash_index(
    crash: CrashPoint, catalog: Catalog, table: Table, label: str
) -> int:
    """Find the 1-based hit index of ``label`` via a dry scratch save."""
    crash.reset()
    catalog.save(table, "__probe__", partition="p=0")
    try:
        index = 1 + [v[0] for v in crash.visited].index(label)
    except ValueError:
        raise SystemExit(f"crash point {label!r} never hit")
    catalog.drop("__probe__")
    crash.reset()
    return index


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "snapshot",
        nargs="?",
        type=pathlib.Path,
        help="BlockStore snapshot JSON (from BlockStore.to_snapshot)",
    )
    parser.add_argument(
        "--demo",
        action="store_true",
        help="fsck a built-in crashed catalog instead of a snapshot",
    )
    parser.add_argument(
        "--repair",
        action="store_true",
        help="apply the recovery plan instead of only reporting",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        help="where to write the repaired snapshot (default: in place)",
    )
    args = parser.parse_args(argv)

    if args.demo == (args.snapshot is not None):
        parser.error("exactly one of SNAPSHOT or --demo is required")

    store = _demo_store() if args.demo else _load_store(args.snapshot)

    report = fsck_store(store, repair=args.repair)
    print(report.render())

    if args.repair:
        after = fsck_store(store, repair=False)
        if not after.clean:
            print("store still dirty after repair:", file=sys.stderr)
            print(after.render(), file=sys.stderr)
            return 1
        reopened = Catalog.open(store)
        assert reopened.last_recovery is not None
        print(
            "repaired; catalog reopens clean with tables "
            f"{sorted(after.tables)}"
        )
        if args.snapshot is not None:
            out = args.out or args.snapshot
            out.write_text(json.dumps(store.to_snapshot(), indent=2))
            print(f"wrote repaired snapshot to {out}")
        return 0

    return 0 if report.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
