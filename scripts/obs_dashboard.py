"""Render a telemetry-warehouse dump as an operator dashboard.

Works on anything :meth:`repro.dataplat.telemetry.TelemetryWarehouse.dump`
writes (e.g. ``examples/watchtower_drift.py`` leaves one behind)::

    python scripts/obs_dashboard.py telemetry.json [--run RUN_ID]

The dump is reloaded into an in-process warehouse, so every panel below is
an ordinary SQL query over ``__telemetry.*`` — copy one into your own
session to drill further.  Panels: per-window wall time and model quality,
drift tiers per window, fired alerts, and pipeline health.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.dataplat.telemetry import TelemetryWarehouse


def _rows(warehouse: TelemetryWarehouse, sql: str) -> list[tuple]:
    try:
        return list(warehouse.query(sql).rows())
    except Exception:
        # Dumps from partial runs may miss whole tables (no spans recorded,
        # no alerts fired); an empty panel beats a stack trace.
        return []


def render_run(warehouse: TelemetryWarehouse, run_id: str) -> list[str]:
    lines = [f"== run {run_id} =="]

    windows = _rows(
        warehouse,
        f"""
        SELECT window, MAX(wall_s) AS wall_s
        FROM __telemetry.spans
        WHERE run_id = '{run_id}' AND name = 'pipeline.window'
        GROUP BY window ORDER BY window
        """,
    )
    aucs = dict(
        _rows(
            warehouse,
            f"""
            SELECT window, MAX(value) AS auc FROM __telemetry.metrics
            WHERE run_id = '{run_id}' AND kind = 'gauge'
              AND name = 'pipeline.auc'
            GROUP BY window
            """,
        )
    )
    lines.append("-- windows (pipeline.window span / pipeline.auc gauge) --")
    if not windows and aucs:
        windows = [(w, None) for w in sorted(aucs)]
    for window, wall_s in windows:
        auc = aucs.get(window)
        lines.append(
            f"  window {int(window):>3}: "
            + (f"wall={float(wall_s):7.3f}s" if wall_s is not None else " " * 13)
            + (f"  auc={float(auc):.4f}" if auc is not None else "")
        )
    if not windows:
        lines.append("  (none recorded)")

    lines.append("-- drift (worst PSI per window, non-ok findings) --")
    worst = _rows(
        warehouse,
        f"""
        SELECT window, MAX(psi) AS psi, COUNT(*) AS findings
        FROM __telemetry.drift WHERE run_id = '{run_id}'
        GROUP BY window ORDER BY window
        """,
    )
    hot = _rows(
        warehouse,
        f"""
        SELECT window, name, psi, level FROM __telemetry.drift
        WHERE run_id = '{run_id}' AND level <> 'ok'
        ORDER BY window, psi DESC
        """,
    )
    for window, psi, findings in worst:
        lines.append(
            f"  window {int(window):>3}: worst PSI={float(psi):.4f} "
            f"over {int(findings)} findings"
        )
    for window, name, psi, level in hot:
        lines.append(
            f"    window {int(window):>3}  {name:<40} "
            f"PSI={float(psi):.4f} [{level}]"
        )
    if not worst:
        lines.append("  (no drift reports recorded)")

    lines.append("-- alerts --")
    alerts = _rows(
        warehouse,
        f"""
        SELECT window, severity, rule, message FROM __telemetry.alerts
        WHERE run_id = '{run_id}' ORDER BY window
        """,
    )
    for window, severity, rule, message in alerts:
        lines.append(
            f"  [{str(severity).upper():<4}] window {int(window)} "
            f"{rule}: {message}"
        )
    if not alerts:
        lines.append("  (none fired)")

    lines.append("-- health --")
    health = _rows(
        warehouse,
        f"""
        SELECT window, status, quarantined_rows, faults_injected
        FROM __telemetry.health WHERE run_id = '{run_id}' ORDER BY window
        """,
    )
    for window, status, quarantined, faults in health:
        lines.append(
            f"  window {int(window):>3}: {status}  "
            f"quarantined={int(quarantined)} faults={int(faults)}"
        )
    if not health:
        lines.append("  (no health reports recorded)")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "dump", type=pathlib.Path, help="TelemetryWarehouse.dump() JSON file"
    )
    parser.add_argument(
        "--run", default=None, help="render only this run id (default: all)"
    )
    args = parser.parse_args(argv)

    warehouse = TelemetryWarehouse.load_dump(args.dump)
    runs = warehouse.runs()
    if args.run is not None:
        if args.run not in runs:
            print(f"run {args.run!r} not in dump (has: {', '.join(runs)})")
            return 1
        runs = [args.run]
    if not runs:
        print("dump contains no telemetry rows")
        return 1
    for run_id in runs:
        for line in render_run(warehouse, run_id):
            print(line)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
