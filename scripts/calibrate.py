"""Calibration harness: measures per-family PR-AUC lifts vs paper targets."""
import sys, time
import numpy as np
from repro.config import ScaleConfig
from repro.datagen import TelcoSimulator
from repro.datagen.simulator import SignalWeights
from repro.features import WideTableBuilder
from repro.ml import RandomForestClassifier, roc_auc, pr_auc, recall_at, precision_at, rebalance

PAPER_TARGETS = {  # family: (PR-AUC lift % over F1)
    "F2": 12.48, "F3": 14.87, "F4": 6.59, "F5": 1.03,
    "F6": 8.78, "F7": 1.96, "F8": 5.49, "F9": 4.94,
}

def run_family(builder, world, train_month, test_month, cats, seed=3):
    tr = builder.features(train_month, cats)
    te = builder.features(test_month, cats)
    mtr, mte = world.month(train_month), world.month(test_month)
    Xtr, ytr = tr.values[mtr.eligible], mtr.churn_next[mtr.eligible].astype(int)
    Xte, yte = te.values[mte.eligible], mte.churn_next[mte.eligible].astype(int)
    Xtr, ytr, wtr = rebalance(Xtr, ytr, "weighted", np.random.default_rng(seed))
    rf = RandomForestClassifier(n_trees=30, min_samples_leaf=20, max_depth=12, seed=seed).fit(Xtr, ytr, wtr)
    p = rf.predict_proba(Xte)
    return roc_auc(yte, p), pr_auc(yte, p)

def main(pop=4000, seed=7, weights=None):
    t0 = time.time()
    world = TelcoSimulator(ScaleConfig(population=pop, months=9, seed=seed), weights).run()
    builder = WideTableBuilder(world)
    windows = [(2,3),(3,4),(4,5),(5,6),(6,7),(7,8)]
    results = {}
    for tm, pm in windows:
        labels = {tm: world.month(tm).churn_next.astype(int)}
        builder.fit_extractors([tm], labels)
        for fam in ["F1","F2","F3","F4","F5","F6","F7","F8","F9"]:
            cats = ("F1",) if fam=="F1" else ("F1",fam)
            auc, pr = run_family(builder, world, tm, pm, cats)
            results.setdefault(fam, []).append((auc, pr))
    base_pr = np.mean([r[1] for r in results["F1"]])
    base_auc = np.mean([r[0] for r in results["F1"]])
    print(f"F1 baseline: AUC={base_auc:.3f} PR-AUC={base_pr:.3f}  (paper: 0.875 / 0.541)")
    for fam in ["F3","F2","F6","F4","F8","F9","F7","F5"]:
        pr = np.mean([r[1] for r in results[fam]])
        lift = 100*(pr-base_pr)/base_pr
        print(f"{fam}: PR-AUC={pr:.3f} lift={lift:+.1f}%  (paper: +{PAPER_TARGETS[fam]:.1f}%)")
    print(f"total {time.time()-t0:.0f}s")

if __name__ == "__main__":
    main()
