"""Gate the columnar-scan speedup against the committed baseline.

CI runs ``benchmarks/baseline.py --quick`` and then this script, which
compares the fresh ``columnar_scan`` section against the ``BENCH_micro.json``
committed at the repo root.  The build fails when the v2 speedup falls more
than ``--tolerance`` (default 20%) below the committed number — the guard
the ISSUE asks for so a later change cannot quietly give the win back.

Beyond the single committed snapshot, the gate also trends against the
committed ``BENCH_history.jsonl`` (one line per past run, appended by
``baseline.py``): with at least three comparable history entries (same
schema version and ``--quick`` flag), the columnar, planner, and serve
floors are derived from the *median* historical numbers minus their
tolerances — one lucky committed run can no longer mask a slow drift.
Absolute hard floors (the 2x planner minimum, the serve SLOs, the 2.5x
sharding scale-out minimum) still apply whatever the history says.

Usage::

    python scripts/check_bench_regression.py CURRENT.json [--baseline PATH]
        [--tolerance 0.2] [--history PATH]

Exit codes: 0 ok, 1 regression, 2 unusable inputs (missing section or
schema-version mismatch — refuse to compare apples to oranges).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_micro.json"
DEFAULT_HISTORY = REPO_ROOT / "BENCH_history.jsonl"


def load_history(path: pathlib.Path, schema_version, quick) -> list[dict]:
    """Comparable history entries (same schema version and quick flag)."""
    if not path.exists():
        return []
    entries = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if (
            entry.get("schema_version") == schema_version
            and entry.get("quick") == quick
        ):
            entries.append(entry)
    return entries


def load(path: pathlib.Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read benchmark file {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=DEFAULT_BASELINE
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed fractional drop in speedup (0.2 = 20%%)",
    )
    parser.add_argument(
        "--planner-tolerance",
        type=float,
        default=0.5,
        help=(
            "allowed fractional drop in the planner (CBO) speedup; wider "
            "than the scan tolerance because the ratio is large and the "
            "slow side noisy, but never below the 2x hard floor"
        ),
    )
    parser.add_argument(
        "--serve-tolerance",
        type=float,
        default=0.5,
        help=(
            "allowed fractional drift vs the historical median serve "
            "numbers (throughput down, p99 up); generous because a CI "
            "box is noisy, and the absolute SLO floors always apply"
        ),
    )
    parser.add_argument(
        "--sharding-tolerance",
        type=float,
        default=0.5,
        help=(
            "allowed fractional drop vs the historical median sharding "
            "speedup; the 2.5x scale-out hard floor always applies"
        ),
    )
    parser.add_argument(
        "--history",
        type=pathlib.Path,
        default=DEFAULT_HISTORY,
        help="BENCH_history.jsonl appended by baseline.py runs",
    )
    args = parser.parse_args(argv)

    current = load(args.current)
    baseline = load(args.baseline)
    for label, doc in (("current", current), ("baseline", baseline)):
        if "columnar_scan" not in doc:
            print(f"{label} file has no columnar_scan section", file=sys.stderr)
            return 2
    cur_meta = current.get("meta", {}).get("schema_version")
    base_meta = baseline.get("meta", {}).get("schema_version")
    if cur_meta != base_meta:
        print(
            f"schema_version mismatch: current {cur_meta} vs baseline "
            f"{base_meta}; refresh the committed BENCH_micro.json",
            file=sys.stderr,
        )
        return 2

    history = load_history(
        args.history, cur_meta, current.get("meta", {}).get("quick")
    )
    cur = float(current["columnar_scan"]["speedup"])
    base = float(baseline["columnar_scan"]["speedup"])
    if len(history) >= 3:
        # With enough comparable history the reference is the historical
        # median, so the floor tracks the trend instead of one snapshot.
        base = statistics.median(
            float(e["columnar_scan_speedup"]) for e in history
        )
        reference = f"history median ({len(history)} runs) {base:.2f}x"
    else:
        reference = f"committed {base:.2f}x"
    floor = base * (1.0 - args.tolerance)
    verdict = "OK" if cur >= floor else "REGRESSION"
    print(
        f"columnar_scan speedup: current {cur:.2f}x, {reference}, "
        f"floor {floor:.2f}x -> {verdict}"
    )
    failed = cur < floor
    if history:
        scan_trend = ", ".join(
            f"{float(e['columnar_scan_speedup']):.1f}x" for e in history[-5:]
        )
        planner_trend = ", ".join(
            f"{float(e['planner_speedup']):.1f}x" for e in history[-5:]
        )
        sharding_trend = ", ".join(
            f"{float(e['sharding_speedup']):.1f}x"
            for e in history[-5:]
            if "sharding_speedup" in e
        )
        print(
            f"bench history: {len(history)} comparable runs "
            f"(columnar: {scan_trend}; planner: {planner_trend}; "
            f"sharding: {sharding_trend or 'n/a'})"
        )

    recovery = current.get("recovery")
    if recovery is None:
        print("current file has no recovery section", file=sys.stderr)
        return 2
    overhead = float(recovery["journal_overhead_ratio"])
    budget = float(recovery.get("budget", 0.10))
    over = overhead > budget
    print(
        f"journal write overhead: {overhead:+.1%} vs {budget:.0%} budget "
        f"-> {'REGRESSION' if over else 'OK'} "
        f"(recovery open of {recovery.get('recovery_partitions', '?')} "
        f"partitions: {float(recovery.get('open_s', 0)) * 1e3:.1f} ms)"
    )
    failed = failed or over

    planner = current.get("planner")
    base_planner = baseline.get("planner")
    if planner is None or base_planner is None:
        print("current or baseline file has no planner section", file=sys.stderr)
        return 2
    cur_cbo = float(planner["speedup"])
    base_cbo = float(base_planner["speedup"])
    cbo_reference = f"committed {base_cbo:.2f}x"
    if len(history) >= 3:
        base_cbo = statistics.median(
            float(e["planner_speedup"]) for e in history
        )
        cbo_reference = f"history median ({len(history)} runs) {base_cbo:.2f}x"
    # Hard floor of 2x: the cost-based optimizer must at least halve the
    # skewed-join wall time, whatever the committed baseline says.
    cbo_floor = max(2.0, base_cbo * (1.0 - args.planner_tolerance))
    cbo_bad = cur_cbo < cbo_floor
    print(
        f"planner CBO speedup: current {cur_cbo:.2f}x, "
        f"{cbo_reference}, floor {cbo_floor:.2f}x -> "
        f"{'REGRESSION' if cbo_bad else 'OK'} "
        f"(estimate q-error mean {float(planner['estimate_error_mean_q']):.2f}, "
        f"max {float(planner['estimate_error_max_q']):.2f})"
    )
    failed = failed or cbo_bad

    profiling = current.get("query_profiling")
    if profiling is None:
        print("current file has no query_profiling section", file=sys.stderr)
        return 2
    prof_overhead = float(profiling["overhead_ratio"])
    prof_budget = float(profiling.get("budget", 0.05))
    prof_bad = prof_overhead > prof_budget
    print(
        f"query profiling overhead: {prof_overhead:+.1%} vs "
        f"{prof_budget:.0%} budget -> {'REGRESSION' if prof_bad else 'OK'} "
        f"(feedback q-error mean "
        f"{float(profiling['q_error_mean_first_run']):.2f} -> "
        f"{float(profiling['q_error_mean_second_run']):.2f} across runs)"
    )
    failed = failed or prof_bad

    serve = current.get("serve")
    if serve is None:
        print("current file has no serve section", file=sys.stderr)
        return 2
    # The serve section ships its own hard floors (absolute SLOs, not
    # relative-to-baseline: a quick CI box must still clear them).  With
    # enough history the floors tighten to the historical medians minus
    # the serve tolerance — whichever bound is stricter wins.
    floor = serve.get("floor", {})
    rps = float(serve["throughput_rps"])
    rps_floor = float(floor.get("throughput_rps", 5000.0))
    p99 = float(serve["p99_ms"])
    p99_floor = float(floor.get("p99_ms", 50.0))
    serve_reference = "SLO floors"
    if len(history) >= 3:
        median_rps = statistics.median(
            float(e["serve_rps"]) for e in history
        )
        median_p99 = statistics.median(
            float(e["serve_p99_ms"]) for e in history
        )
        rps_floor = max(
            rps_floor, median_rps * (1.0 - args.serve_tolerance)
        )
        p99_floor = min(
            p99_floor, median_p99 * (1.0 + args.serve_tolerance)
        )
        serve_reference = (
            f"history medians ({len(history)} runs) "
            f"{median_rps:,.0f} req/s / {median_p99:.2f} ms"
        )
    serve_bad = rps < rps_floor or p99 > p99_floor
    print(
        f"serve load: {rps:,.0f} req/s (floor {rps_floor:,.0f}), "
        f"p99 {p99:.2f} ms (budget {p99_floor:.2f} ms), "
        f"shed {serve.get('shed', '?')}, {serve_reference} -> "
        f"{'REGRESSION' if serve_bad else 'OK'}"
    )
    failed = failed or serve_bad

    sharding = current.get("sharding")
    if sharding is None:
        print("current file has no sharding section", file=sys.stderr)
        return 2
    # Hard floor: scatter-gather at 4 shards must beat the single-shard
    # engine by the factor the section itself declares (2.5x), whatever
    # the committed history says.  History tightens the floor upward.
    sh_speedup = float(sharding["speedup"])
    sh_floor = float(sharding.get("speedup_floor", 2.5))
    sh_reference = "hard floor"
    if len(history) >= 3:
        sh_median = statistics.median(
            float(e["sharding_speedup"]) for e in history
        )
        sh_floor = max(
            sh_floor, sh_median * (1.0 - args.sharding_tolerance)
        )
        sh_reference = (
            f"history median ({len(history)} runs) {sh_median:.2f}x"
        )
    wt_s = float(sharding["widetable_s"])
    wt_budget = float(sharding.get("widetable_budget_s", 30.0))
    shard_spans = int(sharding.get("shard_spans", 0))
    num_shards = int(sharding.get("num_shards", 4))
    sh_bad = (
        sh_speedup < sh_floor
        or wt_s > wt_budget
        or shard_spans < num_shards
        or not sharding.get("widetable_identical", False)
    )
    print(
        f"sharding scale-out: {sh_speedup:.2f}x at {num_shards} shards "
        f"(floor {sh_floor:.2f}x, {sh_reference}), "
        f"{sharding.get('widetable_customers', '?'):,}-customer widetable "
        f"{wt_s:.2f}s (budget {wt_budget:.0f}s), "
        f"{shard_spans} shard spans, "
        f"identical={sharding.get('widetable_identical')} -> "
        f"{'REGRESSION' if sh_bad else 'OK'}"
    )
    failed = failed or sh_bad

    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
