"""Render a JSON trace export as a tree plus a per-span-name summary.

Works on anything :meth:`repro.dataplat.observability.Tracer.to_json`
writes (e.g. ``REPRO_TRACE=trace.json python examples/quickstart.py``)::

    python scripts/trace_report.py trace.json [--depth N] [--top K]

The tree view shows nesting, wall/CPU time, tags and counters per span;
the summary aggregates total and *self* wall time by span name (self =
wall minus direct children), which answers both the stage budget question
("how much time went under feature.F5?") and the hot-spot question
("where is that time actually spent?") directly.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.dataplat.observability import Span


def _format_tags(span: Span) -> str:
    parts = []
    if span.tags:
        parts.append(
            " ".join(f"{k}={v}" for k, v in sorted(span.tags.items()))
        )
    if span.counters:
        parts.append(
            " ".join(f"{k}:{v:g}" for k, v in sorted(span.counters.items()))
        )
    if span.status != "ok":
        parts.append(f"status={span.status}")
    return f"  [{' | '.join(parts)}]" if parts else ""


def render_tree(span: Span, depth: int, max_depth: int | None) -> list[str]:
    if max_depth is not None and depth > max_depth:
        return []
    indent = "  " * depth
    lines = [
        f"{indent}{span.name}  wall={span.wall_s * 1e3:.2f}ms "
        f"cpu={span.cpu_s * 1e3:.2f}ms{_format_tags(span)}"
    ]
    for child in span.children:
        lines.extend(render_tree(child, depth + 1, max_depth))
    return lines


def render_summary(roots: list[Span], top: int) -> list[str]:
    """Aggregate wall/CPU/self time by span name, wall-time descending.

    *self* is the span's wall time minus its direct children's — the time
    spent in the span's own code.  A stage whose total is large but whose
    self is small is just a wrapper; optimization effort belongs where
    self time concentrates.
    """
    totals: dict[str, dict[str, float]] = {}

    def visit(span: Span) -> None:
        bucket = totals.setdefault(
            span.name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0, "self_s": 0.0}
        )
        bucket["count"] += 1
        bucket["wall_s"] += span.wall_s
        bucket["cpu_s"] += span.cpu_s
        bucket["self_s"] += max(
            span.wall_s - sum(c.wall_s for c in span.children), 0.0
        )
        for child in span.children:
            visit(child)

    for root in roots:
        visit(root)
    ranked = sorted(totals.items(), key=lambda kv: kv[1]["wall_s"], reverse=True)
    width = max((len(name) for name, _ in ranked[:top]), default=4)
    lines = [
        f"{'span':<{width}}  {'count':>6}  {'wall':>10}  {'self':>10}  "
        f"{'cpu':>10}"
    ]
    for name, agg in ranked[:top]:
        lines.append(
            f"{name:<{width}}  {agg['count']:>6.0f}  "
            f"{agg['wall_s'] * 1e3:>8.2f}ms  {agg['self_s'] * 1e3:>8.2f}ms  "
            f"{agg['cpu_s'] * 1e3:>8.2f}ms"
        )
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=pathlib.Path, help="trace JSON file")
    parser.add_argument(
        "--depth", type=int, default=None, help="max tree depth to print"
    )
    parser.add_argument(
        "--top", type=int, default=15, help="summary rows to print"
    )
    args = parser.parse_args(argv)

    data = json.loads(args.trace.read_text())
    roots = [Span.from_dict(d) for d in data.get("spans", [])]
    if not roots:
        print("trace contains no spans")
        return 1

    print("== trace tree ==")
    for root in roots:
        for line in render_tree(root, 0, args.depth):
            print(line)
    print()
    print("== summary (by span name, wall-time descending) ==")
    for line in render_summary(roots, args.top):
        print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
