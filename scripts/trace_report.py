"""Render a JSON trace export as a tree plus a per-span-name summary.

Works on anything :meth:`repro.dataplat.observability.Tracer.to_json`
writes (e.g. ``REPRO_TRACE=trace.json python examples/quickstart.py``)::

    python scripts/trace_report.py trace.json [--depth N] [--top K]

The tree view shows nesting, wall/CPU time, tags and counters per span;
the summary aggregates total and *self* wall time by span name (self =
wall minus direct children), which answers both the stage budget question
("how much time went under feature.F5?") and the hot-spot question
("where is that time actually spent?") directly.

With ``--analyze`` the input is a telemetry warehouse dump
(:meth:`repro.dataplat.telemetry.TelemetryWarehouse.dump`) instead of a
trace: every stored query profile is rendered as an operator tree with
estimated vs. actual rows plus a critical-path/self-time report::

    python scripts/trace_report.py telemetry.json --analyze
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.dataplat.observability import Span
from repro.dataplat.telemetry import TELEMETRY_DATABASE, TelemetryWarehouse


def _format_tags(span: Span) -> str:
    parts = []
    if span.tags:
        parts.append(
            " ".join(f"{k}={v}" for k, v in sorted(span.tags.items()))
        )
    if span.counters:
        parts.append(
            " ".join(f"{k}:{v:g}" for k, v in sorted(span.counters.items()))
        )
    if span.status != "ok":
        parts.append(f"status={span.status}")
    return f"  [{' | '.join(parts)}]" if parts else ""


def render_tree(span: Span, depth: int, max_depth: int | None) -> list[str]:
    if max_depth is not None and depth > max_depth:
        return []
    indent = "  " * depth
    lines = [
        f"{indent}{span.name}  wall={span.wall_s * 1e3:.2f}ms "
        f"cpu={span.cpu_s * 1e3:.2f}ms{_format_tags(span)}"
    ]
    for child in span.children:
        lines.extend(render_tree(child, depth + 1, max_depth))
    return lines


def render_summary(roots: list[Span], top: int) -> list[str]:
    """Aggregate wall/CPU/self time by span name, wall-time descending.

    *self* is the span's wall time minus its direct children's — the time
    spent in the span's own code.  A stage whose total is large but whose
    self is small is just a wrapper; optimization effort belongs where
    self time concentrates.
    """
    totals: dict[str, dict[str, float]] = {}

    def visit(span: Span) -> None:
        bucket = totals.setdefault(
            span.name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0, "self_s": 0.0}
        )
        bucket["count"] += 1
        bucket["wall_s"] += span.wall_s
        bucket["cpu_s"] += span.cpu_s
        bucket["self_s"] += max(
            span.wall_s - sum(c.wall_s for c in span.children), 0.0
        )
        for child in span.children:
            visit(child)

    for root in roots:
        visit(root)
    ranked = sorted(totals.items(), key=lambda kv: kv[1]["wall_s"], reverse=True)
    width = max((len(name) for name, _ in ranked[:top]), default=4)
    lines = [
        f"{'span':<{width}}  {'count':>6}  {'wall':>10}  {'self':>10}  "
        f"{'cpu':>10}"
    ]
    for name, agg in ranked[:top]:
        lines.append(
            f"{name:<{width}}  {agg['count']:>6.0f}  "
            f"{agg['wall_s'] * 1e3:>8.2f}ms  {agg['self_s'] * 1e3:>8.2f}ms  "
            f"{agg['cpu_s'] * 1e3:>8.2f}ms"
        )
    return lines


def render_shards(roots: list[Span]) -> list[str]:
    """Per-shard wall/self rollup over spans tagged ``shard=N``.

    A span carrying a ``shard`` tag (e.g. the ``shard.execute`` /
    ``shard.widetable`` roots the scatter-gather paths emit) claims its
    whole subtree for that shard; *wall* accumulates only at those entry
    spans (so nested spans are not double-counted) while *self* sums every
    attributed span's own time.  The closing skew line is the point of the
    report: a max/mean wall ratio well above 1 means the gather is waiting
    on one hot shard.  Returns no lines when the trace has no shard tags,
    so unsharded traces render exactly as before.
    """
    buckets: dict[object, dict[str, float]] = {}

    def visit(span: Span, inherited) -> None:
        tag = span.tags.get("shard", inherited) if span.tags else inherited
        if tag is not None:
            bucket = buckets.setdefault(
                tag, {"spans": 0, "wall_s": 0.0, "self_s": 0.0}
            )
            bucket["spans"] += 1
            if tag != inherited:
                bucket["wall_s"] += span.wall_s
            bucket["self_s"] += max(
                span.wall_s - sum(c.wall_s for c in span.children), 0.0
            )
        for child in span.children:
            visit(child, tag)

    for root in roots:
        visit(root, None)
    if not buckets:
        return []

    def order(key):
        if isinstance(key, (int, float)):
            return (0, key, "")
        return (1, 0, str(key))

    lines = [f"{'shard':>5}  {'spans':>6}  {'wall':>10}  {'self':>10}"]
    for key in sorted(buckets, key=order):
        agg = buckets[key]
        lines.append(
            f"{key!s:>5}  {agg['spans']:>6.0f}  "
            f"{agg['wall_s'] * 1e3:>8.2f}ms  {agg['self_s'] * 1e3:>8.2f}ms"
        )
    walls = [b["wall_s"] for b in buckets.values()]
    mean = sum(walls) / len(walls)
    if mean > 0:
        lines.append(f"skew: max/mean wall = {max(walls) / mean:.2f}")
    return lines


def _profile_groups(warehouse: TelemetryWarehouse) -> list[tuple]:
    """Stored profiles as ``((run, window, fingerprint), sql, ops)`` groups.

    Grouping is by ``profile_id`` (one value per execution), not by
    fingerprint — re-running a statement in the same window must yield
    two separate operator trees, not one interleaved mess.
    """
    if "query_profiles" not in warehouse.tables():
        return []
    table = warehouse.catalog.load(
        "query_profiles", database=TELEMETRY_DATABASE
    )
    names = list(table.schema.names)
    groups: dict[tuple, dict] = {}
    for values in table.rows():
        row = dict(zip(names, values))
        key = (str(row["run_id"]), int(row["window"]), int(row["profile_id"]))
        group = groups.setdefault(
            key,
            {"sql": str(row["sql"]), "fp": str(row["fingerprint"]), "ops": []},
        )
        group["ops"].append(row)
    out = []
    for key in sorted(groups):
        group = groups[key]
        group["ops"].sort(key=lambda r: int(r["op_id"]))
        run_id, window, _ = key
        out.append(((run_id, window, group["fp"]), group["sql"], group["ops"]))
    return out


def render_analyze(warehouse: TelemetryWarehouse, top: int) -> list[str]:
    """Per-profile operator trees plus critical-path/self-time reports.

    Self time is an operator's inclusive wall time minus its direct
    children's; the critical path repeatedly descends into the slowest
    child, which is where a latency regression actually lives.
    """
    lines: list[str] = []
    for (run_id, window, fp), sql, ops in _profile_groups(warehouse):
        children: dict[int, list[dict]] = {}
        for op in ops:
            children.setdefault(int(op["parent_id"]), []).append(op)

        def self_s(op: dict) -> float:
            kids = children.get(int(op["op_id"]), [])
            return max(float(op["wall_s"]) - sum(float(k["wall_s"]) for k in kids), 0.0)

        root = ops[0]
        total = float(root["wall_s"])
        lines.append(
            f"-- run {run_id} window {window} fp {fp} "
            f"({total * 1e3:.3f} ms total)"
        )
        lines.append(f"   {sql}")
        for op in ops:
            pad = "  " * int(op["depth"])
            est = float(op["est_rows"])
            est_text = f"{est:.0f}" if est >= 0 else "?"
            q = float(op["q_error"])
            q_text = f" q={q:.2f}" if q > 0 else ""
            lines.append(
                f"  {pad}{op['label']}  est={est_text} "
                f"actual={int(op['actual_rows'])}{q_text} "
                f"wall={float(op['wall_s']) * 1e3:.3f}ms "
                f"self={self_s(op) * 1e3:.3f}ms "
                f"decoded={int(op['bytes_decoded'])}B "
                f"hits={int(op['cache_hits'])} "
                f"skipped={int(op['chunks_skipped'])}"
            )
        path = []
        op = root
        while True:
            path.append(op)
            kids = children.get(int(op["op_id"]), [])
            if not kids:
                break
            op = max(kids, key=lambda k: (float(k["wall_s"]), -int(k["op_id"])))
        lines.append("  critical path:")
        for op in path:
            share = self_s(op) / total if total > 0 else 0.0
            lines.append(
                f"    {op['operator']:<10} self={self_s(op) * 1e3:.3f}ms "
                f"({share:.0%} of total)  {op['label']}"
            )
        ranked = sorted(ops, key=lambda o: (-self_s(o), int(o["op_id"])))
        lines.append("  self-time leaders:")
        for op in ranked[:top]:
            lines.append(
                f"    {self_s(op) * 1e3:>9.3f}ms  {op['label']}"
            )
        lines.append("")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=pathlib.Path, help="trace JSON file")
    parser.add_argument(
        "--depth", type=int, default=None, help="max tree depth to print"
    )
    parser.add_argument(
        "--top", type=int, default=15, help="summary rows to print"
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help=(
            "treat the input as a telemetry warehouse dump and render the "
            "stored query profiles (critical path, est vs actual rows)"
        ),
    )
    args = parser.parse_args(argv)

    if args.analyze:
        warehouse = TelemetryWarehouse.load_dump(args.trace)
        lines = render_analyze(warehouse, args.top)
        if not lines:
            print("dump contains no query profiles")
            return 1
        print("== query profiles (EXPLAIN ANALYZE warehouse) ==")
        for line in lines:
            print(line)
        return 0

    data = json.loads(args.trace.read_text())
    roots = [Span.from_dict(d) for d in data.get("spans", [])]
    if not roots:
        print("trace contains no spans")
        return 1

    print("== trace tree ==")
    for root in roots:
        for line in render_tree(root, 0, args.depth):
            print(line)
    print()
    print("== summary (by span name, wall-time descending) ==")
    for line in render_summary(roots, args.top):
        print(line)
    shard_lines = render_shards(roots)
    if shard_lines:
        print()
        print("== shards (scatter-gather rollup) ==")
        for line in shard_lines:
            print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
