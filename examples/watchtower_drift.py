"""Watchtower: the continuous monitoring loop catching injected drift.

The paper's system retrains monthly but serves continuously, so the weeks
*between* retrains are where an operator actually lives.  This example runs
that loop end-to-end on a seeded scenario:

1. simulate a world, then inject two production-shaped drifts
   (:mod:`repro.datagen.scenarios`): a gradual ARPU decay from month 6 and
   a sudden PS-KPI degradation at month 8;
2. run the churn pipeline over three consecutive windows with a
   :class:`~repro.dataplat.telemetry.TelemetrySink`, so every window's
   spans, metric deltas and health report land in the ``__telemetry``
   warehouse;
3. after each window, compare the serving month's F1+F3 features against
   the pre-drift reference month with :class:`~repro.core.ModelMonitor`
   and let the :class:`~repro.core.Watchtower` evaluate three declarative
   alert rules — a consecutive-window billing-drift rule, a page-tier
   PS-KPI threshold rule, and an AUC delta rule — over telemetry SQL;
4. print each window's report, then dump the warehouse for
   ``python scripts/obs_dashboard.py telemetry.json``.

Run:  python examples/watchtower_drift.py

The whole run is seeded: the same alerts fire at the same windows every
time, on every backend.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro import ModelConfig, ScaleConfig, TelcoSimulator
from repro.core import AlertRule, ChurnPipeline, ModelMonitor, Watchtower
from repro.datagen import DriftScenario, inject_drift
from repro.dataplat import TelemetrySink, TelemetryWarehouse, observability
from repro.features import WideTableBuilder

#: Families the monitor watches: billing (ARPU lives here) and PS KPIs.
MONITORED_FAMILIES = ("F1", "F3")

#: The three declared rules of the scenario.  Billing decay is gradual, so
#: it must *persist* before anyone is woken up; a PS-KPI shift past the
#: PSI ALERT band pages immediately; an AUC drop between windows is
#: informational (retrains are monthly anyway).
RULES = (
    AlertRule(
        name="billing-drift-sustained",
        description="billing features drifting for 2 windows",
        sql=(
            "SELECT window, MAX(psi) AS value FROM __telemetry.drift "
            "WHERE run_id = '{run_id}' AND name = 'total_charge' "
            "GROUP BY window"
        ),
        threshold=0.1,
        kind="consecutive",
        consecutive=2,
        severity="warn",
    ),
    AlertRule(
        name="ps-kpi-shifted",
        description="PS service quality past the PSI alert band",
        sql=(
            "SELECT window, MAX(psi) AS value FROM __telemetry.drift "
            "WHERE run_id = '{run_id}' AND name = 'page_response_delay' "
            "GROUP BY window"
        ),
        threshold=0.25,
        severity="page",
    ),
    AlertRule(
        name="auc-dropped",
        description="model quality fell between windows",
        sql=(
            "SELECT window, MAX(value) AS value FROM __telemetry.metrics "
            "WHERE run_id = '{run_id}' AND kind = 'gauge' "
            "AND name = 'pipeline.auc' GROUP BY window"
        ),
        threshold=-0.05,
        comparison="<",
        kind="delta",
        severity="info",
    ),
)


def monitored_features(builder: WideTableBuilder, month: int):
    """Names and matrix of the monitored families for one month."""
    parts = [builder.category(f, month) for f in MONITORED_FAMILIES]
    names = [n for p in parts for n in p.names]
    return names, np.hstack([p.values for p in parts])


def main() -> None:
    scale = ScaleConfig(population=1500, months=9, seed=7)
    print(f"Simulating {scale.population} customers x {scale.months} months ...")
    world = TelcoSimulator(scale).run()

    scenario = DriftScenario(
        arpu_decay_start=6, arpu_decay_rate=0.25, ps_shift_month=8, ps_shift=1.5
    )
    print(
        f"Injecting drift: ARPU -{scenario.arpu_decay_rate:.0%}/month from "
        f"month {scenario.arpu_decay_start}, PS KPIs shifted x"
        f"{1 + scenario.ps_shift:g} at month {scenario.ps_shift_month}"
    )
    world = inject_drift(world, scenario)

    warehouse = TelemetryWarehouse()
    sink = TelemetrySink(warehouse, run_id="drift-0001")
    watchtower = Watchtower(warehouse, RULES)

    reference_month = scenario.arpu_decay_start - 1
    builder = WideTableBuilder(world)
    names, reference = monitored_features(builder, reference_month)
    monitor = ModelMonitor(
        names,
        reference,
        reference_churn_rate=world.month(reference_month).churn_rate,
        reference_label=f"month {reference_month}",
    )

    previous_tracer = observability.set_tracer(observability.Tracer())
    previous_metrics = observability.set_metrics(None)
    try:
        pipeline = ChurnPipeline(
            world,
            scale,
            model=ModelConfig(n_trees=15, min_samples_leaf=20),
            seed=0,
            allow_degraded=True,
            telemetry=sink,
        )
        for spec in pipeline.windows.windows(test_months=[6, 7, 8]):
            result = pipeline.run_window(spec)
            month = spec.test_month
            _, current = monitored_features(builder, month)
            report = monitor.compare(
                current,
                current_churn_rate=world.month(month).churn_rate,
                current_label=f"month {month}",
                pipeline_health=result.health,
            )
            alerts = watchtower.observe(
                sink, month, monitoring=report, health=result.health
            )
            print(f"\n-- window {month} (AUC {result.auc:.3f}) --")
            print(report.render(top=3))
            for alert in alerts:
                print(alert.render())
    finally:
        observability.set_tracer(previous_tracer)
        observability.set_metrics(previous_metrics)

    out = pathlib.Path("telemetry.json")
    rows = warehouse.dump(out)
    print(
        f"\nwrote {rows} telemetry rows to {out} "
        f"(render: python scripts/obs_dashboard.py {out})"
    )


if __name__ == "__main__":
    main()
