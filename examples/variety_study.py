"""Variety study: how much does each feature family add? (paper Table 2)

Replays the paper's central experiment — start from the BSS baseline (F1)
and add each OSS/derived family separately — and prints the ΔPR-AUC table.
Expect the strong tier (PS/CS KPIs, co-occurrence graph) to clearly beat the
weak tier (complaint topics, message graph).

Run:  python examples/variety_study.py
"""

from __future__ import annotations

from repro import ChurnPipeline, ModelConfig, ScaleConfig, TelcoSimulator
from repro.core.experiments import table2_variety
from repro.core.reporting import report_table2
from repro.features import CATEGORY_INFO


def main() -> None:
    scale = ScaleConfig(population=4000, months=9, seed=7)
    print(f"Simulating {scale.population} customers x {scale.months} months ...")
    world = TelcoSimulator(scale).run()

    pipeline = ChurnPipeline(
        world,
        scale,
        categories=("F1",),
        model=ModelConfig(n_trees=25, min_samples_leaf=25),
        seed=3,
    )

    print("Running the 9-family sweep over months 3..9 "
          "(one training month per window) ...\n")
    rows = table2_variety(pipeline)
    print(report_table2(rows))

    print("\nFamily legend:")
    for family, description in CATEGORY_INFO.items():
        print(f"  {family}: {description}")

    ranked = sorted(
        (r for r in rows if r["family"] != "F1"),
        key=lambda r: -r["delta_pr_auc"],
    )
    print(
        "\nStrongest additions: "
        + ", ".join(f"{r['family']} ({r['delta_pr_auc']:+.1%})" for r in ranked[:3])
    )
    print(
        "Weakest additions:   "
        + ", ".join(f"{r['family']} ({r['delta_pr_auc']:+.1%})" for r in ranked[-2:])
    )
    print(
        "\nPaper's conclusion, reproduced: OSS data (network quality, "
        "location co-occurrence) carries churn signal the BSS baseline "
        "misses; SMS-era features barely matter."
    )


if __name__ == "__main__":
    main()
