"""Chaos run: the churn pipeline under injected infrastructure faults.

The paper's platform lives on a commodity cluster where partial failure is
the steady state — datanodes die, replicas rot, vendor feeds flap, tasks
straggle.  This example turns all of that on (deterministically, from one
fault seed) and shows the pipeline absorbing it:

1. load the synthetic warehouse into a catalog over a replicated block
   store whose reads fail transiently at a configured rate;
2. corrupt a replica of a table the training window reads, kill the
   datanode holding another replica, and take the CS-KPI feed down;
3. run the monthly window with graceful degradation on: reads retry with
   capped exponential backoff, the corrupt replica is detected by
   checksum and repaired, the dead node's blocks are re-replicated on the
   read path, and the unbuildable F2 family is dropped (F1, the BSS
   baseline, can never be dropped);
4. print the ranked churner list's provenance and the pipeline health
   report — repairs, retries, and drops, next to the model metrics.

Run:  python examples/chaos_run.py
"""

from __future__ import annotations

import numpy as np

from repro import ChurnPipeline, ModelConfig, ScaleConfig, TelcoSimulator
from repro.core.window import WindowSpec
from repro.dataplat import BlockStore, Catalog, CatalogTableSource
from repro.dataplat.resilience import FaultInjector, FaultPolicy, RetryPolicy

#: One seed drives every injected fault — rerun and you get the same chaos.
FAULT_SEED = 7


def main() -> None:
    scale = ScaleConfig(population=1500, months=9, seed=7)
    print(f"Simulating {scale.population} customers x {scale.months} months ...")
    world = TelcoSimulator(scale).run()

    # A replicated store whose reads fail transiently 8% of the time.
    injector = FaultInjector(
        FaultPolicy(read_failure_rate=0.08), seed=FAULT_SEED
    )
    store = BlockStore(
        num_nodes=4,
        replication=3,
        fault_injector=injector,
        retry_policy=RetryPolicy(max_attempts=8, seed=FAULT_SEED),
    )
    catalog = Catalog(store)
    world.load_catalog(catalog)
    catalog.clear_cache()  # force reads back through the (chaotic) store

    # Targeted chaos on top of the background fault rate.
    path = next(p for p in store.list_files("/warehouse/telco") if "month_5" in p)
    status = store.status(path)
    store.corrupt_block(path, 0, status.blocks[0].replicas[0])
    store.kill_node(status.blocks[0].replicas[1])
    catalog.drop("cs_kpi", database="telco")
    print(
        f"chaos: corrupted a replica of {path}, killed datanode "
        f"{status.blocks[0].replicas[1]}, dropped the cs_kpi feed"
    )

    pipeline = ChurnPipeline(
        world,
        scale,
        categories=("F1", "F2", "F3"),
        model=ModelConfig(n_trees=20, min_samples_leaf=20),
        table_source=CatalogTableSource(catalog).tables_for,
        store=store,
        allow_degraded=True,
    )
    print("Training on months 4-5, predicting month-7 churners ...")
    result = pipeline.run_window(WindowSpec((4, 5), 6))

    print(f"\nAUC    = {result.auc:.3f}")
    print(f"PR-AUC = {result.pr_auc:.3f}")
    print(f"model provenance: {result.predictor.degradation_state}")
    print()
    print(result.health.render())

    order = np.argsort(-result.scores, kind="mergesort")
    print("\nTop 5 predicted churners (shipped despite the chaos):")
    for row in order[:5]:
        print(
            f"  customer slot {result.test_slots[row]:>5}  "
            f"likelihood {result.scores[row]:.3f}"
        )


if __name__ == "__main__":
    main()
