"""Closed-loop retention campaign: the paper's Table 6 A/B study.

1. Score the customer base and target the top of the ranked churner list.
2. Month 8: group B gets offers assigned by operator rules of thumb;
   group A is held out.  Acceptance outcomes become multi-class labels.
3. Month 9: a Random-Forest offer matcher (churn features + campaign labels
   propagated over the social graphs) assigns offers; recharge rates rise
   again — the closed loop pays.

Run:  python examples/retention_campaign.py
"""

from __future__ import annotations

from repro import ChurnPipeline, ModelConfig, RetentionCampaign, ScaleConfig, TelcoSimulator
from repro.core.reporting import report_table6
from repro.datagen.offers import OFFER_CATALOG


def main() -> None:
    scale = ScaleConfig(population=6000, months=9, seed=11)
    print(f"Simulating {scale.population} customers x {scale.months} months ...")
    world = TelcoSimulator(scale).run()

    pipeline = ChurnPipeline(
        world,
        scale,
        model=ModelConfig(n_trees=25, min_samples_leaf=25),
        seed=3,
    )
    campaign = RetentionCampaign(pipeline, seed=5)

    print("Offer catalogue (Section 5.5):")
    for idx, offer in enumerate(OFFER_CATALOG[1:], start=1):
        print(f"  {idx}. {offer}")

    print("\nRunning the two-month A/B study (expert month, matched month) ...\n")
    results = campaign.run_study((8, 9))
    print(report_table6(results))

    expert, matched = results
    def pooled(c, group):
        total = sum(x.total for x in c.outcomes if x.group == group)
        hit = sum(x.recharged for x in c.outcomes if x.group == group)
        return hit / max(total, 1)

    print(
        f"\nGroup A (control) pooled recharge rate:  "
        f"month 8 {pooled(expert, 'A'):.1%}, month 9 {pooled(matched, 'A'):.1%}"
    )
    print(
        f"Group B (offers) pooled recharge rate:   "
        f"month 8 {pooled(expert, 'B'):.1%} (expert rules), "
        f"month 9 {pooled(matched, 'B'):.1%} (learned matcher)"
    )
    print(
        "\nThe paper's Value finding, reproduced: offers lift retention by "
        "an order of magnitude over control, and matching offers to "
        "customers beats expert rules of thumb."
    )

    # How deep should the campaign go?  Calibrate the churn scores on the
    # previous month, then cut the ranked list where expected profit peaks
    # ("use a reasonable campaign cost to make the most profit").
    from repro.core.budget import plan_campaign
    from repro.core.window import WindowSpec
    from repro.ml.calibration import IsotonicCalibrator

    calib = pipeline.run_window(WindowSpec((5,), 6))
    final = pipeline.run_window(WindowSpec((6,), 7))
    calibrated = IsotonicCalibrator().fit(
        calib.scores, calib.labels
    ).transform(final.scores)
    plan = plan_campaign(calibrated)
    print()
    print(plan.render(marks=(scale.scaled_u(50_000), scale.scaled_u(100_000))))
    print(
        f"  (the paper campaigns on the top {scale.scaled_u(100_000)} "
        f"— our profit optimum lands at a similar order of depth)"
    )


if __name__ == "__main__":
    main()
