"""Feature engineering with the mini data platform's SQL engine.

The paper builds its wide table with Hive/Spark SQL: intermediate aggregates
are materialized as tables, then joined per customer.  This example walks
that path explicitly on the raw simulated tables — the same queries the F1
builder runs internally — and shows the optimizer at work (EXPLAIN).

Run:  python examples/sql_feature_engineering.py
"""

from __future__ import annotations

from repro import ScaleConfig, TelcoSimulator
from repro.dataplat import Catalog, SQLEngine


def main() -> None:
    scale = ScaleConfig(population=1500, months=3, seed=5)
    print(f"Simulating {scale.population} customers x {scale.months} months ...")
    world = TelcoSimulator(scale).run()

    # Land the raw tables in the mini-HDFS-backed catalog, like the paper's
    # ETL layer does.
    catalog = Catalog()
    world.load_catalog(catalog)
    print(
        f"Catalog holds {len(catalog.tables('telco'))} tables, "
        f"{catalog.store.total_bytes / 1e6:.1f} MB logical / "
        f"{catalog.store.physical_bytes / 1e6:.1f} MB replicated"
    )

    engine = SQLEngine(catalog, database="telco")

    # Step 1: materialize an intermediate aggregate (recharge behaviour).
    print("\n1. CTAS: per-customer recharge aggregate")
    engine.create_table_as(
        "recharge_agg",
        """
        SELECT imsi, COUNT(*) AS recharge_cnt, SUM(amount) AS recharge_amt
        FROM recharge_events
        GROUP BY imsi
        """,
    )
    print(f"   -> {engine.query('SELECT COUNT(*) AS n FROM recharge_agg')['n'][0]} rows")

    # Step 2: daily CDR -> monthly trend features with CASE WHEN.
    print("\n2. CTAS: late-month usage share from the daily CDR")
    engine.create_table_as(
        "daily_trend",
        """
        SELECT imsi,
               SUM(call_dur) AS total_dur,
               SAFE_DIV(
                   SUM(CASE WHEN day % 30 > 20 THEN call_dur ELSE 0 END),
                   SUM(call_dur)
               ) AS late_share
        FROM cdr_daily
        GROUP BY imsi
        """,
    )

    # Step 3: the wide-table join.
    wide_sql = """
        SELECT u.imsi, u.age, u.innet_dura, b.balance, b.total_charge,
               d.late_share, r.recharge_cnt
        FROM user_base u
        JOIN billing b ON u.imsi = b.imsi
        JOIN daily_trend d ON u.imsi = d.imsi
        LEFT JOIN recharge_agg r ON u.imsi = r.imsi
        WHERE u.innet_dura > 6
        ORDER BY b.balance
        LIMIT 5
    """
    print("\n3. Optimized plan for the wide-table join (EXPLAIN):")
    print(engine.explain(wide_sql))

    print("\n4. Five longest-tenured customers with the lowest balances:")
    out = engine.query(wide_sql)
    for row in out.rows():
        imsi, age, tenure, balance, charge, late, recharges = row
        print(
            f"   imsi={imsi:<8} age={age:<3} tenure={tenure:>3}mo "
            f"balance={balance:7.2f} late_share={late:.2f} "
            f"recharges={recharges}"
        )

    print(
        "\nNote the pushed-down filter and pruned scan columns in the plan: "
        "the optimizer reads only what the query needs."
    )


if __name__ == "__main__":
    main()
