"""Root-cause analysis of predicted churners (paper Section 6 extension).

The paper closes with: "Extension work includes inferring root causes of
churners for actionable and suitable retention strategies."  This example
runs that extension: train the full churn model, take the top of the ranked
churner list, attribute each score to cause groups by neutralizing one group
at a time, and cross-check the inferred causes against the simulator's
hidden ground truth (financial / service quality / social contagion).

Run:  python examples/root_cause_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import ChurnPipeline, ModelConfig, ScaleConfig, TelcoSimulator
from repro.core.rootcause import RootCauseAnalyzer, report_root_causes
from repro.core.window import WindowSpec
from repro.features.spec import ALL_CATEGORIES
from repro.ml.calibration import IsotonicCalibrator, expected_calibration_error

REASON_NAMES = {0: "(not a churner)", 1: "financial", 2: "service quality", 3: "social"}


def main() -> None:
    scale = ScaleConfig(population=4000, months=9, seed=23)
    print(f"Simulating {scale.population} customers x {scale.months} months ...")
    world = TelcoSimulator(scale).run()

    pipeline = ChurnPipeline(
        world, scale, model=ModelConfig(n_trees=25, min_samples_leaf=25), seed=3
    )
    test_month = 8
    print("Training the full 150-feature model ...")
    result = pipeline.run_window(
        WindowSpec((5, 6, 7), test_month), categories=ALL_CATEGORIES
    )
    print(f"AUC={result.auc:.3f}  P@50k={result.precision_at[50_000]:.3f}\n")

    features = pipeline.builder.features(test_month, ALL_CATEGORIES).values[
        result.test_slots
    ]
    analyzer = RootCauseAnalyzer(result, features)
    print(report_root_causes(analyzer, u=80))

    # Cross-check against the simulator's hidden churn reasons.
    truth = world.month(test_month).churn_reason
    attributions = analyzer.attribute_top(80)
    agree = total = 0
    for attribution in attributions:
        reason = int(truth[attribution.slot])
        if reason == 0:
            continue
        total += 1
        inferred = attribution.dominant_cause
        if reason == 1 and inferred == "financial":
            agree += 1
        elif reason == 2 and "service_quality" in inferred:
            agree += 1
        elif reason == 3 and inferred == "social":
            agree += 1
    print(
        f"\nAgreement with the simulator's hidden reasons: "
        f"{agree}/{total} = {agree / max(total, 1):.0%} "
        f"(chance over 6 cause groups ~ 25%)"
    )

    # Bonus: calibrate the likelihoods for campaign budgeting.
    calib = pipeline.run_window(WindowSpec((5, 6), 7), categories=ALL_CATEGORIES)
    calibrator = IsotonicCalibrator().fit(calib.scores, calib.labels)
    before = expected_calibration_error(result.labels, result.scores)
    after = expected_calibration_error(
        result.labels, calibrator.transform(result.scores)
    )
    print(
        f"\nScore calibration for budgeting: ECE {before:.3f} -> {after:.3f} "
        f"after isotonic recalibration on the previous month."
    )
    top = np.argsort(-result.scores)[:80]
    expected_churners = calibrator.transform(result.scores[top]).sum()
    print(
        f"Calibrated expectation for the top-80 list: "
        f"{expected_churners:.0f} churners (actual: {result.labels[top].sum()})"
    )


if __name__ == "__main__":
    main()
