"""Customer-centric network optimization: prevent churn by fixing cells.

The paper's Section 5.3, after measuring how much CS/PS service quality
drives churn: "We can use a customer-centric network optimization solution
to improve KPI/KQI experiences of potential churners."  This example runs
that loop as a matched counterfactual experiment:

1. the churn model flags the top potential churners;
2. root-cause attribution keeps those leaving over *service quality* —
   cashback cannot retain a customer whose pages will not load;
3. their cells are "fixed" (a latent quality boost) and the same world seed
   is re-simulated — identical randomness, so any churn difference is the
   intervention's causal effect.

Run:  python examples/network_optimization.py
"""

from __future__ import annotations

from repro import ModelConfig, ScaleConfig
from repro.core.netopt import run_network_optimization_study


def main() -> None:
    scale = ScaleConfig(population=4000, months=9, seed=7)
    print(
        f"Simulating {scale.population} customers x {scale.months} months, "
        "twice (baseline + counterfactual) ..."
    )
    report = run_network_optimization_study(
        scale,
        model=ModelConfig(n_trees=20, min_samples_leaf=20),
        start_month=6,
        improvement=1.5,
    )
    print()
    print(report.render())
    print(
        f"\n{report.churn_avoided} churn events avoided among "
        f"{len(report.treated_slots)} treated customers "
        f"({report.treated_reduction:.0%} of their baseline churn), while "
        f"the untreated comparison group drifted by "
        f"{report.comparison_drift:+d} events — the effect is causal, not "
        "selection."
    )
    print(
        "\nTakeaway (the paper's, reproduced): for quality-driven churners "
        "the retention lever is the network itself, not a recharge offer."
    )


if __name__ == "__main__":
    main()
