"""Quickstart: simulate a telco world, train the churn model, rank churners.

Runs the paper's core loop end-to-end on a small synthetic world:

1. simulate 9 months of BSS/OSS data for a few thousand prepaid customers;
2. build the full 150-feature wide table (all families F1..F9);
3. train the deployed configuration (Random Forest, weighted instances,
   4 months of training data) through one Figure-6 sliding window;
4. print the paper's four metrics and the top of the potential-churner list.

Run:  python examples/quickstart.py

Set ``REPRO_TRACE=trace.json`` to trace the run: raw tables are then served
through a catalog over the block store (so storage reads are visible), the
whole window runs under a tracer, and the span tree — blockstore reads,
dataset tasks, SQL operators, every built feature family — is written as
JSON.  Render it with ``python scripts/trace_report.py trace.json``.
"""

from __future__ import annotations

import os
import pathlib

import numpy as np

from repro import ChurnPipeline, ModelConfig, ScaleConfig, TelcoSimulator
from repro.core.window import WindowSpec
from repro.dataplat import observability
from repro.dataplat.catalog import Catalog
from repro.dataplat.dataset import Dataset
from repro.dataplat.resilience import CatalogTableSource


def _build_pipeline(world, scale, through_catalog: bool) -> ChurnPipeline:
    table_source = None
    if through_catalog:
        # Persist the raw tables and read them back through the block store,
        # as the production system would — every read shows up in the trace.
        catalog = Catalog()
        world.load_catalog(catalog)
        # Saves warm the decoded-table cache; drop it so the first feature
        # build actually reads blocks (and the trace shows the reads).
        catalog.clear_cache()
        table_source = CatalogTableSource(catalog).tables_for
    return ChurnPipeline(
        world,
        scale,
        model=ModelConfig(n_trees=25, min_samples_leaf=25),
        imbalance="weighted",
        seed=0,
        table_source=table_source,
    )


def _monthly_minutes(world, month: int) -> float:
    """Total call minutes of one month via the partitioned dataset path."""
    cdr = world.month(month).tables["cdr_daily"]
    return Dataset.from_table(cdr, num_partitions=4).reduce_column(
        "call_dur", "sum"
    )


def main() -> None:
    trace_path = os.environ.get("REPRO_TRACE")
    tracer = observability.Tracer() if trace_path else None

    scale = ScaleConfig(population=3000, months=9, seed=42)
    print(f"Simulating {scale.population} customers x {scale.months} months ...")
    world = TelcoSimulator(scale).run()

    rates = [f"{m.churn_rate:.1%}" for m in world.months]
    print(f"monthly churn rates: {', '.join(rates)}")

    if tracer is not None:
        previous = observability.set_tracer(tracer)
    try:
        pipeline = _build_pipeline(world, scale, through_catalog=bool(tracer))

        minutes = _monthly_minutes(world, 8)
        print(f"month-8 call volume: {minutes / 60:,.0f} hours")

        # Figure 6 window: train on months 4-7 (labeled by months 5-8),
        # score month 8's active customers, evaluate on month-9 churn.
        print("Training on months 4-7, predicting month-9 churners ...")
        result = pipeline.run_window(WindowSpec((4, 5, 6, 7), 8))
    finally:
        if tracer is not None:
            observability.set_tracer(previous)

    print(f"\nAUC     = {result.auc:.3f}   (paper Table 3: 0.932)")
    print(f"PR-AUC  = {result.pr_auc:.3f}   (paper Table 3: 0.716)")
    for u in sorted(result.precision_at):
        print(
            f"top {u:>6} (paper scale): "
            f"precision={result.precision_at[u]:.3f} "
            f"recall={result.recall_at[u]:.3f}"
        )

    # The deployed system's monthly artifact: the ranked churner list.
    order = np.argsort(-result.scores)
    print("\nTop 10 predicted churners (slot, score, actually churned):")
    for row in order[:10]:
        slot = result.test_slots[row]
        print(
            f"  customer slot {slot:>5}  "
            f"likelihood {result.scores[row]:.3f}  "
            f"churned={bool(result.labels[row])}"
        )

    if tracer is not None:
        out = pathlib.Path(trace_path)
        out.write_text(tracer.to_json())
        n_spans = sum(1 for _ in tracer.iter_spans())
        print(
            f"\nwrote {n_spans} spans to {out} "
            f"(render: python scripts/trace_report.py {out})"
        )


if __name__ == "__main__":
    main()
