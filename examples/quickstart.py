"""Quickstart: simulate a telco world, train the churn model, rank churners.

Runs the paper's core loop end-to-end on a small synthetic world:

1. simulate 9 months of BSS/OSS data for a few thousand prepaid customers;
2. build the full 150-feature wide table (all families F1..F9);
3. train the deployed configuration (Random Forest, weighted instances,
   4 months of training data) through one Figure-6 sliding window;
4. print the paper's four metrics and the top of the potential-churner list.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ChurnPipeline, ModelConfig, ScaleConfig, TelcoSimulator
from repro.core.window import WindowSpec


def main() -> None:
    scale = ScaleConfig(population=3000, months=9, seed=42)
    print(f"Simulating {scale.population} customers x {scale.months} months ...")
    world = TelcoSimulator(scale).run()

    rates = [f"{m.churn_rate:.1%}" for m in world.months]
    print(f"monthly churn rates: {', '.join(rates)}")

    pipeline = ChurnPipeline(
        world,
        scale,
        model=ModelConfig(n_trees=25, min_samples_leaf=25),
        imbalance="weighted",
        seed=0,
    )

    # Figure 6 window: train on months 4-7 (labeled by months 5-8), score
    # month 8's active customers, evaluate on who actually churns in month 9.
    print("Training on months 4-7, predicting month-9 churners ...")
    result = pipeline.run_window(WindowSpec((4, 5, 6, 7), 8))

    print(f"\nAUC     = {result.auc:.3f}   (paper Table 3: 0.932)")
    print(f"PR-AUC  = {result.pr_auc:.3f}   (paper Table 3: 0.716)")
    for u in sorted(result.precision_at):
        print(
            f"top {u:>6} (paper scale): "
            f"precision={result.precision_at[u]:.3f} "
            f"recall={result.recall_at[u]:.3f}"
        )

    # The deployed system's monthly artifact: the ranked churner list.
    order = np.argsort(-result.scores)
    print("\nTop 10 predicted churners (slot, score, actually churned):")
    for row in order[:10]:
        slot = result.test_slots[row]
        print(
            f"  customer slot {slot:>5}  "
            f"likelihood {result.scores[row]:.3f}  "
            f"churned={bool(result.labels[row])}"
        )


if __name__ == "__main__":
    main()
