"""Tour of the mini big-data platform: HDFS, ETL, RDDs, SQL.

A guided walk through the substrate layer the churn system runs on —
the pieces the paper gets from Hadoop/Hive/Spark:

1. block store with replication + a datanode failure and recovery;
2. a multi-vendor ETL load (vendor-B dialect → standard schema, with
   reject accounting);
3. partitioned datasets: shuffle, distributed group-by, lineage;
4. SQL over the catalog, including LIKE over search logs.

Run:  python examples/platform_tour.py
"""

from __future__ import annotations

import numpy as np

from repro import ScaleConfig, TelcoSimulator
from repro.datagen.records import cs_kpi_etl_job, vendor_b_cs_records
from repro.dataplat import BlockStore, Catalog, Dataset, SQLEngine


def main() -> None:
    rng = np.random.default_rng(3)

    # ------------------------------------------------------------------
    print("1. Block store: write, kill a datanode, recover")
    store = BlockStore(num_nodes=4, replication=2, block_size=1 << 12)
    payload = bytes(rng.integers(0, 256, size=50_000, dtype=np.uint8))
    store.write("/raw/cdr/2014-01.bin", payload)
    status = store.status("/raw/cdr/2014-01.bin")
    print(
        f"   {status.length} bytes in {status.num_blocks} blocks, "
        f"x{status.replication} replication"
    )
    store.kill_node(0)
    created = store.re_replicate()
    recovered = store.read("/raw/cdr/2014-01.bin") == payload
    print(f"   node 0 died -> {created} replicas re-created, data intact: {recovered}")

    # ------------------------------------------------------------------
    print("\n2. Multi-vendor ETL: vendor-B CS export -> standard cs_kpi")
    world = TelcoSimulator(ScaleConfig(population=1200, months=2, seed=9)).run()
    catalog = Catalog(store)
    raw = world.month(1).tables["cs_kpi"]
    stats = cs_kpi_etl_job().run(
        vendor_b_cs_records(raw, rng, malformed_fraction=0.03), catalog
    )
    print(
        f"   read {stats.rows_read}, loaded {stats.rows_loaded}, "
        f"rejected {stats.rows_rejected} {dict(stats.reject_reasons)}"
    )

    # ------------------------------------------------------------------
    print("\n3. Partitioned dataset: shuffle + distributed group-by + lineage")
    daily = world.month(1).tables["cdr_daily"]
    dataset = (
        Dataset.from_table(daily, num_partitions=6)
        .filter(lambda t: t["call_cnt"] > 0)
        .group_by_key(
            "imsi",
            {"active_days": ("count", "day"), "total_dur": ("sum", "call_dur")},
            num_partitions=4,
        )
    )
    summary = dataset.collect()
    print(
        f"   {summary.num_rows} customers aggregated across "
        f"{dataset.num_partitions} partitions"
    )
    print(f"   lineage: {' -> '.join(dataset.lineage())}")

    # ------------------------------------------------------------------
    print("\n4. SQL over the catalog, with LIKE on search logs")
    engine = SQLEngine(catalog)
    engine.register(world.month(1).tables["search_logs"], "search_logs")
    engine.register(world.month(1).tables["user_base"], "user_base")
    out = engine.query(
        """
        SELECT u.town_id, COUNT(*) AS porting_searchers
        FROM search_logs s JOIN user_base u ON s.imsi = u.imsi
        WHERE s.doc LIKE '%srch_t0_%'
        GROUP BY u.town_id
        ORDER BY porting_searchers DESC
        LIMIT 5
        """
    )
    print("   towns with the most porting-intent searchers:")
    for town, n in zip(out["town_id"], out["porting_searchers"]):
        print(f"     town {town:>2}: {n} customers")

    # ------------------------------------------------------------------
    print("\n5. Shared-nothing sharding: scatter-gather SQL on 4 shards")
    from repro.dataplat import ShardedCatalog, ShardedSQLEngine

    sharded = ShardedSQLEngine(ShardedCatalog(num_shards=4, shard_key="imsi"))
    sharded.register(world.month(1).tables["cdr_monthly"], "cdr")
    rows = sharded.catalog.shard_rows("cdr")
    print(f"   cdr_monthly hash-split on imsi -> per-shard rows {rows}")
    heavy_sql = (
        "SELECT imsi, SUM(voice_dur) AS total_dur, SUM(all_call_cnt) AS n "
        "FROM cdr GROUP BY imsi ORDER BY total_dur DESC, imsi LIMIT 3"
    )
    top = sharded.query(heavy_sql)
    single = SQLEngine()
    single.register(world.month(1).tables["cdr_monthly"], "cdr")
    reference = single.query(heavy_sql)
    identical = all(
        list(top[c]) == list(reference[c]) for c in top.schema.names
    )
    print("   heaviest callers (aggregated shard-local, gathered):")
    for imsi, dur, n in zip(top["imsi"], top["total_dur"], top["n"]):
        print(f"     imsi {imsi}: {dur:.0f} s over {n} calls")
    print(f"   bit-identical to the single-shard engine: {identical}")

    print(
        "\nEverything above — storage, ETL, shuffles, SQL, sharding — is "
        "what the feature pipeline in repro.features uses under the hood."
    )


if __name__ == "__main__":
    main()
