"""Online churn scoring: a day of traffic with a no-downtime model swap.

The batch side of the platform ranks churners once per window; the serving
side answers "how likely is *this* customer to churn, right now?" at call
time — the CRM asks while the subscriber is on the line.  This example
wires the whole online path together:

1. materialize a feature snapshot into the :class:`FeatureStore`
   (id-range-bucketed catalog partitions, so point lookups ride the same
   zone-map pruning the analytical scans use);
2. train a random forest, publish it to the :class:`ModelRegistry`, and
   drive a seeded morning of open-loop traffic through the micro-batching
   :class:`ScoringService`;
3. swap in a retrained ``v2`` model *between requests* — atomically, with
   the memoized score cache invalidated, no request ever scored by a
   mix of versions;
4. drive the afternoon against ``v2``, then fold the latency histogram
   into SLO gauges, sink one telemetry window, and let the watchtower
   evaluate the serving SLO rules (p99 budget, shed rate, failed swaps).

Run:  python examples/serve_traffic.py
"""

from __future__ import annotations

import numpy as np

from repro.dataplat import observability
from repro.dataplat.telemetry import TelemetrySink, TelemetryWarehouse
from repro.core.watchtower import Watchtower
from repro.features.spec import FeatureMatrix
from repro.ml.forest import RandomForestClassifier
from repro.serve import (
    ArrivalPlan,
    FeatureStore,
    LoadProfile,
    ModelRegistry,
    ScoringService,
    ServeConfig,
    arrival_plan,
    drive,
    serve_rules,
)

POPULATION = 3000
N_FEATURES = 12
SEED = 42


def make_snapshot() -> FeatureMatrix:
    rng = np.random.default_rng(SEED)
    return FeatureMatrix(
        imsi=(500_000 + np.arange(POPULATION)).astype(np.int64),
        names=[f"f{i}" for i in range(N_FEATURES)],
        values=rng.normal(size=(POPULATION, N_FEATURES)),
    )


def train_forest(matrix: FeatureMatrix, seed: int) -> RandomForestClassifier:
    rng = np.random.default_rng(seed)
    n = min(POPULATION, 2000)
    y = (
        matrix.values[:n, 0] + 0.3 * rng.normal(size=n) > 0
    ).astype(np.int64)
    return RandomForestClassifier(
        n_trees=8, max_depth=8, min_samples_leaf=20, seed=seed
    ).fit(matrix.values[:n], y)


def main() -> None:
    observability.set_metrics(observability.MetricsRegistry())
    snapshot = make_snapshot()

    print(f"Materializing {POPULATION} customers x {N_FEATURES} features ...")
    store = FeatureStore(cache_rows=POPULATION)
    info = store.materialize(snapshot, "day0", buckets=8)
    print(f"  {info.n_rows} rows in {info.buckets} id-range buckets\n")

    registry = ModelRegistry()
    registry.publish("v1", train_forest(snapshot, seed=1), activate=True)
    service = ScoringService(
        store,
        registry,
        ServeConfig(max_batch=64, batch_window_s=0.005, max_queue_depth=1024),
    )

    print("Morning traffic on v1 (4000 req/s offered, seeded open loop):")
    morning = drive(
        service,
        arrival_plan(
            LoadProfile(
                rate_rps=4000, duration_s=1.0, population=POPULATION, seed=7
            ),
            customer_ids=snapshot.imsi,
        ),
    )
    print("  " + morning.render().replace("\n", "\n  ") + "\n")

    print("Swapping in retrained v2 (atomic, score cache invalidated) ...")
    registry.publish("v2", train_forest(snapshot, seed=2))
    registry.activate("v2")
    print(f"  active model: {registry.active_version}\n")

    print("Afternoon traffic on v2:")
    plan = arrival_plan(
        LoadProfile(
            rate_rps=4000, duration_s=1.0, population=POPULATION, seed=8
        ),
        customer_ids=snapshot.imsi,
    )
    # The service clock is monotone: shift the afternoon past the morning.
    plan = ArrivalPlan(
        times_s=plan.times_s + 10.0,
        customer_ids=plan.customer_ids,
        deadline_s=plan.deadline_s,
    )
    afternoon = drive(service, plan)
    print("  " + afternoon.render().replace("\n", "\n  ") + "\n")

    slo = service.slo_snapshot()
    print("SLO snapshot (histogram-derived, conservative):")
    for key, value in slo.items():
        print(f"  {key:<22} {value:.4f}")

    warehouse = TelemetryWarehouse()
    sink = TelemetrySink(
        warehouse, "serve-day0", metrics=observability.get_metrics()
    )
    sink.record_window(0)
    alerts = Watchtower(warehouse, serve_rules()).evaluate("serve-day0", 0)
    print("\nWatchtower serve rules:")
    if alerts:
        for alert in alerts:
            print("  " + alert.render())
    else:
        print("  all clear — p99 within budget, no shedding, no failed swaps")


if __name__ == "__main__":
    main()
