"""Unit tests for the mini-HDFS block store, including fault injection."""

import pytest

from repro.dataplat.blockstore import BlockStore
from repro.errors import StorageError


@pytest.fixture()
def store() -> BlockStore:
    return BlockStore(num_nodes=3, replication=2, block_size=16)


class TestBasics:
    def test_write_read_round_trip(self, store):
        payload = b"hello world" * 10
        store.write("/a/b", payload)
        assert store.read("/a/b") == payload

    def test_empty_payload(self, store):
        store.write("/empty", b"")
        assert store.read("/empty") == b""

    def test_status_reports_blocks(self, store):
        store.write("/f", b"x" * 40)
        status = store.status("/f")
        assert status.length == 40
        assert status.num_blocks == 3  # ceil(40 / 16)
        assert all(len(b.replicas) == 2 for b in status.blocks)

    def test_missing_file(self, store):
        with pytest.raises(StorageError):
            store.read("/nope")

    def test_exists(self, store):
        assert not store.exists("/f")
        store.write("/f", b"x")
        assert store.exists("/f")

    def test_delete_frees_space(self, store):
        store.write("/f", b"x" * 100)
        used = store.physical_bytes
        assert used > 0
        store.delete("/f")
        assert store.physical_bytes < used
        assert not store.exists("/f")

    def test_overwrite(self, store):
        store.write("/f", b"one")
        store.write("/f", b"two")
        assert store.read("/f") == b"two"

    def test_no_overwrite_flag(self, store):
        store.write("/f", b"one")
        with pytest.raises(StorageError):
            store.write("/f", b"two", overwrite=False)

    def test_list_files(self, store):
        store.write("/a/x", b"1")
        store.write("/a/y", b"2")
        store.write("/b/z", b"3")
        assert store.list_files("/a") == ["/a/x", "/a/y"]

    def test_replication_accounting(self, store):
        store.write("/f", b"x" * 32)
        assert store.physical_bytes == 2 * store.total_bytes

    @pytest.mark.parametrize("path", ["relative", "/trailing/", "/dou//ble"])
    def test_invalid_paths(self, store, path):
        with pytest.raises(StorageError):
            store.write(path, b"x")


class TestConstruction:
    def test_replication_capped_at_nodes(self):
        store = BlockStore(num_nodes=2, replication=5)
        store.write("/f", b"x")
        assert len(store.status("/f").blocks[0].replicas) == 2

    def test_zero_nodes_rejected(self):
        with pytest.raises(StorageError):
            BlockStore(num_nodes=0)

    def test_bad_block_size(self):
        with pytest.raises(StorageError):
            BlockStore(block_size=0)


class TestFaultInjection:
    def test_read_survives_single_node_death(self, store):
        payload = b"replicated data" * 5
        store.write("/f", payload)
        store.kill_node(0)
        assert store.read("/f") == payload

    def test_re_replication_restores_factor(self, store):
        store.write("/f", b"x" * 64)
        store.kill_node(0)
        created = store.re_replicate()
        # Every block that lost a replica on node 0 got a new one.
        status = store.status("/f")
        for block in status.blocks:
            live = [n for n in block.replicas if n != 0]
            assert len(live) >= 2
        assert created >= 0

    def test_read_after_kill_and_rereplicate_and_second_kill(self, store):
        payload = b"y" * 48
        store.write("/f", payload)
        store.kill_node(0)
        store.re_replicate()
        store.kill_node(1)
        assert store.read("/f") == payload

    def test_total_loss_raises(self):
        store = BlockStore(num_nodes=2, replication=1, block_size=8)
        store.write("/f", b"z" * 8)
        status = store.status("/f")
        only_replica = status.blocks[0].replicas[0]
        store.kill_node(only_replica)
        with pytest.raises(StorageError):
            store.read("/f")
        with pytest.raises(StorageError):
            store.re_replicate()

    def test_revive_node(self, store):
        store.write("/f", b"q" * 32)
        store.kill_node(0)
        store.revive_node(0)
        assert store.read("/f") == b"q" * 32

    def test_corrupt_replica_falls_back_to_healthy_one(self, store):
        payload = b"checksummed" * 4
        store.write("/f", payload)
        status = store.status("/f")
        store.corrupt_block("/f", 0, status.blocks[0].replicas[0])
        assert store.read("/f") == payload

    def test_corrupt_all_replicas_fails(self, store):
        store.write("/f", b"data!" * 4)
        status = store.status("/f")
        for node_id in status.blocks[0].replicas:
            store.corrupt_block("/f", 0, node_id)
        with pytest.raises(StorageError):
            store.read("/f")

    def test_kill_unknown_node(self, store):
        with pytest.raises(StorageError):
            store.kill_node(99)

    def test_corrupt_bad_block_index(self, store):
        store.write("/f", b"x")
        with pytest.raises(StorageError):
            store.corrupt_block("/f", 5, 0)

    def test_corrupt_replicas_are_counted(self, store):
        payload = b"checksummed" * 4
        store.write("/f", payload)
        assert store.corrupt_replicas_detected == 0
        status = store.status("/f")
        store.corrupt_block("/f", 0, status.blocks[0].replicas[0])
        assert store.read("/f") == payload
        # The bad copy was detected (and counted), not silently skipped.
        assert store.corrupt_replicas_detected == 1
        assert store.health.corrupt_replicas_detected == 1

    def test_re_replicate_reports_every_lost_block(self):
        store = BlockStore(num_nodes=3, replication=1, block_size=4)
        store.write("/a", b"aaaabbbb")  # two blocks, spread over two nodes
        store.write("/b", b"cccc")
        victims = {
            node for p in ("/a", "/b") for b in store.status(p).blocks
            for node in b.replicas
        }
        for node_id in victims:
            store.kill_node(node_id)
        with pytest.raises(StorageError) as err:
            store.re_replicate()
        # One exception naming all three lost blocks, not just the first.
        message = str(err.value)
        assert "3 block(s) lost all replicas" in message
        assert "/a" in message and "/b" in message
