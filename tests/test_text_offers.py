"""Unit tests for the text generators and the offer-acceptance model."""

import numpy as np
import pytest

from repro.datagen.offers import (
    N_OFFERS,
    OFFER_CATALOG,
    AcceptanceModel,
    expert_assignment,
    simulate_campaign,
)
from repro.datagen.text import (
    TopicCorpusGenerator,
    make_complaint_generator,
    make_search_generator,
    tokenize_docs,
)
from repro.errors import SimulationError


class TestTextGenerators:
    def test_doc_lengths_in_range(self, rng):
        gen = make_search_generator()
        docs = gen.sample_docs(np.zeros(20), 1.0, rng)
        lengths = [len(d.split()) for d in docs]
        lo, hi = gen.doc_length
        assert all(lo <= n <= hi for n in lengths)

    def test_vocab_words_only(self, rng):
        gen = make_complaint_generator()
        docs = gen.sample_docs(np.zeros(10), 1.0, rng)
        vocab = set(gen.vocab)
        for doc in docs:
            assert set(doc.split()) <= vocab

    def test_intent_shifts_vocabulary(self, rng):
        gen = make_search_generator()
        calm = gen.sample_docs(np.zeros(150), 3.0, rng)
        intent = gen.sample_docs(np.ones(150), 3.0, rng)
        prefix = f"srch_t{gen.intent_topic}_"
        calm_hits = sum(t.startswith(prefix) for d in calm for t in d.split())
        intent_hits = sum(
            t.startswith(prefix) for d in intent for t in d.split()
        )
        assert intent_hits > 3 * max(calm_hits, 1)

    def test_bad_intent_topic_rejected(self):
        with pytest.raises(SimulationError):
            TopicCorpusGenerator("x", 3, 5, intent_topic=9, doc_length=(2, 4))

    def test_tokenize_round_trip(self):
        docs = ["a b a", "b c"]
        ids, vocab = tokenize_docs(docs)
        assert len(vocab) == 3
        assert ids[0] == [vocab["a"], vocab["b"], vocab["a"]]

    def test_tokenize_empty_doc(self):
        ids, vocab = tokenize_docs(["", "a"])
        assert ids[0] == []
        assert len(vocab) == 1


class TestAcceptanceModel:
    def test_probability_validation(self):
        with pytest.raises(SimulationError):
            AcceptanceModel(match_accept=1.5)

    def test_catalog_shape(self):
        assert len(OFFER_CATALOG) == N_OFFERS + 1


class TestSimulateCampaign:
    def test_matched_offers_accepted_most(self, rng):
        n = 8000
        affinity = np.full(n, 2, dtype=np.int64)
        churner = np.ones(n, dtype=bool)
        matched = simulate_campaign(affinity, churner, np.full(n, 2), rng)
        mismatched = simulate_campaign(affinity, churner, np.full(n, 3), rng)
        control = simulate_campaign(affinity, churner, np.zeros(n, dtype=int), rng)
        assert matched.mean() > 0.7
        assert 0.02 < mismatched.mean() < 0.2
        assert control.mean() < 0.05

    def test_refusers_rarely_accept(self, rng):
        n = 5000
        outcome = simulate_campaign(
            np.zeros(n, dtype=int),
            np.ones(n, dtype=bool),
            np.full(n, 1),
            rng,
        )
        assert outcome.mean() < 0.05

    def test_nonchurners_recharge_regardless(self, rng):
        n = 5000
        model = AcceptanceModel(nonchurner_recharge=0.4)
        outcome = simulate_campaign(
            np.full(n, 1, dtype=int),
            np.zeros(n, dtype=bool),
            np.zeros(n, dtype=int),
            rng,
            model,
        )
        assert outcome.mean() == pytest.approx(0.4, abs=0.05)

    def test_length_mismatch(self, rng):
        with pytest.raises(SimulationError):
            simulate_campaign(
                np.zeros(2, dtype=int),
                np.zeros(3, dtype=bool),
                np.zeros(2, dtype=int),
                rng,
            )

    def test_offer_range_checked(self, rng):
        with pytest.raises(SimulationError):
            simulate_campaign(
                np.zeros(1, dtype=int),
                np.ones(1, dtype=bool),
                np.array([99]),
                rng,
            )


class TestExpertAssignment:
    def test_offers_in_range(self, rng):
        offers = expert_assignment(rng.random(500), rng.random(500), rng)
        assert offers.min() >= 1
        assert offers.max() <= N_OFFERS

    def test_heavy_data_users_skew_to_flux(self, rng):
        voice = np.zeros(4000)
        data = np.arange(4000, dtype=float)
        offers = expert_assignment(voice, data, rng)
        heavy = offers[3500:]
        light = offers[:500]
        assert (heavy == 3).mean() > (light == 3).mean()
