"""Observability layer: spans, tracer, metrics, and platform integration.

Structure assertions go through the ``capture_spans`` fixture; the
integration classes drive real platform components (catalog, dataset,
SQL engine) and assert the spans/counters they are instrumented with.
"""

import numpy as np
import pytest

from repro.dataplat import observability
from repro.dataplat.blockstore import BlockStore
from repro.dataplat.catalog import Catalog
from repro.dataplat.dataset import Dataset
from repro.dataplat.executor import ProcessPoolBackend, SerialBackend
from repro.dataplat.observability import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_SPAN,
    Span,
    Tracer,
    current_span,
    profiled,
    span,
    trace,
)
from repro.dataplat.sql import SQLEngine
from repro.dataplat.table import Table
from repro.errors import DataPlatformError


def _double_dur(table: Table) -> Table:
    """Module-level so ProcessPool workers can pickle it."""
    return table.with_column("dur", table.column("dur") * 2.0)


@pytest.fixture()
def table() -> Table:
    return Table.from_arrays(imsi=np.arange(12), dur=np.linspace(0, 11, 12))


class TestSpanBasics:
    def test_nesting(self, capture_spans):
        with span("outer", month=3):
            with span("inner"):
                pass
            with span("inner"):
                pass
        (outer,) = capture_spans.roots
        assert outer.name == "outer"
        assert outer.tags == {"month": 3}
        assert [c.name for c in outer.children] == ["inner", "inner"]
        assert capture_spans.names() == ["outer", "inner", "inner"]

    def test_timings_populated(self, capture_spans):
        with span("timed"):
            sum(range(1000))
        timed = capture_spans.assert_span("timed")
        assert timed.wall_s >= 0.0
        assert timed.cpu_s >= 0.0

    def test_counters_and_tags(self, capture_spans):
        with span("work") as sp:
            sp.incr("rows", 5)
            sp.incr("rows", 2)
            sp.set_tag("backend", "serial")
        work = capture_spans.assert_span("work", backend="serial")
        assert work.counters == {"rows": 7}

    def test_error_status(self, capture_spans):
        with pytest.raises(ValueError):
            with span("doomed"):
                raise ValueError("boom")
        assert capture_spans.assert_span("doomed").status == "error:ValueError"

    def test_current_span(self, capture_spans):
        assert current_span() is NULL_SPAN
        with span("ctx") as sp:
            assert current_span() is sp
        assert current_span() is NULL_SPAN

    def test_export_roundtrip(self, capture_spans):
        with span("root", k="v") as sp:
            sp.incr("n", 3)
            with span("child"):
                pass
        exported = capture_spans.tracer.export()
        rebuilt = Span.from_dict(exported[0])
        assert rebuilt.name == "root"
        assert rebuilt.tags == {"k": "v"}
        assert rebuilt.counters == {"n": 3}
        assert [c.name for c in rebuilt.children] == ["child"]

    def test_summary_aggregates_by_name(self, capture_spans):
        for _ in range(3):
            with span("stage"):
                pass
        summary = capture_spans.tracer.summary()
        assert summary["stage"]["count"] == 3

    def test_attach_grafts_worker_spans(self, capture_spans):
        worker = Tracer()
        with worker.span("dataset.task", partition=0):
            pass
        with span("dataset.stage"):
            capture_spans.tracer.attach(worker.export())
        stage = capture_spans.assert_span("dataset.stage")
        assert [c.name for c in stage.children] == ["dataset.task"]
        assert stage.children[0].tags == {"partition": 0}


class TestHooks:
    def test_span_is_noop_when_disabled(self):
        assert not observability.enabled()
        ctx = span("ignored")
        assert ctx is observability._NULL_CONTEXT
        with ctx as sp:
            assert sp is NULL_SPAN
            sp.incr("x")
            sp.set_tag("k", "v")
        assert NULL_SPAN.counters == {}
        assert NULL_SPAN.tags == {}

    def test_profiled_decorator(self, capture_spans):
        @profiled(kind="helper")
        def add(a, b):
            return a + b

        assert add(1, 2) == 3
        sp = capture_spans.assert_span(
            f"{self.test_profiled_decorator.__qualname__}.<locals>.add"
        )
        assert sp.tags == {"kind": "helper"}

    def test_profiled_explicit_name(self, capture_spans):
        @profiled("custom.name")
        def fn():
            return 1

        fn()
        capture_spans.assert_span("custom.name")

    def test_profiled_without_tracer(self):
        @profiled("quiet")
        def fn():
            return 41

        assert fn() == 41  # no tracer installed: plain call

    def test_trace_contextmanager_restores(self):
        assert observability.get_tracer() is None
        with trace("run") as tracer:
            assert observability.get_tracer() is tracer
            with span("step"):
                pass
        assert observability.get_tracer() is None
        assert [s["name"] for s in tracer.export()] == ["run"]
        assert tracer.find("step")


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.counter("x").inc(4)
        assert registry.counter("x").value == 5
        with pytest.raises(DataPlatformError):
            registry.counter("x").inc(-1)

    def test_gauge(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7

    def test_histogram_buckets(self):
        h = Histogram("lat", boundaries=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        assert h.counts == [2, 1, 1]  # <=1.0, <=10.0, overflow
        assert h.total == 4
        assert sum(h.counts) == h.total
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean == pytest.approx(106.5 / 4)

    def test_histogram_bad_boundaries(self):
        with pytest.raises(DataPlatformError):
            Histogram("bad", boundaries=())
        with pytest.raises(DataPlatformError):
            Histogram("bad", boundaries=(1.0, 1.0))

    def test_histogram_merge_requires_same_boundaries(self):
        a = Histogram("a", boundaries=(1.0,))
        b = Histogram("b", boundaries=(2.0,))
        with pytest.raises(DataPlatformError):
            a.merge(b)

    def test_registry_reregister_boundary_mismatch(self):
        registry = MetricsRegistry()
        registry.histogram("h", boundaries=(1.0, 2.0))
        registry.histogram("h", boundaries=(1.0, 2.0))  # same: fine
        with pytest.raises(DataPlatformError):
            registry.histogram("h", boundaries=(3.0,))

    def test_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", boundaries=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["total"] == 1
        assert snap["histograms"]["h"]["min"] == 0.5

    def test_default_buckets_usable(self):
        h = Histogram("t", DEFAULT_BUCKETS)
        h.observe(0.02)
        assert sum(h.counts) == 1


class TestCacheCounters:
    def test_catalog_hit_and_miss(self, capture_spans):
        catalog = Catalog(BlockStore())
        catalog.save(
            Table.from_arrays(x=np.arange(8), y=np.arange(8) * 0.5), "tbl"
        )
        catalog.table_cache.clear()
        with span("first_read"):
            catalog.load("tbl")
        with span("second_read"):
            catalog.load("tbl")
        # v2 partitions cache per column chunk: one miss/hit per column.
        assert capture_spans.counter("table_cache.misses") == 2
        assert capture_spans.counter("table_cache.hits") == 2
        assert capture_spans.assert_span("first_read").counters.get(
            "cache_misses"
        ) == 2
        assert capture_spans.assert_span("second_read").counters.get(
            "cache_hits"
        ) == 2
        # The miss went to disk under a blockstore.read span.
        read = capture_spans.assert_span("blockstore.read")
        assert read.counters["bytes"] > 0
        assert capture_spans.counter("blockstore.bytes_read") > 0


class TestDatasetSpans:
    def test_serial_task_spans(self, capture_spans, table):
        ds = Dataset.from_table(table, num_partitions=3).map_partitions(
            _double_dur, table.schema, op="double"
        )
        ds.collect(SerialBackend())
        stage = capture_spans.assert_span("dataset.stage", op="double")
        tasks = capture_spans.find("dataset.task")
        doubles = [t for t in tasks if t.tags.get("op") == "double"]
        assert {t.tags["partition"] for t in doubles} == {0, 1, 2}
        assert all(t.counters.get("rows", 0) > 0 for t in doubles)
        assert stage.tags["tasks"] == 3

    def test_process_pool_tags_propagate(self, capture_spans, table):
        """Worker spans come back tagged even across process boundaries."""
        backend = ProcessPoolBackend(max_workers=2)
        ds = Dataset.from_table(table, num_partitions=3).map_partitions(
            _double_dur, table.schema, op="double"
        )
        out = ds.collect(backend)
        assert out.num_rows == table.num_rows
        capture_spans.assert_span("executor.map", backend=backend.name)
        doubles = [
            t
            for t in capture_spans.find("dataset.task")
            if t.tags.get("op") == "double"
        ]
        assert {t.tags["partition"] for t in doubles} == {0, 1, 2}
        assert sum(t.counters.get("rows", 0) for t in doubles) == table.num_rows

    def test_untraced_run_leaves_no_spans(self, table):
        ds = Dataset.from_table(table, num_partitions=2).map_partitions(
            _double_dur, table.schema, op="double"
        )
        out = ds.collect(SerialBackend())
        assert out.num_rows == table.num_rows
        assert observability.get_tracer() is None


class TestSQLSpans:
    def test_query_span_tree(self, capture_spans):
        engine = SQLEngine()
        engine.register(
            Table.from_arrays(x=np.arange(10), g=np.arange(10) % 3), "t"
        )
        out = engine.query("SELECT g, COUNT(*) AS n FROM t GROUP BY g")
        assert out.num_rows == 3
        query = capture_spans.assert_span("sql.query")
        assert query.counters["rows"] == 3
        child_names = [c.name for c in query.children]
        assert child_names == ["sql.parse", "sql.plan", "sql.bind", "sql.execute"]
        # Operator spans nest under execute, mirroring the plan tree.
        execute = query.children[-1]
        ops = [s.name for s in execute.walk()]
        assert "sql.aggregate" in ops
        assert "sql.scan" in ops
        scan = capture_spans.assert_span("sql.scan")
        assert scan.tags["table"] == "t"
        assert scan.counters["rows"] == 10
