"""End-to-end SQL engine tests (parser → planner → executor)."""

import numpy as np
import pytest

from repro.dataplat.sql import SQLEngine
from repro.dataplat.table import Table
from repro.errors import SQLAnalysisError


@pytest.fixture()
def engine() -> SQLEngine:
    eng = SQLEngine()
    eng.register(
        Table.from_arrays(
            imsi=np.array([1, 2, 3, 4]),
            dur=np.array([10.0, 20.0, 5.0, 7.0]),
            kind=np.array(["a", "b", "a", "c"], dtype=object),
        ),
        "cdr",
    )
    eng.register(
        Table.from_arrays(
            imsi=np.array([1, 2, 3]),
            age=np.array([30, 40, 50]),
            town=np.array([7, 7, 8]),
        ),
        "users",
    )
    return eng


class TestProjection:
    def test_select_star(self, engine):
        out = engine.query("SELECT * FROM cdr")
        assert out.num_rows == 4
        assert out.schema.names == ("imsi", "dur", "kind")

    def test_select_columns(self, engine):
        out = engine.query("SELECT dur, imsi FROM cdr")
        assert out.schema.names == ("dur", "imsi")

    def test_expressions_and_aliases(self, engine):
        out = engine.query("SELECT dur * 2 AS d2, dur + 1 plus FROM cdr")
        assert out["d2"].tolist() == [20.0, 40.0, 10.0, 14.0]
        assert out["plus"].tolist() == [11.0, 21.0, 6.0, 8.0]

    def test_scalar_functions(self, engine):
        out = engine.query("SELECT ABS(0 - dur) AS a, SQRT(dur * dur) AS s FROM cdr")
        assert out["a"].tolist() == out["s"].tolist()

    def test_safe_div(self, engine):
        out = engine.query("SELECT SAFE_DIV(dur, 0) AS z FROM cdr")
        assert out["z"].tolist() == [0.0, 0.0, 0.0, 0.0]

    def test_case_when(self, engine):
        out = engine.query(
            "SELECT CASE WHEN dur > 8 THEN 1 ELSE 0 END AS big FROM cdr ORDER BY imsi"
        )
        assert out["big"].tolist() == [1.0, 1.0, 0.0, 0.0]

    def test_unknown_column_raises(self, engine):
        with pytest.raises(SQLAnalysisError):
            engine.query("SELECT nope FROM cdr")

    def test_unknown_function_raises(self, engine):
        with pytest.raises(SQLAnalysisError):
            engine.query("SELECT FROB(dur) FROM cdr")


class TestFilter:
    def test_comparison(self, engine):
        out = engine.query("SELECT imsi FROM cdr WHERE dur >= 10")
        assert sorted(out["imsi"].tolist()) == [1, 2]

    def test_string_equality(self, engine):
        out = engine.query("SELECT imsi FROM cdr WHERE kind = 'a'")
        assert sorted(out["imsi"].tolist()) == [1, 3]

    def test_and_or_not(self, engine):
        out = engine.query(
            "SELECT imsi FROM cdr WHERE NOT kind = 'a' AND (dur > 10 OR dur < 8)"
        )
        assert sorted(out["imsi"].tolist()) == [2, 4]

    def test_in_list(self, engine):
        out = engine.query("SELECT imsi FROM cdr WHERE imsi IN (1, 4)")
        assert sorted(out["imsi"].tolist()) == [1, 4]

    def test_between(self, engine):
        out = engine.query("SELECT imsi FROM cdr WHERE dur BETWEEN 6 AND 11")
        assert sorted(out["imsi"].tolist()) == [1, 4]


class TestAggregation:
    def test_global_aggregate(self, engine):
        out = engine.query("SELECT SUM(dur) AS s, COUNT(*) AS n FROM cdr")
        assert out["s"].tolist() == [42.0]
        assert out["n"].tolist() == [4]

    def test_group_by(self, engine):
        out = engine.query(
            "SELECT kind, SUM(dur) AS total FROM cdr GROUP BY kind ORDER BY kind"
        )
        assert out["kind"].tolist() == ["a", "b", "c"]
        assert out["total"].tolist() == [15.0, 20.0, 7.0]

    def test_avg_min_max(self, engine):
        out = engine.query(
            "SELECT AVG(dur) AS m, MIN(dur) AS lo, MAX(dur) AS hi FROM cdr"
        )
        assert out["m"].tolist() == [10.5]
        assert out["lo"].tolist() == [5.0]
        assert out["hi"].tolist() == [20.0]

    def test_count_distinct(self, engine):
        out = engine.query("SELECT COUNT(DISTINCT kind) AS k FROM cdr")
        assert out["k"].tolist() == [3]

    def test_stddev_variance(self, engine):
        out = engine.query("SELECT VARIANCE(dur) AS v, STDDEV(dur) AS s FROM cdr")
        expected = np.var([10.0, 20.0, 5.0, 7.0])
        assert out["v"][0] == pytest.approx(expected)
        assert out["s"][0] == pytest.approx(np.sqrt(expected))

    def test_aggregate_arithmetic(self, engine):
        out = engine.query("SELECT SUM(dur) / COUNT(*) AS mean FROM cdr")
        assert out["mean"].tolist() == [10.5]

    def test_having(self, engine):
        out = engine.query(
            "SELECT kind, COUNT(*) AS n FROM cdr GROUP BY kind HAVING COUNT(*) > 1"
        )
        assert out["kind"].tolist() == ["a"]

    def test_aggregate_outside_group_context_raises(self, engine):
        with pytest.raises(SQLAnalysisError):
            engine.query("SELECT imsi FROM cdr WHERE SUM(dur) > 1")

    def test_case_inside_aggregate(self, engine):
        out = engine.query(
            "SELECT SUM(CASE WHEN kind = 'a' THEN dur ELSE 0 END) AS a_dur FROM cdr"
        )
        assert out["a_dur"].tolist() == [15.0]


class TestJoins:
    def test_inner_join(self, engine):
        out = engine.query(
            "SELECT u.imsi, u.age, c.dur FROM users u JOIN cdr c ON u.imsi = c.imsi "
            "ORDER BY u.imsi"
        )
        assert out["imsi"].tolist() == [1, 2, 3]
        assert out["age"].tolist() == [30, 40, 50]

    def test_left_join(self, engine):
        out = engine.query(
            "SELECT c.imsi, u.age FROM cdr c LEFT JOIN users u ON c.imsi = u.imsi "
            "ORDER BY c.imsi"
        )
        assert out["imsi"].tolist() == [1, 2, 3, 4]
        assert out["age"].tolist() == [30, 40, 50, 0]

    def test_join_with_where_and_group(self, engine):
        out = engine.query(
            """
            SELECT u.town, SUM(c.dur) AS total
            FROM users u JOIN cdr c ON u.imsi = c.imsi
            WHERE c.dur > 5
            GROUP BY u.town
            ORDER BY u.town
            """
        )
        assert out["town"].tolist() == [7]
        assert out["total"].tolist() == [30.0]

    def test_join_residual_condition(self, engine):
        out = engine.query(
            "SELECT u.imsi FROM users u JOIN cdr c ON u.imsi = c.imsi AND c.dur > 10"
        )
        assert out["imsi"].tolist() == [2]

    def test_left_join_residual_keeps_unmatched_rows(self, engine):
        """Regression: a residual ON conjunct must not drop the
        null-extended rows a LEFT JOIN exists to keep.

        imsi=4 has no users match and must survive any residual; imsi=3
        matches but fails ``u.age < 45`` and is dropped (engine contract:
        the residual filters matched rows only).
        """
        out = engine.query(
            "SELECT c.imsi, u.age FROM cdr c "
            "LEFT JOIN users u ON c.imsi = u.imsi AND u.age < 45 "
            "ORDER BY c.imsi"
        )
        assert out["imsi"].tolist() == [1, 2, 4]
        assert out["age"].tolist() == [30, 40, 0]

    def test_left_join_residual_over_left_column(self, engine):
        out = engine.query(
            "SELECT c.imsi, u.age FROM cdr c "
            "LEFT JOIN users u ON c.imsi = u.imsi AND c.dur > 8 "
            "ORDER BY c.imsi"
        )
        # imsi 1, 2 match and pass; imsi 3 matches but dur=5 fails the
        # residual; imsi 4 never matched and keeps its padded row.
        assert out["imsi"].tolist() == [1, 2, 4]
        assert out["age"].tolist() == [30, 40, 0]

    def test_join_without_equality_raises(self, engine):
        with pytest.raises(SQLAnalysisError):
            engine.query("SELECT * FROM users u JOIN cdr c ON u.age > c.dur")


class TestOrderLimitDistinct:
    def test_order_by_desc(self, engine):
        out = engine.query("SELECT imsi FROM cdr ORDER BY dur DESC")
        assert out["imsi"].tolist() == [2, 1, 4, 3]

    def test_order_by_alias_of_aggregate(self, engine):
        out = engine.query(
            "SELECT kind, SUM(dur) AS total FROM cdr GROUP BY kind ORDER BY total DESC"
        )
        assert out["kind"].tolist() == ["b", "a", "c"]

    def test_order_by_string_desc(self, engine):
        out = engine.query("SELECT DISTINCT kind FROM cdr ORDER BY kind DESC")
        assert out["kind"].tolist() == ["c", "b", "a"]

    def test_limit(self, engine):
        out = engine.query("SELECT imsi FROM cdr ORDER BY imsi LIMIT 2")
        assert out["imsi"].tolist() == [1, 2]

    def test_distinct(self, engine):
        out = engine.query("SELECT DISTINCT kind FROM cdr")
        assert sorted(out["kind"].tolist()) == ["a", "b", "c"]


class TestEngineUtilities:
    def test_create_table_as(self, engine):
        engine.create_table_as(
            "totals", "SELECT kind, SUM(dur) AS total FROM cdr GROUP BY kind"
        )
        out = engine.query("SELECT * FROM totals ORDER BY kind")
        assert out.num_rows == 3

    def test_explain_mentions_operators(self, engine):
        plan = engine.explain(
            "SELECT u.imsi FROM users u JOIN cdr c ON u.imsi = c.imsi WHERE u.age > 1"
        )
        assert "Join" in plan
        assert "Scan" in plan

    def test_register_replaces_view(self, engine):
        engine.register(Table.from_arrays(imsi=np.array([9])), "cdr")
        out = engine.query("SELECT * FROM cdr")
        assert out["imsi"].tolist() == [9]
