"""Tests for configuration objects and paper constants."""

import pytest

from repro.config import (
    PAPER,
    PAPER_POPULATION,
    PAPER_TOP_U,
    ModelConfig,
    PaperConstants,
    RunConfig,
    ScaleConfig,
)
from repro.errors import ConfigError


class TestPaperConstants:
    def test_section5_values(self):
        assert PAPER.churn_grace_days == 15
        assert PAPER.window_months == 4
        assert PAPER.pagerank_damping == 0.85
        assert PAPER.lda_topics == 10
        assert PAPER.second_order_features == 20
        assert PAPER.rf_trees == 500
        assert PAPER.rf_min_leaf == 100
        assert PAPER.learning_rate == 0.1

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PAPER.churn_grace_days = 30  # type: ignore[misc]

    def test_table1_scale(self):
        assert PAPER_POPULATION == 2_100_000
        assert PAPER_TOP_U[0] == 50_000
        assert PAPER_TOP_U[-1] == 400_000

    def test_churn_rates(self):
        constants = PaperConstants()
        assert constants.prepaid_churn_rate > constants.postpaid_churn_rate


class TestScaleConfig:
    def test_defaults(self):
        scale = ScaleConfig()
        assert scale.months == 9

    def test_scale_factor(self):
        scale = ScaleConfig(population=21_000)
        assert scale.scale_factor == pytest.approx(0.01)

    def test_scaled_u_rounds_and_floors(self):
        scale = ScaleConfig(population=2_100)
        assert scale.scaled_u(50_000) == 50
        assert scale.scaled_u(1) == 1  # floor at 1

    def test_scaled_top_u_matches_paper_list(self):
        scale = ScaleConfig(population=21_000)
        assert scale.scaled_top_u() == tuple(
            u // 100 for u in PAPER_TOP_U
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            ScaleConfig(population=10)
        with pytest.raises(ConfigError):
            ScaleConfig(months=0)
        with pytest.raises(ConfigError):
            ScaleConfig().scaled_u(0)


class TestModelConfig:
    def test_paper_settings(self):
        cfg = ModelConfig.paper_settings()
        assert cfg.n_trees == 500
        assert cfg.min_samples_leaf == 100

    def test_validation(self):
        with pytest.raises(ConfigError):
            ModelConfig(n_trees=0)
        with pytest.raises(ConfigError):
            ModelConfig(min_samples_leaf=0)
        with pytest.raises(ConfigError):
            ModelConfig(learning_rate=0.0)
        with pytest.raises(ConfigError):
            ModelConfig(learning_rate=1.5)


class TestRunConfig:
    def test_presets_are_consistent(self):
        small = RunConfig.small()
        bench = RunConfig.bench()
        assert small.scale.population < bench.scale.population
        assert small.model.n_trees <= bench.model.n_trees

    def test_seed_propagates(self):
        assert RunConfig.small(seed=42).scale.seed == 42
