"""Tests for the telemetry warehouse and per-run sink."""

import json

import numpy as np
import pytest

from repro.core.monitoring import ModelMonitor
from repro.dataplat import observability
from repro.dataplat.catalog import Catalog
from repro.dataplat.resilience import PipelineHealthReport
from repro.dataplat.sql import SQLEngine
from repro.dataplat.telemetry import (
    TELEMETRY_DATABASE,
    TELEMETRY_SCHEMAS,
    TelemetrySink,
    TelemetryWarehouse,
    current_git_sha,
)
from repro.errors import DataPlatformError


def _span_tree():
    tracer = observability.Tracer()
    with tracer.span("pipeline.window", test_month=5):
        with tracer.span("features.build"):
            pass
        with tracer.span("predictor.fit"):
            pass
    return tracer.roots


def _report(rng, shift=0.0):
    monitor = ModelMonitor(
        ["a", "b"],
        rng.normal(size=(400, 2)),
        reference_churn_rate=0.05,
        reference_label="m4",
    )
    return monitor.compare(
        rng.normal(shift, 1, size=(400, 2)),
        current_churn_rate=0.06,
        current_label="m5",
    )


class TestWarehouse:
    def test_schemas_are_stable(self):
        assert set(TELEMETRY_SCHEMAS) == {
            "spans", "metrics", "drift", "health", "alerts", "query_profiles"
        }
        for schema in TELEMETRY_SCHEMAS.values():
            assert schema.names[:3] == ("run_id", "window", "git_sha")

    def test_spans_flattened_with_parent_links(self):
        wh = TelemetryWarehouse(git_sha="sha")
        n = wh.record_spans("r1", 5, _span_tree())
        assert n == 3
        table = wh.query(
            "SELECT span_id, parent_id, depth, name FROM __telemetry.spans "
            "ORDER BY span_id"
        )
        rows = list(table.rows())
        assert rows[0][1] == -1 and rows[0][3] == "pipeline.window"
        # Children link back to the root's pre-order id.
        assert all(r[1] == 0 and r[2] == 1 for r in rows[1:])

    def test_metrics_rows_and_histogram_buckets(self):
        wh = TelemetryWarehouse(git_sha="sha")
        registry = observability.MetricsRegistry()
        registry.counter("jobs").inc(3)
        registry.gauge("auc").set(0.9)
        registry.histogram("lat", boundaries=(1.0, 2.0)).observe(1.5)
        wh.record_metrics("r1", 5, registry.snapshot())
        kinds = {
            row[0]
            for row in wh.query("SELECT kind FROM metrics").rows()
        }
        assert kinds == {"counter", "gauge", "hist_bucket", "hist_count", "hist_sum"}
        buckets = list(
            wh.query(
                "SELECT bucket, value FROM metrics WHERE kind = 'hist_bucket' "
                "ORDER BY bucket"
            ).rows()
        )
        assert [b for b, _ in buckets] == ["+inf", "1.0", "2.0"]
        assert [v for _, v in buckets] == [0.0, 0.0, 1.0]

    def test_drift_rows_and_churn_rate_gauges(self, rng):
        wh = TelemetryWarehouse(git_sha="sha")
        wh.record_drift("r1", 5, _report(rng, shift=2.0))
        rows = list(
            wh.query("SELECT name, level FROM drift ORDER BY name").rows()
        )
        assert [r[0] for r in rows] == ["a", "b"]
        assert all(level == "ALERT" for _, level in rows)
        gauges = dict(
            wh.query("SELECT name, value FROM metrics WHERE kind = 'gauge'").rows()
        )
        assert gauges["monitor.churn_rate_reference"] == pytest.approx(0.05)
        assert gauges["monitor.churn_rate_current"] == pytest.approx(0.06)

    def test_health_row(self):
        wh = TelemetryWarehouse(git_sha="sha")
        health = PipelineHealthReport(families_used=["F1", "F3"])
        health.drop_family("F5", "unreadable")
        health.quarantined_rows = 7
        wh.record_health("r1", 5, health)
        row = next(
            wh.query(
                "SELECT status, degraded, families_dropped, quarantined_rows "
                "FROM health"
            ).rows()
        )
        assert row[0] == "degraded(F5)"
        assert bool(row[1]) is True
        assert row[2] == "F5"
        assert row[3] == 7

    def test_same_window_appends_not_overwrites(self):
        wh = TelemetryWarehouse(git_sha="sha")
        wh.record_metrics("r1", 5, {"gauges": {"a": 1.0}})
        wh.record_metrics("r1", 5, {"gauges": {"b": 2.0}})
        names = {
            row[0] for row in wh.query("SELECT name FROM metrics").rows()
        }
        assert names == {"a", "b"}

    def test_rows_keyed_by_run_window_sha(self):
        wh = TelemetryWarehouse(git_sha="abc")
        wh.record_metrics("r1", 5, {"counters": {"x": 1.0}})
        row = next(
            wh.query("SELECT run_id, window, git_sha FROM metrics").rows()
        )
        assert tuple(row) == ("r1", 5, "abc")

    def test_shared_catalog_keeps_telemetry_separate(self):
        catalog = Catalog()
        wh = TelemetryWarehouse(catalog=catalog, git_sha="sha")
        wh.record_metrics("r1", 5, {"gauges": {"a": 1.0}})
        assert "metrics" not in catalog.tables("default")
        assert "metrics" in catalog.tables(TELEMETRY_DATABASE)
        # Another engine over the same catalog reaches telemetry by
        # qualified name.
        other = SQLEngine(catalog)
        assert other.query("SELECT * FROM __telemetry.metrics").num_rows == 1

    def test_run_id_validation(self):
        wh = TelemetryWarehouse(git_sha="sha")
        for bad in ("a/b", "a=b"):
            with pytest.raises(DataPlatformError):
                wh.record_metrics(bad, 1, {"gauges": {"a": 1.0}})
            # The sink fails fast at construction, not on first write.
            with pytest.raises(DataPlatformError):
                TelemetrySink(wh, bad)

    def test_runs_and_windows(self):
        wh = TelemetryWarehouse(git_sha="sha")
        wh.record_metrics("r2", 6, {"gauges": {"a": 1.0}})
        wh.record_metrics("r1", 5, {"gauges": {"a": 1.0}})
        wh.record_metrics("r1", 7, {"gauges": {"a": 1.0}})
        assert wh.runs() == ["r1", "r2"]
        assert wh.windows("r1") == [5, 7]

    def test_compact_drops_oldest_runs(self):
        wh = TelemetryWarehouse(git_sha="sha")
        for run in ("r1", "r2", "r3"):
            wh.record_metrics(run, 1, {"gauges": {"a": 1.0}})
        assert wh.compact(keep_runs=2) == ["r1"]
        assert wh.runs() == ["r2", "r3"]
        runs_left = {
            row[0] for row in wh.query("SELECT run_id FROM metrics").rows()
        }
        assert runs_left == {"r2", "r3"}

    def test_retention_applies_on_write(self):
        wh = TelemetryWarehouse(git_sha="sha", retention_runs=2)
        for run in ("r1", "r2", "r3"):
            wh.record_metrics(run, 1, {"gauges": {"a": 1.0}})
        assert wh.runs() == ["r2", "r3"]

    def test_compact_last_partition_drops_table(self):
        wh = TelemetryWarehouse(git_sha="sha")
        wh.record_metrics("r1", 1, {"gauges": {"a": 1.0}})
        wh.compact(keep_runs=1)  # r1 is the newest: nothing dropped
        assert wh.tables() == ["metrics"]
        wh.record_metrics("r2", 1, {"gauges": {"a": 1.0}})
        wh.compact(keep_runs=1)
        assert wh.runs() == ["r2"]

    def test_dump_and_load_roundtrip(self, rng, tmp_path):
        wh = TelemetryWarehouse(git_sha="sha")
        wh.record_spans("r1", 5, _span_tree())
        wh.record_drift("r1", 5, _report(rng))
        wh.record_health("r1", 5, PipelineHealthReport(families_used=["F1"]))
        path = tmp_path / "telemetry.json"
        total = wh.dump(path)
        assert total > 0
        reloaded = TelemetryWarehouse.load_dump(path)
        assert reloaded.runs() == ["r1"]
        assert sorted(reloaded.tables()) == sorted(wh.tables())
        for name in wh.tables():
            original = list(
                wh.query(f"SELECT * FROM {name}").rows()
            )
            copied = list(reloaded.query(f"SELECT * FROM {name}").rows())
            assert len(original) == len(copied)

    def test_load_dump_rejects_schema_mismatch(self, tmp_path):
        payload = {
            "version": 1,
            "tables": {"metrics": {"columns": ["bogus"], "rows": []}},
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(DataPlatformError):
            TelemetryWarehouse.load_dump(path)

    def test_git_sha_stamped(self):
        sha = current_git_sha()
        assert isinstance(sha, str) and sha
        wh = TelemetryWarehouse()
        assert wh.git_sha == sha


class TestDropPartition:
    def test_drop_partition_removes_rows_and_file(self):
        from repro.dataplat.table import Table

        catalog = Catalog()
        t = Table.from_arrays(x=np.arange(3))
        catalog.save(t, "t", partition="p=1")
        catalog.save(t, "t", partition="p=2")
        catalog.drop_partition("t", "p=1")
        assert catalog.partitions("t") == ["p=2"]
        assert catalog.load("t").num_rows == 3

    def test_dropping_last_partition_removes_table(self):
        from repro.dataplat.table import Table

        catalog = Catalog()
        catalog.save(Table.from_arrays(x=np.arange(3)), "t", partition="p=1")
        catalog.drop_partition("t", "p=1")
        assert "t" not in catalog.tables("default")


class TestSink:
    def test_metric_deltas_are_exact_per_window(self):
        wh = TelemetryWarehouse(git_sha="sha")
        registry = observability.MetricsRegistry()
        sink = TelemetrySink(wh, "r1", metrics=registry)
        registry.counter("jobs").inc(2)
        registry.histogram("lat", boundaries=(1.0,)).observe(0.5)
        sink.record_window(5)
        registry.counter("jobs").inc(3)
        registry.histogram("lat", boundaries=(1.0,)).observe(0.7)
        registry.histogram("lat", boundaries=(1.0,)).observe(2.0)
        sink.record_window(6)
        counters = dict(
            wh.query(
                "SELECT window, value FROM metrics "
                "WHERE kind = 'counter' AND name = 'jobs'"
            ).rows()
        )
        assert counters == {5: 2.0, 6: 3.0}
        totals = dict(
            wh.query(
                "SELECT window, value FROM metrics "
                "WHERE kind = 'hist_count' AND name = 'lat'"
            ).rows()
        )
        assert totals == {5: 1.0, 6: 2.0}

    def test_sink_suspends_tracer(self):
        wh = TelemetryWarehouse(git_sha="sha")
        sink = TelemetrySink(wh, "r1", metrics=observability.MetricsRegistry())
        tracer = observability.Tracer()
        previous = observability.set_tracer(tracer)
        try:
            sink.record_window(5, spans=_span_tree())
        finally:
            observability.set_tracer(previous)
        # Recording produced no spans of its own.
        assert tracer.roots == []

    def test_acceptance_two_windows_queryable(self, rng):
        """ISSUE acceptance: two windows, SELECT returns rows for both."""
        wh = TelemetryWarehouse(git_sha="sha")
        registry = observability.MetricsRegistry()
        sink = TelemetrySink(wh, "run-0001", metrics=registry)
        for window, shift in ((5, 0.0), (6, 2.0)):
            registry.counter("pipeline.windows").inc()
            sink.record_window(window, monitoring=_report(rng, shift=shift))
        metric_windows = sorted(
            row[0]
            for row in wh.query(
                "SELECT window FROM __telemetry.metrics "
                "WHERE run_id = 'run-0001' GROUP BY window"
            ).rows()
        )
        drift_windows = sorted(
            row[0]
            for row in wh.query(
                "SELECT window FROM __telemetry.drift "
                "WHERE run_id = 'run-0001' GROUP BY window"
            ).rows()
        )
        assert metric_windows == [5, 6]
        assert drift_windows == [5, 6]
