"""Tests for the watchtower monitoring loop and the drift scenario."""

import numpy as np
import pytest

from repro.core import ChurnPipeline, ModelMonitor
from repro.core.watchtower import Alert, AlertRule, Watchtower
from repro.datagen.scenarios import DriftScenario, inject_drift
from repro.dataplat.telemetry import TelemetrySink, TelemetryWarehouse
from repro.errors import ExperimentError, SimulationError
from repro.features import WideTableBuilder

GAUGE_SQL = (
    "SELECT window, MAX(value) AS value FROM __telemetry.metrics "
    "WHERE run_id = '{run_id}' AND kind = 'gauge' AND name = 'auc' "
    "GROUP BY window"
)


def _warehouse_with_series(values: dict[int, float]) -> TelemetryWarehouse:
    wh = TelemetryWarehouse(git_sha="sha")
    for window, value in values.items():
        wh.record_metrics("r1", window, {"gauges": {"auc": value}})
    return wh


class TestAlertRule:
    def test_defaults(self):
        rule = AlertRule(name="r", sql=GAUGE_SQL, threshold=0.5)
        assert rule.kind == "threshold"
        assert rule.severity == "warn"
        assert rule.holds(0.6) and not rule.holds(0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "nope"},
            {"comparison": "=="},
            {"severity": "loud"},
            {"kind": "consecutive", "consecutive": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ExperimentError):
            AlertRule(name="r", sql=GAUGE_SQL, threshold=0.5, **kwargs)

    def test_comparisons(self):
        lt = AlertRule(name="r", sql=GAUGE_SQL, threshold=1.0, comparison="<")
        assert lt.holds(0.5) and not lt.holds(1.5)
        ge = AlertRule(name="r", sql=GAUGE_SQL, threshold=1.0, comparison=">=")
        assert ge.holds(1.0) and not ge.holds(0.9)


class TestWatchtowerEvaluation:
    def test_threshold_fires_on_current_window_only(self):
        wh = _warehouse_with_series({5: 0.2, 6: 0.9})
        rule = AlertRule(name="high", sql=GAUGE_SQL, threshold=0.5)
        tower = Watchtower(wh, [rule])
        assert tower.evaluate("r1", 5) == []
        fired = tower.evaluate("r1", 6)
        assert [a.rule for a in fired] == ["high"]
        assert fired[0].value == pytest.approx(0.9)

    def test_threshold_ignores_future_windows(self):
        """Replaying window 5 after window 6 landed must not see window 6."""
        wh = _warehouse_with_series({5: 0.2, 6: 0.9})
        rule = AlertRule(name="high", sql=GAUGE_SQL, threshold=0.5)
        assert Watchtower(wh, [rule]).evaluate("r1", 5) == []

    def test_no_row_for_window_does_not_fire(self):
        wh = _warehouse_with_series({5: 0.9})
        rule = AlertRule(name="high", sql=GAUGE_SQL, threshold=0.5)
        assert Watchtower(wh, [rule]).evaluate("r1", 7) == []

    def test_delta_needs_two_windows(self):
        wh = _warehouse_with_series({5: 0.9, 6: 0.6})
        rule = AlertRule(
            name="drop",
            sql=GAUGE_SQL,
            threshold=-0.2,
            comparison="<",
            kind="delta",
        )
        tower = Watchtower(wh, [rule])
        assert tower.evaluate("r1", 5) == []
        fired = tower.evaluate("r1", 6)
        assert len(fired) == 1
        assert fired[0].value == pytest.approx(-0.3)

    def test_consecutive_requires_full_streak(self):
        wh = _warehouse_with_series({5: 0.8, 6: 0.4, 7: 0.9, 8: 0.95})
        rule = AlertRule(
            name="sustained",
            sql=GAUGE_SQL,
            threshold=0.5,
            kind="consecutive",
            consecutive=2,
        )
        tower = Watchtower(wh, [rule])
        assert tower.evaluate("r1", 5) == []  # only one point so far
        assert tower.evaluate("r1", 6) == []  # 0.4 breaks the streak
        assert tower.evaluate("r1", 7) == []  # streak length 1
        assert [a.rule for a in tower.evaluate("r1", 8)] == ["sustained"]

    def test_alerts_fire_in_rule_order(self):
        wh = _warehouse_with_series({5: 0.9})
        rules = [
            AlertRule(name="b", sql=GAUGE_SQL, threshold=0.5),
            AlertRule(name="a", sql=GAUGE_SQL, threshold=0.5, severity="page"),
        ]
        fired = Watchtower(wh, rules).evaluate("r1", 5)
        assert [a.rule for a in fired] == ["b", "a"]

    def test_duplicate_rule_names_rejected(self):
        wh = TelemetryWarehouse(git_sha="sha")
        rule = AlertRule(name="r", sql=GAUGE_SQL, threshold=0.5)
        with pytest.raises(ExperimentError):
            Watchtower(wh, [rule, rule])

    def test_query_must_return_required_columns(self):
        wh = _warehouse_with_series({5: 0.9})
        rule = AlertRule(
            name="bad",
            sql=(
                "SELECT window, MAX(value) AS wrong FROM __telemetry.metrics "
                "WHERE run_id = '{run_id}' GROUP BY window"
            ),
            threshold=0.5,
        )
        with pytest.raises(ExperimentError):
            Watchtower(wh, [rule]).evaluate("r1", 5)

    def test_observe_records_drift_and_alerts(self, rng):
        from repro.dataplat.resilience import PipelineHealthReport

        wh = TelemetryWarehouse(git_sha="sha")
        sink = TelemetrySink(wh, "r1")
        monitor = ModelMonitor(["a"], rng.normal(size=(300, 1)))
        report = monitor.compare(rng.normal(3.0, 1, size=(300, 1)))
        rule = AlertRule(
            name="psi",
            sql=(
                "SELECT window, MAX(psi) AS value FROM __telemetry.drift "
                "WHERE run_id = '{run_id}' GROUP BY window"
            ),
            threshold=0.25,
            severity="page",
        )
        health = PipelineHealthReport(families_used=["F1"])
        fired = Watchtower(wh, [rule]).observe(
            sink, 5, monitoring=report, health=health
        )
        assert [a.severity for a in fired] == ["page"]
        assert health.alerts == fired
        assert health.paged
        stored = list(
            wh.query("SELECT rule, severity FROM __telemetry.alerts").rows()
        )
        assert stored == [("psi", "page")]

    def test_alert_render(self):
        alert = Alert(
            rule="r", severity="page", kind="threshold",
            window=5, value=1.0, threshold=0.5, message="m",
        )
        assert "[PAGE]" in alert.render() and "window 5" in alert.render()


class TestDriftScenario:
    def test_validation(self):
        with pytest.raises(SimulationError):
            DriftScenario(arpu_decay_rate=1.0)
        with pytest.raises(SimulationError):
            DriftScenario(ps_shift=-0.1)
        with pytest.raises(SimulationError):
            DriftScenario(arpu_decay_start=0)

    def test_decay_compounds_and_shift_is_sudden(self, tiny_world):
        scenario = DriftScenario(
            arpu_decay_start=6, arpu_decay_rate=0.2,
            ps_shift_month=8, ps_shift=1.0,
        )
        drifted = inject_drift(tiny_world, scenario)
        for month, factor in ((6, 0.8), (7, 0.64)):
            before = tiny_world.month(month).tables["billing"]["total_charge"]
            after = drifted.month(month).tables["billing"]["total_charge"]
            np.testing.assert_allclose(after, before * factor)
        before = tiny_world.month(8).tables["ps_kpi"]
        after = drifted.month(8).tables["ps_kpi"]
        np.testing.assert_allclose(
            after["page_response_delay"], before["page_response_delay"] * 2.0
        )
        np.testing.assert_allclose(
            after["page_download_throughput"],
            before["page_download_throughput"] / 2.0,
        )

    def test_pre_onset_months_shared_and_original_untouched(self, tiny_world):
        scenario = DriftScenario(arpu_decay_start=6, arpu_decay_rate=0.2)
        baseline = tiny_world.month(6).tables["billing"]["total_charge"].copy()
        drifted = inject_drift(tiny_world, scenario)
        assert (
            drifted.month(5).tables["billing"]
            is tiny_world.month(5).tables["billing"]
        )
        np.testing.assert_array_equal(
            tiny_world.month(6).tables["billing"]["total_charge"], baseline
        )
        np.testing.assert_array_equal(
            drifted.month(6).churn_next, tiny_world.month(6).churn_next
        )

    def test_deterministic(self, tiny_world):
        scenario = DriftScenario(arpu_decay_start=6, ps_shift_month=7)
        a = inject_drift(tiny_world, scenario)
        b = inject_drift(tiny_world, scenario)
        np.testing.assert_array_equal(
            a.month(7).tables["ps_kpi"]["tcp_rtt"],
            b.month(7).tables["ps_kpi"]["tcp_rtt"],
        )


#: The declared rules of the end-to-end scenario (mirrors
#: ``examples/watchtower_drift.py``).
SCENARIO_RULES = (
    AlertRule(
        name="billing-drift-sustained",
        sql=(
            "SELECT window, MAX(psi) AS value FROM __telemetry.drift "
            "WHERE run_id = '{run_id}' AND name = 'total_charge' "
            "GROUP BY window"
        ),
        threshold=0.1,
        kind="consecutive",
        consecutive=2,
        severity="warn",
    ),
    AlertRule(
        name="ps-kpi-shifted",
        sql=(
            "SELECT window, MAX(psi) AS value FROM __telemetry.drift "
            "WHERE run_id = '{run_id}' AND name = 'page_response_delay' "
            "GROUP BY window"
        ),
        threshold=0.25,
        severity="page",
    ),
)


def _run_scenario(world, scale, backend) -> list[tuple]:
    """Drive the full loop on one backend; returns the stored alert rows."""
    from repro.dataplat import observability

    scenario = DriftScenario(
        arpu_decay_start=6, arpu_decay_rate=0.25,
        ps_shift_month=8, ps_shift=1.5,
    )
    drifted = inject_drift(world, scenario)
    wh = TelemetryWarehouse(git_sha="sha")
    sink = TelemetrySink(wh, "scenario-0001")
    tower = Watchtower(wh, SCENARIO_RULES)
    builder = WideTableBuilder(drifted)

    def features(month):
        parts = [builder.category(f, month) for f in ("F1", "F3")]
        names = [n for p in parts for n in p.names]
        return names, np.hstack([p.values for p in parts])

    names, reference = features(5)
    monitor = ModelMonitor(names, reference, reference_label="month 5")

    previous = observability.set_metrics(None)
    try:
        pipeline = ChurnPipeline(
            drifted, scale, seed=0, backend=backend, telemetry=sink
        )
        for spec in pipeline.windows.windows(test_months=[6, 7, 8]):
            result = pipeline.run_window(spec)
            month = spec.test_month
            _, current = features(month)
            report = monitor.compare(
                current, current_label=f"month {month}",
                pipeline_health=result.health,
            )
            tower.observe(sink, month, monitoring=report, health=result.health)
    finally:
        observability.set_metrics(previous)
    return list(
        wh.query(
            "SELECT window, rule, severity FROM __telemetry.alerts "
            "ORDER BY window, rule"
        ).rows()
    )


class TestDriftScenarioEndToEnd:
    """ISSUE acceptance: exactly the declared alerts, on both backends."""

    def test_exact_alerts_and_backend_parity(self, tiny_world, tiny_scale):
        serial = _run_scenario(tiny_world, tiny_scale, backend="serial")
        # The gradual decay must persist 2 windows before the warn fires;
        # the sudden PS shift pages in its first window; nothing else.
        assert serial == [
            (7, "billing-drift-sustained", "warn"),
            (8, "billing-drift-sustained", "warn"),
            (8, "ps-kpi-shifted", "page"),
        ]
        parallel = _run_scenario(tiny_world, tiny_scale, backend="process")
        assert parallel == serial
