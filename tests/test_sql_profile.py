"""EXPLAIN ANALYZE, query profiles, and the cardinality feedback loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.watchtower import Watchtower, query_profile_rules
from repro.dataplat.catalog import Catalog
from repro.dataplat.sql import (
    CardinalityFeedback,
    QueryProfile,
    SQLEngine,
    fingerprint,
)
from repro.dataplat.sql.ast_nodes import ExplainStatement
from repro.dataplat.sql.feedback import (
    CORRECTION_CLAMP,
    expr_shape,
    node_signature,
)
from repro.dataplat.sql.parser import parse
from repro.dataplat.sql.plan import Filter, Join, Project, Scan, Sort
from repro.dataplat.sql.profile import OperatorProfile, normalize_sql
from repro.dataplat.table import Table
from repro.dataplat.telemetry import TelemetrySink, TelemetryWarehouse


def make_tables(n: int = 400) -> dict[str, Table]:
    rng = np.random.default_rng(17)
    # Power-law values: the uniform-selectivity estimate for ``v < 5`` is
    # badly wrong, which is exactly what the feedback loop should fix.
    v = np.floor(100 * rng.random(n) ** 3).astype(np.int64)
    t = Table.from_arrays(
        id=np.arange(n, dtype=np.int64),
        v=v,
        grp=(np.arange(n) % 7).astype(np.int64),
    )
    u = Table.from_arrays(
        grp=np.arange(7, dtype=np.int64),
        name=np.array([f"g{i}" for i in range(7)], dtype=object),
    )
    return {"t": t, "u": u}


def make_engine(**kwargs) -> SQLEngine:
    engine = SQLEngine(**kwargs)
    for name, table in make_tables().items():
        engine.register(table, name)
    return engine


QUERY = (
    "SELECT u.name, COUNT(*) AS n FROM t JOIN u ON t.grp = u.grp "
    "WHERE t.v < 5 GROUP BY u.name"
)


class TestParser:
    def test_explain_analyze_flag(self):
        stmt = parse("EXPLAIN ANALYZE SELECT * FROM t")
        assert isinstance(stmt, ExplainStatement)
        assert stmt.analyze is True

    def test_plain_explain_has_no_analyze(self):
        stmt = parse("EXPLAIN SELECT * FROM t")
        assert isinstance(stmt, ExplainStatement)
        assert stmt.analyze is False

    def test_analyze_requires_explain(self):
        from repro.errors import SQLError

        with pytest.raises(SQLError):
            parse("ANALYZE SELECT * FROM t")

    def test_fingerprint_ignores_explain_prefix_and_whitespace(self):
        base = fingerprint(QUERY)
        assert fingerprint(f"EXPLAIN ANALYZE {QUERY}") == base
        assert fingerprint(f"explain   analyze\n {QUERY} ;") == base
        assert normalize_sql(f"EXPLAIN  {QUERY};") == QUERY
        assert fingerprint("SELECT 1 FROM t") != base


class TestExplainAnalyze:
    def test_every_operator_line_is_annotated(self):
        engine = make_engine()
        out = engine.query(f"EXPLAIN ANALYZE {QUERY}")
        lines = [str(v) for v in out["plan"]]
        plain = [str(v) for v in engine.query(f"EXPLAIN {QUERY}")["plan"]]
        assert len(lines) == len(plain)
        for line in lines:
            assert "actual_rows=" in line and "est_rows=" in line
            assert "wall_ms=" in line and "bytes_decoded=" in line

    def test_actual_rows_match_execution(self):
        engine = make_engine()
        expected = engine.query(QUERY)
        out = engine.query(f"EXPLAIN ANALYZE {QUERY}")
        root_line = str(out["plan"][0])
        assert f"actual_rows={expected.num_rows}" in root_line

    def test_plain_explain_unchanged(self):
        engine = make_engine()
        out = engine.query(f"EXPLAIN {QUERY}")
        assert not any("actual_rows" in str(v) for v in out["plan"])

    def test_analyze_shares_fingerprint_with_plain_run(self):
        engine = make_engine(profiling=True)
        engine.query(QUERY)
        plain_fp = engine.last_profile.fingerprint
        engine.query(f"EXPLAIN ANALYZE {QUERY}")
        assert engine.last_profile.fingerprint == plain_fp


class TestProfileCollection:
    def test_profiling_is_semantically_invisible(self):
        plain = make_engine()
        profiled = make_engine(profiling=True)
        for sql in (QUERY, "SELECT v FROM t WHERE v > 50 ORDER BY v"):
            a = sorted(map(tuple, plain.query(sql).rows()))
            b = sorted(map(tuple, profiled.query(sql).rows()))
            assert a == b

    def test_profile_structure_preorder(self):
        engine = make_engine(profiling=True)
        out = engine.query(QUERY)
        profile = engine.last_profile
        assert profile is not None
        ops = profile.operators
        assert [op.op_id for op in ops] == list(range(len(ops)))
        assert ops[0].parent_id == -1 and ops[0].depth == 0
        by_id = {op.op_id: op for op in ops}
        for op in ops[1:]:
            parent = by_id[op.parent_id]
            assert op.depth == parent.depth + 1
            assert op.op_id > parent.op_id  # pre-order: parent first
        assert ops[0].actual_rows == out.num_rows
        assert profile.wall_s == ops[0].wall_s >= 0.0

    def test_estimates_recorded_per_operator(self):
        engine = make_engine(profiling=True, cost_based=True)
        engine.query(QUERY)
        ops = engine.last_profile.operators
        keyed = [op for op in ops if op.rel]
        assert keyed, "no keyed operators recorded"
        for op in keyed:
            assert op.est_rows >= 0 and op.est_rows_raw >= 0
            assert op.q_error >= 1.0
        # Pass-through operators report no q-error (they would only
        # duplicate their child's).
        for op in ops:
            if not op.rel:
                assert op.q_error == 0.0

    def test_storage_counters_attributed_to_scans(self):
        catalog = Catalog(cache_bytes=0)  # every read decodes
        tables = make_tables()
        for name, table in tables.items():
            catalog.save(table, name)
        engine = SQLEngine(catalog, profiling=True)
        engine.query(QUERY)
        ops = engine.last_profile.operators
        scans = [op for op in ops if op.operator == "Scan"]
        others = [op for op in ops if op.operator != "Scan"]
        assert scans
        assert sum(op.bytes_decoded + op.cache_hits for op in scans) > 0
        # Exclusive attribution: non-scan operators touch no storage.
        assert all(
            op.bytes_decoded == 0 and op.cache_misses == 0 for op in others
        )

    def test_profile_sink_called_per_query(self):
        seen = []
        engine = make_engine(profile_sink=seen.append)
        engine.query(QUERY)
        engine.query("SELECT COUNT(*) AS n FROM u")
        assert len(seen) == 2
        assert all(isinstance(p, QueryProfile) for p in seen)
        assert seen[0].fingerprint == fingerprint(QUERY)

    def test_env_flag_enables_profiling(self, monkeypatch):
        monkeypatch.setenv("REPRO_SQL_PROFILE", "1")
        engine = make_engine()
        engine.query(QUERY)
        assert engine.last_profile is not None
        monkeypatch.delenv("REPRO_SQL_PROFILE")
        bare = make_engine(feedback=False)
        bare.query(QUERY)
        assert bare.last_profile is None

    def test_profiling_off_records_nothing(self):
        engine = make_engine(profiling=False, feedback=False)
        engine.query(QUERY)
        assert engine.last_profile is None


class TestFeedbackKeys:
    def test_shapes_abstract_literals(self):
        def shape_of(sql: str) -> str:
            stmt = parse(sql)
            return expr_shape(stmt.where)

        assert shape_of("SELECT a FROM t WHERE k = 'promo'") == shape_of(
            "SELECT a FROM t WHERE k = 'std'"
        )
        assert shape_of("SELECT a FROM t WHERE v < 5") == shape_of(
            "SELECT a FROM t WHERE v < 99"
        )
        assert shape_of("SELECT a FROM t WHERE v < 5") != shape_of(
            "SELECT a FROM t WHERE v > 5"
        )

    def test_and_conjuncts_are_order_insensitive(self):
        a = parse("SELECT a FROM t WHERE x = 1 AND y = 2").where
        b = parse("SELECT a FROM t WHERE y = 9 AND x = 3").where
        assert expr_shape(a) == expr_shape(b)

    def test_shape_drops_table_alias(self):
        a = parse("SELECT a FROM t q WHERE q.v < 5").where
        b = parse("SELECT a FROM t WHERE v < 5").where
        assert expr_shape(a) == expr_shape(b)

    def test_only_estimated_nodes_get_keys(self):
        engine = make_engine()
        plan = engine.plan(QUERY)

        keyed, unkeyed = [], []

        def visit(node):
            (keyed if node_signature(node) else unkeyed).append(node)
            for child in node.children():
                visit(child)

        visit(plan)
        assert all(
            isinstance(n, (Scan, Filter, Join)) or type(n).__name__ == "Aggregate"
            for n in keyed
        )
        assert all(
            isinstance(n, (Project, Sort)) or node_signature(n) is None
            for n in unkeyed
        )

    def test_key_invariant_under_join_order(self):
        heuristic = make_engine(cost_based=False)
        cbo = make_engine(cost_based=True)
        sql = (
            "SELECT COUNT(*) AS n FROM t JOIN u ON t.grp = u.grp "
            "WHERE t.v < 5"
        )

        def top_join_key(plan):
            stack = [plan]
            while stack:
                node = stack.pop()
                if isinstance(node, Join):
                    return node_signature(node)
                stack.extend(node.children())
            return None

        assert top_join_key(heuristic.plan(sql)) == top_join_key(cbo.plan(sql))


class TestFeedbackStore:
    def test_correction_is_geometric_mean_of_ratios(self):
        fb = CardinalityFeedback()
        fb.observe("t", "scan|", 9.0, 99.0)  # ratio 10
        fb.observe("t", "scan|", 9.0, 999.0)  # ratio 100
        assert fb.correction_for("t", "scan|") == pytest.approx(
            (10.0 * 100.0) ** 0.5
        )
        assert fb.correction_for("t", "other") == 1.0
        assert len(fb) == 1

    def test_correction_clamped(self):
        fb = CardinalityFeedback()
        fb.observe("t", "s", 0.0, 10_000_000.0)
        assert fb.correction_for("t", "s") == CORRECTION_CLAMP
        fb2 = CardinalityFeedback()
        fb2.observe("t", "s", 10_000_000.0, 0.0)
        assert fb2.correction_for("t", "s") == 1.0 / CORRECTION_CLAMP

    def test_negative_estimates_ignored(self):
        fb = CardinalityFeedback()
        fb.observe("t", "s", -1.0, 10.0)
        fb.observe("t", "s", 10.0, -1.0)
        assert len(fb) == 0

    def test_ingest_uses_raw_estimates(self):
        op = OperatorProfile(
            op_id=0, parent_id=-1, depth=0, operator="Scan", label="Scan t",
            rel="t", shape="scan|", est_rows=50.0, est_rows_raw=9.0,
            actual_rows=99,
        )
        profile = QueryProfile(fingerprint="f", sql="q", operators=[op])
        fb = CardinalityFeedback()
        assert fb.ingest(profile) == 1
        # Learned against est_rows_raw (9), not the corrected est (50).
        assert fb.correction_for("t", "scan|") == pytest.approx(10.0)

    def test_mean_q_error_strictly_drops_across_runs(self):
        engine = make_engine(cost_based=True, feedback=True)
        engine.query(QUERY)
        first = engine.last_profile.mean_q_error()
        engine.query(QUERY)
        second = engine.last_profile.mean_q_error()
        assert first > 1.0, "world not skewed enough to misestimate"
        assert second < first
        assert second == pytest.approx(1.0, abs=0.5)

    def test_feedback_corrects_bound_estimates(self):
        engine = make_engine(cost_based=True, feedback=True)
        engine.query(QUERY)
        profile = engine.last_profile
        plan = engine.plan(QUERY)

        def collect(node, out):
            out.append(node)
            for child in node.children():
                collect(child, out)

        nodes = []
        collect(plan, nodes)
        actual_by_key = {
            (op.rel, op.shape): op.actual_rows
            for op in profile.operators
            if op.rel
        }
        checked = 0
        for node in nodes:
            key = node_signature(node)
            if key is None or key not in actual_by_key:
                continue
            actual = actual_by_key[key]
            raw_err = abs(node.est_rows_raw - actual)
            corrected_err = abs(node.est_rows - actual)
            assert corrected_err <= raw_err + 1e-9
            checked += 1
        assert checked > 0

    def test_shared_store_across_engines(self):
        fb = CardinalityFeedback()
        learner = make_engine(cost_based=True, feedback=fb)
        learner.query(QUERY)
        assert len(fb) > 0
        reader = make_engine(cost_based=True, feedback=fb)
        reader.query(QUERY)
        assert reader.last_profile.mean_q_error() == pytest.approx(
            1.0, abs=0.5
        )

    def test_env_flag_enables_feedback(self, monkeypatch):
        monkeypatch.setenv("REPRO_CBO_FEEDBACK", "1")
        engine = make_engine()
        assert isinstance(engine.feedback, CardinalityFeedback)
        monkeypatch.delenv("REPRO_CBO_FEEDBACK")
        assert make_engine().feedback is None

    def test_from_warehouse_roundtrip(self):
        wh = TelemetryWarehouse(git_sha="sha")
        engine = make_engine(cost_based=True, feedback=True)
        engine.query(QUERY)
        wh.record_query_profile("r1", 0, engine.last_profile)
        rebuilt = CardinalityFeedback.from_warehouse(wh, run_id="r1")
        assert rebuilt.observations() == engine.feedback.observations()
        for key in rebuilt.observations():
            assert rebuilt.correction_for(*key) == pytest.approx(
                engine.feedback.correction_for(*key)
            )
        assert len(CardinalityFeedback.from_warehouse(wh, run_id="nope")) == 0


class TestWarehousePersistence:
    def _profile(self) -> QueryProfile:
        engine = make_engine(profiling=True)
        engine.query(QUERY)
        return engine.last_profile

    def test_rows_queryable_by_sql(self):
        wh = TelemetryWarehouse(git_sha="sha")
        profile = self._profile()
        n = wh.record_query_profile("r1", 3, profile)
        assert n == len(profile.operators)
        rows = list(
            wh.query(
                "SELECT op_id, operator, actual_rows FROM "
                "__telemetry.query_profiles WHERE run_id = 'r1' "
                "ORDER BY op_id"
            ).rows()
        )
        assert len(rows) == len(profile.operators)
        assert [r[0] for r in rows] == [op.op_id for op in profile.operators]
        assert [r[2] for r in rows] == [
            op.actual_rows for op in profile.operators
        ]

    def test_repeated_statement_keeps_profiles_separate(self):
        wh = TelemetryWarehouse(git_sha="sha")
        profile = self._profile()
        wh.record_query_profile("r1", 1, profile)
        wh.record_query_profile("r1", 1, profile)
        ids = sorted(
            {
                row[0]
                for row in wh.query(
                    "SELECT profile_id FROM query_profiles"
                ).rows()
            }
        )
        assert ids == [0, 1]
        per_profile = dict(
            wh.query(
                "SELECT profile_id, COUNT(*) AS n FROM query_profiles "
                "GROUP BY profile_id"
            ).rows()
        )
        assert per_profile == {0: len(profile.operators), 1: len(profile.operators)}

    def test_profile_seq_continues_after_load_dump(self, tmp_path):
        wh = TelemetryWarehouse(git_sha="sha")
        wh.record_query_profile("r1", 1, self._profile())
        path = tmp_path / "telemetry.json"
        wh.dump(path)
        reloaded = TelemetryWarehouse.load_dump(path)
        reloaded.record_query_profile("r1", 1, self._profile())
        ids = sorted(
            {
                row[0]
                for row in reloaded.query(
                    "SELECT profile_id FROM query_profiles"
                ).rows()
            }
        )
        assert ids == [0, 1]

    def test_dump_and_load_roundtrip(self, tmp_path):
        wh = TelemetryWarehouse(git_sha="sha")
        wh.record_query_profile("r1", 0, self._profile())
        path = tmp_path / "telemetry.json"
        wh.dump(path)
        reloaded = TelemetryWarehouse.load_dump(path)
        original = sorted(
            map(tuple, wh.query("SELECT * FROM query_profiles").rows())
        )
        copied = sorted(
            map(tuple, reloaded.query("SELECT * FROM query_profiles").rows())
        )
        assert original == copied

    def test_sink_records_profiles_and_gauges(self):
        wh = TelemetryWarehouse(git_sha="sha")
        sink = TelemetrySink(wh, "r9")
        sink.record_query_profile(self._profile(), window=4)
        sink.record_gauges(5, {"serve.latency_p99_s": 0.012})
        fp_rows = list(
            wh.query(
                "SELECT window, fingerprint FROM query_profiles "
                "WHERE run_id = 'r9' GROUP BY window, fingerprint"
            ).rows()
        )
        assert fp_rows == [(4, fingerprint(QUERY))]
        gauge = next(
            wh.query(
                "SELECT window, name, value FROM metrics "
                "WHERE run_id = 'r9' AND kind = 'gauge'"
            ).rows()
        )
        assert tuple(gauge) == (5, "serve.latency_p99_s", 0.012)

    def test_engine_sink_wiring_end_to_end(self):
        wh = TelemetryWarehouse(git_sha="sha")
        sink = TelemetrySink(wh, "r2")
        engine = make_engine(profile_sink=sink.record_query_profile)
        engine.query(QUERY)
        count = next(
            wh.query(
                "SELECT COUNT(*) AS n FROM __telemetry.query_profiles"
            ).rows()
        )[0]
        assert count == len(engine.last_profile.operators)


class TestWatchtowerRules:
    def _op(self, **overrides) -> OperatorProfile:
        base = dict(
            op_id=0, parent_id=-1, depth=0, operator="Aggregate",
            label="Aggregate", rel="t", shape="aggregate|a:g",
            est_rows=10.0, est_rows_raw=10.0, actual_rows=12,
            wall_s=0.010, cpu_s=0.010,
        )
        base.update(overrides)
        return OperatorProfile(**base)

    def _record(self, wh, run_id, window, **overrides):
        profile = QueryProfile(
            fingerprint="f" * 16, sql="SELECT 1", operators=[self._op(**overrides)]
        )
        wh.record_query_profile(run_id, window, profile)

    def test_estimate_misfire_fires_above_threshold(self):
        wh = TelemetryWarehouse(git_sha="sha")
        self._record(wh, "r1", 1, est_rows=1.0, actual_rows=10_000)
        tower = Watchtower(wh, query_profile_rules(max_q_error=100.0))
        alerts = tower.evaluate("r1", 1)
        assert [a.rule for a in alerts] == ["query-estimate-misfire"]
        assert alerts[0].severity == "warn"

    def test_estimate_misfire_quiet_when_accurate(self):
        wh = TelemetryWarehouse(git_sha="sha")
        self._record(wh, "r1", 1)
        tower = Watchtower(wh, query_profile_rules())
        assert tower.evaluate("r1", 1) == []

    def test_wall_regression_compares_fingerprint_across_runs(self):
        wh = TelemetryWarehouse(git_sha="sha")
        self._record(wh, "run-001", 1, wall_s=0.010)
        self._record(wh, "run-002", 1, wall_s=0.050)
        tower = Watchtower(wh, query_profile_rules(wall_regression=2.0))
        # The earliest run has no predecessor to regress against.
        assert tower.evaluate("run-001", 1) == []
        alerts = tower.evaluate("run-002", 1)
        assert [a.rule for a in alerts] == ["query-wall-regression"]
        assert alerts[0].value == pytest.approx(5.0)

    def test_wall_regression_quiet_when_stable(self):
        wh = TelemetryWarehouse(git_sha="sha")
        self._record(wh, "run-001", 1, wall_s=0.010)
        self._record(wh, "run-002", 1, wall_s=0.011)
        tower = Watchtower(wh, query_profile_rules())
        assert tower.evaluate("run-002", 1) == []


class TestServeTelemetry:
    def _service(self):
        from repro.features.spec import FeatureMatrix
        from repro.ml.forest import RandomForestClassifier
        from repro.serve import (
            FeatureStore,
            FixedServiceTime,
            ModelRegistry,
            ScoringService,
            ServeConfig,
        )

        rng = np.random.default_rng(3)
        n, k = 120, 4
        matrix = FeatureMatrix(
            imsi=np.arange(50_000, 50_000 + n, dtype=np.int64),
            names=[f"f{i}" for i in range(k)],
            values=rng.normal(size=(n, k)),
        )
        y = (matrix.values[:, 0] > 0).astype(np.int64)
        model = RandomForestClassifier(
            n_trees=3, max_depth=4, min_samples_leaf=5, seed=1
        ).fit(matrix.values, y)
        store = FeatureStore(cache_rows=32)
        store.materialize(matrix, "m3", buckets=2)
        registry = ModelRegistry()
        registry.publish("v1", model, activate=True)
        service = ScoringService(
            store,
            registry,
            ServeConfig(
                max_batch=4,
                batch_window_s=0.010,
                max_queue_depth=16,
                default_deadline_s=1.0,
            ),
            service_time=FixedServiceTime(base_s=0.002, per_row_s=0.0001),
        )
        return service, matrix

    def test_attach_telemetry_flushes_slo_gauges(self):
        service, matrix = self._service()
        wh = TelemetryWarehouse(git_sha="sha")
        sink = TelemetrySink(wh, "serve-run")
        service.attach_telemetry(sink, interval_s=0.050)
        for i in range(6):
            service.submit(int(matrix.imsi[i]), now=0.010 * i)
        service.poll(0.120)
        rows = list(
            wh.query(
                "SELECT window, name, value FROM __telemetry.metrics "
                "WHERE run_id = 'serve-run' AND kind = 'gauge' "
                "ORDER BY window, name"
            ).rows()
        )
        assert rows, "no telemetry flushed"
        names = {r[1] for r in rows}
        assert "serve.latency_p99_s" in names
        assert "serve.shed_rate" in names
        windows = sorted({r[0] for r in rows})
        assert windows == list(range(len(windows)))  # consecutive windows

    def test_flush_catches_up_without_storm(self):
        service, matrix = self._service()
        wh = TelemetryWarehouse(git_sha="sha")
        sink = TelemetrySink(wh, "serve-run")
        service.attach_telemetry(sink, interval_s=0.010)
        service.submit(int(matrix.imsi[0]), now=0.0)
        # A long idle gap then one event: exactly one flush, not 100.
        service.poll(1.0)
        windows = [
            r[0]
            for r in wh.query(
                "SELECT window FROM metrics WHERE kind = 'gauge' "
                "GROUP BY window"
            ).rows()
        ]
        assert len(windows) <= 2

    def test_attach_rejects_bad_interval(self):
        from repro.errors import ServeError

        service, _ = self._service()
        wh = TelemetryWarehouse(git_sha="sha")
        sink = TelemetrySink(wh, "serve-run")
        with pytest.raises(ServeError):
            service.attach_telemetry(sink, interval_s=0.0)
