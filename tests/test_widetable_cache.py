"""Extra coverage: wide-table cache semantics and report alert plumbing."""

import numpy as np
import pytest

from repro.core.monitoring import DriftFinding, MonitoringReport
from repro.errors import FeatureError
from repro.features import FeatureMatrix, WideTableBuilder


class TestBuilderCache:
    def test_refit_invalidates_supervised_blocks_only(self, small_world):
        builder = WideTableBuilder(small_world)
        labels4 = {4: small_world.month(4).churn_next.astype(int)}
        labels5 = {5: small_world.month(5).churn_next.astype(int)}
        builder.fit_extractors([4], labels4)
        f1_before = builder.category("F1", 6)
        f8_before = builder.category("F8", 6)
        f9_before = builder.category("F9", 6)
        builder.fit_extractors([5], labels5)
        # Unsupervised block survives the refit; supervised ones rebuild.
        assert builder.category("F1", 6) is f1_before
        f8_after = builder.category("F8", 6)
        f9_after = builder.category("F9", 6)
        assert f8_after is not f8_before
        assert f9_after is not f9_before
        # And the rebuilt blocks reflect the new fit (values may differ).
        assert f8_after.n_features == 10
        assert f9_after.n_features == 20

    def test_different_fit_months_change_second_order_selection(self, small_world):
        builder_a = WideTableBuilder(small_world)
        builder_a.fit_extractors(
            [4], {4: small_world.month(4).churn_next.astype(int)}
        )
        names_a = builder_a.category("F9", 6).names
        # Same fit on the same months is deterministic.
        builder_b = WideTableBuilder(small_world)
        builder_b.fit_extractors(
            [4], {4: small_world.month(4).churn_next.astype(int)}
        )
        assert builder_b.category("F9", 6).names == names_a

    def test_fit_requires_months(self, small_world):
        builder = WideTableBuilder(small_world)
        with pytest.raises(FeatureError):
            builder.fit_extractors([], {})


class TestFeatureMatrixConcat:
    def test_concat_requires_blocks(self):
        with pytest.raises(FeatureError):
            FeatureMatrix.concat([])

    def test_concat_three_blocks(self):
        imsi = np.arange(4)
        blocks = [
            FeatureMatrix(imsi, [f"c{i}"], np.full((4, 1), float(i)))
            for i in range(3)
        ]
        out = FeatureMatrix.concat(blocks)
        assert out.names == ["c0", "c1", "c2"]
        assert out.values[0].tolist() == [0.0, 1.0, 2.0]


class TestMonitoringReportPlumbing:
    def make_report(self, psis, score_psi=None):
        return MonitoringReport(
            reference_label="ref",
            current_label="cur",
            feature_findings=[
                DriftFinding(f"f{i}", p) for i, p in enumerate(psis)
            ],
            score_finding=(
                None if score_psi is None else DriftFinding("model_score", score_psi)
            ),
            reference_churn_rate=0.09,
            current_churn_rate=0.09,
        )

    def test_alerts_collects_feature_and_score(self):
        report = self.make_report([0.01, 0.4], score_psi=0.3)
        assert {f.name for f in report.alerts} == {"f1", "model_score"}
        assert not report.healthy

    def test_watch_level_is_not_an_alert(self):
        report = self.make_report([0.15, 0.2])
        assert report.healthy

    def test_worst_features_sorted(self):
        report = self.make_report([0.05, 0.4, 0.2])
        assert [f.name for f in report.worst_features] == ["f1", "f2", "f0"]
