"""Differential SQL fuzz suite.

Seeded random queries run through the full production stack (parser →
planner → optimizer → vectorized executor) and through the naive
row-at-a-time reference in :mod:`repro.dataplat.sql.fuzz`; results must
match row-for-row (sorted, float tolerance).  The suite runs under both
execution backends to pin down any backend-dependent state, and a failing
query is written to ``fuzz_failures/repro.json`` so CI can upload it as a
reproducer artifact.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.dataplat.catalog import Catalog
from repro.dataplat.executor import (
    ProcessPoolBackend,
    SerialBackend,
    set_default_backend,
)
from repro.dataplat.sql import SQLEngine
from repro.dataplat.sql.fuzz import (
    generate_queries,
    make_fuzz_tables,
    normalize_rows,
    reference_query,
    rows_equal,
    table_rows,
)

SEED = 20260806
QUERY_COUNT = 220

ARTIFACT_DIR = Path(__file__).resolve().parents[1] / "fuzz_failures"


def _build_engine(tables) -> SQLEngine:
    engine = SQLEngine()
    for name, table in tables.items():
        engine.register(table, name)
    return engine


def _write_reproducer(failures: list[dict]) -> Path:
    ARTIFACT_DIR.mkdir(exist_ok=True)
    path = ARTIFACT_DIR / "repro.json"
    path.write_text(json.dumps({"seed": SEED, "failures": failures}, indent=2))
    return path


def _run_suite(seed: int, count: int) -> None:
    tables = make_fuzz_tables(seed)
    engine = _build_engine(tables)
    failures = []
    for index, sql in enumerate(generate_queries(seed, count)):
        try:
            expected = reference_query(sql, tables)
            actual = table_rows(engine.query(sql))
        except Exception as exc:  # record, keep fuzzing
            failures.append(
                {"index": index, "sql": sql, "error": f"{type(exc).__name__}: {exc}"}
            )
            continue
        if not rows_equal(actual, expected):
            failures.append(
                {
                    "index": index,
                    "sql": sql,
                    "engine_rows": len(actual),
                    "reference_rows": len(expected),
                    "engine_sample": [list(r) for r in sorted(map(tuple, actual))[:5]],
                    "reference_sample": [
                        list(r) for r in sorted(map(tuple, expected))[:5]
                    ],
                }
            )
    if failures:
        path = _write_reproducer(failures)
        pytest.fail(
            f"{len(failures)}/{count} fuzz queries diverged from the reference "
            f"(seed {seed}); reproducer written to {path}"
        )


@pytest.fixture()
def restore_backend():
    yield
    set_default_backend(None)


class TestGenerator:
    def test_deterministic(self):
        assert generate_queries(SEED, 60) == generate_queries(SEED, 60)

    def test_different_seeds_differ(self):
        assert generate_queries(SEED, 60) != generate_queries(SEED + 1, 60)

    def test_covers_required_features(self):
        queries = generate_queries(SEED, QUERY_COUNT)
        assert sum("DISTINCT" in q for q in queries) >= 10
        assert sum("LIKE" in q for q in queries) >= 10
        assert sum("GROUP BY" in q for q in queries) >= 10
        assert sum("JOIN" in q for q in queries) >= 10
        assert sum("WHERE" in q for q in queries) >= 50
        # Multi-join chains: the cost-based optimizer's reordering only
        # engages on clusters of three or more tables.
        assert sum(q.count(" JOIN ") >= 2 for q in queries) >= 10

    def test_tables_deterministic(self):
        a = make_fuzz_tables(SEED)
        b = make_fuzz_tables(SEED)
        assert table_rows(a["t"]) == table_rows(b["t"])
        assert table_rows(a["u"]) == table_rows(b["u"])
        assert table_rows(a["v"]) == table_rows(b["v"])


class TestDifferential:
    def test_serial_backend(self, restore_backend):
        set_default_backend(SerialBackend())
        _run_suite(SEED, QUERY_COUNT)

    def test_process_pool_backend(self, restore_backend):
        set_default_backend(ProcessPoolBackend(max_workers=2))
        _run_suite(SEED, QUERY_COUNT)

    def test_secondary_seed(self):
        _run_suite(SEED + 1, 60)

    def test_unoptimized_plan_matches_reference(self):
        """The optimizer must not change results: execute raw plans too."""
        from repro.dataplat.sql.executor import Executor

        tables = make_fuzz_tables(SEED)
        engine = _build_engine(tables)
        executor = Executor(engine.catalog)
        for sql in generate_queries(SEED, 40):
            expected = reference_query(sql, tables)
            raw = executor.execute(engine.plan(sql, optimized=False))
            assert rows_equal(table_rows(raw), expected), sql

    def test_results_identical_across_backends(self, restore_backend):
        """Same normalized rows whichever backend is ambient."""
        tables = make_fuzz_tables(SEED)
        queries = generate_queries(SEED, 40)
        results = {}
        for label, backend in (
            ("serial", SerialBackend()),
            ("pool", ProcessPoolBackend(max_workers=2)),
        ):
            set_default_backend(backend)
            engine = _build_engine(tables)
            results[label] = [
                normalize_rows(table_rows(engine.query(sql))) for sql in queries
            ]
        assert results["serial"] == results["pool"]


class TestCBOParity:
    """The cost-based optimizer must never change results.

    Every fuzz query runs on two engines over the same catalog — one with
    ``cost_based=False``, one with ``cost_based=True`` — and the *sorted*
    normalized rows must match (sorted because join reordering legitimately
    changes physical row order, and partial-COUNT rewrites can widen int
    columns to float).  The reference evaluator keeps both honest.
    """

    def _run(self, seed: int, count: int) -> None:
        tables = make_fuzz_tables(seed)
        catalog = Catalog()
        heuristic = SQLEngine(catalog, cost_based=False)
        for name, table in tables.items():
            heuristic.register(table, name)
        cost_based = SQLEngine(catalog, cost_based=True)
        failures = []
        for index, sql in enumerate(generate_queries(seed, count)):
            try:
                expected = reference_query(sql, tables)
                off_rows = table_rows(heuristic.query(sql))
                on_rows = table_rows(cost_based.query(sql))
            except Exception as exc:  # record, keep fuzzing
                failures.append(
                    {
                        "index": index,
                        "sql": sql,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
                continue
            if not rows_equal(on_rows, expected) or not rows_equal(
                on_rows, off_rows
            ):
                failures.append(
                    {
                        "index": index,
                        "sql": sql,
                        "cbo_on_rows": len(on_rows),
                        "cbo_off_rows": len(off_rows),
                        "reference_rows": len(expected),
                    }
                )
        if failures:
            path = _write_reproducer(failures)
            pytest.fail(
                f"{len(failures)}/{count} queries diverged between CBO "
                f"on/off (seed {seed}); reproducer written to {path}"
            )

    def test_serial_backend(self, restore_backend):
        set_default_backend(SerialBackend())
        self._run(SEED, QUERY_COUNT)

    def test_process_pool_backend(self, restore_backend):
        set_default_backend(ProcessPoolBackend(max_workers=2))
        self._run(SEED, QUERY_COUNT)

    def test_secondary_seed(self):
        self._run(SEED + 3, 60)


def _build_partitioned_engine(tables, scan_pruning: bool) -> SQLEngine:
    """Persist the fuzz tables grp-sorted into 4 partitions each.

    Sorting by ``grp`` gives each partition a tight, distinct grp zone map,
    so WHERE conjuncts over grp genuinely prune; ids stay scattered, so id
    conjuncts exercise the keep-everything path.
    """
    catalog = Catalog()
    for name, table in tables.items():
        ordered = table.sort_by(["grp"])
        n = ordered.num_rows
        for i in range(4):
            part = ordered.take(np.arange(i * n // 4, (i + 1) * n // 4))
            catalog.save(part, name, partition=f"p{i}")
    return SQLEngine(catalog, scan_pruning=scan_pruning)


def _ordered_rows(table) -> list[tuple]:
    """Row tuples in output order, normalized cell-wise (NaN-safe)."""
    return [normalize_rows([row])[0] for row in table_rows(table)]


class TestPruningParity:
    """Zone-map pruning must be invisible: identical rows, pruning on/off."""

    def _run(self, count: int) -> None:
        tables = make_fuzz_tables(SEED)
        pruned = _build_partitioned_engine(tables, scan_pruning=True)
        plain = _build_partitioned_engine(tables, scan_pruning=False)
        health = pruned.catalog.store.health
        pruned_query_count = 0
        for sql in generate_queries(SEED, count):
            before = health.chunks_skipped
            with_pruning = pruned.query(sql)
            without = plain.query(sql)
            assert _ordered_rows(with_pruning) == _ordered_rows(without), sql
            if health.chunks_skipped > before:
                pruned_query_count += 1
        assert health.partitions_pruned > 0
        assert health.chunks_skipped > 0
        assert health.bytes_decoded_saved > 0
        assert pruned_query_count > 0, "no query ever skipped a chunk"
        # Pruning-off must never touch the pruning counters.
        assert plain.catalog.store.health.partitions_pruned == 0

    def test_serial_backend(self, restore_backend):
        set_default_backend(SerialBackend())
        self._run(QUERY_COUNT)

    def test_process_pool_backend(self, restore_backend):
        set_default_backend(ProcessPoolBackend(max_workers=2))
        self._run(QUERY_COUNT)

    def test_pruning_matches_reference(self):
        """Pruned engine vs the naive reference (transitively: vs unpruned)."""
        tables = make_fuzz_tables(SEED + 2)
        engine = _build_partitioned_engine(tables, scan_pruning=True)
        for sql in generate_queries(SEED + 2, 60):
            expected = reference_query(sql, tables)
            actual = table_rows(engine.query(sql))
            assert rows_equal(actual, expected), sql


class TestShardedParity:
    """Shared-nothing sharding must be invisible to every query.

    The full corpus runs on a 4-shard :class:`ShardedSQLEngine` — tables
    hash-split on ``id``, non-aligned joins repartitioned through the
    shuffle exchange, decomposable aggregates merged at the gather — and
    the sorted rows must match both the single-shard engine and the naive
    row-at-a-time reference.  A small ``spill_bytes`` forces some shuffles
    through the block-store spill path so it is differentially covered too.
    """

    def _run(self, backend, seed: int, count: int) -> None:
        from repro.dataplat.sharding import ShardedCatalog
        from repro.dataplat.sql import ShardedSQLEngine

        tables = make_fuzz_tables(seed)
        single = _build_engine(tables)
        sharded = ShardedSQLEngine(
            ShardedCatalog(num_shards=4, shard_key="id"),
            backend=backend,
            spill_bytes=2048,
        )
        for name, table in tables.items():
            sharded.register(table, name)
        failures = []
        for index, sql in enumerate(generate_queries(seed, count)):
            try:
                expected = reference_query(sql, tables)
                single_rows = table_rows(single.query(sql))
                sharded_rows = table_rows(sharded.query(sql))
            except Exception as exc:  # record, keep fuzzing
                failures.append(
                    {
                        "index": index,
                        "sql": sql,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
                continue
            if not rows_equal(sharded_rows, expected) or not rows_equal(
                sharded_rows, single_rows
            ):
                failures.append(
                    {
                        "index": index,
                        "sql": sql,
                        "sharded_rows": len(sharded_rows),
                        "single_rows": len(single_rows),
                        "reference_rows": len(expected),
                    }
                )
        assert sharded.exchange.shuffles > 0, (
            "corpus never exercised the shuffle exchange"
        )
        if failures:
            path = _write_reproducer(failures)
            pytest.fail(
                f"{len(failures)}/{count} queries diverged on the 4-shard "
                f"engine (seed {seed}); reproducer written to {path}"
            )

    def test_serial_backend(self):
        self._run(SerialBackend(), SEED, QUERY_COUNT)

    def test_process_backend(self):
        pool = ProcessPoolBackend(max_workers=2)
        try:
            self._run(pool, SEED, QUERY_COUNT)
        finally:
            pool.close()

    def test_secondary_seed(self):
        self._run(SerialBackend(), SEED + 5, 60)


PROFILE_ARTIFACT_DIR = Path(__file__).resolve().parents[1] / "fuzz_profiles"


class TestProfilingParity:
    """Query profiling must be semantically invisible.

    The full corpus runs on two engines over one catalog — profiling off
    and profiling on — and rows must match exactly.  Every profiled query
    must also emit a :class:`QueryProfile` whose root ``actual_rows``
    equals the result's row count, and the collected profiles are sunk
    into a telemetry warehouse whose dump is written to
    ``fuzz_profiles/query_profiles.json`` for CI to upload.
    """

    def _engines(self, seed: int):
        from repro.dataplat.telemetry import TelemetrySink, TelemetryWarehouse

        tables = make_fuzz_tables(seed)
        catalog = Catalog()
        plain = SQLEngine(catalog)
        for name, table in tables.items():
            plain.register(table, name)
        warehouse = TelemetryWarehouse(git_sha="fuzz")
        sink = TelemetrySink(warehouse, f"fuzz-{seed}")
        profiled = SQLEngine(
            catalog, profiling=True, profile_sink=sink.record_query_profile
        )
        return tables, plain, profiled, warehouse

    def _write_artifact(self, warehouse) -> Path:
        PROFILE_ARTIFACT_DIR.mkdir(exist_ok=True)
        path = PROFILE_ARTIFACT_DIR / "query_profiles.json"
        warehouse.dump(path)
        return path

    def test_row_parity_and_profiles_emitted(self):
        tables, plain, profiled, warehouse = self._engines(SEED)
        failures = []
        for index, sql in enumerate(generate_queries(SEED, QUERY_COUNT)):
            try:
                expected = reference_query(sql, tables)
                off_rows = table_rows(plain.query(sql))
                on_rows = table_rows(profiled.query(sql))
            except Exception as exc:  # record, keep fuzzing
                failures.append(
                    {
                        "index": index,
                        "sql": sql,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
                continue
            profile = profiled.last_profile
            if (
                not rows_equal(on_rows, expected)
                or not rows_equal(on_rows, off_rows)
                or profile is None
                or profile.root().actual_rows != len(on_rows)
            ):
                failures.append(
                    {
                        "index": index,
                        "sql": sql,
                        "profiled_rows": len(on_rows),
                        "plain_rows": len(off_rows),
                        "reference_rows": len(expected),
                        "profile_root_rows": (
                            profile.root().actual_rows
                            if profile is not None
                            else None
                        ),
                    }
                )
        artifact = self._write_artifact(warehouse)
        stored = warehouse.query(
            "SELECT COUNT(*) AS n FROM __telemetry.query_profiles"
        )
        assert next(stored.rows())[0] > 0, "no profiles reached the warehouse"
        if failures:
            path = _write_reproducer(failures)
            pytest.fail(
                f"{len(failures)}/{QUERY_COUNT} queries diverged with "
                f"profiling on (seed {SEED}); reproducer at {path}, "
                f"profiles at {artifact}"
            )

    def test_explain_analyze_is_invisible(self):
        """EXPLAIN ANALYZE never perturbs a later plain run of the query."""
        tables, _, profiled, _ = self._engines(SEED + 4)
        for sql in generate_queries(SEED + 4, 40):
            expected = reference_query(sql, tables)
            annotated = profiled.query(f"EXPLAIN ANALYZE {sql}")
            assert annotated.num_rows > 0
            assert all(
                "actual_rows=" in str(line) for line in annotated["plan"]
            ), sql
            again = table_rows(profiled.query(sql))
            assert rows_equal(again, expected), sql
