"""Tests for the exception hierarchy and report formatting helpers."""

import pytest

from repro import errors
from repro.core.reporting import fmt, render_table


class TestErrorHierarchy:
    ALL_ERRORS = [
        errors.ConfigError,
        errors.DataPlatformError,
        errors.StorageError,
        errors.SchemaError,
        errors.CatalogError,
        errors.SQLError,
        errors.SQLSyntaxError,
        errors.SQLAnalysisError,
        errors.ExecutionError,
        errors.ETLError,
        errors.ModelError,
        errors.NotFittedError,
        errors.TrainingError,
        errors.FeatureError,
        errors.SimulationError,
        errors.ExperimentError,
    ]

    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_all_errors_are_repro_errors(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_platform_errors_share_a_base(self):
        for exc in (
            errors.StorageError,
            errors.SchemaError,
            errors.CatalogError,
            errors.SQLError,
            errors.ExecutionError,
            errors.ETLError,
        ):
            assert issubclass(exc, errors.DataPlatformError)

    def test_sql_errors_share_a_base(self):
        assert issubclass(errors.SQLSyntaxError, errors.SQLError)
        assert issubclass(errors.SQLAnalysisError, errors.SQLError)

    def test_model_errors_share_a_base(self):
        assert issubclass(errors.NotFittedError, errors.ModelError)
        assert issubclass(errors.TrainingError, errors.ModelError)

    def test_syntax_error_carries_position(self):
        err = errors.SQLSyntaxError("bad token", position=17)
        assert err.position == 17
        assert "offset 17" in str(err)

    def test_syntax_error_without_position(self):
        err = errors.SQLSyntaxError("bad token")
        assert err.position is None
        assert "offset" not in str(err)

    def test_one_except_clause_catches_everything(self):
        caught = 0
        for exc in self.ALL_ERRORS:
            try:
                raise exc("boom")
            except errors.ReproError:
                caught += 1
        assert caught == len(self.ALL_ERRORS)


class TestRendering:
    def test_fmt_digits(self):
        assert fmt(0.123456789) == "0.12346"
        assert fmt(0.1, digits=2) == "0.10"

    def test_render_table_pads_cells(self):
        text = render_table(["col", "x"], [["a", "12345"]])
        lines = text.split("\n")
        assert len(lines) == 3
        assert lines[0].index("x") == lines[2].index("1")

    def test_render_table_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text
