"""Unit tests for the CART decision tree."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError, TrainingError
from repro.ml.tree import LEAF, DecisionTree


@pytest.fixture()
def xor_data():
    """A dataset a depth-2 tree separates but a stump cannot."""
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, size=(400, 2))
    y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(float)
    return x, y


class TestFitBasics:
    def test_pure_node_stays_leaf(self):
        x = np.array([[1.0], [2.0], [3.0]])
        y = np.array([1.0, 1.0, 1.0])
        tree = DecisionTree().fit(x, y)
        assert tree.node_count == 1
        assert tree.predict(x).tolist() == [1.0, 1.0, 1.0]

    def test_single_split(self):
        x = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        tree = DecisionTree().fit(x, y)
        assert tree.n_leaves == 2
        assert tree.predict(np.array([[0.5], [2.5]])).tolist() == [0.0, 1.0]

    def test_threshold_is_midpoint(self):
        x = np.array([[0.0], [10.0]])
        y = np.array([0.0, 1.0])
        tree = DecisionTree().fit(x, y)
        assert tree.predict(np.array([[4.9]]))[0] == 0.0
        assert tree.predict(np.array([[5.1]]))[0] == 1.0

    def test_xor_needs_depth_two(self, xor_data):
        x, y = xor_data
        deep = DecisionTree(max_depth=3).fit(x, y)
        acc = ((deep.predict(x) > 0.5) == y).mean()
        assert acc > 0.95

    def test_max_depth_limits_growth(self, xor_data):
        x, y = xor_data
        stump = DecisionTree(max_depth=1).fit(x, y)
        assert stump.node_count <= 3

    def test_min_samples_leaf_respected(self, xor_data):
        x, y = xor_data
        tree = DecisionTree(min_samples_leaf=50).fit(x, y)
        leaves = tree.apply(x)
        counts = np.bincount(leaves, minlength=tree.node_count)
        leaf_ids = np.flatnonzero(tree._feature == LEAF)
        assert all(counts[i] >= 50 for i in leaf_ids)

    def test_mse_criterion_regression(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 1, size=(500, 1))
        y = np.where(x[:, 0] > 0.5, 3.0, -1.0) + rng.normal(0, 0.05, 500)
        tree = DecisionTree(criterion="mse", max_depth=2).fit(x, y)
        pred = tree.predict(np.array([[0.25], [0.75]]))
        assert pred[0] == pytest.approx(-1.0, abs=0.2)
        assert pred[1] == pytest.approx(3.0, abs=0.2)

    def test_sample_weights_shift_split(self):
        # Downweighting one class's outliers changes the learned leaf value.
        x = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([0.0, 1.0, 1.0, 1.0])
        w_uniform = DecisionTree().fit(x, y).predict(np.array([[0.0]]))[0]
        heavy = DecisionTree().fit(
            x, y, sample_weight=np.array([10.0, 1.0, 1.0, 1.0])
        ).predict(np.array([[0.0]]))[0]
        assert heavy < w_uniform

    def test_constant_feature_no_split(self):
        x = np.zeros((10, 1))
        y = np.array([0.0, 1.0] * 5)
        tree = DecisionTree().fit(x, y)
        assert tree.node_count == 1
        assert tree.predict(x)[0] == pytest.approx(0.5)


class TestValidation:
    def test_bad_criterion(self):
        with pytest.raises(ModelError):
            DecisionTree(criterion="entropy")

    def test_bad_depth(self):
        with pytest.raises(ModelError):
            DecisionTree(max_depth=0)

    def test_bad_min_leaf(self):
        with pytest.raises(ModelError):
            DecisionTree(min_samples_leaf=0)

    def test_gini_rejects_nonbinary(self):
        with pytest.raises(ModelError):
            DecisionTree().fit(np.zeros((3, 1)), np.array([0.0, 1.0, 2.0]))

    def test_empty_input(self):
        with pytest.raises(TrainingError):
            DecisionTree().fit(np.zeros((0, 1)), np.zeros(0))

    def test_length_mismatch(self):
        with pytest.raises(ModelError):
            DecisionTree().fit(np.zeros((2, 1)), np.zeros(3))

    def test_negative_weights_rejected(self):
        with pytest.raises(ModelError):
            DecisionTree().fit(
                np.zeros((2, 1)), np.array([0.0, 1.0]),
                sample_weight=np.array([1.0, -1.0]),
            )

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTree().predict(np.zeros((1, 1)))

    def test_predict_wrong_width(self, xor_data):
        x, y = xor_data
        tree = DecisionTree(max_depth=2).fit(x, y)
        with pytest.raises(ModelError):
            tree.predict(np.zeros((1, 5)))

    def test_bad_max_features(self):
        tree = DecisionTree(max_features=0.5)  # floats unsupported
        with pytest.raises(ModelError):
            tree.fit(np.zeros((4, 2)), np.array([0.0, 1.0, 0.0, 1.0]))


class TestImportanceAndIntrospection:
    def test_importance_concentrates_on_signal_feature(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(600, 5))
        y = (x[:, 3] > 0).astype(float)
        tree = DecisionTree(max_depth=4).fit(x, y)
        imp = tree.feature_importances_
        assert imp.argmax() == 3
        assert imp[3] > 0.9 * imp.sum()

    def test_apply_returns_leaves(self, xor_data):
        x, y = xor_data
        tree = DecisionTree(max_depth=3).fit(x, y)
        leaves = tree.apply(x)
        assert np.all(tree._feature[leaves] == LEAF)

    def test_set_leaf_values_changes_predictions(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0.0, 1.0])
        tree = DecisionTree().fit(x, y)
        values = tree.leaf_values()
        tree.set_leaf_values(values + 10.0)
        assert np.all(tree.predict(x) >= 10.0)

    def test_set_leaf_values_shape_checked(self):
        x = np.array([[0.0], [1.0]])
        tree = DecisionTree().fit(x, np.array([0.0, 1.0]))
        with pytest.raises(ModelError):
            tree.set_leaf_values(np.zeros(99))

    def test_sqrt_feature_subsampling_still_learns(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(800, 16))
        y = (x[:, 0] > 0).astype(float)
        tree = DecisionTree(max_features="sqrt", max_depth=6, seed=5).fit(x, y)
        acc = ((tree.predict(x) > 0.5) == y).mean()
        assert acc > 0.9
