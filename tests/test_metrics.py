"""Unit tests for the evaluation metrics (paper Eq. 8-10)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.ml.metrics import (
    average_precision,
    pr_auc,
    precision_at,
    precision_recall_curve,
    ranking_report,
    recall_at,
    roc_auc,
)


@pytest.fixture()
def perfect():
    y = np.array([0, 0, 0, 1, 1])
    s = np.array([0.1, 0.2, 0.3, 0.8, 0.9])
    return y, s


class TestRocAuc:
    def test_perfect_ranking(self, perfect):
        assert roc_auc(*perfect) == 1.0

    def test_inverted_ranking(self, perfect):
        y, s = perfect
        assert roc_auc(y, -s) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = (rng.random(4000) < 0.3).astype(int)
        s = rng.random(4000)
        assert abs(roc_auc(y, s) - 0.5) < 0.05

    def test_ties_average_ranks(self):
        y = np.array([0, 1, 0, 1])
        s = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc(y, s) == pytest.approx(0.5)

    def test_matches_pairwise_definition(self):
        rng = np.random.default_rng(1)
        y = (rng.random(200) < 0.4).astype(int)
        s = rng.random(200)
        pos = s[y == 1]
        neg = s[y == 0]
        wins = sum(
            1.0 if p > q else 0.5 if p == q else 0.0
            for p in pos
            for q in neg
        )
        assert roc_auc(y, s) == pytest.approx(wins / (len(pos) * len(neg)))

    def test_single_class_rejected(self):
        with pytest.raises(ModelError):
            roc_auc(np.array([1, 1]), np.array([0.5, 0.6]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ModelError):
            roc_auc(np.array([0, 1]), np.array([0.5]))

    def test_nonbinary_labels_rejected(self):
        with pytest.raises(ModelError):
            roc_auc(np.array([0, 2]), np.array([0.5, 0.6]))


class TestPrAuc:
    def test_perfect_ranking(self, perfect):
        assert pr_auc(*perfect) == 1.0

    def test_random_close_to_base_rate(self):
        rng = np.random.default_rng(2)
        y = (rng.random(5000) < 0.2).astype(int)
        s = rng.random(5000)
        assert pr_auc(y, s) == pytest.approx(0.2, abs=0.05)

    def test_alias(self, perfect):
        assert pr_auc(*perfect) == average_precision(*perfect)

    def test_curve_monotone_recall(self):
        rng = np.random.default_rng(3)
        y = (rng.random(100) < 0.3).astype(int)
        s = rng.random(100)
        _, recall, _ = precision_recall_curve(y, s)
        assert np.all(np.diff(recall) >= 0)
        assert recall[-1] == 1.0

    def test_curve_requires_positives(self):
        with pytest.raises(ModelError):
            precision_recall_curve(np.array([0, 0]), np.array([0.1, 0.2]))


class TestTopU:
    def test_recall_at_definition(self, perfect):
        y, s = perfect
        assert recall_at(y, s, 1) == pytest.approx(0.5)
        assert recall_at(y, s, 2) == pytest.approx(1.0)

    def test_precision_at_definition(self, perfect):
        y, s = perfect
        assert precision_at(y, s, 2) == pytest.approx(1.0)
        assert precision_at(y, s, 4) == pytest.approx(0.5)

    def test_u_larger_than_n(self, perfect):
        y, s = perfect
        assert recall_at(y, s, 100) == 1.0
        assert precision_at(y, s, 100) == pytest.approx(2 / 5)

    def test_u_must_be_positive(self, perfect):
        with pytest.raises(ModelError):
            recall_at(*perfect, 0)

    def test_recall_increases_with_u(self):
        rng = np.random.default_rng(4)
        y = (rng.random(500) < 0.2).astype(int)
        s = rng.random(500)
        values = [recall_at(y, s, u) for u in (10, 50, 100, 400)]
        assert values == sorted(values)

    def test_precision_recall_tradeoff_at_full_list(self):
        rng = np.random.default_rng(5)
        y = (rng.random(300) < 0.3).astype(int)
        s = rng.random(300)
        assert precision_at(y, s, 300) == pytest.approx(y.mean())
        assert recall_at(y, s, 300) == 1.0


class TestReport:
    def test_ranking_report_keys(self, perfect):
        y, s = perfect
        report = ranking_report(y, s, (1, 2))
        assert set(report) == {"auc", "pr_auc", "recall_at", "precision_at"}
        assert set(report["recall_at"]) == {1, 2}
