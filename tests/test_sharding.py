"""Shared-nothing sharding: partitioner, catalog, shuffle, scatter-gather.

The partitioner tests are property-based (hypothesis): the whole sharding
design rests on ``shard_of`` being a pure, platform-independent function
of the key value — same id, same shard, forever — and on CRC32
avalanching skewed real-world id distributions into balanced shards.
The rest covers the :class:`ShardedCatalog` placement/round-trip
contract, the :class:`ShuffleExchange` (memoization and spill-to-store),
scatter-gather SQL parity against the single-shard engine, and the
shard-parallel wide-table builder's bit-identity guarantee.
"""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataplat.executor import ProcessPoolBackend, SerialBackend
from repro.dataplat.sharding import (
    DEFAULT_SPILL_BYTES,
    SHUFFLE_DATABASE,
    Placement,
    ShardedCatalog,
    ShuffleExchange,
    shard_of,
)
from repro.dataplat.sql import ShardedSQLEngine, SQLEngine
from repro.dataplat.table import Table

int64s = st.integers(min_value=-(2**63), max_value=2**63 - 1)
shard_counts = st.sampled_from([1, 2, 3, 4, 8, 16])


def _reference_shard(value: int, num_shards: int) -> int:
    """The stability contract, spelled out byte by byte."""
    crc = zlib.crc32(int(value).to_bytes(8, "little", signed=True))
    return crc % num_shards


class TestPartitionerStability:
    @given(value=int64s, num_shards=shard_counts)
    def test_scalar_matches_zlib_reference(self, value, num_shards):
        assert shard_of(value, num_shards) == _reference_shard(
            value, num_shards
        )

    @given(values=st.lists(int64s, min_size=1, max_size=50), num_shards=shard_counts)
    def test_vectorized_matches_scalar(self, values, num_shards):
        arr = np.array(values, dtype=np.int64)
        vec = shard_of(arr, num_shards)
        assert list(vec) == [shard_of(int(v), num_shards) for v in values]

    @given(values=st.lists(int64s, min_size=2, max_size=50), num_shards=shard_counts)
    def test_insertion_order_independent(self, values, num_shards):
        """Shard assignment is per-value: any permutation maps identically."""
        arr = np.array(values, dtype=np.int64)
        perm = np.random.default_rng(0).permutation(len(arr))
        direct = shard_of(arr, num_shards)
        permuted = shard_of(arr[perm], num_shards)
        assert list(direct[perm]) == list(permuted)

    @given(value=st.text(max_size=30), num_shards=shard_counts)
    def test_string_keys_match_utf8_reference(self, value, num_shards):
        expected = zlib.crc32(value.encode()) % num_shards
        assert shard_of(value, num_shards) == expected

    def test_pinned_values(self):
        """Anchors against silent algorithm drift between versions.

        These literals were computed from the zlib reference; a failure
        here means previously-written shards can no longer be found.
        """
        assert shard_of(0, 4) == 1
        assert shard_of(1, 4) == 3
        assert shard_of(123456789, 4) == 1
        assert shard_of(-1, 4) == 0
        assert shard_of("imsi-0001", 4) == 2

    def test_single_shard_maps_everything_to_zero(self):
        arr = np.arange(-500, 500, dtype=np.int64)
        assert set(shard_of(arr, 1)) == {0}

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            shard_of(7, 0)

    def test_non_key_dtype_rejected(self):
        with pytest.raises(TypeError):
            shard_of(np.array([1.5, 2.5]), 4)

    @pytest.mark.parametrize("num_shards", [2, 4, 8])
    @pytest.mark.parametrize(
        "name, ids",
        [
            (
                "power_law",
                lambda: (
                    40_000 * np.random.default_rng(3).random(25_000) ** 2
                ).astype(np.int64),
            ),
            ("contiguous", lambda: np.arange(24_000, dtype=np.int64)),
            (
                "strided",
                lambda: np.arange(0, 20_000 * 64, 64, dtype=np.int64),
            ),
        ],
    )
    def test_skewed_distributions_balance(self, num_shards, name, ids):
        """CRC32 avalanches low-entropy ids: max/min shard load <= 1.3."""
        codes = shard_of(ids(), num_shards)
        histogram = np.bincount(codes, minlength=num_shards)
        assert histogram.min() > 0, (name, histogram)
        ratio = histogram.max() / histogram.min()
        assert ratio <= 1.3, (name, num_shards, histogram.tolist())


def _make_facts(n_rows: int = 400, n_keys: int = 37, seed: int = 11):
    rng = np.random.default_rng(seed)
    return Table.from_arrays(
        imsi=rng.integers(0, n_keys, size=n_rows).astype(np.int64),
        dur=rng.integers(0, 3600, size=n_rows),
        grp=rng.integers(0, 5, size=n_rows).astype(np.int64),
    )


class TestShardedCatalog:
    def test_hash_save_round_trips_exactly(self):
        facts = _make_facts()
        catalog = ShardedCatalog(num_shards=4, shard_key="imsi")
        placement = catalog.save(facts, "facts")
        assert placement == Placement("hash", "imsi")
        assert sum(catalog.shard_rows("facts")) == facts.num_rows
        # Loading concatenates shard pieces in shard order, each piece
        # preserving input row order — reconstruct that exactly.
        codes = shard_of(facts.column("imsi"), 4)
        expected = facts.mask(codes == 0)
        for i in (1, 2, 3):
            expected = expected.concat_rows(facts.mask(codes == i))
        loaded = catalog.load("facts")
        for col in facts.schema.names:
            assert np.array_equal(loaded[col], expected[col])

    def test_shards_own_disjoint_keys(self):
        facts = _make_facts()
        catalog = ShardedCatalog(num_shards=4, shard_key="imsi")
        catalog.save(facts, "facts")
        for i, shard in enumerate(catalog.shards):
            piece = shard.scan("facts")
            assert set(shard_of(piece.column("imsi"), 4)) <= {i}

    def test_table_without_shard_key_is_replicated(self):
        dims = Table.from_arrays(
            offer=np.arange(8, dtype=np.int64),
            kind=np.array(["a"] * 8, dtype=object),
        )
        catalog = ShardedCatalog(num_shards=3, shard_key="imsi")
        placement = catalog.save(dims, "offers")
        assert placement == Placement("replicated")
        assert catalog.shard_rows("offers") == [8, 8, 8]

    def test_explicit_key_overrides_default(self):
        facts = _make_facts()
        catalog = ShardedCatalog(num_shards=4, shard_key="imsi")
        catalog.save(facts, "facts", key="grp")
        assert catalog.placement("facts") == Placement("hash", "grp")
        for i, shard in enumerate(catalog.shards):
            piece = shard.scan("facts")
            assert set(shard_of(piece.column("grp"), 4)) <= {i}

    def test_empty_shard_pieces_keep_schema(self):
        """More shards than keys: empty pieces must still bind the schema."""
        tiny = Table.from_arrays(imsi=np.array([5], dtype=np.int64))
        catalog = ShardedCatalog(num_shards=4, shard_key="imsi")
        catalog.save(tiny, "tiny")
        assert sorted(catalog.shard_rows("tiny")) == [0, 0, 0, 1]
        loaded = catalog.load("tiny")
        assert list(loaded["imsi"]) == [5]

    def test_drop_exists_tables(self):
        facts = _make_facts()
        catalog = ShardedCatalog(num_shards=2, shard_key="imsi")
        catalog.save(facts, "facts")
        assert catalog.exists("facts")
        assert "facts" in catalog.tables()
        catalog.drop("facts")
        assert not catalog.exists("facts")
        assert catalog.placement("facts") is None

    def test_version_bumps_on_writes(self):
        catalog = ShardedCatalog(num_shards=2, shard_key="imsi")
        v0 = catalog.version
        catalog.register_temp(_make_facts(), "facts")
        assert catalog.version > v0


class TestShuffleExchange:
    def _catalog(self):
        catalog = ShardedCatalog(num_shards=4, shard_key="imsi")
        catalog.save(_make_facts(), "facts")
        return catalog

    def test_repartition_lands_rows_on_owner_shards(self):
        catalog = self._catalog()
        exchange = ShuffleExchange(catalog)
        name = exchange.repartition("facts", "grp")
        total = 0
        for i, shard in enumerate(catalog.shards):
            piece = shard.scan(name, database=SHUFFLE_DATABASE)
            total += piece.num_rows
            assert set(shard_of(piece.column("grp"), 4)) <= {i}
        assert total == 400
        assert catalog.placement(name, SHUFFLE_DATABASE) == Placement(
            "hash", "grp"
        )

    def test_repartition_is_memoized_per_version(self):
        catalog = self._catalog()
        exchange = ShuffleExchange(catalog)
        first = exchange.repartition("facts", "grp")
        assert exchange.repartition("facts", "grp") == first
        assert exchange.shuffles == 1
        # A catalog write invalidates the memo.
        catalog.register_temp(_make_facts(seed=12), "other")
        exchange.repartition("facts", "grp")
        assert exchange.shuffles == 2

    def test_distinct_column_subsets_get_distinct_names(self):
        catalog = self._catalog()
        exchange = ShuffleExchange(catalog)
        wide = exchange.repartition("facts", "grp", columns=["imsi", "dur"])
        narrow = exchange.repartition("facts", "grp", columns=["dur"])
        assert wide != narrow
        wide_piece = catalog.shards[0].scan(wide, database=SHUFFLE_DATABASE)
        narrow_piece = catalog.shards[0].scan(
            narrow, database=SHUFFLE_DATABASE
        )
        assert "imsi" in wide_piece.schema.names
        assert "imsi" not in narrow_piece.schema.names

    def test_large_repartition_spills_to_blockstore(self):
        catalog = self._catalog()
        exchange = ShuffleExchange(catalog, spill_bytes=0)
        name = exchange.repartition("facts", "grp")
        assert exchange.spills == 4
        # Spilled pieces are ordinary columnar tables, still scannable.
        assert sum(
            shard.scan(name, database=SHUFFLE_DATABASE).num_rows
            for shard in catalog.shards
        ) == 400

    def test_small_repartition_stays_in_memory(self):
        catalog = self._catalog()
        exchange = ShuffleExchange(catalog, spill_bytes=DEFAULT_SPILL_BYTES)
        exchange.repartition("facts", "grp")
        assert exchange.spills == 0


def _scatter_world():
    """Facts sharded on imsi plus a replicated dimension."""
    rng = np.random.default_rng(7)
    n = 600
    facts = Table.from_arrays(
        imsi=rng.integers(0, 40, size=n).astype(np.int64),
        dur=rng.integers(0, 3600, size=n),
        cell=rng.integers(0, 6, size=n).astype(np.int64),
    )
    sessions = Table.from_arrays(
        imsi=rng.integers(0, 40, size=n).astype(np.int64),
        bytes_dl=rng.integers(0, 10_000, size=n),
    )
    cells = Table.from_arrays(
        id=np.arange(6, dtype=np.int64),
        region=np.array(list("abcdef"), dtype=object),
    )
    return {"facts": facts, "sessions": sessions, "cells": cells}


def _norm(table) -> list[tuple]:
    cols = [table[c] for c in table.schema.names]
    return sorted(
        tuple(round(v, 9) if isinstance(v, float) else v for v in row)
        for row in zip(*cols)
    )


class TestScatterGatherSQL:
    def _engines(self, **kwargs):
        tables = _scatter_world()
        single = SQLEngine()
        sharded_catalog = ShardedCatalog(num_shards=4, shard_key="imsi")
        sharded = ShardedSQLEngine(sharded_catalog, **kwargs)
        for name, table in tables.items():
            single.register(table, name)
            sharded.register(table, name)
        return single, sharded

    @pytest.mark.parametrize(
        "sql",
        [
            # Shard-local: filter + aggregate grouped on the shard key.
            "SELECT imsi, SUM(dur) AS total, COUNT(*) AS n FROM facts "
            "WHERE dur > 100 GROUP BY imsi ORDER BY imsi",
            # Co-partitioned join on the shard key.
            "SELECT f.imsi AS imsi, SUM(s.bytes_dl) AS b FROM facts f "
            "JOIN sessions s ON f.imsi = s.imsi GROUP BY f.imsi "
            "ORDER BY imsi",
            # Replicated dimension join + non-aligned group key: the
            # decomposable aggregate is pushed below the gather.
            "SELECT c.region AS region, COUNT(*) AS n, AVG(f.dur) AS mean_dur "
            "FROM facts f JOIN cells c ON f.cell = c.id GROUP BY c.region "
            "ORDER BY region",
            # Non-aligned self-join key: needs a shuffle exchange.
            "SELECT f.cell AS cell, SUM(s.bytes_dl) AS b FROM facts f "
            "JOIN sessions s ON f.cell = s.imsi GROUP BY f.cell "
            "ORDER BY cell",
            # Global aggregate without grouping.
            "SELECT COUNT(*) AS n, SUM(dur) AS total, MIN(dur) AS lo, "
            "MAX(dur) AS hi FROM facts",
            # DISTINCT aggregate: not decomposable, falls back to a full
            # gather — must still be correct.
            "SELECT COUNT(DISTINCT cell) AS n FROM facts",
        ],
    )
    def test_matches_single_shard(self, sql):
        single, sharded = self._engines()
        assert _norm(sharded.query(sql)) == _norm(single.query(sql)), sql

    def test_explain_shows_gather(self):
        _, sharded = self._engines()
        plan = sharded.explain(
            "SELECT imsi, SUM(dur) AS total FROM facts GROUP BY imsi"
        )
        assert "Gather" in plan

    def test_process_backend_parity(self):
        pool = ProcessPoolBackend(max_workers=2)
        try:
            single, sharded = self._engines(backend=pool)
            sql = (
                "SELECT c.region AS region, SUM(f.dur) AS total FROM facts f "
                "JOIN cells c ON f.cell = c.id GROUP BY c.region "
                "ORDER BY region"
            )
            assert _norm(sharded.query(sql)) == _norm(single.query(sql))
        finally:
            pool.close()

    def test_left_join_replicated_left_realigns(self):
        single, sharded = self._engines()
        sql = (
            "SELECT c.region AS region, COUNT(*) AS n FROM cells c "
            "LEFT JOIN facts f ON c.id = f.cell GROUP BY c.region "
            "ORDER BY region"
        )
        assert _norm(sharded.query(sql)) == _norm(single.query(sql))


class TestShardedWideTable:
    @pytest.fixture(scope="class")
    def world(self):
        from repro.config import ScaleConfig
        from repro.datagen import TelcoSimulator

        return TelcoSimulator(
            ScaleConfig(population=120, months=3, seed=9)
        ).run()

    def test_bit_identical_to_central_builder(self, world):
        from repro.features import (
            SHARDED_CATEGORIES,
            ShardedWideTableBuilder,
            WideTableBuilder,
        )

        central = WideTableBuilder(world, seed=0)
        sharded = ShardedWideTableBuilder(world, num_shards=4, seed=0)
        for month in (1, 2):
            want = central.features(month, SHARDED_CATEGORIES)
            got = sharded.features(month, SHARDED_CATEGORIES)
            assert want.names == got.names
            assert np.array_equal(want.imsi, got.imsi)
            assert np.array_equal(
                want.values, got.values, equal_nan=True
            )

    def test_emits_per_shard_spans(self, world):
        from repro.dataplat import observability
        from repro.features import ShardedWideTableBuilder

        tracer = observability.Tracer()
        previous = observability.set_tracer(tracer)
        try:
            builder = ShardedWideTableBuilder(world, num_shards=3, seed=0)
            builder.category("F1", 1)
        finally:
            observability.set_tracer(previous)
        shards = {
            span.tags.get("shard")
            for span in tracer.iter_spans()
            if span.name == "shard.widetable"
        }
        assert shards == {0, 1, 2}
