"""Run the library's embedded doctests so usage examples stay truthful."""

import doctest

import pytest

import repro.core.watchtower
import repro.dataplat.schema
import repro.dataplat.sql.engine
import repro.dataplat.table

MODULES = [
    repro.dataplat.schema,
    repro.dataplat.table,
    repro.dataplat.sql.engine,
    repro.core.watchtower,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
    assert results.failed == 0
