"""Tests for the experiment runners and the paper-shaped reports."""

import pytest

from repro.core import experiments as ex
from repro.core import reporting as rep
from repro.core.pipeline import ChurnPipeline
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def pipeline(small_world, small_scale, small_model):
    return ChurnPipeline(
        small_world, small_scale, categories=("F1",), model=small_model
    )


class TestDatasetExperiments:
    def test_fig1(self, small_world):
        data = ex.fig1_churn_rates(small_world)
        assert len(data["prepaid"]) == small_world.n_months
        assert sum(data["prepaid"]) / len(data["prepaid"]) > sum(
            data["postpaid"]
        ) / len(data["postpaid"])
        text = rep.report_fig1(data)
        assert "prepaid" in text and "postpaid" in text

    def test_table1(self, small_world):
        rows = ex.table1_dataset_stats(small_world)
        text = rep.report_table1(rows)
        assert "Table 1" in text
        assert str(rows[0]["total"]) in text

    def test_fig5(self, small_world):
        data = ex.fig5_recharge_distribution(small_world)
        assert data["fraction_beyond_grace"] < 0.05  # the paper's "<5%"
        assert rep.report_fig5(data).startswith("Figure 5")


class TestModelExperiments:
    def test_fig7_volume(self, pipeline):
        rows = ex.fig7_volume(pipeline, max_train_months=2, test_months=[6])
        assert [r["train_months"] for r in rows] == [1, 2]
        text = rep.report_fig7(rows, (50_000, 100_000, 200_000))
        assert "Volume" in text

    def test_fig7_needs_room(self, pipeline):
        with pytest.raises(ExperimentError):
            ex.fig7_volume(pipeline, max_train_months=0, test_months=[6])

    def test_table5_velocity(self, pipeline):
        rows = ex.table5_velocity(pipeline, test_months=[6])
        assert [r["stride_days"] for r in rows] == [30, 20, 10, 5]
        assert rows[0]["delta_pr_auc"] == 0.0
        assert "Velocity" in rep.report_table5(rows)

    def test_fig8_early_signals(self, pipeline):
        rows = ex.fig8_early_signals(pipeline, max_lead=2, test_months=[6])
        assert [r["lead_months"] for r in rows] == [1, 2]
        assert rows[1]["pr_auc"] < rows[0]["pr_auc"]
        assert "early signals" in rep.report_fig8(rows)

    def test_table3_and_table4(self, pipeline):
        data = ex.table3_overall(pipeline, test_month=6, n_train_months=2)
        assert 0.5 < data["auc"] <= 1.0
        text = rep.report_table3(data)
        assert "AUC" in text
        importance = ex.table4_importance(data["result"], top=5)
        assert len(importance) == 5
        assert importance[0]["importance"] >= importance[-1]["importance"]
        assert "Table 4" in rep.report_table4(importance)

    def test_table3_needs_history(self, pipeline):
        with pytest.raises(ExperimentError):
            ex.table3_overall(pipeline, test_month=2, n_train_months=4)

    def test_table7_imbalance(self, small_world, small_scale, small_model):
        rows = ex.table7_imbalance(
            small_world, small_scale, small_model, test_months=[6]
        )
        assert {r["strategy"] for r in rows} == {"none", "up", "down", "weighted"}
        assert "Weighted Instance" in rep.report_table7(rows)

    def test_table6_value(self, pipeline):
        campaigns = ex.table6_value(pipeline, months=(8, 9), seed=3)
        text = rep.report_table6(campaigns)
        assert "business value" in text
        assert "expert" in text and "matched" in text


class TestRendering:
    def test_render_table_alignment(self):
        text = rep.render_table(["a", "bbbb"], [["1", "2"], ["333", "4"]])
        lines = text.split("\n")
        assert len({len(line) for line in lines}) == 1  # rectangular
