"""Shared fixtures.

World simulation is the expensive part, so worlds are session-scoped and
shared read-only across test modules.  ``tiny_world`` is for structural
checks (fast); ``small_world`` for statistical/learning checks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig, ScaleConfig
from repro.datagen import TelcoSimulator
from repro.features import WideTableBuilder


TINY_SCALE = ScaleConfig(population=600, months=9, seed=11)
SMALL_SCALE = ScaleConfig(population=1500, months=9, seed=7)
SMALL_MODEL = ModelConfig(n_trees=12, min_samples_leaf=15, max_depth=10)


@pytest.fixture(scope="session")
def tiny_scale() -> ScaleConfig:
    return TINY_SCALE


@pytest.fixture(scope="session")
def small_scale() -> ScaleConfig:
    return SMALL_SCALE


@pytest.fixture(scope="session")
def small_model() -> ModelConfig:
    return SMALL_MODEL


@pytest.fixture(scope="session")
def tiny_world():
    return TelcoSimulator(TINY_SCALE).run()


@pytest.fixture(scope="session")
def small_world():
    return TelcoSimulator(SMALL_SCALE).run()


@pytest.fixture(scope="session")
def small_builder(small_world) -> WideTableBuilder:
    return WideTableBuilder(small_world)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
