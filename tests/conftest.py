"""Shared fixtures.

World simulation is the expensive part, so worlds are session-scoped and
shared read-only across test modules.  ``tiny_world`` is for structural
checks (fast); ``small_world`` for statistical/learning checks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig, ScaleConfig
from repro.datagen import TelcoSimulator
from repro.dataplat import observability
from repro.features import WideTableBuilder


TINY_SCALE = ScaleConfig(population=600, months=9, seed=11)
SMALL_SCALE = ScaleConfig(population=1500, months=9, seed=7)
SMALL_MODEL = ModelConfig(n_trees=12, min_samples_leaf=15, max_depth=10)


@pytest.fixture(scope="session")
def tiny_scale() -> ScaleConfig:
    return TINY_SCALE


@pytest.fixture(scope="session")
def small_scale() -> ScaleConfig:
    return SMALL_SCALE


@pytest.fixture(scope="session")
def small_model() -> ModelConfig:
    return SMALL_MODEL


@pytest.fixture(scope="session")
def tiny_world():
    return TelcoSimulator(TINY_SCALE).run()


@pytest.fixture(scope="session")
def small_world():
    return TelcoSimulator(SMALL_SCALE).run()


@pytest.fixture(scope="session")
def small_builder(small_world) -> WideTableBuilder:
    return WideTableBuilder(small_world)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


class SpanCapture:
    """Assertion helpers over one test's trace and metrics.

    Wraps the tracer/registry installed by the ``capture_spans`` fixture;
    tests assert on span structure via :meth:`assert_span` and on metric
    counters via :meth:`counter` without touching process-wide state.
    """

    def __init__(
        self, tracer: observability.Tracer, metrics: observability.MetricsRegistry
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics

    @property
    def roots(self):
        return self.tracer.roots

    def names(self) -> list[str]:
        """Every span name in document order (repeats included)."""
        return [s.name for s in self.tracer.iter_spans()]

    def find(self, name: str):
        return self.tracer.find(name)

    def assert_span(self, name: str, **tags) -> observability.Span:
        """The first span named ``name`` whose tags include ``tags``."""
        candidates = self.find(name)
        for span in candidates:
            if all(span.tags.get(k) == v for k, v in tags.items()):
                return span
        raise AssertionError(
            f"no span {name!r} with tags {tags}; "
            f"have {[(s.name, s.tags) for s in candidates] or self.names()}"
        )

    def counter(self, name: str) -> float:
        """Current value of a metrics-registry counter (0 if never touched)."""
        return self.metrics.counter(name).value


@pytest.fixture()
def capture_spans():
    """Install a fresh tracer + metrics registry; restore on teardown.

    Yields a :class:`SpanCapture`, so tests can exercise traced code paths
    and assert on the resulting span tree and counters in isolation.
    """
    tracer = observability.Tracer()
    previous_tracer = observability.set_tracer(tracer)
    previous_metrics = observability.set_metrics(observability.MetricsRegistry())
    try:
        yield SpanCapture(tracer, observability.get_metrics())
    finally:
        observability.set_tracer(previous_tracer)
        observability.set_metrics(previous_metrics)
