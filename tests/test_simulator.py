"""Tests for the telco world simulator — structure and statistical shape."""

import numpy as np
import pytest

from repro.config import PAPER, ScaleConfig
from repro.datagen import TelcoSimulator
from repro.datagen.simulator import MONTHLY_TABLES
from repro.dataplat.catalog import Catalog
from repro.errors import SimulationError


class TestStructure:
    def test_emits_all_tables_every_month(self, tiny_world):
        for data in tiny_world.months:
            assert set(data.tables) == set(MONTHLY_TABLES)

    def test_right_number_of_months(self, tiny_world, tiny_scale):
        assert tiny_world.n_months == tiny_scale.months

    def test_month_accessor_is_one_indexed(self, tiny_world):
        assert tiny_world.month(1).month == 1
        with pytest.raises(SimulationError):
            tiny_world.month(0)
        with pytest.raises(SimulationError):
            tiny_world.month(99)

    def test_per_customer_tables_have_population_rows(self, tiny_world, tiny_scale):
        n = tiny_scale.population
        data = tiny_world.month(3)
        for name in ("user_base", "cdr_monthly", "billing", "cs_kpi", "ps_kpi"):
            assert data.tables[name].num_rows == n

    def test_daily_table_has_30_rows_per_customer(self, tiny_world, tiny_scale):
        data = tiny_world.month(2)
        assert data.tables["cdr_daily"].num_rows == tiny_scale.population * 30

    def test_truth_arrays_aligned(self, tiny_world, tiny_scale):
        data = tiny_world.month(4)
        n = tiny_scale.population
        for arr in (data.churning_now, data.churn_next, data.eligible, data.risk):
            assert len(arr) == n
        assert data.offer_class is not None and len(data.offer_class) == n
        assert data.churn_reason is not None

    def test_eligibility_is_complement_of_churning(self, tiny_world):
        for data in tiny_world.months:
            assert np.array_equal(data.eligible, ~data.churning_now)

    def test_churn_handoff_between_months(self, tiny_world):
        for a, b in zip(tiny_world.months, tiny_world.months[1:]):
            assert np.array_equal(a.churn_next, b.churning_now)

    def test_reasons_only_for_churners(self, tiny_world):
        data = tiny_world.month(5)
        assert np.all((data.churn_reason > 0) == data.churn_next)

    def test_determinism(self, tiny_scale):
        a = TelcoSimulator(tiny_scale).run()
        b = TelcoSimulator(tiny_scale).run()
        assert np.array_equal(a.month(4).churn_next, b.month(4).churn_next)
        assert a.month(4).tables["billing"] == b.month(4).tables["billing"]

    def test_different_seeds_differ(self, tiny_scale):
        a = TelcoSimulator(tiny_scale).run()
        b = TelcoSimulator(ScaleConfig(
            population=tiny_scale.population,
            months=tiny_scale.months,
            seed=tiny_scale.seed + 1,
        )).run()
        assert not np.array_equal(a.month(4).churn_next, b.month(4).churn_next)


class TestRebirth:
    def test_churned_slots_get_new_imsi(self, tiny_world):
        m4, m5 = tiny_world.month(4), tiny_world.month(5)
        churned = np.flatnonzero(m4.churning_now)
        kept = np.flatnonzero(~m4.churning_now)
        assert np.all(m4.imsi[churned] != m5.imsi[churned])
        assert np.all(m4.imsi[kept] == m5.imsi[kept])

    def test_reborn_customers_have_fresh_tenure(self, tiny_world):
        m4, m5 = tiny_world.month(4), tiny_world.month(5)
        churned = np.flatnonzero(m4.churning_now)
        tenure_next = m5.tables["user_base"]["innet_dura"]
        assert np.all(tenure_next[churned] <= 2)

    def test_population_size_constant(self, tiny_world):
        sizes = {len(m.imsi) for m in tiny_world.months}
        assert len(sizes) == 1


class TestStatisticalShape:
    def test_churn_rate_near_paper(self, small_world):
        rates = [m.churn_rate for m in small_world.months]
        assert abs(np.mean(rates) - PAPER.prepaid_churn_rate) < 0.02

    def test_postpaid_rate_lower(self, small_world):
        prepaid = np.mean([m.churn_rate for m in small_world.months])
        postpaid = np.mean(small_world.postpaid_rates)
        assert postpaid < prepaid

    def test_prechurn_balance_depressed(self, small_world):
        data = small_world.month(5)
        balance = data.tables["billing"]["balance"]
        assert balance[data.churn_next].mean() < 0.6 * balance[~data.churn_next].mean()

    def test_prechurn_throughput_depressed(self, small_world):
        data = small_world.month(5)
        tp = data.tables["ps_kpi"]["page_download_throughput"]
        assert tp[data.churn_next].mean() < tp[~data.churn_next].mean()

    def test_churners_in_recharge_period_do_not_recharge(self, small_world):
        data = small_world.month(5)
        events = data.tables["recharge_events"]
        slots = small_world.population.slots_of(events["imsi"])
        recharging = np.zeros(small_world.population.size, dtype=bool)
        recharging[slots] = True
        assert not np.any(recharging & data.churning_now)

    def test_recharge_delays_match_labels(self, small_world):
        # Delay rule of the generator is exactly the labeling rule.
        data = small_world.month(6)
        rp = data.tables["recharge_period"]
        late = (rp["delay_days"] < 0) | (rp["delay_days"] > PAPER.churn_grace_days)
        assert np.array_equal(late, data.churning_now)

    def test_search_intent_tokens_for_churners(self, small_world):
        data = small_world.month(5)
        docs = data.tables["search_logs"]["doc"]
        def intent_share(mask):
            hits = total = 0
            for doc in docs[mask]:
                for token in str(doc).split():
                    total += 1
                    hits += token.startswith("srch_t0_")
            return hits / max(total, 1)
        assert intent_share(data.churn_next) > 2 * intent_share(~data.churn_next)

    def test_risk_separates_churners(self, small_world):
        data = small_world.month(5)
        assert data.risk[data.churn_next].mean() > data.risk[~data.churn_next].mean()


class TestCatalogExport:
    def test_load_catalog_creates_partitions(self, tiny_world):
        catalog = Catalog()
        tiny_world.load_catalog(catalog)
        assert set(catalog.tables("telco")) == set(MONTHLY_TABLES)
        months = catalog.partitions("cdr_monthly", database="telco")
        assert len(months) == tiny_world.n_months
        # recharge_period has the extra label month.
        assert len(catalog.partitions("recharge_period", database="telco")) == (
            tiny_world.n_months + 1
        )

    def test_final_recharge_table_accessible(self, tiny_world):
        table = tiny_world.recharge_period_for(tiny_world.n_months + 1)
        assert table.num_rows == tiny_world.population.size
