"""Deterministic load/soak tests for the scoring service.

A seeded open-loop arrival plan plus a :class:`FixedServiceTime` model
makes every run bit-for-bit reproducible: the soak assertions are on
exact outcomes, not statistical tendencies.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import numpy as np
import pytest

from repro.features.spec import FeatureMatrix
from repro.serve import (
    FeatureStore,
    FixedServiceTime,
    LoadProfile,
    ModelRegistry,
    ScoringService,
    ServeConfig,
    arrival_plan,
    drive,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

POPULATION = 1500
N_FEATURES = 8


class LinearStub:
    """Deterministic vectorized model; cheap enough for long soaks."""

    def __init__(self, n_features: int, seed: int = 0) -> None:
        self.w = np.random.default_rng(seed).normal(size=n_features)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-(x @ self.w)))


@pytest.fixture(scope="module")
def soak_store() -> tuple[FeatureStore, np.ndarray]:
    rng = np.random.default_rng(3)
    imsi = (10_000 + np.arange(POPULATION)).astype(np.int64)
    matrix = FeatureMatrix(
        imsi=imsi,
        names=[f"f{i}" for i in range(N_FEATURES)],
        values=rng.normal(size=(POPULATION, N_FEATURES)),
    )
    store = FeatureStore(cache_rows=POPULATION)
    store.materialize(matrix, "soak", buckets=8)
    return store, imsi


def make_service(store: FeatureStore, **config_overrides) -> ScoringService:
    registry = ModelRegistry()
    registry.publish("v1", LinearStub(N_FEATURES), activate=True)
    defaults = dict(
        max_batch=64,
        batch_window_s=0.005,
        max_queue_depth=512,
        default_deadline_s=0.250,
    )
    defaults.update(config_overrides)
    return ScoringService(
        store,
        registry,
        ServeConfig(**defaults),
        service_time=FixedServiceTime(base_s=0.002, per_row_s=0.00002),
    )


def run(store, imsi, rate_rps: float, **profile_overrides):
    service = make_service(store)
    profile = LoadProfile(
        rate_rps=rate_rps,
        duration_s=0.5,
        population=POPULATION,
        seed=11,
        **profile_overrides,
    )
    return drive(service, arrival_plan(profile, customer_ids=imsi))


class TestSoak:
    def test_no_request_dropped_without_response(self, soak_store):
        store, imsi = soak_store
        report = run(store, imsi, rate_rps=4000)
        assert report.submitted > 1500
        assert report.unaccounted == 0
        assert report.scored + report.unserved == report.submitted

    def test_batch_size_adapts_monotonically_with_load(self, soak_store):
        """Heavier offered load must never yield smaller mean batches."""
        store, imsi = soak_store
        means = [
            run(store, imsi, rate_rps=rate).mean_batch_size
            for rate in (500, 2000, 8000)
        ]
        assert means == sorted(means)
        assert means[-1] > means[0]  # adaptation actually happened

    def test_p99_under_budget_at_steady_state(self, soak_store):
        store, imsi = soak_store
        for rate in (500, 2000, 8000):
            report = run(store, imsi, rate_rps=rate)
            assert report.shed == 0 and report.expired == 0
            assert report.p99_s <= 0.050, f"p99 {report.p99_s} at {rate} rps"

    def test_runs_are_bit_for_bit_deterministic(self, soak_store):
        store, imsi = soak_store
        a = run(store, imsi, rate_rps=3000)
        b = run(store, imsi, rate_rps=3000)
        assert a.p50_s == b.p50_s and a.p99_s == b.p99_s
        assert (a.scored, a.shed, a.expired) == (b.scored, b.shed, b.expired)
        assert a.mean_batch_size == b.mean_batch_size

    def test_overload_sheds_instead_of_queueing_unboundedly(self, soak_store):
        """Offered load ~5x capacity: admission control must shed, the
        queue must respect its bound, and every request still terminates."""
        store, imsi = soak_store
        registry = ModelRegistry()
        registry.publish("v1", LinearStub(N_FEATURES), activate=True)
        service = ScoringService(
            store,
            registry,
            ServeConfig(
                max_batch=4, batch_window_s=0.002, max_queue_depth=16
            ),
            # capacity ≈ 4 rows / 10.08 ms ≈ 400 req/s
            service_time=FixedServiceTime(base_s=0.010, per_row_s=0.00002),
        )
        profile = LoadProfile(
            rate_rps=2000, duration_s=0.5, population=POPULATION, seed=4
        )
        report = drive(service, arrival_plan(profile, customer_ids=imsi))
        assert report.unaccounted == 0
        assert report.shed > 0
        assert report.max_queue_depth <= 16
        # Scored requests stayed within a bounded-queue latency envelope.
        assert report.max_latency_s < 0.2


class TestLoadGenDeterminism:
    def test_plan_is_seed_deterministic(self):
        profile = LoadProfile(rate_rps=1000, duration_s=0.3, population=100, seed=9)
        a = arrival_plan(profile)
        b = arrival_plan(profile)
        assert np.array_equal(a.times_s, b.times_s)
        assert np.array_equal(a.customer_ids, b.customer_ids)

    def test_hot_set_receives_its_traffic_share(self):
        profile = LoadProfile(
            rate_rps=5000,
            duration_s=1.0,
            population=1000,
            seed=2,
            hot_fraction=0.05,
            hot_weight=0.5,
        )
        plan = arrival_plan(profile)
        hot_cut = profile.id_base + int(1000 * 0.05)
        hot_share = float(np.mean(plan.customer_ids < hot_cut))
        # 50% routed to the hot set plus the cold picks that land there.
        assert 0.45 < hot_share < 0.60

    def test_open_loop_rate_is_respected(self):
        profile = LoadProfile(rate_rps=2000, duration_s=1.0, population=50, seed=0)
        plan = arrival_plan(profile)
        assert 1800 < plan.n_requests < 2200
        assert plan.times_s.max() < 1.0
        assert np.all(np.diff(plan.times_s) >= 0)


class TestBenchWiring:
    def test_cli_emits_gateable_json(self):
        out = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "benchmarks" / "load_gen.py"),
                "--population", "400",
                "--rate", "2000",
                "--duration", "0.25",
                "--json",
            ],
            capture_output=True,
            text=True,
            check=True,
            cwd=REPO_ROOT,
        )
        section = json.loads(out.stdout)
        for key in (
            "requests",
            "throughput_rps",
            "p50_ms",
            "p99_ms",
            "shed",
            "floor",
        ):
            assert key in section
        assert section["floor"] == {"throughput_rps": 5000.0, "p99_ms": 50.0}
        assert (
            section["scored"]
            + section["shed"]
            + section["expired"]
            + section["failed"]
            == section["requests"]
        )
