"""Tests for model/feature drift monitoring."""

import numpy as np
import pytest

from repro.core.monitoring import (
    PSI_ALERT,
    PSI_WATCH,
    DriftFinding,
    ModelMonitor,
    MonitoringReport,
    population_stability_index,
)
from repro.errors import ExperimentError


class TestPSI:
    def test_identical_samples_near_zero(self, rng):
        x = rng.normal(size=5000)
        assert population_stability_index(x, x) < 0.01

    def test_same_distribution_small(self, rng):
        a = rng.normal(size=5000)
        b = rng.normal(size=5000)
        assert population_stability_index(a, b) < PSI_WATCH

    def test_mean_shift_detected(self, rng):
        a = rng.normal(0, 1, size=5000)
        b = rng.normal(1.0, 1, size=5000)
        assert population_stability_index(a, b) > PSI_ALERT

    def test_variance_shift_detected(self, rng):
        a = rng.normal(0, 1, size=5000)
        b = rng.normal(0, 3, size=5000)
        assert population_stability_index(a, b) > PSI_WATCH

    def test_symmetric_enough(self, rng):
        a = rng.normal(0, 1, size=5000)
        b = rng.normal(0.5, 1, size=5000)
        ab = population_stability_index(a, b)
        ba = population_stability_index(b, a)
        assert ab == pytest.approx(ba, rel=0.3)

    def test_constant_reference(self):
        a = np.full(100, 2.0)
        assert population_stability_index(a, a) == 0.0
        assert population_stability_index(a, np.full(50, 3.0)) == float("inf")

    def test_validation(self, rng):
        with pytest.raises(ExperimentError):
            population_stability_index(np.array([]), np.array([1.0]))
        with pytest.raises(ExperimentError):
            population_stability_index(np.ones(5), np.ones(5), n_bins=1)

    def test_low_cardinality_features(self, rng):
        a = rng.integers(0, 3, size=2000).astype(float)
        b = rng.integers(0, 3, size=2000).astype(float)
        assert population_stability_index(a, b) < PSI_WATCH

    def test_degenerate_quantile_bins_regression(self):
        """A near-constant reference must still see a wholesale shift.

        99 % of the reference sits at one value, so every decile edge
        collapses onto it and the old binning scored a complete shift of
        the current sample (to the rare value) as ~0.  The 2-bin midpoint
        fallback makes the mass movement visible.
        """
        reference = np.array([5.0] * 99 + [0.0])
        current = np.zeros(200)
        assert population_stability_index(reference, current) > PSI_ALERT
        # And the mirrored degenerate case (mass at the low end).
        reference = np.array([0.0] * 99 + [5.0])
        current = np.full(200, 5.0)
        assert population_stability_index(reference, current) > PSI_ALERT

    def test_degenerate_bins_stable_when_unchanged(self):
        reference = np.array([5.0] * 99 + [0.0])
        assert population_stability_index(reference, reference) < PSI_WATCH


class TestDriftFinding:
    @pytest.mark.parametrize(
        "psi,level", [(0.01, "ok"), (0.15, "watch"), (0.5, "ALERT")]
    )
    def test_levels(self, psi, level):
        assert DriftFinding("f", psi).level == level

    @pytest.mark.parametrize(
        "psi,level",
        [
            (PSI_WATCH - 1e-9, "ok"),
            (PSI_WATCH, "watch"),
            (PSI_ALERT - 1e-9, "watch"),
            (PSI_ALERT, "ALERT"),
            (float("inf"), "ALERT"),
        ],
    )
    def test_tier_boundaries(self, psi, level):
        """Band edges are inclusive upward: PSI == band -> higher tier."""
        assert DriftFinding("f", psi).level == level

    def test_infinite_psi_from_constant_reference_shift(self):
        """A constant feature that moves at all is an immediate ALERT."""
        psi = population_stability_index(np.full(100, 2.0), np.full(80, 2.5))
        finding = DriftFinding("constant_feature", psi)
        assert psi == float("inf")
        assert finding.level == "ALERT"


class TestModelMonitor:
    def test_stable_world_is_healthy(self, small_world):
        """Adjacent simulated months drift very little."""
        from repro.features import WideTableBuilder

        builder = WideTableBuilder(small_world)
        ref = builder.category("F1", 4)
        cur = builder.category("F1", 5)
        monitor = ModelMonitor(
            list(ref.names), ref.values, reference_label="month 4"
        )
        report = monitor.compare(cur.values, current_label="month 5")
        assert report.healthy
        assert len(report.feature_findings) == ref.n_features

    def test_injected_drift_caught(self, small_world, rng):
        from repro.features import WideTableBuilder

        builder = WideTableBuilder(small_world)
        ref = builder.category("F1", 4)
        cur = builder.category("F1", 5).values.copy()
        j = ref.names.index("balance")
        cur[:, j] = cur[:, j] * 4.0 + 50.0  # a broken upstream pipeline
        monitor = ModelMonitor(list(ref.names), ref.values)
        report = monitor.compare(cur)
        assert not report.healthy
        assert report.worst_features[0].name == "balance"

    def test_score_drift_tracked(self, rng):
        monitor = ModelMonitor(
            ["a"],
            rng.normal(size=(1000, 1)),
            reference_scores=rng.beta(2, 8, size=1000),
        )
        report = monitor.compare(
            rng.normal(size=(1000, 1)),
            current_scores=rng.beta(8, 2, size=1000),
        )
        assert report.score_finding is not None
        assert report.score_finding.level == "ALERT"

    def test_churn_rate_carried(self, rng):
        monitor = ModelMonitor(
            ["a"], rng.normal(size=(100, 1)), reference_churn_rate=0.09
        )
        report = monitor.compare(
            rng.normal(size=(100, 1)), current_churn_rate=0.12
        )
        assert report.reference_churn_rate == 0.09
        assert report.current_churn_rate == 0.12

    def test_render(self, rng):
        monitor = ModelMonitor(["a", "b"], rng.normal(size=(500, 2)))
        report = monitor.compare(rng.normal(size=(500, 2)))
        text = report.render()
        assert "Model monitoring" in text
        assert "HEALTHY" in text

    def test_render_golden(self):
        """Exact operator-report text for a hand-built report."""
        report = MonitoringReport(
            reference_label="month 4",
            current_label="month 5",
            feature_findings=[
                DriftFinding("balance", 0.3012),
                DriftFinding("total_charge", 0.1599),
                DriftFinding("tcp_rtt", 0.0123),
            ],
            score_finding=DriftFinding("model_score", 0.05),
            reference_churn_rate=0.04,
            current_churn_rate=0.055,
        )
        assert report.render(top=2) == (
            "Model monitoring: month 4 -> month 5\n"
            "  churn rate: 4.00% -> 5.50%\n"
            "  score drift: PSI=0.0500 [ok]\n"
            "  top drifting features (of 3):\n"
            "    balance                                  PSI=0.3012 [ALERT]\n"
            "    total_charge                             PSI=0.1599 [watch]\n"
            "  status: 1 ALERT(S) — retrain/investigate"
        )

    def test_shape_validation(self, rng):
        with pytest.raises(ExperimentError):
            ModelMonitor(["a"], rng.normal(size=(10, 2)))
        monitor = ModelMonitor(["a"], rng.normal(size=(10, 1)))
        with pytest.raises(ExperimentError):
            monitor.compare(rng.normal(size=(10, 3)))
