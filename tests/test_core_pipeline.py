"""Tests for the predictor facade and the end-to-end pipeline."""

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core.pipeline import ChurnPipeline, WindowResult, average_results
from repro.core.predictor import CLASSIFIERS, ChurnPredictor
from repro.core.window import WindowSpec
from repro.errors import ExperimentError, ModelError, NotFittedError


@pytest.fixture(scope="module")
def pipeline(small_world, small_scale, small_model):
    return ChurnPipeline(
        small_world, small_scale, categories=("F1",), model=small_model
    )


@pytest.fixture(scope="module")
def result(pipeline) -> WindowResult:
    return pipeline.run_window(WindowSpec((5,), 6))


class TestChurnPredictor:
    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(800, 6))
        y = (rng.random(800) < 1 / (1 + np.exp(-2 * x[:, 0]))).astype(int)
        return x, y

    @pytest.mark.parametrize("classifier", CLASSIFIERS)
    def test_every_classifier_learns(self, data, classifier):
        from repro.ml.metrics import roc_auc

        x, y = data
        model = ChurnPredictor(
            classifier, ModelConfig(n_trees=10, min_samples_leaf=10)
        )
        model.fit(x[:600], y[:600])
        assert roc_auc(y[600:], model.predict_proba(x[600:])) > 0.7

    def test_linear_models_binarize(self, data):
        x, y = data
        model = ChurnPredictor("liblinear")
        assert model.is_linear
        model.fit(x, y)
        # The underlying LR was fitted on one-hot features, not raw ones.
        assert len(model._model.coef_) > x.shape[1]

    def test_top_u(self, data):
        x, y = data
        model = ChurnPredictor("rf", ModelConfig(n_trees=5)).fit(x, y)
        top = model.top_u(x, 10)
        assert len(top) == 10
        p = model.predict_proba(x)
        assert p[top].min() >= np.sort(p)[-10:].min() - 1e-12

    def test_rank_is_descending(self, data):
        x, y = data
        model = ChurnPredictor("rf", ModelConfig(n_trees=5)).fit(x, y)
        p = model.predict_proba(x)
        assert np.all(np.diff(p[model.rank(x)]) <= 1e-12)

    def test_importances_only_for_rf(self, data):
        x, y = data
        gb = ChurnPredictor("gbdt", ModelConfig(n_trees=5)).fit(x, y)
        with pytest.raises(ModelError):
            gb.feature_importances_

    def test_unknown_classifier(self):
        with pytest.raises(ModelError):
            ChurnPredictor("xgboost")

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            ChurnPredictor("rf").predict_proba(np.zeros((1, 2)))

    def test_feature_width_checked(self, data):
        x, y = data
        model = ChurnPredictor("rf", ModelConfig(n_trees=3)).fit(x, y)
        with pytest.raises(ModelError):
            model.predict_proba(np.zeros((2, 99)))


class TestPipeline:
    def test_window_result_fields(self, result, small_world):
        assert 0.5 < result.auc <= 1.0
        assert 0.0 < result.pr_auc <= 1.0
        assert len(result.scores) == len(result.labels) == len(result.test_slots)
        assert set(result.recall_at) == {50_000, 100_000, 200_000}

    def test_scored_population_is_eligible_only(self, result, small_world):
        eligible = small_world.month(6).eligible
        assert np.all(eligible[result.test_slots])

    def test_labels_match_truth(self, result, small_world):
        truth = small_world.month(6).churn_next[result.test_slots]
        assert np.array_equal(result.labels.astype(bool), truth)

    def test_metric_accessor(self, result):
        assert result.metric("auc") == result.auc
        assert result.metric("recall", 50_000) == result.recall_at[50_000]
        with pytest.raises(ExperimentError):
            result.metric("recall")
        with pytest.raises(ExperimentError):
            result.metric("f1")

    def test_learns_better_than_chance(self, result):
        assert result.auc > 0.75
        base_rate = result.labels.mean()
        assert result.pr_auc > 2 * base_rate

    def test_more_training_months_help(self, pipeline):
        one = pipeline.run_window(WindowSpec((5,), 6))
        four = pipeline.run_window(WindowSpec((2, 3, 4, 5), 6))
        assert four.auc > one.auc - 0.03  # volume should not hurt

    def test_run_windows_repeats(self, pipeline):
        results = pipeline.run_windows(n_train_months=1, test_months=[5, 6])
        assert [r.spec.test_month for r in results] == [5, 6]

    def test_average_results(self, pipeline):
        results = pipeline.run_windows(n_train_months=1, test_months=[5, 6])
        avg = average_results(results)
        assert avg["auc"] == pytest.approx(np.mean([r.auc for r in results]))
        assert average_results([]) if False else True
        with pytest.raises(ExperimentError):
            average_results([])

    def test_unknown_category_rejected(self, small_world, small_scale):
        with pytest.raises(ExperimentError):
            ChurnPipeline(small_world, small_scale, categories=("F0",))

    def test_labels_cached(self, pipeline):
        a = pipeline.labels(5)
        b = pipeline.labels(5)
        assert a is b


class TestVelocity:
    def test_velocity_window_runs(self, pipeline):
        # Velocity features deliberately exclude the in-flight month's
        # monthly aggregates (no leak), so absolute levels sit well below
        # the full baseline; above-chance is what matters here.
        result = pipeline.run_velocity_window(6, staleness_days=10)
        assert result.auc > 0.55

    def test_fresher_is_not_worse(self, pipeline):
        stale = pipeline.run_velocity_window(6, staleness_days=15)
        fresh = pipeline.run_velocity_window(6, staleness_days=2)
        assert fresh.pr_auc >= stale.pr_auc - 0.05

    def test_staleness_validated(self, pipeline):
        with pytest.raises(ExperimentError):
            pipeline.run_velocity_window(6, staleness_days=30)
        with pytest.raises(ExperimentError):
            pipeline.run_velocity_window(6, staleness_days=-1)

    def test_month_bounds_validated(self, pipeline):
        with pytest.raises(ExperimentError):
            pipeline.run_velocity_window(2, staleness_days=5)


class TestLeads:
    def test_longer_lead_is_harder(self, pipeline):
        lead1 = pipeline.run_window(WindowSpec((5,), 6, lead=1))
        lead2 = pipeline.run_window(WindowSpec((4,), 6, lead=2))
        assert lead2.auc < lead1.auc
        assert lead2.pr_auc < lead1.pr_auc
