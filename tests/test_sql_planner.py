"""Unit tests for plan building and the optimizer rules."""

import numpy as np
import pytest

from repro.dataplat.catalog import Catalog
from repro.dataplat.sql import SQLEngine
from repro.dataplat.sql.parser import parse
from repro.dataplat.sql.plan import Aggregate, Filter, Join, Limit, Project, Scan, Sort
from repro.dataplat.sql.planner import build_plan, optimize
from repro.dataplat.table import Table


def find_nodes(plan, cls) -> list:
    out = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, cls):
            out.append(node)
        stack.extend(node.children())
    return out


class TestBuildPlan:
    def test_simple_select_shape(self):
        plan = build_plan(parse("SELECT a FROM t WHERE a > 1"))
        assert isinstance(plan, Project)
        assert isinstance(plan.child, Filter)
        assert isinstance(plan.child.child, Scan)

    def test_aggregate_detected_from_select_list(self):
        plan = build_plan(parse("SELECT SUM(a) FROM t"))
        assert isinstance(plan, Aggregate)

    def test_group_by_creates_aggregate(self):
        plan = build_plan(parse("SELECT k FROM t GROUP BY k"))
        assert isinstance(plan, Aggregate)

    def test_order_and_limit_stack(self):
        # Sort sits below the projection (ORDER BY may use source columns
        # the projection drops); Limit caps the projected output.
        plan = build_plan(parse("SELECT a FROM t ORDER BY b LIMIT 3"))
        assert isinstance(plan, Limit)
        assert isinstance(plan.child, Project)
        assert isinstance(plan.child.child, Sort)

    def test_order_by_alias_rewritten(self):
        plan = build_plan(parse("SELECT a + 1 AS b FROM t ORDER BY b"))
        sort = find_nodes(plan, Sort)[0]
        # The alias reference was replaced by the aliased expression.
        assert sort.order_by[0].expr.columns() == {"a"}

    def test_joins_left_deep(self):
        plan = build_plan(
            parse("SELECT * FROM a JOIN b ON a.k = b.k JOIN c ON a.k = c.k")
        )
        joins = find_nodes(plan, Join)
        assert len(joins) == 2


class TestPredicatePushdown:
    def test_single_side_predicate_moves_below_join(self):
        plan = optimize(
            build_plan(
                parse(
                    "SELECT * FROM a JOIN b ON a.k = b.k "
                    "WHERE a.x > 1 AND b.y < 2"
                )
            )
        )
        join = find_nodes(plan, Join)[0]
        assert isinstance(join.left, Filter)
        assert isinstance(join.right, Filter)
        # Nothing remains above the join.
        assert not isinstance(plan.child if hasattr(plan, "child") else plan, Filter) or True

    def test_cross_side_predicate_stays_above(self):
        plan = optimize(
            build_plan(
                parse("SELECT * FROM a JOIN b ON a.k = b.k WHERE a.x > b.y")
            )
        )
        filters = find_nodes(plan, Filter)
        join = find_nodes(plan, Join)[0]
        assert len(filters) == 1
        assert not isinstance(join.left, Filter)
        assert not isinstance(join.right, Filter)

    def test_left_join_right_predicate_not_pushed(self):
        plan = optimize(
            build_plan(
                parse("SELECT * FROM a LEFT JOIN b ON a.k = b.k WHERE b.y = 1")
            )
        )
        join = find_nodes(plan, Join)[0]
        assert not isinstance(join.right, Filter)

    def test_unqualified_predicate_not_pushed(self):
        plan = optimize(
            build_plan(parse("SELECT * FROM a JOIN b ON a.k = b.k WHERE x > 1"))
        )
        join = find_nodes(plan, Join)[0]
        assert not isinstance(join.left, Filter)
        assert not isinstance(join.right, Filter)


class TestProjectionPruning:
    def test_scan_reads_only_referenced_columns(self):
        plan = optimize(build_plan(parse("SELECT a FROM t WHERE b > 1")))
        scan = find_nodes(plan, Scan)[0]
        assert scan.columns is not None
        assert set(scan.columns) == {"a", "b"}

    def test_select_star_reads_everything(self):
        plan = optimize(build_plan(parse("SELECT * FROM t")))
        scan = find_nodes(plan, Scan)[0]
        assert scan.columns is None

    def test_join_scans_pruned_per_side(self):
        plan = optimize(
            build_plan(
                parse(
                    "SELECT u.a, SUM(c.v) AS s FROM users u "
                    "JOIN cdr c ON u.k = c.k GROUP BY u.a"
                )
            )
        )
        scans = {s.binding: s for s in find_nodes(plan, Scan)}
        assert set(scans["u"].columns) == {"a", "k"}
        assert set(scans["c"].columns) == {"k", "v"}


class TestPrunedPlansStillExecute:
    def test_results_identical_with_and_without_optimizer(self):
        eng = SQLEngine()
        eng.register(
            Table.from_arrays(
                k=np.array([1, 2, 3]), a=np.array([1.0, 2.0, 3.0]),
                unused=np.array([9, 9, 9]),
            ),
            "t",
        )
        sql = "SELECT k, a * 2 AS d FROM t WHERE a > 1 ORDER BY k"
        from repro.dataplat.sql.executor import Executor

        raw = Executor(eng.catalog).execute(eng.plan(sql, optimized=False))
        opt = Executor(eng.catalog).execute(eng.plan(sql, optimized=True))
        assert raw == opt


class TestNullPredicatePushdown:
    """IS [NOT] NULL conjuncts become storage-level scan predicates."""

    def _scan_preds(self, sql):
        plan = optimize(build_plan(parse(sql)))
        scan = find_nodes(plan, Scan)[0]
        return {(p.column, p.op) for p in scan.predicate}

    def test_is_null_pushed(self):
        preds = self._scan_preds("SELECT a FROM t WHERE b IS NULL")
        assert ("b", "isnull") in preds

    def test_is_not_null_pushed(self):
        preds = self._scan_preds("SELECT a FROM t WHERE b IS NOT NULL")
        assert ("b", "notnull") in preds

    def test_null_check_on_expression_not_pushed(self):
        preds = self._scan_preds("SELECT a FROM t WHERE a + b IS NULL")
        assert preds == set()

    def test_is_null_prunes_nan_free_partitions(self):
        # Int columns record null_count 0 in every zone map, so IS NULL
        # over them prunes all partitions and returns an empty result with
        # the right schema.
        catalog = Catalog()
        for month in (1, 2):
            catalog.save(
                Table.from_arrays(
                    month=np.full(100, month, dtype=np.int64),
                    v=np.arange(100, dtype=np.float64),
                ),
                "cdr",
                partition=f"month={month}",
            )
        engine = SQLEngine(catalog)
        pruned_before = catalog.store.health.partitions_pruned
        out = engine.query("SELECT v FROM cdr WHERE month IS NULL")
        assert out.num_rows == 0
        assert out.schema.names == ("v",)
        assert catalog.store.health.partitions_pruned > pruned_before

    def test_is_null_keeps_partitions_with_nans(self):
        catalog = Catalog()
        clean = np.arange(100, dtype=np.float64)
        dirty = clean.copy()
        dirty[::10] = np.nan
        catalog.save(
            Table.from_arrays(v=clean, k=np.zeros(100, dtype=np.int64)),
            "m", partition="p0",
        )
        catalog.save(
            Table.from_arrays(v=dirty, k=np.ones(100, dtype=np.int64)),
            "m", partition="p1",
        )
        engine = SQLEngine(catalog)
        out = engine.query("SELECT k FROM m WHERE v IS NULL")
        assert out.num_rows == 10
        assert set(int(x) for x in out["k"]) == {1}
        nonnull = engine.query("SELECT k FROM m WHERE v IS NOT NULL")
        assert nonnull.num_rows == 190

    def test_pruned_empty_scan_evaluates_like(self):
        # Regression: a fully pruned scan feeds 0 rows into the filter;
        # NOT LIKE's regex path must still produce a boolean mask there.
        catalog = Catalog()
        catalog.save(
            Table.from_arrays(
                grp=np.arange(10, dtype=np.int64),
                cat=np.asarray(list("abcdefghij"), dtype=object),
            ),
            "t", partition="p0",
        )
        engine = SQLEngine(catalog)
        out = engine.query(
            "SELECT cat FROM t WHERE cat NOT LIKE '_x' AND grp IS NULL"
        )
        assert out.num_rows == 0
