"""Systematic crash-consistency sweep over every enumerated crash point.

Each scenario runs once unarmed to enumerate the crash points its write
path passes (block-store mutations plus the catalog commit-protocol
steps), then once per point with ``CrashPoint.raise_at(k)`` armed.  After
every simulated crash the catalog is reopened over the surviving store
and the crash-consistency invariants are asserted:

* ``Catalog.open`` succeeds and every registered partition loads;
* no staging files or torn manifests survive recovery;
* a second fsck pass finds nothing (recovery converged);
* the partition is in exactly its pre-state or post-state, decided by
  whether the crash fell before or after the commit record — on a
  volatile store (unsynced writes lost at crash) the same rule holds
  under ``fsync="commit"``, which is the durability claim.

A hypothesis property additionally tears the last written file at an
arbitrary byte offset before recovery, simulating torn writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ExecutorConfig
from repro.dataplat.blockstore import BlockStore
from repro.dataplat.catalog import Catalog
from repro.dataplat.dataset import Dataset
from repro.dataplat.executor import make_backend
from repro.dataplat.journal import Durability, fsck_store
from repro.dataplat.resilience import CrashPoint, FaultInjector, SimulatedCrash
from repro.dataplat.table import Table


def make_table(seed: int, n: int = 16) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_arrays(
        imsi=np.arange(n, dtype=np.int64),
        dur=rng.integers(0, 100, size=n),
    )


@dataclass(frozen=True)
class Scenario:
    """One crashed operation with recognizable pre/post states."""

    name: str
    setup: Callable[[Catalog], None]
    op: Callable[[Catalog], None]
    commit_label: str
    is_old: Callable[[Catalog], bool]
    is_new: Callable[[Catalog], bool]


def _loads(catalog: Catalog, name: str, seed: int, partition=None) -> bool:
    try:
        return catalog.load(name, partition=partition) == make_table(seed)
    except Exception:
        return False


SCENARIOS = [
    Scenario(
        name="fresh-v2-partition",
        setup=lambda c: c.save(make_table(1), "t", partition="m=1"),
        op=lambda c: c.save(make_table(2), "t", partition="m=2"),
        commit_label="catalog.save.commit",
        is_old=lambda c: c.partitions("t") == ["m=1"]
        and _loads(c, "t", 1, "m=1"),
        is_new=lambda c: c.partitions("t") == ["m=1", "m=2"]
        and _loads(c, "t", 1, "m=1")
        and _loads(c, "t", 2, "m=2"),
    ),
    Scenario(
        name="v2-overwrite",
        setup=lambda c: c.save(make_table(1), "t"),
        op=lambda c: c.save(make_table(2), "t", overwrite=True),
        commit_label="catalog.save.commit",
        is_old=lambda c: _loads(c, "t", 1),
        is_new=lambda c: _loads(c, "t", 2),
    ),
    Scenario(
        name="v1-overwrite",
        setup=lambda c: c.save(make_table(1), "t", format="v1"),
        op=lambda c: c.save(make_table(2), "t", format="v1", overwrite=True),
        commit_label="catalog.save.commit",
        is_old=lambda c: _loads(c, "t", 1),
        is_new=lambda c: _loads(c, "t", 2),
    ),
    Scenario(
        name="migrate-v1-to-v2",
        setup=lambda c: c.save(make_table(1), "t", format="v1"),
        op=lambda c: c.save(make_table(2), "t", format="v2", overwrite=True),
        commit_label="catalog.save.commit",
        is_old=lambda c: _loads(c, "t", 1),
        is_new=lambda c: _loads(c, "t", 2)
        and not c.store.exists("/warehouse/default/t/__all__.npz"),
    ),
    Scenario(
        name="migrate-v2-to-v1",
        setup=lambda c: c.save(make_table(1), "t", format="v2"),
        op=lambda c: c.save(make_table(2), "t", format="v1", overwrite=True),
        commit_label="catalog.save.commit",
        is_old=lambda c: _loads(c, "t", 1),
        is_new=lambda c: _loads(c, "t", 2)
        and c.partition_files("t") == ["/warehouse/default/t/__all__.npz"],
    ),
    Scenario(
        name="drop-partition",
        setup=lambda c: (
            c.save(make_table(1), "t", partition="m=1"),
            c.save(make_table(2), "t", partition="m=2"),
        ),
        op=lambda c: c.drop_partition("t", "m=1"),
        commit_label="catalog.drop.commit",
        is_old=lambda c: c.partitions("t") == ["m=1", "m=2"],
        is_new=lambda c: c.partitions("t") == ["m=2"]
        and _loads(c, "t", 2, "m=2"),
    ),
]

VARIANTS = ["durable", "volatile-commit"]


def build_world(variant: str) -> tuple[Catalog, CrashPoint]:
    crash = CrashPoint()
    store = BlockStore(
        fault_injector=FaultInjector(crash_point=crash),
        volatile=variant.startswith("volatile"),
    )
    return Catalog(store=store), crash


def assert_recovered_invariants(store: BlockStore, catalog: Catalog) -> None:
    """What must hold after *any* crash + recovery."""
    for database in catalog.databases():
        for name in catalog.tables(database):
            catalog.load(name, database=database)  # all partitions readable
    assert not [
        p for p in store.list_files("/warehouse/") if ".staging" in p
    ], "staging residue survived recovery"
    after = fsck_store(store)
    assert after.clean, f"recovery did not converge: {after.render()}"


@pytest.mark.parametrize("variant", VARIANTS)
@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
def test_crash_at_every_point(scenario: Scenario, variant: str):
    # Enumeration run: no crash, collect the op's hit sequence.
    catalog, crash = build_world(variant)
    scenario.setup(catalog)
    catalog.store.fsync_all()
    crash.reset()
    scenario.op(catalog)
    labels = [label for label, _ in crash.visited]
    assert scenario.commit_label in labels, labels
    commit_hit = 1 + labels.index(scenario.commit_label)
    total = crash.hits
    assert total >= 5, f"suspiciously few crash points: {labels}"

    for k in range(1, total + 1):
        catalog, crash = build_world(variant)
        scenario.setup(catalog)
        catalog.store.fsync_all()  # setup is the durable baseline
        crash.reset()
        crash.raise_at(k)
        with pytest.raises(SimulatedCrash):
            scenario.op(catalog)
        store = catalog.store
        if variant.startswith("volatile"):
            store.crash()  # unsynced writes vanish with the process
        reopened = Catalog.open(store)
        assert_recovered_invariants(store, reopened)
        # The commit record is written and fsynced exactly at the commit
        # hit, so the crash index decides which state must survive.
        expected_new = k >= commit_hit
        where = f"{scenario.name}/{variant} crash at hit {k} ({labels[k-1]})"
        if expected_new:
            assert scenario.is_new(reopened), f"{where}: post-state lost"
        else:
            assert scenario.is_old(reopened), f"{where}: pre-state damaged"


def test_fsync_never_loses_commits_but_stays_consistent():
    """``fsync="never"``: the whole op may vanish, never half of it."""
    durability = Durability(fsync="never")
    crash = CrashPoint()
    store = BlockStore(
        fault_injector=FaultInjector(crash_point=crash), volatile=True
    )
    catalog = Catalog(store=store, durability=durability)
    catalog.save(make_table(1), "t")
    store.fsync_all()
    crash.reset()
    catalog.save(make_table(2), "t", overwrite=True)  # completes fully...
    store.crash()  # ...but nothing was synced: the volatile crash eats it
    reopened = Catalog.open(store)
    assert_recovered_invariants(store, reopened)
    assert reopened.load("t") == make_table(1)


@settings(max_examples=30, deadline=None)
@given(
    hit_fraction=st.floats(0.0, 1.0),
    torn_fraction=st.floats(0.0, 1.0),
)
def test_any_write_prefix_with_torn_tail_recovers(
    hit_fraction: float, torn_fraction: float
):
    """Property: crash anywhere, tear the last written file at any byte
    offset, and recovery still lands in the old or the new state."""
    catalog, crash = build_world("durable")
    catalog.save(make_table(1), "t")
    crash.reset()
    catalog.save(make_table(2), "t", overwrite=True)
    total = crash.hits
    k = 1 + round(hit_fraction * (total - 1))

    catalog, crash = build_world("durable")
    catalog.save(make_table(1), "t")
    crash.reset()
    crash.raise_at(k)
    with pytest.raises(SimulatedCrash):
        catalog.save(make_table(2), "t", overwrite=True)
    store = catalog.store
    written = [
        detail
        for label, detail in crash.visited
        if label == "blockstore.write" and store.exists(detail)
    ]
    if written:
        size = len(store.read(written[-1]))
        store.truncate(written[-1], round(size * torn_fraction))
    reopened = Catalog.open(store)
    assert_recovered_invariants(store, reopened)
    assert _loads(reopened, "t", 1) or _loads(reopened, "t", 2)


def test_recovered_catalog_serves_configured_backend():
    """The CI crash matrix runs under REPRO_BACKEND=serial|process; a
    recovered catalog must feed either executor identically."""
    catalog, crash = build_world("durable")
    catalog.save(make_table(1), "t")
    crash.reset()
    crash.raise_at(4)  # somewhere mid-protocol; any point works here
    with pytest.raises(SimulatedCrash):
        catalog.save(make_table(2), "t", overwrite=True)
    reopened = Catalog.open(catalog.store)
    table = reopened.load("t")
    backend = make_backend(ExecutorConfig.from_env())
    try:
        out = Dataset.from_table(table, num_partitions=3).collect(
            backend=backend
        )
        assert out == table
    finally:
        backend.close()
