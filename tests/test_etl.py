"""Unit tests for ETL jobs."""

import pytest

from repro.dataplat.catalog import Catalog
from repro.dataplat.etl import ETLJob, QUARANTINE_SUFFIX, run_pipeline
from repro.dataplat.schema import Schema
from repro.errors import ETLError


@pytest.fixture()
def catalog() -> Catalog:
    return Catalog()


@pytest.fixture()
def schema() -> Schema:
    return Schema.of(imsi="int", dur="float", kind="string")


class TestETLJob:
    def test_clean_records_loaded(self, catalog, schema):
        job = ETLJob(schema, "cdr")
        records = [
            {"imsi": 1, "dur": 2.5, "kind": "local"},
            {"imsi": 2, "dur": 0.0, "kind": "roam"},
        ]
        stats = job.run(records, catalog)
        assert stats.rows_read == 2
        assert stats.rows_loaded == 2
        assert stats.rows_rejected == 0
        table = catalog.load("cdr")
        assert table.num_rows == 2
        assert table["dur"].tolist() == [2.5, 0.0]

    def test_missing_column_rejected_and_counted(self, catalog, schema):
        job = ETLJob(schema, "cdr")
        stats = job.run([{"imsi": 1, "dur": 1.0}], catalog)
        assert stats.rows_rejected == 1
        assert stats.reject_reasons == {"missing:kind": 1}
        assert catalog.load("cdr").num_rows == 0

    def test_bad_type_rejected(self, catalog, schema):
        job = ETLJob(schema, "cdr")
        stats = job.run(
            [{"imsi": "not-int", "dur": 1.0, "kind": "x"}], catalog
        )
        assert stats.reject_reasons == {"badtype:imsi": 1}

    def test_int_coercion_rules(self, catalog):
        schema = Schema.of(x="int")
        job = ETLJob(schema, "t")
        stats = job.run([{"x": 3.0}, {"x": 3.5}, {"x": True}], catalog)
        assert stats.rows_loaded == 2  # 3.0 and True coerce; 3.5 does not
        assert stats.reject_reasons == {"badtype:x": 1}

    def test_bool_coercion_rules(self, catalog):
        schema = Schema.of(b="bool")
        job = ETLJob(schema, "t")
        stats = job.run([{"b": 1}, {"b": 0}, {"b": 2}], catalog)
        assert stats.rows_loaded == 2
        assert stats.rows_rejected == 1

    def test_transform_applies(self, catalog, schema):
        def scale(row: dict) -> dict:
            row["dur"] = row["dur"] * 60  # minutes → seconds
            return row

        job = ETLJob(schema, "cdr", transform=scale)
        job.run([{"imsi": 1, "dur": 2.0, "kind": "x"}], catalog)
        assert catalog.load("cdr")["dur"].tolist() == [120.0]

    def test_transform_can_drop(self, catalog, schema):
        job = ETLJob(
            schema, "cdr", transform=lambda r: r if r["dur"] > 0 else None
        )
        stats = job.run(
            [
                {"imsi": 1, "dur": 0.0, "kind": "x"},
                {"imsi": 2, "dur": 1.0, "kind": "y"},
            ],
            catalog,
        )
        assert stats.rows_loaded == 1
        assert stats.reject_reasons == {"transform_dropped": 1}

    def test_partitioned_load(self, catalog, schema):
        job = ETLJob(schema, "cdr")
        job.run([{"imsi": 1, "dur": 1.0, "kind": "x"}], catalog, partition="m=1")
        job.run([{"imsi": 2, "dur": 2.0, "kind": "y"}], catalog, partition="m=2")
        assert catalog.load("cdr").num_rows == 2


class TestPipeline:
    def test_pipeline_runs_all_jobs(self, catalog, schema):
        jobs = [
            (ETLJob(schema, "a"), [{"imsi": 1, "dur": 1.0, "kind": "x"}]),
            (ETLJob(schema, "b"), [{"imsi": 2, "dur": 2.0, "kind": "y"}]),
        ]
        stats = run_pipeline(jobs, catalog)
        assert set(stats) == {"a", "b"}
        assert catalog.exists("a") and catalog.exists("b")

    def test_pipeline_fails_on_high_reject_rate(self, catalog, schema):
        bad = [{"imsi": 1}, {"imsi": 2}, {"imsi": 3, "dur": 1.0, "kind": "x"}]
        with pytest.raises(ETLError):
            run_pipeline([(ETLJob(schema, "a"), bad)], catalog)

    def test_pipeline_tolerates_low_reject_rate(self, catalog, schema):
        records = [{"imsi": i, "dur": 1.0, "kind": "x"} for i in range(9)]
        records.append({"imsi": 99})  # one reject out of ten
        stats = run_pipeline([(ETLJob(schema, "a"), records)], catalog)
        assert stats["a"].rows_loaded == 9

    def test_failed_pipeline_never_registers_target(self, catalog, schema):
        # Regression: the reject gate used to fire only after catalog.save,
        # leaving a mostly-empty table registered behind the ETLError.
        bad = [{"imsi": 1}, {"imsi": 2}, {"imsi": 3, "dur": 1.0, "kind": "x"}]
        with pytest.raises(ETLError):
            run_pipeline([(ETLJob(schema, "a"), bad)], catalog)
        assert not catalog.exists("a")
        # The rejects were still quarantined for diagnosis.
        assert catalog.exists(f"a{QUARANTINE_SUFFIX}")
        assert catalog.load(f"a{QUARANTINE_SUFFIX}").num_rows == 2


class TestQuarantine:
    def test_rejects_land_in_dead_letter_table(self, catalog, schema):
        records = [
            {"imsi": 1, "dur": 1.0, "kind": "x"},
            {"imsi": "oops", "dur": 1.0, "kind": "x"},
            {"dur": 2.0, "kind": "y"},
        ]
        stats = ETLJob(schema, "cdr").run(records, catalog)
        assert stats.rows_quarantined == 2
        dead = catalog.load(f"cdr{QUARANTINE_SUFFIX}")
        assert sorted(dead["reason"].tolist()) == ["badtype:imsi", "missing:imsi"]

    def test_quarantine_disabled_only_counts(self, catalog, schema):
        records = [{"imsi": 1, "dur": 1.0, "kind": "x"}, {"imsi": "oops"}]
        stats = ETLJob(schema, "cdr").run(records, catalog, quarantine=False)
        assert stats.rows_rejected == 1
        assert stats.rows_quarantined == 0
        assert not catalog.exists(f"cdr{QUARANTINE_SUFFIX}")
