"""Golden-output tests for the observability CLIs.

``trace_report.py`` and ``obs_dashboard.py`` are the interfaces a human
actually reads, so their rendering is pinned byte-for-byte against
committed golden files in ``tests/golden/``.  The canned inputs are built
here from fully deterministic values (hand-written span timings, a
fabricated query profile) — regenerate a golden after an intentional
format change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/test_scripts_golden.py
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.dataplat.resilience import PipelineHealthReport
from repro.dataplat.sql.profile import OperatorProfile, QueryProfile
from repro.dataplat.telemetry import TelemetryWarehouse

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SCRIPTS = REPO_ROOT / "scripts"
GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN", "") == "1"


def canned_trace() -> dict:
    """A two-window pipeline trace with hand-written timings."""
    return {
        "spans": [
            {
                "name": "pipeline.window",
                "wall_s": 0.120,
                "cpu_s": 0.100,
                "tags": {"test_month": 5},
                "children": [
                    {
                        "name": "features.build",
                        "wall_s": 0.080,
                        "cpu_s": 0.070,
                        "counters": {"rows": 600.0},
                    },
                    {"name": "predictor.fit", "wall_s": 0.030, "cpu_s": 0.025},
                ],
            },
            {
                "name": "pipeline.window",
                "wall_s": 0.150,
                "cpu_s": 0.130,
                "tags": {"test_month": 6},
                "children": [
                    {
                        "name": "features.build",
                        "wall_s": 0.090,
                        "cpu_s": 0.080,
                        "counters": {"rows": 600.0},
                    },
                    {"name": "predictor.fit", "wall_s": 0.040, "cpu_s": 0.035},
                ],
            },
        ]
    }


def canned_sharded_trace() -> dict:
    """A scatter-gather query trace with hand-written per-shard skew."""
    def execute(shard: int, wall: float) -> dict:
        return {
            "name": "shard.execute",
            "wall_s": wall,
            "cpu_s": wall * 0.9,
            "tags": {"shard": shard},
            "children": [
                {
                    "name": "sql.execute",
                    "wall_s": wall * 0.8,
                    "cpu_s": wall * 0.7,
                }
            ],
        }

    return {
        "spans": [
            {
                "name": "shard.query",
                "wall_s": 0.200,
                "cpu_s": 0.160,
                "children": [
                    {"name": "shard.plan", "wall_s": 0.010, "cpu_s": 0.009},
                    {
                        "name": "shard.scatter",
                        "wall_s": 0.170,
                        "cpu_s": 0.140,
                        "tags": {"backend": "serial"},
                        "counters": {"rows": 480.0},
                        "children": [
                            execute(0, 0.080),
                            execute(1, 0.030),
                            execute(2, 0.025),
                            execute(3, 0.030),
                        ],
                    },
                    {"name": "shard.merge", "wall_s": 0.015, "cpu_s": 0.012},
                ],
            }
        ]
    }


def canned_profile() -> QueryProfile:
    """One fabricated query profile: scan -> filter -> aggregate."""
    ops = [
        OperatorProfile(
            op_id=0, parent_id=-1, depth=0, operator="Aggregate",
            label="Aggregate[name] n=COUNT(*)", rel="t+u",
            shape="aggregate|a:name;f:v<?;j[inner]:grp=grp",
            est_rows=7.0, est_rows_raw=21.0, actual_rows=7,
            wall_s=0.0040, cpu_s=0.0038,
        ),
        OperatorProfile(
            op_id=1, parent_id=0, depth=1, operator="Join",
            label="Join[inner,hash] t.grp = u.grp", rel="t+u",
            shape="join|f:v<?;j[inner]:grp=grp",
            est_rows=133.0, est_rows_raw=133.0, actual_rows=138,
            wall_s=0.0031, cpu_s=0.0030,
        ),
        OperatorProfile(
            op_id=2, parent_id=1, depth=2, operator="Filter",
            label="Filter v < 5", rel="t", shape="filter|f:v<?",
            est_rows=133.0, est_rows_raw=133.0, actual_rows=138,
            wall_s=0.0019, cpu_s=0.0018,
        ),
        OperatorProfile(
            op_id=3, parent_id=2, depth=3, operator="Scan",
            label="Scan t", rel="t", shape="scan|",
            est_rows=400.0, est_rows_raw=400.0, actual_rows=400,
            wall_s=0.0008, cpu_s=0.0008, bytes_decoded=9600,
            cache_hits=2, cache_misses=1, chunks_skipped=1,
        ),
        OperatorProfile(
            op_id=4, parent_id=1, depth=2, operator="Scan",
            label="Scan u", rel="u", shape="scan|",
            est_rows=7.0, est_rows_raw=7.0, actual_rows=7,
            wall_s=0.0003, cpu_s=0.0003, bytes_decoded=180, cache_hits=1,
        ),
    ]
    return QueryProfile(
        fingerprint="deadbeef01234567",
        sql=(
            "SELECT u.name, COUNT(*) AS n FROM t JOIN u ON t.grp = u.grp "
            "WHERE t.v < 5 GROUP BY u.name"
        ),
        operators=ops,
    )


def canned_warehouse() -> TelemetryWarehouse:
    """A deterministic dump: metrics, health, and one query profile."""
    wh = TelemetryWarehouse(git_sha="golden0")
    for window, auc in ((1, 0.9123), (2, 0.8941)):
        wh.record_metrics(
            "run-01", window, {"gauges": {"pipeline.auc": auc}}
        )
    health = PipelineHealthReport(families_used=["F1", "F3"])
    health.quarantined_rows = 3
    wh.record_health("run-01", 1, health)
    wh.record_query_profile("run-01", 1, canned_profile())
    return wh


def run_script(name: str, *args: str) -> tuple[int, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(SCRIPTS / name), *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    return proc.returncode, proc.stdout


def check_golden(name: str, actual: str) -> None:
    path = GOLDEN_DIR / name
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual)
        return
    assert path.exists(), (
        f"missing golden file {path}; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    assert actual == path.read_text(), (
        f"{name} drifted from golden output; if the change is intentional "
        f"regenerate with REPRO_REGEN_GOLDEN=1"
    )


class TestTraceReportGolden:
    def test_tree_and_summary(self, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps(canned_trace()))
        code, out = run_script("trace_report.py", str(trace))
        assert code == 0
        check_golden("trace_report.txt", out)

    def test_shard_rollup(self, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps(canned_sharded_trace()))
        code, out = run_script("trace_report.py", str(trace))
        assert code == 0
        assert "== shards (scatter-gather rollup) ==" in out
        check_golden("trace_report_shards.txt", out)

    def test_unsharded_trace_has_no_shard_section(self, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps(canned_trace()))
        _, out = run_script("trace_report.py", str(trace))
        assert "shards" not in out

    def test_analyze_profiles(self, tmp_path):
        dump = tmp_path / "telemetry.json"
        canned_warehouse().dump(dump)
        code, out = run_script("trace_report.py", str(dump), "--analyze")
        assert code == 0
        check_golden("trace_report_analyze.txt", out)

    def test_analyze_renders_repeated_runs_as_separate_trees(self, tmp_path):
        wh = TelemetryWarehouse(git_sha="golden0")
        profile = canned_profile()
        wh.record_query_profile("run-01", 1, profile)
        wh.record_query_profile("run-01", 1, profile)
        dump = tmp_path / "telemetry.json"
        wh.dump(dump)
        code, out = run_script("trace_report.py", str(dump), "--analyze")
        assert code == 0
        headers = [l for l in out.splitlines() if l.startswith("-- run")]
        assert len(headers) == 2
        # Each tree keeps its own 5 operators — no interleaving.
        assert out.count("Scan t  est=400") == 2

    def test_analyze_empty_dump_fails_cleanly(self, tmp_path):
        wh = TelemetryWarehouse(git_sha="golden0")
        wh.record_metrics("run-01", 1, {"gauges": {"a": 1.0}})
        dump = tmp_path / "telemetry.json"
        wh.dump(dump)
        code, out = run_script("trace_report.py", str(dump), "--analyze")
        assert code == 1
        assert "no query profiles" in out


class TestObsDashboardGolden:
    def test_dashboard_render(self, tmp_path):
        dump = tmp_path / "telemetry.json"
        canned_warehouse().dump(dump)
        code, out = run_script("obs_dashboard.py", str(dump))
        assert code == 0
        check_golden("obs_dashboard.txt", out)

    def test_unknown_run_fails_cleanly(self, tmp_path):
        dump = tmp_path / "telemetry.json"
        canned_warehouse().dump(dump)
        code, out = run_script("obs_dashboard.py", str(dump), "--run", "nope")
        assert code == 1
        assert "not in dump" in out


@pytest.mark.skipif(REGEN, reason="regenerating goldens")
def test_golden_files_committed():
    for name in (
        "trace_report.txt",
        "trace_report_analyze.txt",
        "trace_report_shards.txt",
        "obs_dashboard.txt",
    ):
        assert (GOLDEN_DIR / name).exists(), name
