"""Tests for the feature-engineering layer (spec + all nine families)."""

import numpy as np
import pytest

from repro.errors import FeatureError, NotFittedError
from repro.features import ALL_CATEGORIES, CATEGORY_INFO, FeatureMatrix
from repro.features.second_order import SecondOrderSelector
from repro.features.topic_features import TopicFeatureExtractor
from repro.ml.metrics import roc_auc


class TestFeatureMatrix:
    def make(self):
        return FeatureMatrix(
            imsi=np.array([10, 20, 30]),
            names=["a", "b"],
            values=np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]),
        )

    def test_shape_accessors(self):
        fm = self.make()
        assert fm.n_rows == 3
        assert fm.n_features == 2

    def test_column(self):
        fm = self.make()
        assert fm.column("b").tolist() == [2.0, 4.0, 6.0]
        with pytest.raises(FeatureError):
            fm.column("nope")

    def test_select(self):
        fm = self.make().select(["b"])
        assert fm.names == ["b"]
        assert fm.values.shape == (3, 1)

    def test_align_to_reorders_and_fills(self):
        fm = self.make().align_to(np.array([30, 99, 10]))
        assert fm.values[0].tolist() == [5.0, 6.0]
        assert fm.values[1].tolist() == [0.0, 0.0]
        assert fm.values[2].tolist() == [1.0, 2.0]

    def test_hstack(self):
        fm = self.make()
        other = FeatureMatrix(fm.imsi, ["c"], np.ones((3, 1)))
        out = fm.hstack(other)
        assert out.names == ["a", "b", "c"]

    def test_hstack_rejects_mismatched_rows(self):
        fm = self.make()
        other = FeatureMatrix(np.array([1, 2, 3]), ["c"], np.ones((3, 1)))
        with pytest.raises(FeatureError):
            fm.hstack(other)

    def test_hstack_rejects_duplicate_names(self):
        fm = self.make()
        other = FeatureMatrix(fm.imsi, ["a"], np.ones((3, 1)))
        with pytest.raises(FeatureError):
            fm.hstack(other)

    def test_duplicate_names_rejected(self):
        with pytest.raises(FeatureError):
            FeatureMatrix(np.array([1]), ["x", "x"], np.ones((1, 2)))

    def test_shape_validation(self):
        with pytest.raises(FeatureError):
            FeatureMatrix(np.array([1, 2]), ["a"], np.ones((1, 1)))

    def test_registry(self):
        assert len(ALL_CATEGORIES) == 9
        assert set(CATEGORY_INFO) == set(ALL_CATEGORIES)


class TestCategoryBlocks:
    @pytest.mark.parametrize(
        "category,expected",
        [("F1", 73), ("F2", 9), ("F3", 25), ("F4", 2), ("F5", 2), ("F6", 2)],
    )
    def test_unsupervised_block_widths(self, small_builder, category, expected):
        block = small_builder.category(category, 4)
        assert block.n_features == expected
        assert block.n_rows == small_builder.world.population.size

    def test_f1_has_paper_features(self, small_builder):
        f1 = small_builder.category("F1", 4)
        for name in ("balance", "innet_dura", "voice_dur", "gprs_all_flux",
                     "total_charge", "call_10010_cnt"):
            assert name in f1.names

    def test_blocks_are_imsi_sorted(self, small_builder, small_world):
        f1 = small_builder.category("F1", 4)
        assert np.array_equal(f1.imsi, np.sort(small_world.month(4).imsi))

    def test_caching_returns_same_object(self, small_builder):
        a = small_builder.category("F2", 4)
        b = small_builder.category("F2", 4)
        assert a is b

    def test_unknown_category(self, small_builder):
        with pytest.raises(FeatureError):
            small_builder.category("F99", 4)

    def test_supervised_blocks_need_fit(self, small_world):
        from repro.features import WideTableBuilder

        fresh = WideTableBuilder(small_world)
        with pytest.raises(FeatureError):
            fresh.category("F7", 4)
        with pytest.raises(FeatureError):
            fresh.category("F9", 4)

    def test_graph_block_values(self, small_builder, small_world):
        f6 = small_builder.category("F6", 5)
        pagerank_col = f6.column("pagerank_cooccurrence")
        labelprop_col = f6.column("labelprop_cooccurrence")
        assert pagerank_col.sum() == pytest.approx(1.0, abs=1e-3)
        assert np.all((labelprop_col >= 0) & (labelprop_col <= 1))

    def test_labelprop_reflects_churner_neighbourhoods(self, small_builder, small_world):
        f6 = small_builder.category("F6", 5)
        data = small_world.month(5)
        lp = f6.column("labelprop_cooccurrence")
        # Higher propagated churn probability for actual next-month churners.
        el = data.eligible
        assert lp[el][data.churn_next[el]].mean() > lp[el][~data.churn_next[el]].mean()


class TestSupervisedBlocks:
    @pytest.fixture(scope="class")
    def fitted_builder(self, small_world):
        from repro.features import WideTableBuilder

        builder = WideTableBuilder(small_world)
        labels = {4: small_world.month(4).churn_next.astype(int)}
        builder.fit_extractors([4], labels)
        return builder

    def test_topic_blocks_width(self, fitted_builder):
        assert fitted_builder.category("F7", 5).n_features == 10
        assert fitted_builder.category("F8", 5).n_features == 10

    def test_topic_rows_are_distributions(self, fitted_builder):
        theta = fitted_builder.category("F8", 5).values
        assert np.allclose(theta.sum(axis=1), 1.0)

    def test_search_topics_carry_churn_signal(self, fitted_builder, small_world):
        f8 = fitted_builder.category("F8", 5)
        data = small_world.month(5)
        el = data.eligible
        y = data.churn_next[el].astype(int)
        aucs = [
            max(roc_auc(y, f8.values[el, k]), 1 - roc_auc(y, f8.values[el, k]))
            for k in range(10)
        ]
        assert max(aucs) > 0.55

    def test_second_order_width(self, fitted_builder):
        assert fitted_builder.category("F9", 5).n_features == 20

    def test_full_wide_table(self, fitted_builder):
        wide = fitted_builder.features(5, ALL_CATEGORIES)
        assert wide.n_features == 73 + 9 + 25 + 2 + 2 + 2 + 10 + 10 + 20

    def test_features_requires_categories(self, fitted_builder):
        with pytest.raises(FeatureError):
            fitted_builder.features(5, ())


class TestSecondOrderSelector:
    def test_transform_is_products_of_standardized_columns(self, rng):
        base = FeatureMatrix(
            imsi=np.arange(300),
            names=["u", "v", "w"],
            values=rng.normal(size=(300, 3)),
        )
        y = (base.values[:, 0] * base.values[:, 1] > 0).astype(int)
        selector = SecondOrderSelector(n_pairs=2, n_epochs=20).fit(base, y)
        out = selector.transform(base)
        assert out.n_features == 2
        # The planted pair should be selected.
        assert ("u", "v") in selector.selected_pairs or (
            "v", "u"
        ) in selector.selected_pairs

    def test_fit_checks_lengths(self, rng):
        base = FeatureMatrix(np.arange(5), ["a"], rng.normal(size=(5, 1)))
        with pytest.raises(FeatureError):
            SecondOrderSelector().fit(base, np.zeros(3))

    def test_transform_before_fit(self, rng):
        base = FeatureMatrix(np.arange(5), ["a"], rng.normal(size=(5, 1)))
        with pytest.raises(NotFittedError):
            SecondOrderSelector().transform(base)

    def test_transform_checks_names(self, rng):
        base = FeatureMatrix(np.arange(50), ["a", "b"], rng.normal(size=(50, 2)))
        y = (rng.random(50) < 0.5).astype(int)
        selector = SecondOrderSelector(n_pairs=1, n_epochs=2).fit(base, y)
        renamed = FeatureMatrix(base.imsi, ["x", "y"], base.values)
        with pytest.raises(FeatureError):
            selector.transform(renamed)


class TestTopicExtractor:
    def test_unknown_category(self):
        with pytest.raises(FeatureError):
            TopicFeatureExtractor("F1")

    def test_transform_before_fit(self, small_world):
        with pytest.raises(NotFittedError):
            TopicFeatureExtractor("F8").transform(small_world, 4)

    def test_vocabulary_pruning(self, small_world):
        extractor = TopicFeatureExtractor("F8", min_word_count=3)
        extractor.fit(small_world, [4])
        assert extractor._vocab is not None
        assert len(extractor._vocab) > 50
