"""Tests for the retention campaign system."""

import numpy as np
import pytest

from repro.core.pipeline import ChurnPipeline
from repro.core.retention import RetentionCampaign, TierOutcome
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def pipeline(small_world, small_scale, small_model):
    return ChurnPipeline(
        small_world, small_scale, categories=("F1",), model=small_model
    )


@pytest.fixture(scope="module")
def study(pipeline):
    campaign = RetentionCampaign(pipeline, seed=5)
    return campaign.run_study((8, 9))


class TestTierOutcome:
    def test_rate(self):
        assert TierOutcome("A", "top50k", 100, 7).rate == pytest.approx(0.07)

    def test_rate_empty(self):
        assert TierOutcome("A", "top50k", 0, 0).rate == 0.0


class TestStudyStructure:
    def test_two_waves(self, study):
        assert [c.strategy for c in study] == ["expert", "matched"]
        assert [c.month for c in study] == [8, 9]

    def test_all_cells_present(self, study):
        for campaign in study:
            cells = {(c.group, c.tier) for c in campaign.outcomes}
            assert cells == {
                ("A", "top50k"), ("A", "50k-100k"),
                ("B", "top50k"), ("B", "50k-100k"),
            }

    def test_rate_accessor(self, study):
        campaign = study[0]
        assert campaign.rate("A", "top50k") == campaign.outcomes[0].rate
        with pytest.raises(ExperimentError):
            campaign.rate("C", "top50k")

    def test_treated_arrays_consistent(self, study):
        for campaign in study:
            assert len(campaign.treated_slots) == len(campaign.treated_offers)
            assert len(campaign.treated_slots) == len(campaign.treated_labels)
            assert campaign.treated_offers.min() >= 1

    def test_labels_zero_or_offered(self, study):
        for campaign in study:
            accepted = campaign.treated_labels > 0
            assert np.array_equal(
                campaign.treated_labels[accepted],
                campaign.treated_offers[accepted],
            )


class TestBusinessShape:
    def test_offers_lift_recharge_rate(self, study):
        # Table 6: group B (with offers) beats group A (control) in both
        # months, pooled over tiers to damp small-sample noise.
        for campaign in study:
            a_total = sum(c.total for c in campaign.outcomes if c.group == "A")
            a_hit = sum(c.recharged for c in campaign.outcomes if c.group == "A")
            b_total = sum(c.total for c in campaign.outcomes if c.group == "B")
            b_hit = sum(c.recharged for c in campaign.outcomes if c.group == "B")
            assert b_hit / b_total > a_hit / a_total

    def test_control_rate_low(self, study):
        # Predicted churners without offers mostly do not recharge.
        for campaign in study:
            a_total = sum(c.total for c in campaign.outcomes if c.group == "A")
            a_hit = sum(c.recharged for c in campaign.outcomes if c.group == "A")
            assert a_hit / a_total < 0.35


class TestValidation:
    def test_matched_requires_training(self, pipeline):
        campaign = RetentionCampaign(pipeline, seed=1)
        with pytest.raises(ExperimentError):
            campaign.run_campaign(9, strategy="matched")

    def test_unknown_strategy(self, pipeline):
        campaign = RetentionCampaign(pipeline, seed=1)
        with pytest.raises(ExperimentError):
            campaign.run_campaign(8, strategy="coupon")

    def test_nonconsecutive_months_rejected(self, pipeline):
        campaign = RetentionCampaign(pipeline, seed=1)
        with pytest.raises(ExperimentError):
            campaign.run_study((5, 8))

    def test_too_early_campaign_rejected(self, pipeline):
        campaign = RetentionCampaign(pipeline, seed=1)
        with pytest.raises(ExperimentError):
            campaign.run_campaign(2, strategy="expert")
