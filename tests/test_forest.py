"""Unit tests for the Random Forest and the one-vs-rest multiclass wrapper."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml.forest import OneVsRestForest, RandomForestClassifier
from repro.ml.metrics import roc_auc


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(1200, 8))
    logit = 1.5 * x[:, 0] - 1.0 * x[:, 1] + 0.5 * x[:, 2] * x[:, 3]
    y = (rng.random(1200) < 1 / (1 + np.exp(-logit))).astype(int)
    return x[:900], y[:900], x[900:], y[900:]


class TestFit:
    def test_learns_signal(self, data):
        x_tr, y_tr, x_te, y_te = data
        rf = RandomForestClassifier(n_trees=15, min_samples_leaf=10, seed=1)
        rf.fit(x_tr, y_tr)
        assert roc_auc(y_te, rf.predict_proba(x_te)) > 0.75

    def test_probabilities_in_unit_interval(self, data):
        x_tr, y_tr, x_te, _ = data
        rf = RandomForestClassifier(n_trees=5, seed=1).fit(x_tr, y_tr)
        p = rf.predict_proba(x_te)
        assert np.all(p >= 0) and np.all(p <= 1)

    def test_deterministic_given_seed(self, data):
        x_tr, y_tr, x_te, _ = data
        a = RandomForestClassifier(n_trees=5, seed=7).fit(x_tr, y_tr)
        b = RandomForestClassifier(n_trees=5, seed=7).fit(x_tr, y_tr)
        assert np.array_equal(a.predict_proba(x_te), b.predict_proba(x_te))

    def test_seed_changes_model(self, data):
        x_tr, y_tr, x_te, _ = data
        a = RandomForestClassifier(n_trees=5, seed=1).fit(x_tr, y_tr)
        b = RandomForestClassifier(n_trees=5, seed=2).fit(x_tr, y_tr)
        assert not np.array_equal(a.predict_proba(x_te), b.predict_proba(x_te))

    def test_more_trees_do_not_hurt(self, data):
        x_tr, y_tr, x_te, y_te = data
        few = RandomForestClassifier(n_trees=2, seed=3).fit(x_tr, y_tr)
        many = RandomForestClassifier(n_trees=25, seed=3).fit(x_tr, y_tr)
        assert roc_auc(y_te, many.predict_proba(x_te)) >= roc_auc(
            y_te, few.predict_proba(x_te)
        ) - 0.02

    def test_sample_weights_accepted(self, data):
        x_tr, y_tr, x_te, y_te = data
        w = np.where(y_tr == 1, 5.0, 1.0)
        rf = RandomForestClassifier(n_trees=8, seed=1).fit(x_tr, y_tr, sample_weight=w)
        assert roc_auc(y_te, rf.predict_proba(x_te)) > 0.7

    def test_paper_settings(self):
        rf = RandomForestClassifier.paper_settings()
        assert rf.n_trees == 500
        assert rf.min_samples_leaf == 100


class TestInterface:
    def test_predict_hard_labels(self, data):
        x_tr, y_tr, x_te, _ = data
        rf = RandomForestClassifier(n_trees=5, seed=1).fit(x_tr, y_tr)
        labels = rf.predict(x_te)
        assert set(np.unique(labels)) <= {0, 1}

    def test_rank_descending(self, data):
        x_tr, y_tr, x_te, _ = data
        rf = RandomForestClassifier(n_trees=5, seed=1).fit(x_tr, y_tr)
        order = rf.rank(x_te)
        p = rf.predict_proba(x_te)
        assert np.all(np.diff(p[order]) <= 1e-12)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict_proba(np.zeros((1, 2)))

    def test_bad_n_trees(self):
        with pytest.raises(ModelError):
            RandomForestClassifier(n_trees=0)

    def test_length_mismatch(self):
        with pytest.raises(ModelError):
            RandomForestClassifier().fit(np.zeros((2, 1)), np.zeros(3))

    def test_importances_sum_to_one(self, data):
        x_tr, y_tr, _, _ = data
        rf = RandomForestClassifier(n_trees=10, seed=1).fit(x_tr, y_tr)
        imp = rf.feature_importances_
        assert imp.sum() == pytest.approx(1.0)
        assert imp.argmax() in (0, 1)  # the linear signal features


class TestOneVsRest:
    @pytest.fixture(scope="class")
    def multiclass(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(900, 4))
        y = np.zeros(900, dtype=int)
        y[x[:, 0] > 0.5] = 1
        y[x[:, 1] > 0.5] = 2
        y[(x[:, 0] < -0.5) & (x[:, 2] > 0)] = 3
        return x, y

    def test_learns_classes(self, multiclass):
        x, y = multiclass
        model = OneVsRestForest(n_classes=4, n_trees=10, seed=2).fit(x, y)
        acc = (model.predict(x) == y).mean()
        assert acc > 0.75

    def test_proba_rows_normalized(self, multiclass):
        x, y = multiclass
        model = OneVsRestForest(n_classes=4, n_trees=5, seed=2).fit(x, y)
        p = model.predict_proba(x)
        assert p.shape == (len(x), 4)
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_absent_class_handled(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(100, 2))
        y = (x[:, 0] > 0).astype(int)  # classes 2..4 never appear
        model = OneVsRestForest(n_classes=5, n_trees=5, seed=2).fit(x, y)
        assert set(np.unique(model.predict(x))) <= {0, 1}

    def test_label_out_of_range(self):
        with pytest.raises(ModelError):
            OneVsRestForest(n_classes=2).fit(
                np.zeros((3, 1)), np.array([0, 1, 5])
            )

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            OneVsRestForest(n_classes=3).predict(np.zeros((1, 2)))

    def test_too_few_classes(self):
        with pytest.raises(ModelError):
            OneVsRestForest(n_classes=1)
