"""Tests for churn labeling and the sliding-window protocol."""

import numpy as np
import pytest

from repro.core.labeling import (
    churn_labels,
    dataset_statistics,
    labels_from_delays,
    recharge_delay_histogram,
)
from repro.core.window import SlidingWindow, WindowSpec
from repro.errors import ExperimentError


class TestLabelingRule:
    def test_rule_on_delays(self):
        delays = np.array([-1, 1, 15, 16, 30])
        labels = labels_from_delays(delays)
        assert labels.tolist() == [True, False, False, True, True]

    def test_custom_grace(self):
        delays = np.array([5, 10])
        assert labels_from_delays(delays, grace_days=4).tolist() == [True, True]

    def test_labels_match_simulator_truth(self, tiny_world):
        # The labeling pipeline reads tables; the simulator knows the truth.
        for month in range(1, tiny_world.n_months + 1):
            derived = churn_labels(tiny_world, month)
            assert np.array_equal(derived, tiny_world.month(month).churn_next)

    def test_month_out_of_range(self, tiny_world):
        with pytest.raises(ExperimentError):
            churn_labels(tiny_world, 0)
        with pytest.raises(ExperimentError):
            churn_labels(tiny_world, tiny_world.n_months + 1)

    def test_histogram_shape(self, tiny_world):
        days, counts = recharge_delay_histogram(tiny_world)
        assert days.tolist() == list(range(1, 31))
        assert counts.sum() > 0
        # Figure 5: early recharges dominate; the 15+ tail is tiny.
        assert counts[:5].sum() > counts[15:].sum()

    def test_dataset_statistics_consistent(self, tiny_world):
        rows = dataset_statistics(tiny_world)
        assert len(rows) == tiny_world.n_months
        for row in rows:
            assert row["churners"] + row["non_churners"] == row["total"]
            assert 0.05 < row["churn_rate"] < 0.14


class TestWindowSpec:
    def test_label_month(self):
        spec = WindowSpec((4,), 5)
        assert spec.label_month == 6

    def test_lead_changes_label_month(self):
        assert WindowSpec((2,), 5, lead=3).label_month == 8

    def test_validation(self):
        with pytest.raises(ExperimentError):
            WindowSpec((), 5)
        with pytest.raises(ExperimentError):
            WindowSpec((5,), 5)
        with pytest.raises(ExperimentError):
            WindowSpec((1,), 5, lead=0)


class TestSlidingWindow:
    def test_windows_one_month(self, tiny_world):
        sw = SlidingWindow(tiny_world)
        specs = sw.windows(n_train_months=1, test_months=[6])
        assert specs == [WindowSpec((5,), 6)]

    def test_windows_four_months(self, tiny_world):
        sw = SlidingWindow(tiny_world)
        specs = sw.windows(n_train_months=4, test_months=[7])
        assert specs[0].train_months == (3, 4, 5, 6)

    def test_windows_skip_invalid(self, tiny_world):
        sw = SlidingWindow(tiny_world)
        specs = sw.windows(n_train_months=1)
        # Month 1 has no earlier training month; the last month labels via
        # the final recharge table.
        tests = [s.test_month for s in specs]
        assert 1 not in tests
        assert tiny_world.n_months in tests

    def test_lead_windows(self, tiny_world):
        sw = SlidingWindow(tiny_world)
        specs = sw.windows(n_train_months=1, lead=2, test_months=[5])
        spec = specs[0]
        assert spec.train_months == (3,)
        assert spec.lead == 2
        assert spec.label_month == 7

    def test_no_valid_windows_raises(self, tiny_world):
        sw = SlidingWindow(tiny_world)
        with pytest.raises(ExperimentError):
            sw.windows(n_train_months=50)

    def test_eligible_mask_lead_one(self, tiny_world):
        sw = SlidingWindow(tiny_world)
        spec = WindowSpec((4,), 5)
        mask = sw.eligible_mask(spec, 5)
        assert np.array_equal(mask, tiny_world.month(5).eligible)

    def test_eligible_mask_excludes_gap_churners(self, tiny_world):
        sw = SlidingWindow(tiny_world)
        spec = WindowSpec((2,), 4, lead=2)
        mask = sw.eligible_mask(spec, 4)
        # Customers churning in month 5 (the gap) are excluded.
        assert not np.any(mask & tiny_world.month(4).churn_next)
