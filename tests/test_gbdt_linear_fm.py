"""Unit tests for GBDT, logistic regression and factorization machines."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml.fm import FactorizationMachine
from repro.ml.gbdt import GradientBoostedTrees
from repro.ml.linear import LogisticRegression
from repro.ml.metrics import roc_auc


@pytest.fixture(scope="module")
def linear_data():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(1500, 6))
    logit = 2.0 * x[:, 0] - 1.5 * x[:, 1] - 0.5
    y = (rng.random(1500) < 1 / (1 + np.exp(-logit))).astype(int)
    return x[:1000], y[:1000], x[1000:], y[1000:]


@pytest.fixture(scope="module")
def interaction_data():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(1500, 6))
    logit = 2.0 * x[:, 2] * x[:, 4] - 0.5
    y = (rng.random(1500) < 1 / (1 + np.exp(-logit))).astype(int)
    return x[:1000], y[:1000], x[1000:], y[1000:]


class TestGBDT:
    def test_learns_signal(self, linear_data):
        x_tr, y_tr, x_te, y_te = linear_data
        model = GradientBoostedTrees(n_trees=30, max_depth=3, seed=1)
        model.fit(x_tr, y_tr)
        assert roc_auc(y_te, model.predict_proba(x_te)) > 0.85

    def test_train_loss_decreases(self, linear_data):
        x_tr, y_tr, _, _ = linear_data
        model = GradientBoostedTrees(n_trees=25, max_depth=3, seed=1)
        model.fit(x_tr, y_tr)
        losses = model.staged_train_loss(x_tr, y_tr)
        assert losses[-1] < losses[0]
        # Mostly monotone: allow tiny numerical wobbles.
        assert np.sum(np.diff(losses) > 1e-4) == 0

    def test_probabilities_valid(self, linear_data):
        x_tr, y_tr, x_te, _ = linear_data
        model = GradientBoostedTrees(n_trees=5, seed=1).fit(x_tr, y_tr)
        p = model.predict_proba(x_te)
        assert np.all((p > 0) & (p < 1))

    def test_learning_rate_validated(self):
        with pytest.raises(ModelError):
            GradientBoostedTrees(learning_rate=0.0)

    def test_labels_validated(self):
        with pytest.raises(ModelError):
            GradientBoostedTrees().fit(np.zeros((3, 1)), np.array([0, 1, 2]))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            GradientBoostedTrees().predict_proba(np.zeros((1, 1)))

    def test_captures_interactions(self, interaction_data):
        x_tr, y_tr, x_te, y_te = interaction_data
        model = GradientBoostedTrees(n_trees=60, max_depth=4, seed=2)
        model.fit(x_tr, y_tr)
        # Pure product interaction: well above chance and far above what a
        # linear model reaches on the same data (~0.5).
        assert roc_auc(y_te, model.predict_proba(x_te)) > 0.7


class TestLogisticRegression:
    def test_learns_linear_signal(self, linear_data):
        x_tr, y_tr, x_te, y_te = linear_data
        model = LogisticRegression().fit(x_tr, y_tr)
        assert roc_auc(y_te, model.predict_proba(x_te)) > 0.85

    def test_loss_history_nonincreasing(self, linear_data):
        x_tr, y_tr, _, _ = linear_data
        model = LogisticRegression().fit(x_tr, y_tr)
        hist = model.loss_history
        assert all(b <= a + 1e-12 for a, b in zip(hist, hist[1:]))

    def test_coefficients_recover_signs(self, linear_data):
        x_tr, y_tr, _, _ = linear_data
        model = LogisticRegression(l2=1e-4).fit(x_tr, y_tr)
        assert model.coef_[0] > 0
        assert model.coef_[1] < 0
        assert abs(model.coef_[0]) > abs(model.coef_[2])

    def test_l2_shrinks_weights(self, linear_data):
        x_tr, y_tr, _, _ = linear_data
        loose = LogisticRegression(l2=1e-6).fit(x_tr, y_tr)
        tight = LogisticRegression(l2=10.0).fit(x_tr, y_tr)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_sample_weights_shift_decision(self):
        x = np.array([[-1.0], [1.0], [1.0]])
        y = np.array([0, 0, 1])
        # Heavily weighting the positive flips the intercept upward.
        plain = LogisticRegression().fit(x, y)
        weighted = LogisticRegression().fit(
            x, y, sample_weight=np.array([1.0, 1.0, 50.0])
        )
        assert weighted.intercept_ > plain.intercept_

    def test_misses_pure_interaction(self, interaction_data):
        x_tr, y_tr, x_te, y_te = interaction_data
        model = LogisticRegression().fit(x_tr, y_tr)
        assert roc_auc(y_te, model.predict_proba(x_te)) < 0.62

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict_proba(np.zeros((1, 1)))

    def test_feature_width_checked(self, linear_data):
        x_tr, y_tr, _, _ = linear_data
        model = LogisticRegression().fit(x_tr, y_tr)
        with pytest.raises(ModelError):
            model.predict_proba(np.zeros((1, 99)))

    def test_bad_labels(self):
        with pytest.raises(ModelError):
            LogisticRegression().fit(np.zeros((2, 1)), np.array([1, 2]))


class TestFactorizationMachine:
    def test_learns_linear_signal(self, linear_data):
        x_tr, y_tr, x_te, y_te = linear_data
        model = FactorizationMachine(n_epochs=15, seed=1).fit(x_tr, y_tr)
        assert roc_auc(y_te, model.predict_proba(x_te)) > 0.85

    def test_captures_interaction_where_lr_cannot(self, interaction_data):
        x_tr, y_tr, x_te, y_te = interaction_data
        fm = FactorizationMachine(n_epochs=25, seed=1).fit(x_tr, y_tr)
        lr = LogisticRegression().fit(x_tr, y_tr)
        assert roc_auc(y_te, fm.predict_proba(x_te)) > roc_auc(
            y_te, lr.predict_proba(x_te)
        ) + 0.1

    def test_top_pairs_finds_planted_interaction(self, interaction_data):
        x_tr, y_tr, _, _ = interaction_data
        fm = FactorizationMachine(n_epochs=25, seed=1).fit(x_tr, y_tr)
        top = fm.top_pairs(1)[0]
        assert {top[0], top[1]} == {2, 4}

    def test_pair_weight_symmetry(self, linear_data):
        x_tr, y_tr, _, _ = linear_data
        fm = FactorizationMachine(n_epochs=3, seed=1).fit(x_tr, y_tr)
        assert fm.pair_weight(0, 1) == fm.pair_weight(1, 0)

    def test_pair_weight_range_checked(self, linear_data):
        x_tr, y_tr, _, _ = linear_data
        fm = FactorizationMachine(n_epochs=2, seed=1).fit(x_tr, y_tr)
        with pytest.raises(ModelError):
            fm.pair_weight(0, 99)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            FactorizationMachine().predict_proba(np.zeros((1, 1)))

    def test_validation(self):
        with pytest.raises(ModelError):
            FactorizationMachine(n_factors=0)
        with pytest.raises(ModelError):
            FactorizationMachine(n_epochs=0)
        with pytest.raises(ModelError):
            FactorizationMachine(learning_rate=2.0)
