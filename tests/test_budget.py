"""Tests for campaign economics (core.budget)."""

import numpy as np
import pytest

from repro.core.budget import CampaignEconomics, plan_campaign
from repro.errors import ExperimentError


class TestEconomics:
    def test_expected_profit_formula(self):
        econ = CampaignEconomics(
            customer_lifetime_value=200.0,
            offer_cost=100.0,
            deadweight_cost=40.0,
            contact_cost=2.0,
            retention_rate=0.5,
        )
        # p=1: 0.5*(200-100) - 0 - 2 = 48; p=0: -40 - 2 = -42.
        out = econ.expected_profit(np.array([1.0, 0.0]))
        assert out.tolist() == [48.0, -42.0]

    def test_breakeven_probability(self):
        econ = CampaignEconomics(
            customer_lifetime_value=200.0,
            offer_cost=100.0,
            deadweight_cost=40.0,
            contact_cost=2.0,
            retention_rate=0.5,
        )
        p_star = econ.breakeven_probability
        assert econ.expected_profit(np.array([p_star]))[0] == pytest.approx(0.0)

    def test_worthless_offer_never_breaks_even(self):
        econ = CampaignEconomics(
            customer_lifetime_value=50.0,
            offer_cost=100.0,  # costs more than the customer is worth
            retention_rate=0.5,
            deadweight_cost=0.0,
            contact_cost=0.0,
        )
        assert econ.breakeven_probability == 1.0

    def test_validation(self):
        with pytest.raises(ExperimentError):
            CampaignEconomics(customer_lifetime_value=0.0)
        with pytest.raises(ExperimentError):
            CampaignEconomics(retention_rate=0.0)
        with pytest.raises(ExperimentError):
            CampaignEconomics(offer_cost=-1.0)

    def test_probability_range_checked(self):
        econ = CampaignEconomics()
        with pytest.raises(ExperimentError):
            econ.expected_profit(np.array([1.2]))


class TestPlanCampaign:
    def test_matches_brute_force_optimum(self, rng):
        p = rng.beta(1, 6, size=500)
        econ = CampaignEconomics()
        plan = plan_campaign(p, econ)
        per = econ.expected_profit(np.sort(p)[::-1])
        cumulative = np.cumsum(per)
        brute = int(np.argmax(cumulative)) + 1 if cumulative.max() > 0 else 0
        assert plan.optimal_depth == brute
        if brute:
            assert plan.expected_profit == pytest.approx(cumulative[brute - 1])

    def test_targets_highest_probabilities_first(self, rng):
        p = rng.random(100)
        plan = plan_campaign(p)
        targeted = plan.targeted_rows
        if len(targeted):
            threshold = p[targeted].min()
            untargeted = np.setdiff1d(np.arange(100), targeted)
            assert np.all(p[untargeted] <= threshold + 1e-12)

    def test_depth_respects_breakeven(self, rng):
        p = rng.beta(1, 8, size=2000)
        econ = CampaignEconomics()
        plan = plan_campaign(p, econ)
        if plan.optimal_depth:
            worst_targeted = p[plan.order[plan.optimal_depth - 1]]
            assert worst_targeted >= econ.breakeven_probability - 0.02

    def test_all_hopeless_list_targets_nobody(self):
        plan = plan_campaign(np.full(50, 0.001))
        assert plan.optimal_depth == 0
        assert plan.expected_profit == 0.0
        assert len(plan.targeted_rows) == 0

    def test_all_certain_churners_target_everyone(self):
        plan = plan_campaign(np.full(50, 0.99))
        assert plan.optimal_depth == 50

    def test_render(self, rng):
        plan = plan_campaign(rng.random(100))
        text = plan.render(marks=(10, 50))
        assert "Campaign plan" in text
        assert "depth 10" in text

    def test_validation(self):
        with pytest.raises(ExperimentError):
            plan_campaign(np.array([]))

    def test_on_model_scores(self, small_world, small_scale, small_model):
        """End to end: calibrated churn scores → profitable, finite plan."""
        from repro.core.pipeline import ChurnPipeline
        from repro.core.window import WindowSpec
        from repro.ml.calibration import IsotonicCalibrator

        pipeline = ChurnPipeline(
            small_world, small_scale, categories=("F1",), model=small_model
        )
        calib = pipeline.run_window(WindowSpec((4,), 5))
        test = pipeline.run_window(WindowSpec((4,), 6))
        calibrated = IsotonicCalibrator().fit(
            calib.scores, calib.labels
        ).transform(test.scores)
        plan = plan_campaign(calibrated)
        # Somebody is worth contacting, but never the whole base.
        assert 0 < plan.optimal_depth < len(calibrated)
        assert plan.expected_profit > 0
        # Realized profit on true labels at the chosen depth is positive.
        econ = plan.economics
        targeted = plan.targeted_rows
        churners = test.labels[targeted].sum()
        stayers = len(targeted) - churners
        realized = (
            churners * econ.retention_rate
            * (econ.customer_lifetime_value - econ.offer_cost)
            - stayers * econ.deadweight_cost
            - len(targeted) * econ.contact_cost
        )
        assert realized > 0
