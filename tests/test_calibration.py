"""Tests for probability calibration (Platt, isotonic, Brier, ECE)."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml.calibration import (
    IsotonicCalibrator,
    PlattScaler,
    brier_score,
    expected_calibration_error,
)


@pytest.fixture(scope="module")
def distorted():
    """Scores that rank perfectly but are badly mis-scaled."""
    rng = np.random.default_rng(0)
    true_p = rng.uniform(0.0, 1.0, size=4000)
    y = (rng.random(4000) < true_p).astype(int)
    scores = true_p ** 3  # monotone distortion
    return scores, y, true_p


class TestBrier:
    def test_perfect_predictions(self):
        y = np.array([0, 1, 1])
        assert brier_score(y, y.astype(float)) == 0.0

    def test_worst_predictions(self):
        y = np.array([0, 1])
        assert brier_score(y, np.array([1.0, 0.0])) == 1.0

    def test_shape_checked(self):
        with pytest.raises(ModelError):
            brier_score(np.array([0, 1]), np.array([0.5]))


class TestECE:
    def test_calibrated_scores_have_low_ece(self, distorted):
        _, y, true_p = distorted
        assert expected_calibration_error(y, true_p) < 0.05

    def test_distorted_scores_have_high_ece(self, distorted):
        scores, y, _ = distorted
        assert expected_calibration_error(y, scores) > 0.1

    def test_bins_validated(self):
        with pytest.raises(ModelError):
            expected_calibration_error(np.array([0]), np.array([0.5]), n_bins=0)


class TestPlatt:
    def test_improves_brier_on_distorted_scores(self, distorted):
        scores, y, _ = distorted
        scaler = PlattScaler().fit(scores[:3000], y[:3000])
        calibrated = scaler.transform(scores[3000:])
        assert brier_score(y[3000:], calibrated) < brier_score(
            y[3000:], scores[3000:]
        )

    def test_monotone_output(self, distorted):
        scores, y, _ = distorted
        scaler = PlattScaler().fit(scores, y)
        grid = np.linspace(0, 1, 50)
        out = scaler.transform(grid)
        assert np.all(np.diff(out) >= -1e-12)
        assert scaler.slope > 0

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            PlattScaler().transform(np.array([0.5]))


class TestIsotonic:
    def test_fitted_curve_is_monotone(self, distorted):
        scores, y, _ = distorted
        calibrator = IsotonicCalibrator().fit(scores, y)
        _, fitted = calibrator.fitted_curve
        assert np.all(np.diff(fitted) >= -1e-12)

    def test_improves_calibration(self, distorted):
        scores, y, _ = distorted
        calibrator = IsotonicCalibrator().fit(scores[:3000], y[:3000])
        calibrated = calibrator.transform(scores[3000:])
        before = expected_calibration_error(y[3000:], scores[3000:])
        after = expected_calibration_error(y[3000:], calibrated)
        assert after < before

    def test_transform_in_unit_interval(self, distorted):
        scores, y, _ = distorted
        calibrator = IsotonicCalibrator().fit(scores, y)
        out = calibrator.transform(np.array([-5.0, 0.5, 5.0]))
        assert np.all((out >= 0) & (out <= 1))

    def test_pava_on_tiny_example(self):
        # Classic PAVA: violating pair gets pooled to its mean.
        scores = np.array([0.1, 0.2, 0.3, 0.4])
        y = np.array([0.0, 1.0, 0.0, 1.0])
        calibrator = IsotonicCalibrator().fit(scores, y)
        _, fitted = calibrator.fitted_curve
        assert fitted.tolist() == [0.0, 0.5, 0.5, 1.0]

    def test_preserves_ranking_weakly(self, distorted):
        scores, y, _ = distorted
        calibrator = IsotonicCalibrator().fit(scores, y)
        out = calibrator.transform(np.sort(scores))
        assert np.all(np.diff(out) >= -1e-12)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            IsotonicCalibrator().fit(np.array([]), np.array([]))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            IsotonicCalibrator().transform(np.array([0.5]))


class TestOnChurnScores:
    def test_rf_vote_scores_benefit_from_calibration(self, small_world, small_scale, small_model):
        """End-to-end: calibrate the churn model's scores on one month and
        check the next month's probabilities improve."""
        from repro.core.pipeline import ChurnPipeline
        from repro.core.window import WindowSpec

        pipeline = ChurnPipeline(
            small_world, small_scale, categories=("F1",), model=small_model
        )
        calib_window = pipeline.run_window(WindowSpec((4,), 5))
        test_window = pipeline.run_window(WindowSpec((4,), 6))
        calibrator = IsotonicCalibrator().fit(
            calib_window.scores, calib_window.labels
        )
        raw_ece = expected_calibration_error(
            test_window.labels, test_window.scores
        )
        cal_ece = expected_calibration_error(
            test_window.labels, calibrator.transform(test_window.scores)
        )
        # Weighted-instance training inflates raw vote scores; calibration
        # brings them back toward true probabilities.
        assert cal_ece < raw_ece
