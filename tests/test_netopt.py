"""Tests for the network-optimization counterfactual (core.netopt)."""

import numpy as np
import pytest

from repro.config import ModelConfig, ScaleConfig
from repro.core.netopt import (
    NetworkOptimizationReport,
    churn_events,
    run_network_optimization_study,
)
from repro.datagen import TelcoSimulator
from repro.datagen.simulator import QualityIntervention
from repro.errors import ExperimentError, SimulationError


class TestQualityIntervention:
    def test_validation(self):
        with pytest.raises(SimulationError):
            QualityIntervention(start_month=0, slots=[1])
        with pytest.raises(SimulationError):
            QualityIntervention(start_month=2, slots=[1], ps_improvement=-1)

    def test_counterfactual_is_matched(self, tiny_scale):
        """Same seed, no intervention → byte-identical churn history."""
        simulator = TelcoSimulator(tiny_scale)
        a = simulator.run()
        b = simulator.run(
            QualityIntervention(
                start_month=5, slots=np.array([], dtype=np.int64)
            )
        )
        for t in range(1, tiny_scale.months + 1):
            assert np.array_equal(a.month(t).churning_now, b.month(t).churning_now)

    def test_history_identical_before_start_month(self, tiny_scale):
        simulator = TelcoSimulator(tiny_scale)
        baseline = simulator.run()
        treated = np.arange(0, tiny_scale.population, 3)
        intervened = simulator.run(
            QualityIntervention(start_month=5, slots=treated, ps_improvement=2.0)
        )
        for t in range(1, 5):
            assert np.array_equal(
                baseline.month(t).churning_now,
                intervened.month(t).churning_now,
            )

    def test_quality_boost_reduces_treated_churn(self, tiny_scale):
        simulator = TelcoSimulator(tiny_scale)
        baseline = simulator.run()
        # Treat the customers with the worst observable data service.
        tp = baseline.month(4).tables["ps_kpi"]["page_download_throughput"]
        treated = np.argsort(tp)[: tiny_scale.population // 5]
        intervened = simulator.run(
            QualityIntervention(
                start_month=5, slots=treated,
                ps_improvement=2.5, cs_improvement=2.5,
            )
        )
        months = range(6, tiny_scale.months + 1)
        before = churn_events(baseline, treated, months)
        after = churn_events(intervened, treated, months)
        assert after < before

    def test_kpis_improve_for_treated(self, tiny_scale):
        simulator = TelcoSimulator(tiny_scale)
        baseline = simulator.run()
        treated = np.arange(0, tiny_scale.population // 4)
        intervened = simulator.run(
            QualityIntervention(start_month=5, slots=treated, ps_improvement=2.0)
        )
        base_tp = baseline.month(6).tables["ps_kpi"]["page_download_throughput"]
        new_tp = intervened.month(6).tables["ps_kpi"]["page_download_throughput"]
        assert new_tp[treated].mean() > base_tp[treated].mean()


class TestStudy:
    @pytest.fixture(scope="class")
    def report(self) -> NetworkOptimizationReport:
        return run_network_optimization_study(
            ScaleConfig(population=2500, months=9, seed=7),
            model=ModelConfig(n_trees=15, min_samples_leaf=15),
            start_month=6,
        )

    def test_treated_are_quality_cases(self, report):
        assert len(report.treated_slots) > 0
        assert len(report.comparison_slots) > 0
        # Treated and comparison sets are disjoint.
        assert not set(report.treated_slots.tolist()) & set(
            report.comparison_slots.tolist()
        )

    def test_intervention_avoids_churn(self, report):
        assert report.treated_intervened_churn < report.treated_baseline_churn
        assert report.treated_reduction > 0.2

    def test_comparison_group_stable(self, report):
        # Untreated customers' outcomes barely move (only indirect
        # contagion effects can touch them).
        assert abs(report.comparison_drift) <= max(
            3, report.comparison_baseline_churn // 5
        )

    def test_render(self, report):
        text = report.render()
        assert "Network optimization" in text
        assert "avoided" in text

    def test_start_month_validated(self):
        with pytest.raises(ExperimentError):
            run_network_optimization_study(
                ScaleConfig(population=800, months=9, seed=1),
                model=ModelConfig(n_trees=5),
                start_month=9,
            )
