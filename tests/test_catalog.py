"""Unit tests for the Hive-like catalog."""

import numpy as np
import pytest

from repro.dataplat.blockstore import BlockStore
from repro.dataplat.catalog import Catalog
from repro.dataplat.table import Table
from repro.errors import CatalogError


@pytest.fixture()
def catalog() -> Catalog:
    return Catalog(BlockStore(num_nodes=2, replication=1, block_size=1 << 16))


@pytest.fixture()
def table() -> Table:
    return Table.from_arrays(imsi=np.array([1, 2]), v=np.array([1.0, 2.0]))


class TestSaveLoad:
    def test_round_trip(self, catalog, table):
        catalog.save(table, "t")
        assert catalog.load("t") == table

    def test_load_unknown(self, catalog):
        with pytest.raises(CatalogError):
            catalog.load("nope")

    def test_save_unknown_database(self, catalog, table):
        with pytest.raises(CatalogError):
            catalog.save(table, "t", database="nodb")

    def test_database_scoping(self, catalog, table):
        catalog.create_database("telco")
        catalog.save(table, "t", database="telco")
        assert catalog.exists("t", database="telco")
        assert not catalog.exists("t")

    def test_partitions_concatenate(self, catalog, table):
        catalog.save(table, "t", partition="month=1")
        catalog.save(table, "t", partition="month=2")
        assert catalog.load("t").num_rows == 4
        assert catalog.load("t", partition="month=1").num_rows == 2

    def test_unknown_partition(self, catalog, table):
        catalog.save(table, "t", partition="month=1")
        with pytest.raises(CatalogError):
            catalog.load("t", partition="month=9")

    def test_partition_schema_must_match(self, catalog, table):
        catalog.save(table, "t", partition="month=1")
        with pytest.raises(CatalogError):
            catalog.save(table.select(["imsi"]), "t", partition="month=2")

    def test_overwrite_flag(self, catalog, table):
        catalog.save(table, "t")
        with pytest.raises(CatalogError):
            catalog.save(table, "t", overwrite=False)

    def test_bytes_actually_stored(self, catalog, table):
        catalog.save(table, "t")
        assert catalog.store.total_bytes > 0


class TestMetadata:
    def test_info(self, catalog, table):
        catalog.save(table, "t", partition="month=1")
        info = catalog.info("t")
        assert info.qualified_name == "default.t"
        assert info.partitions == ("month=1",)
        assert info.schema == table.schema

    def test_tables_listing(self, catalog, table):
        catalog.save(table, "b")
        catalog.save(table, "a")
        assert catalog.tables() == ["a", "b"]

    def test_partitions_listing(self, catalog, table):
        catalog.save(table, "t", partition="month=2")
        catalog.save(table, "t", partition="month=1")
        assert catalog.partitions("t") == ["month=1", "month=2"]

    def test_drop(self, catalog, table):
        catalog.save(table, "t")
        catalog.drop("t")
        assert not catalog.exists("t")
        assert catalog.store.total_bytes == 0

    def test_drop_unknown(self, catalog):
        with pytest.raises(CatalogError):
            catalog.drop("nope")

    def test_databases(self, catalog):
        catalog.create_database("x")
        assert "x" in catalog.databases()
        assert "default" in catalog.databases()


class TestTempViews:
    def test_register_temp_is_queryable(self, catalog, table):
        catalog.register_temp(table, "view")
        assert catalog.load("view") == table

    def test_register_temp_writes_no_bytes(self, catalog, table):
        catalog.register_temp(table, "view")
        assert catalog.store.total_bytes == 0

    def test_register_temp_replaces(self, catalog, table):
        catalog.register_temp(table, "view")
        other = table.select(["imsi"])
        catalog.register_temp(other, "view")
        assert catalog.load("view") == other

    def test_temp_cannot_shadow_persisted(self, catalog, table):
        catalog.save(table, "t")
        with pytest.raises(CatalogError):
            catalog.register_temp(table, "t")
