"""Unit tests for the customer population and social graphs."""

import numpy as np
import pytest

from repro.datagen.population import CustomerPopulation, N_TOWNS
from repro.datagen.social import SocialGraph, build_graphs, exposure
from repro.errors import SimulationError


@pytest.fixture()
def pop(rng) -> CustomerPopulation:
    return CustomerPopulation(500, rng)


class TestPopulation:
    def test_attributes_plausible(self, pop):
        assert np.all((pop.age >= 16) & (pop.age <= 80))
        assert set(np.unique(pop.gender)) <= {0, 1}
        assert pop.town_id.max() < N_TOWNS
        assert np.all(pop.credit_value >= 0)
        assert np.all(pop.voice_level > 0)

    def test_initial_tenure_spread(self, pop):
        assert pop.innet_months.min() >= 1
        assert pop.innet_months.max() > 24

    def test_imsi_unique_per_generation(self, pop):
        imsi_before = pop.imsi.copy()
        pop.rebirth(np.array([0, 1]))
        imsi_after = pop.imsi
        assert imsi_after[0] != imsi_before[0]
        assert imsi_after[2] == imsi_before[2]
        assert len(set(imsi_after.tolist())) == pop.size

    def test_slots_of_inverts_imsi(self, pop):
        pop.rebirth(np.array([3]))
        slots = pop.slots_of(pop.imsi)
        assert np.array_equal(slots, np.arange(pop.size))

    def test_rebirth_resets_tenure(self, pop):
        pop.age_one_month()
        pop.rebirth(np.array([5]))
        assert pop.innet_months[5] == 1

    def test_rebirth_resamples_attributes(self, rng):
        pop = CustomerPopulation(2000, rng)
        ages_before = pop.age.copy()
        slots = np.arange(1000)
        pop.rebirth(slots)
        assert (pop.age[slots] != ages_before[slots]).mean() > 0.5

    def test_rebirth_empty_noop(self, pop):
        before = pop.imsi.copy()
        pop.rebirth(np.array([], dtype=np.int64))
        assert np.array_equal(pop.imsi, before)

    def test_age_one_month(self, pop):
        before = pop.innet_months.copy()
        pop.age_one_month()
        assert np.array_equal(pop.innet_months, before + 1)

    def test_offer_class_range_and_mix(self, rng):
        pop = CustomerPopulation(3000, rng)
        classes = np.unique(pop.offer_class)
        assert set(classes.tolist()) == {0, 1, 2, 3, 4}
        refuse_rate = (pop.offer_class == 0).mean()
        assert 0.2 < refuse_rate < 0.5

    def test_offer_class_correlates_with_usage(self, rng):
        pop = CustomerPopulation(5000, rng)
        data_heavy = pop.data_level > np.quantile(pop.data_level, 0.9)
        flux_rate_heavy = (pop.offer_class[data_heavy] == 3).mean()
        flux_rate_all = (pop.offer_class == 3).mean()
        assert flux_rate_heavy > flux_rate_all

    def test_size_validated(self, rng):
        with pytest.raises(SimulationError):
            CustomerPopulation(0, rng)


class TestGraphs:
    @pytest.fixture(scope="class")
    def graphs(self):
        rng = np.random.default_rng(0)
        pop = CustomerPopulation(800, rng)
        return build_graphs(800, pop.town_id, rng)

    def test_three_graphs(self, graphs):
        gs, _ = graphs
        assert set(gs) == {"call", "message", "cooccurrence"}

    def test_edges_valid(self, graphs):
        gs, _ = graphs
        for g in gs.values():
            assert g.edges.min() >= 0
            assert g.edges.max() < g.n_nodes
            assert np.all(g.weights > 0)
            assert len(g.weights) == g.num_edges

    def test_message_graph_sparser_than_call(self, graphs):
        gs, _ = graphs
        assert gs["message"].num_edges < gs["call"].num_edges

    def test_location_clusters_cover_everyone(self, graphs):
        _, clusters = graphs
        assert len(clusters) == 800
        assert clusters.min() >= 0

    def test_no_self_loops(self, graphs):
        gs, _ = graphs
        for g in gs.values():
            assert np.all(g.edges[:, 0] != g.edges[:, 1])

    def test_neighbor_structure_consistent(self, graphs):
        gs, _ = graphs
        g = gs["call"]
        indptr, neighbors, weights = g.neighbor_structure()
        assert indptr[-1] == 2 * g.num_edges
        assert len(neighbors) == len(weights)

    def test_tiny_world_rejected(self, rng):
        with pytest.raises(SimulationError):
            build_graphs(1, np.array([0]), rng)


class TestExposure:
    def test_exposure_definition(self):
        # Triangle 0-1-2; node 1 churned.
        g = SocialGraph(
            "g",
            np.array([[0, 1], [1, 2], [0, 2]]),
            np.array([1.0, 1.0, 1.0]),
            3,
        )
        churned = np.array([False, True, False])
        e = exposure(g, churned)
        assert e[0] == pytest.approx(0.5)
        assert e[1] == pytest.approx(0.0)
        assert e[2] == pytest.approx(0.5)

    def test_weights_matter(self):
        g = SocialGraph(
            "g", np.array([[0, 1], [0, 2]]), np.array([9.0, 1.0]), 3
        )
        e = exposure(g, np.array([False, True, False]))
        assert e[0] == pytest.approx(0.9)

    def test_isolated_nodes_zero(self):
        g = SocialGraph("g", np.array([[0, 1]]), np.array([1.0]), 4)
        e = exposure(g, np.array([True, False, False, False]))
        assert e[2] == 0.0 and e[3] == 0.0

    def test_length_checked(self):
        g = SocialGraph("g", np.array([[0, 1]]), np.array([1.0]), 2)
        with pytest.raises(SimulationError):
            exposure(g, np.array([True]))
