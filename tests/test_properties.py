"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.dataplat.catalog import Catalog
from repro.dataplat.dataset import Dataset
from repro.dataplat.etl import ETLJob, QUARANTINE_SUFFIX
from repro.dataplat.observability import Histogram
from repro.dataplat.resilience import (
    FAULT_KINDS,
    FaultInjector,
    FaultPolicy,
    RetryPolicy,
    SimClock,
    TaskRuntime,
)
from repro.dataplat.schema import Schema
from repro.dataplat.sql import SQLEngine
from repro.dataplat.table import Table
from repro.ml.graphalgo import label_propagation, pagerank
from repro.ml.metrics import pr_auc, precision_at, recall_at, roc_auc
from repro.ml.preprocess import QuantileBinner, one_hot
from repro.ml.sampling import rebalance
from repro.core.labeling import labels_from_delays

# Bounded float columns (no NaN/inf) keep the relational algebra exact.
floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def tables(draw, min_rows=0, max_rows=40):
    n = draw(st.integers(min_rows, max_rows))
    keys = draw(
        st.lists(st.integers(0, 5), min_size=n, max_size=n)
    )
    values = draw(st.lists(floats, min_size=n, max_size=n))
    return Table.from_arrays(
        k=np.asarray(keys, dtype=np.int64),
        v=np.asarray(values, dtype=np.float64),
    )


class TestTableProperties:
    @given(tables())
    @settings(max_examples=50, deadline=None)
    def test_serialization_round_trip(self, table):
        assert Table.from_bytes(table.to_bytes()) == table

    @given(tables(min_rows=1))
    @settings(max_examples=50, deadline=None)
    def test_sort_is_permutation(self, table):
        out = table.sort_by(["v"])
        assert sorted(out["v"].tolist()) == sorted(table["v"].tolist())
        assert np.all(np.diff(out["v"]) >= 0)

    @given(tables())
    @settings(max_examples=50, deadline=None)
    def test_mask_then_concat_partitions_rows(self, table):
        mask = table["k"] % 2 == 0
        parts = table.mask(mask).concat_rows(table.mask(~mask))
        assert parts.num_rows == table.num_rows
        assert sorted(parts["v"].tolist()) == sorted(table["v"].tolist())

    @given(tables(min_rows=1))
    @settings(max_examples=50, deadline=None)
    def test_group_by_sum_conserves_total(self, table):
        grouped = table.group_by(["k"], {"s": ("sum", "v")})
        assert grouped["s"].sum() == pytest.approx(
            table["v"].sum(), rel=1e-9, abs=1e-6
        )

    @given(tables(min_rows=1), tables(min_rows=1))
    @settings(max_examples=30, deadline=None)
    def test_inner_join_row_count_formula(self, left, right):
        out = left.join(right, on=["k"])
        expected = 0
        right_counts = {}
        for k in right["k"].tolist():
            right_counts[k] = right_counts.get(k, 0) + 1
        for k in left["k"].tolist():
            expected += right_counts.get(k, 0)
        assert out.num_rows == expected


class TestSQLProperties:
    @given(tables(min_rows=1))
    @settings(max_examples=30, deadline=None)
    def test_sql_sum_matches_numpy(self, table):
        engine = SQLEngine()
        engine.register(table, "t")
        out = engine.query("SELECT SUM(v) AS s, COUNT(*) AS n FROM t")
        assert out["s"][0] == pytest.approx(table["v"].sum(), rel=1e-9, abs=1e-6)
        assert out["n"][0] == table.num_rows

    @given(tables(min_rows=1), st.integers(-5, 5))
    @settings(max_examples=30, deadline=None)
    def test_where_equivalent_to_mask(self, table, threshold):
        engine = SQLEngine()
        engine.register(table, "t")
        out = engine.query(f"SELECT v FROM t WHERE k > {threshold}")
        assert sorted(out["v"].tolist()) == sorted(
            table.mask(table["k"] > threshold)["v"].tolist()
        )

    @given(tables(min_rows=1))
    @settings(max_examples=30, deadline=None)
    def test_group_count_covers_all_rows(self, table):
        engine = SQLEngine()
        engine.register(table, "t")
        out = engine.query("SELECT k, COUNT(*) AS n FROM t GROUP BY k")
        assert out["n"].sum() == table.num_rows


@st.composite
def scored_labels(draw):
    n = draw(st.integers(10, 200))
    scores = draw(
        hnp.arrays(np.float64, n, elements=st.floats(0, 1, allow_nan=False))
    )
    labels = draw(
        hnp.arrays(np.int64, n, elements=st.integers(0, 1))
    )
    # Guarantee both classes.
    labels[0] = 0
    labels[1] = 1
    return labels, scores


class TestMetricProperties:
    @given(scored_labels())
    @settings(max_examples=60, deadline=None)
    def test_auc_complement_under_score_negation(self, data):
        y, s = data
        assert roc_auc(y, s) + roc_auc(y, -s) == pytest.approx(1.0)

    @given(scored_labels())
    @settings(max_examples=60, deadline=None)
    def test_metric_ranges(self, data):
        y, s = data
        assert 0.0 <= roc_auc(y, s) <= 1.0
        assert 0.0 <= pr_auc(y, s) <= 1.0

    @given(scored_labels())
    @settings(max_examples=60, deadline=None)
    def test_recall_monotone_in_u(self, data):
        y, s = data
        values = [recall_at(y, s, u) for u in (1, 5, len(y))]
        assert values == sorted(values)
        assert values[-1] == 1.0

    @given(scored_labels())
    @settings(max_examples=60, deadline=None)
    def test_precision_at_full_list_is_base_rate(self, data):
        y, s = data
        assert precision_at(y, s, len(y)) == pytest.approx(y.mean())

    @given(scored_labels())
    @settings(max_examples=60, deadline=None)
    def test_auc_invariant_to_monotone_transform(self, data):
        # Scaling by a power of two is exact in floating point, so it is a
        # strictly monotone transform that cannot create new ties.
        y, s = data
        assert roc_auc(y, s) == pytest.approx(roc_auc(y, 4.0 * s))


class TestSamplingProperties:
    @given(st.integers(5, 50), st.integers(5, 50), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_up_down_balance_exactly(self, n_pos, n_neg, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n_pos + n_neg, 2))
        y = np.concatenate([np.ones(n_pos, int), np.zeros(n_neg, int)])
        for strategy in ("up", "down"):
            _, yb, w = rebalance(x, y, strategy, np.random.default_rng(seed))
            assert (yb == 1).sum() == (yb == 0).sum()
            assert np.all(w == 1.0)

    @given(st.integers(5, 50), st.integers(5, 50), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_weighted_mass_equal(self, n_pos, n_neg, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n_pos + n_neg, 2))
        y = np.concatenate([np.ones(n_pos, int), np.zeros(n_neg, int)])
        _, _, w = rebalance(x, y, "weighted")
        assert w[y == 1].sum() == pytest.approx(w[y == 0].sum())


class TestGraphProperties:
    @st.composite
    @staticmethod
    def graphs(draw):
        n = draw(st.integers(2, 30))
        m = draw(st.integers(1, 60))
        edges = []
        for _ in range(m):
            a = draw(st.integers(0, n - 1))
            b = draw(st.integers(0, n - 1))
            if a != b:
                edges.append((a, b))
        if not edges:
            edges = [(0, 1)]
        weights = draw(
            st.lists(
                st.floats(0.1, 10, allow_nan=False),
                min_size=len(edges),
                max_size=len(edges),
            )
        )
        return np.asarray(edges), np.asarray(weights), n

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_pagerank_mass_bounds(self, graph):
        # The paper's Eq. 1 hands isolated nodes the teleport mass but they
        # contribute nothing back, so total mass is conserved only on
        # graphs without isolated nodes and otherwise shrinks.
        edges, weights, n = graph
        scores = pagerank(edges, weights, n)
        assert np.all(scores > 0)
        assert scores.sum() <= 1.0 + 1e-4  # iteration tolerance headroom
        touched = np.zeros(n, dtype=bool)
        touched[edges.ravel()] = True
        if touched.all():
            assert scores.sum() == pytest.approx(1.0, abs=1e-3)
        else:
            assert scores[~touched].max() == pytest.approx(0.15 / n, abs=1e-9)

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_label_propagation_rows_are_distributions(self, graph):
        edges, weights, n = graph
        beliefs = label_propagation(edges, weights, n, {0: 1})
        assert np.allclose(beliefs.sum(axis=1), 1.0)
        assert np.all(beliefs >= 0)
        assert beliefs[0, 1] == pytest.approx(1.0)


class TestPreprocessProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(10, 100), st.integers(1, 5)),
            elements=floats,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_one_hot_rows_sum_to_columns(self, x):
        binner = QuantileBinner(n_bins=4).fit(x)
        onehot = one_hot(binner.transform(x), binner.bin_counts())
        assert np.all(onehot.sum(axis=1) == x.shape[1])


class TestRetryProperties:
    @given(
        st.integers(0, 10_000),
        st.integers(2, 8),
        st.floats(0.01, 2.0, allow_nan=False),
        st.floats(1.1, 4.0, allow_nan=False),
        st.floats(0.0, 0.99, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_schedule_deterministic_for_seed(
        self, seed, attempts, base, multiplier, jitter
    ):
        make = lambda: RetryPolicy(  # noqa: E731
            max_attempts=attempts,
            base_delay=base,
            multiplier=multiplier,
            jitter=jitter,
            seed=seed,
        )
        first, second = make().schedule(), make().schedule()
        assert first == second
        assert len(first) == attempts - 1
        for k, pause in enumerate(first):
            assert 0.0 < pause <= make().max_delay
            # Jitter only ever shortens the pause below the exponential cap.
            assert pause <= min(make().max_delay, base * multiplier**k)

    @given(st.integers(0, 10_000), st.integers(2, 8))
    @settings(max_examples=60, deadline=None)
    def test_zero_jitter_schedule_is_pure_exponential(self, seed, attempts):
        policy = RetryPolicy(
            max_attempts=attempts,
            base_delay=1.0,
            multiplier=2.0,
            jitter=0.0,
            max_delay=1e9,
            seed=seed,
        )
        assert policy.schedule() == [2.0**k for k in range(attempts - 1)]

    @given(
        st.integers(0, 10_000),
        st.floats(0.0, 0.9, allow_nan=False),
        st.integers(1, 80),
    )
    @settings(max_examples=60, deadline=None)
    def test_injector_decisions_replay_exactly(self, seed, rate, n_draws):
        policy = FaultPolicy(read_failure_rate=rate, task_failure_rate=rate)
        a = FaultInjector(policy, seed=seed)
        b = FaultInjector(policy, seed=seed)
        # Interleave a second kind into one injector only: per-kind streams
        # are independent, so the read_failure decisions must still match.
        decisions_a, decisions_b = [], []
        for i in range(n_draws):
            decisions_a.append(a.should("read_failure"))
            if i % 3 == 0:
                a.should("task_failure")
            decisions_b.append(b.should("read_failure"))
        assert decisions_a == decisions_b
        assert a.injected["read_failure"] == sum(decisions_a)


class TestQuarantineProperties:
    schema = Schema.of(k="int", v="float")

    @st.composite
    @staticmethod
    def raw_records(draw, max_records=30):
        n = draw(st.integers(0, max_records))
        records = []
        for _ in range(n):
            record = {}
            if draw(st.booleans()):
                record["k"] = draw(st.one_of(st.integers(0, 9), st.just("bad")))
            record["v"] = draw(st.one_of(floats, st.just("oops")))
            records.append(record)
        return records

    @given(raw_records())
    @settings(max_examples=40, deadline=None)
    def test_every_row_is_loaded_or_quarantined(self, records):
        catalog = Catalog()
        job = ETLJob(self.schema, target="feed")
        stats = job.run(records, catalog)
        assert stats.rows_read == len(records)
        assert stats.rows_loaded + stats.rows_rejected == stats.rows_read
        assert stats.rows_quarantined == stats.rows_rejected
        assert catalog.load("feed").num_rows == stats.rows_loaded
        if stats.rows_rejected:
            dead = catalog.load(f"feed{QUARANTINE_SUFFIX}")
            assert dead.num_rows == stats.rows_rejected
        else:
            assert not catalog.exists(f"feed{QUARANTINE_SUFFIX}")

    @given(raw_records())
    @settings(max_examples=40, deadline=None)
    def test_quarantine_off_only_counts(self, records):
        catalog = Catalog()
        job = ETLJob(self.schema, target="feed")
        stats = job.run(records, catalog, quarantine=False)
        assert stats.rows_quarantined == 0
        assert not catalog.exists(f"feed{QUARANTINE_SUFFIX}")
        assert stats.rows_loaded + stats.rows_rejected == stats.rows_read


class TestZeroFaultIdentity:
    @given(tables(min_rows=1), st.integers(0, 10_000), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_dataset_identical_with_and_without_runtime(
        self, table, seed, num_partitions
    ):
        def transform(ds):
            doubled = ds.map_partitions(
                lambda t: Table.from_arrays(k=t["k"], v=t["v"] * 2.0),
                ds.schema,
            )
            return doubled.filter(lambda t: t["k"] % 2 == 0).collect()

        plain = transform(Dataset.from_table(table, num_partitions))
        runtime = TaskRuntime(
            retry_policy=RetryPolicy(seed=seed),
            injector=FaultInjector.disabled(),
            clock=SimClock(),
        )
        resilient = transform(
            Dataset.from_table(table, num_partitions, runtime=runtime)
        )
        assert resilient == plain
        assert runtime.task_retries == 0
        assert all(n == 1 for n in runtime.task_attempts.values())

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_disabled_injector_never_fires(self, seed):
        injector = FaultInjector(FaultPolicy(), seed=seed)
        for kind in FAULT_KINDS:
            assert not any(injector.should(kind) for _ in range(50))
        assert injector.total_injected == 0


class TestLabelingProperties:
    @given(
        hnp.arrays(
            np.int64, st.integers(1, 200), elements=st.integers(-1, 60)
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_rule_matches_direct_definition(self, delays):
        labels = labels_from_delays(delays)
        for d, label in zip(delays.tolist(), labels.tolist()):
            assert label == (d < 0 or d > 15)


class TestHistogramProperties:
    """Merge algebra of fixed-boundary histograms (observability layer)."""

    @staticmethod
    def _fill(name, values, boundaries):
        h = Histogram(name, boundaries)
        for v in values:
            h.observe(v)
        return h

    boundary_lists = st.lists(
        st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        min_size=1,
        max_size=8,
        unique=True,
    ).map(sorted)
    samples = st.lists(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False), max_size=50
    )

    @given(boundary_lists, samples)
    @settings(max_examples=100, deadline=None)
    def test_bucket_count_conservation(self, boundaries, values):
        h = self._fill("h", values, boundaries)
        assert sum(h.counts) == h.total == len(values)

    @given(boundary_lists, samples, samples, samples)
    @settings(max_examples=100, deadline=None)
    def test_merge_associativity(self, boundaries, va, vb, vc):
        a = self._fill("a", va, boundaries)
        b = self._fill("b", vb, boundaries)
        c = self._fill("c", vc, boundaries)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.counts == right.counts
        assert left.total == right.total
        assert left.sum == pytest.approx(right.sum)
        assert left.min == right.min
        assert left.max == right.max

    @given(boundary_lists, samples, samples)
    @settings(max_examples=100, deadline=None)
    def test_merge_conserves_counts_and_matches_union(self, boundaries, va, vb):
        merged = self._fill("a", va, boundaries).merge(
            self._fill("b", vb, boundaries)
        )
        union = self._fill("u", va + vb, boundaries)
        assert merged.counts == union.counts
        assert merged.total == union.total == len(va) + len(vb)
        assert sum(merged.counts) == merged.total

    @given(boundary_lists, samples)
    @settings(max_examples=60, deadline=None)
    def test_merge_identity(self, boundaries, values):
        h = self._fill("h", values, boundaries)
        empty = Histogram("e", boundaries)
        merged = h.merge(empty)
        assert merged.counts == h.counts
        assert merged.total == h.total
        assert merged.sum == h.sum

    @given(boundary_lists, samples, samples)
    @settings(max_examples=60, deadline=None)
    def test_merge_commutative(self, boundaries, va, vb):
        a = self._fill("a", va, boundaries)
        b = self._fill("b", vb, boundaries)
        ab = a.merge(b)
        ba = b.merge(a)
        assert ab.counts == ba.counts
        assert ab.sum == pytest.approx(ba.sum)

    @given(boundary_lists, samples)
    @settings(max_examples=60, deadline=None)
    def test_merge_leaves_operands_untouched(self, boundaries, values):
        a = self._fill("a", values, boundaries)
        b = self._fill("b", values, boundaries)
        before = (list(a.counts), a.total, a.sum)
        a.merge(b)
        assert (list(a.counts), a.total, a.sum) == before
