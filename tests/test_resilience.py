"""The chaos suite: fault injection, retry, self-healing, degradation.

Unit tests for the resilience runtime plus the end-to-end chaos run the
acceptance criteria describe: a seeded fault injector kills a datanode,
corrupts a replica and takes a feature-family source down mid-run, and the
pipeline still ships a ranked churn list, with every absorbed fault on the
health report — while the zero-fault resilient run stays bit-identical to
the plain in-memory path.
"""

import numpy as np
import pytest

from repro.core.monitoring import ModelMonitor
from repro.core.pipeline import ChurnPipeline
from repro.core.window import WindowSpec
from repro.dataplat.blockstore import BlockStore
from repro.dataplat.catalog import Catalog
from repro.dataplat.dataset import Dataset
from repro.dataplat.etl import ETLJob, QUARANTINE_SUFFIX, run_pipeline
from repro.dataplat.resilience import (
    CatalogTableSource,
    FaultInjector,
    FaultPolicy,
    PipelineHealthReport,
    RetryPolicy,
    SimClock,
    TaskRuntime,
)
from repro.dataplat.schema import Schema
from repro.dataplat.table import Table
from repro.datagen.records import flaky_records
from repro.errors import (
    DataPlatformError,
    ETLError,
    FeatureError,
    StorageError,
    TransientError,
)


class TestSimClock:
    def test_sleep_advances(self):
        clock = SimClock()
        clock.sleep(2.5)
        clock.sleep(0.5)
        assert clock.now == 3.0

    def test_negative_sleep_rejected(self):
        with pytest.raises(DataPlatformError):
            SimClock().sleep(-1)


class TestRetryPolicy:
    def test_schedule_deterministic(self):
        a = RetryPolicy(max_attempts=6, seed=42).schedule()
        b = RetryPolicy(max_attempts=6, seed=42).schedule()
        assert a == b
        assert len(a) == 5

    def test_different_seed_different_jitter(self):
        a = RetryPolicy(max_attempts=6, seed=1).schedule()
        b = RetryPolicy(max_attempts=6, seed=2).schedule()
        assert a != b

    def test_delays_capped_and_positive(self):
        policy = RetryPolicy(
            max_attempts=12, base_delay=0.1, max_delay=3.0, jitter=0.9, seed=0
        )
        for delay in policy.schedule():
            assert 0 < delay <= 3.0

    def test_no_jitter_is_pure_exponential(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, max_delay=100.0, jitter=0.0
        )
        assert policy.schedule() == [1.0, 2.0, 4.0, 8.0]

    def test_call_retries_then_succeeds(self):
        clock = SimClock()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("boom")
            return "ok"

        retries = []
        out = RetryPolicy(max_attempts=4, jitter=0.0).call(
            flaky, clock=clock, on_retry=lambda k, d, e: retries.append(d)
        )
        assert out == "ok"
        assert calls["n"] == 3
        assert clock.now == pytest.approx(sum(retries))
        assert len(retries) == 2

    def test_call_exhausts_attempts(self):
        def always_fails():
            raise TransientError("down")

        with pytest.raises(TransientError):
            RetryPolicy(max_attempts=3).call(always_fails, clock=SimClock())

    def test_non_retryable_fails_fast(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise StorageError("deterministic")

        with pytest.raises(StorageError):
            RetryPolicy(max_attempts=5).call(broken, clock=SimClock())
        assert calls["n"] == 1

    def test_invalid_policies_rejected(self):
        with pytest.raises(DataPlatformError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(DataPlatformError):
            RetryPolicy(base_delay=0)
        with pytest.raises(DataPlatformError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(DataPlatformError):
            RetryPolicy(multiplier=0.5)


class TestFaultInjector:
    def test_same_seed_same_decisions(self):
        policy = FaultPolicy(read_failure_rate=0.3, task_failure_rate=0.2)
        a = FaultInjector(policy, seed=9)
        b = FaultInjector(policy, seed=9)
        seq_a = [a.should("read_failure") for _ in range(50)]
        seq_b = [b.should("read_failure") for _ in range(50)]
        assert seq_a == seq_b
        assert any(seq_a)  # 50 draws at 0.3 fire with near-certainty

    def test_streams_independent_of_interleaving(self):
        policy = FaultPolicy(read_failure_rate=0.4, task_failure_rate=0.4)
        pure = FaultInjector(policy, seed=5)
        mixed = FaultInjector(policy, seed=5)
        reads_pure = [pure.should("read_failure") for _ in range(20)]
        reads_mixed = []
        for _ in range(20):
            mixed.should("task_failure")  # interleaved other-kind draws
            reads_mixed.append(mixed.should("read_failure"))
        assert reads_pure == reads_mixed

    def test_disabled_never_fires(self):
        injector = FaultInjector.disabled()
        assert not any(injector.should("read_failure") for _ in range(100))
        assert injector.total_injected == 0

    def test_injected_counts(self):
        injector = FaultInjector(FaultPolicy(record_drop_rate=0.5), seed=0)
        fired = sum(injector.should("record_drop") for _ in range(100))
        assert injector.injected["record_drop"] == fired > 0

    def test_bad_rate_rejected(self):
        with pytest.raises(DataPlatformError):
            FaultPolicy(read_failure_rate=1.0)
        with pytest.raises(DataPlatformError):
            FaultInjector().should("meteor_strike")


class TestSelfHealingStore:
    def test_corrupt_replica_detected_and_repaired(self):
        store = BlockStore(num_nodes=3, replication=2, block_size=16)
        payload = b"checksummed-data" * 4
        store.write("/f", payload)
        status = store.status("/f")
        bad_node = status.blocks[0].replicas[0]
        store.corrupt_block("/f", 0, bad_node)
        assert store.read("/f") == payload
        assert store.corrupt_replicas_detected == 1
        assert store.health.replicas_repaired == 1
        # The repaired replica now passes its checksum: re-reading is clean.
        assert store.read("/f") == payload
        assert store.corrupt_replicas_detected == 1

    def test_repair_disabled_counts_but_leaves_corrupt(self):
        store = BlockStore(
            num_nodes=3, replication=2, block_size=16, auto_repair=False
        )
        store.write("/f", b"x" * 16)
        store.corrupt_block("/f", 0, store.status("/f").blocks[0].replicas[0])
        store.read("/f")
        store.read("/f")
        assert store.corrupt_replicas_detected == 2  # still corrupt
        assert store.health.replicas_repaired == 0

    def test_read_path_triggers_re_replication(self):
        store = BlockStore(num_nodes=3, replication=2, block_size=8)
        payload = b"q" * 32
        store.write("/f", payload)
        store.kill_node(store.status("/f").blocks[0].replicas[0])
        assert store.read("/f") == payload
        # The read healed the file without a manual re_replicate() call.
        assert store.health.replicas_recreated > 0
        for block in store.status("/f").blocks:
            live = [n for n in block.replicas if store._node(n).alive]
            assert len(live) >= 2

    def test_transient_faults_absorbed_by_retry(self):
        injector = FaultInjector(FaultPolicy(read_failure_rate=0.05), seed=3)
        store = BlockStore(
            num_nodes=3,
            replication=2,
            block_size=8,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=8, jitter=0.0, seed=3),
        )
        payload = bytes(range(64))
        store.write("/f", payload)
        for _ in range(20):
            assert store.read("/f") == payload
        assert store.health.transient_read_failures > 0
        assert store.health.read_retries == store.health.transient_read_failures

    def test_transient_fault_without_retry_policy_raises(self):
        injector = FaultInjector(FaultPolicy(read_failure_rate=0.99), seed=0)
        store = BlockStore(num_nodes=3, fault_injector=injector)
        store.write("/f", b"x")
        with pytest.raises(TransientError):
            for _ in range(50):
                store.read("/f")

    def test_re_replicate_completes_scan_and_lists_all_lost(self):
        store = BlockStore(num_nodes=3, replication=1, block_size=4)
        store.write("/lost_a", b"aaaa")
        store.write("/lost_b", b"bbbb")
        store.write("/safe", b"ssss")
        # The balancer placed each single-replica block on its own node;
        # kill the two holding the "lost" files, keep /safe's alive.
        victims = {
            store.status(p).blocks[0].replicas[0] for p in ("/lost_a", "/lost_b")
        }
        survivor = store.status("/safe").blocks[0].replicas[0]
        assert survivor not in victims
        for node_id in victims:
            store.kill_node(node_id)
        with pytest.raises(StorageError) as err:
            store.re_replicate()
        # One error, naming every lost block — not just the first.
        assert "/lost_a" in str(err.value)
        assert "/lost_b" in str(err.value)
        # The scan completed: the surviving file is untouched and readable.
        assert store.read("/safe") == b"ssss"


class TestTaskRetry:
    @pytest.fixture()
    def table(self):
        rng = np.random.default_rng(0)
        return Table.from_arrays(
            k=rng.integers(0, 5, size=200),
            v=rng.normal(size=200),
        )

    def test_tasks_retry_from_lineage(self, table):
        injector = FaultInjector(FaultPolicy(task_failure_rate=0.3), seed=7)
        runtime = TaskRuntime(
            retry_policy=RetryPolicy(max_attempts=10, jitter=0.0, seed=7),
            injector=injector,
        )
        ds = Dataset.from_table(table, num_partitions=5, runtime=runtime)
        out = (
            ds.filter(lambda t: t["v"] > 0)
            .group_by_key("k", {"s": ("sum", "v")}, num_partitions=3)
            .collect()
        )
        clean = (
            Dataset.from_table(table, num_partitions=5)
            .filter(lambda t: t["v"] > 0)
            .group_by_key("k", {"s": ("sum", "v")}, num_partitions=3)
            .collect()
        )
        assert out.sort_by(["k"]) == clean.sort_by(["k"])
        assert injector.injected["task_failure"] > 0
        assert runtime.task_retries > 0
        assert max(runtime.task_attempts.values()) > 1

    def test_runtime_inherited_by_derived_datasets(self, table):
        runtime = TaskRuntime()
        ds = Dataset.from_table(table, num_partitions=3, runtime=runtime)
        derived = ds.filter(lambda t: t["v"] > 0).select(["v"])
        assert derived.runtime is runtime
        joined = ds.join(ds.select(["k"]), on="k", num_partitions=2)
        assert joined.runtime is runtime

    def test_attempt_accounting_without_faults(self, table):
        runtime = TaskRuntime()
        ds = Dataset.from_table(table, num_partitions=4, runtime=runtime)
        ds.count()
        assert len(runtime.task_attempts) == 4
        assert all(a == 1 for a in runtime.task_attempts.values())
        assert runtime.task_retries == 0

    def test_straggler_tasks_burn_simulated_time(self, table):
        clock = SimClock()
        injector = FaultInjector(
            FaultPolicy(task_slow_rate=0.5, slow_task_penalty=2.0), seed=1
        )
        runtime = TaskRuntime(injector=injector, clock=clock)
        Dataset.from_table(table, num_partitions=8, runtime=runtime).count()
        assert runtime.slow_tasks > 0
        assert clock.now == pytest.approx(2.0 * runtime.slow_tasks)


class TestQuarantineETL:
    @pytest.fixture()
    def schema(self):
        return Schema.of(imsi="int", dur="float")

    def test_rejects_land_in_dead_letter_table(self, schema):
        catalog = Catalog()
        job = ETLJob(schema, "cdr")
        records = [
            {"imsi": 1, "dur": 1.0},
            {"imsi": "bad", "dur": 2.0},
            {"dur": 3.0},
            {"imsi": 4, "dur": 4.0},
        ]
        stats = job.run(records, catalog)
        assert stats.rows_loaded == 2
        assert stats.rows_rejected == stats.rows_quarantined == 2
        dead = catalog.load(f"cdr{QUARANTINE_SUFFIX}")
        assert dead.num_rows == 2
        assert sorted(dead["reason"].tolist()) == ["badtype:imsi", "missing:imsi"]
        assert "'dur': 3.0" in "".join(dead["record"].tolist())

    def test_quarantine_off_keeps_counters_only(self, schema):
        catalog = Catalog()
        stats = ETLJob(schema, "cdr").run(
            [{"imsi": 1}], catalog, quarantine=False
        )
        assert stats.rows_rejected == 1
        assert stats.rows_quarantined == 0
        assert not catalog.exists(f"cdr{QUARANTINE_SUFFIX}")

    def test_failed_job_never_registers_target(self, schema):
        # Regression: the reject gate used to fire only after catalog.save,
        # leaving a mostly-empty table registered by the failed job.
        catalog = Catalog()
        bad = [{"imsi": 1}, {"imsi": 2}, {"imsi": 3, "dur": 1.0}]
        with pytest.raises(ETLError):
            run_pipeline([(ETLJob(schema, "cdr"), bad)], catalog)
        assert not catalog.exists("cdr")
        # The rejects are still quarantined for diagnosis.
        assert catalog.load(f"cdr{QUARANTINE_SUFFIX}").num_rows == 2

    def test_flaky_extract_retried_via_factory(self, schema):
        catalog = Catalog()
        injector = FaultInjector(FaultPolicy(stream_failure_rate=0.05), seed=2)
        rows = [{"imsi": i, "dur": float(i)} for i in range(20)]

        def source():
            return flaky_records(iter(rows), injector)

        stats = run_pipeline(
            [(ETLJob(schema, "cdr"), source)],
            catalog,
            retry_policy=RetryPolicy(max_attempts=30, jitter=0.0),
            clock=SimClock(),
        )["cdr"]
        assert injector.injected["stream_failure"] > 0
        assert stats.extract_attempts == injector.injected["stream_failure"] + 1
        assert catalog.load("cdr").num_rows == 20

    def test_garbled_records_quarantined_dropped_records_lost(self, schema):
        catalog = Catalog()
        injector = FaultInjector(
            FaultPolicy(record_drop_rate=0.1, record_garble_rate=0.1), seed=2
        )
        rows = [{"imsi": i, "dur": float(i)} for i in range(200)]
        stats = ETLJob(schema, "cdr").run(
            flaky_records(iter(rows), injector), catalog
        )
        dropped = injector.injected["record_drop"]
        garbled = injector.injected["record_garble"]
        assert dropped > 0 and garbled > 0
        assert stats.rows_read == 200 - dropped
        assert stats.rows_loaded + stats.rows_rejected == stats.rows_read
        assert stats.rows_rejected == garbled
        assert catalog.load(f"cdr{QUARANTINE_SUFFIX}").num_rows == garbled


class TestDegradedWideTable:
    @pytest.fixture(scope="class")
    def chaos_catalog(self, tiny_world):
        store = BlockStore(num_nodes=4, replication=3)
        catalog = Catalog(store)
        tiny_world.load_catalog(catalog)
        catalog.clear_cache()
        return catalog, store

    def test_missing_source_drops_family_not_run(self, tiny_world, chaos_catalog):
        from repro.features import WideTableBuilder

        catalog, _ = chaos_catalog
        source = CatalogTableSource(catalog)
        tables = source.tables_for(5)
        assert "cs_kpi" in tables  # intact feed serves everything
        catalog.drop("cs_kpi", database="telco")
        builder = WideTableBuilder(
            tiny_world, table_source=CatalogTableSource(catalog).tables_for
        )
        health = PipelineHealthReport()
        survivors = builder.surviving_categories(
            [5, 6], ("F1", "F2", "F3"), health
        )
        assert survivors == ("F1", "F3")
        assert set(health.families_dropped) == {"F2"}
        assert health.degraded
        assert health.status == "degraded(F2)"
        wide = builder.features(5, survivors)
        assert wide.n_rows == len(tiny_world.month(5).imsi)

    def test_baseline_family_is_not_droppable(self, tiny_world):
        from repro.features import WideTableBuilder

        builder = WideTableBuilder(tiny_world, table_source=lambda month: {})
        with pytest.raises(FeatureError):
            builder.surviving_categories([5], ("F1", "F2"))


@pytest.fixture(scope="module")
def clean_result(tiny_world, tiny_scale, small_model):
    pipeline = ChurnPipeline(
        tiny_world, tiny_scale, categories=("F1", "F2"), model=small_model
    )
    return pipeline.run_window(WindowSpec((5,), 6))


class TestEndToEndChaos:
    def test_zero_faults_bit_identical_to_plain_path(
        self, tiny_world, tiny_scale, small_model, clean_result
    ):
        store = BlockStore(num_nodes=4, replication=3)
        catalog = Catalog(store)
        tiny_world.load_catalog(catalog)
        catalog.clear_cache()
        source = CatalogTableSource(catalog)
        pipeline = ChurnPipeline(
            tiny_world,
            tiny_scale,
            categories=("F1", "F2"),
            model=small_model,
            table_source=source.tables_for,
            store=store,
            allow_degraded=True,
        )
        result = pipeline.run_window(WindowSpec((5,), 6))
        assert result.health is not None
        assert not result.health.degraded
        assert result.health.families_used == ["F1", "F2"]
        assert result.predictor.degradation_state == "full"
        assert np.array_equal(result.scores, clean_result.scores)
        assert np.array_equal(result.test_slots, clean_result.test_slots)
        assert result.auc == clean_result.auc
        assert result.pr_auc == clean_result.pr_auc

    def test_chaos_run_degrades_gracefully(
        self, tiny_world, tiny_scale, small_model, clean_result
    ):
        injector = FaultInjector(FaultPolicy(read_failure_rate=0.03), seed=1234)
        store = BlockStore(
            num_nodes=4,
            replication=3,
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=8, seed=1234),
        )
        catalog = Catalog(store)
        tiny_world.load_catalog(catalog)
        catalog.clear_cache()

        # Chaos: corrupt one replica of a table the window will read, kill
        # one datanode, and take the F2 feed down mid-run.
        bss_path = next(
            p for p in store.list_files("/warehouse/telco") if "month_5" in p
        )
        status = store.status(bss_path)
        store.corrupt_block(bss_path, 0, status.blocks[0].replicas[0])
        store.kill_node(status.blocks[0].replicas[1])
        catalog.drop("cs_kpi", database="telco")

        source = CatalogTableSource(catalog)
        pipeline = ChurnPipeline(
            tiny_world,
            tiny_scale,
            categories=("F1", "F2"),
            model=small_model,
            table_source=source.tables_for,
            store=store,
            allow_degraded=True,
        )
        result = pipeline.run_window(WindowSpec((5,), 6))
        health = result.health

        # The pipeline completed and still ships a ranked top-U list.
        assert len(result.scores) == len(clean_result.scores)
        u = min(50, len(result.scores))
        top = np.argsort(-result.scores, kind="mergesort")[:u]
        assert len(np.unique(top)) == u

        # Health report records the repair / retry / degradation events.
        assert health.degraded
        assert set(health.families_dropped) == {"F2"}
        assert health.families_used == ["F1"]
        assert health.corrupt_replicas_detected >= 1
        assert health.repaired_replicas >= 1
        assert health.re_replicated_blocks >= 1
        assert result.predictor.degradation_state == "degraded(F2)"
        assert result.predictor.is_degraded
        rendered = health.render()
        assert "degraded(F2)" in rendered and "repaired" in rendered

        # Graceful degradation: losing F2 costs PR-AUC, but boundedly
        # (Table 2 scale: one family's lift, not a collapse).
        assert result.pr_auc > 0.0
        assert result.pr_auc >= clean_result.pr_auc - 0.25
        assert result.auc > 0.6

    def test_monitoring_consumes_health_report(self, clean_result):
        health = PipelineHealthReport(families_used=["F1"])
        health.drop_family("F2", "feed down")
        rng = np.random.default_rng(0)
        features = rng.normal(size=(300, 3))
        monitor = ModelMonitor(["a", "b", "c"], features)
        report = monitor.compare(features, pipeline_health=health)
        assert report.degraded
        assert not report.healthy  # degradation alone flips health
        assert not report.alerts  # ... even with zero drift
        assert "degraded(F2)" in report.render()
        clean = monitor.compare(features)
        assert clean.healthy
