"""Online-vs-batch scoring parity: bit-identical on both backends.

The serving path adds a storage roundtrip (float64 raw codec), a
micro-batch decomposition, and a score cache — none of which may change
a single bit of the score a customer would have received from the batch
predictor over the same snapshot.  Checked for 1k sampled customers
under both the Serial and ProcessPool executor backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ModelConfig
from repro.core.predictor import ChurnPredictor
from repro.dataplat.executor import ProcessPoolBackend, SerialBackend
from repro.serve import (
    FeatureStore,
    FixedServiceTime,
    ModelRegistry,
    ScoringService,
    ServeConfig,
)

SAMPLE = 1000
MONTH = 3


@pytest.fixture(scope="module")
def snapshot(small_builder):
    return small_builder.features(MONTH, ("F1", "F2"))


@pytest.fixture(scope="module")
def fitted(snapshot):
    """One predictor per backend, fitted on identical data."""
    rng = np.random.default_rng(5)
    y = (
        snapshot.values[:, 0] > np.median(snapshot.values[:, 0])
    ).astype(np.int64)
    y ^= (rng.random(len(y)) < 0.1).astype(np.int64)  # label noise
    config = ModelConfig(n_trees=8, max_depth=8, min_samples_leaf=20)
    predictors = {}
    pool = ProcessPoolBackend(max_workers=2)
    try:
        for label, backend in (
            ("serial", SerialBackend()),
            ("process", pool),
        ):
            predictors[label] = ChurnPredictor(
                "rf", config=config, seed=5, backend=backend
            ).fit(snapshot.values, y)
        yield predictors
    finally:
        pool.close()


@pytest.fixture(scope="module")
def sample_ids(snapshot):
    rng = np.random.default_rng(17)
    idx = rng.choice(snapshot.n_rows, size=min(SAMPLE, snapshot.n_rows), replace=False)
    return idx, snapshot.imsi[idx]


@pytest.mark.parametrize("backend", ["serial", "process"])
def test_online_scores_bit_identical_to_batch(
    snapshot, fitted, sample_ids, backend
):
    idx, imsi = sample_ids
    predictor = fitted[backend]
    batch_scores = predictor.predict_proba(snapshot.values[idx])

    store = FeatureStore(cache_rows=2048)
    store.materialize(snapshot, f"m{MONTH}-{backend}", buckets=8)
    registry = ModelRegistry()
    registry.publish("v1", predictor, activate=True)
    service = ScoringService(
        store,
        registry,
        ServeConfig(max_batch=64, batch_window_s=0.002, max_queue_depth=256),
        service_time=FixedServiceTime(),
    )
    online_scores = service.score(imsi)
    assert np.array_equal(online_scores, batch_scores)


def test_backends_agree_with_each_other(snapshot, fitted, sample_ids):
    idx, _ = sample_ids
    serial = fitted["serial"].predict_proba(snapshot.values[idx])
    process = fitted["process"].predict_proba(snapshot.values[idx])
    assert np.array_equal(serial, process)


def test_parity_survives_cache_hits(snapshot, fitted, sample_ids):
    """A re-score served from the memoized cache is the same bits too."""
    idx, imsi = sample_ids
    predictor = fitted["serial"]
    store = FeatureStore(cache_rows=2048)
    store.materialize(snapshot, "cachecheck", buckets=8)
    registry = ModelRegistry()
    registry.publish("v1", predictor, activate=True)
    service = ScoringService(
        store,
        registry,
        ServeConfig(score_cache_rows=4096),
        service_time=FixedServiceTime(),
    )
    first = service.score(imsi[:200])
    second = service.score(imsi[:200])
    assert np.array_equal(first, second)
    assert np.array_equal(first, predictor.predict_proba(snapshot.values[idx[:200]]))
