"""Unit tests for the online scoring service (store, registry, batcher)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataplat.catalog import Catalog
from repro.dataplat.observability import Histogram
from repro.errors import DataPlatformError, ServeError, TransientError
from repro.features.spec import FeatureMatrix
from repro.ml.forest import RandomForestClassifier
from repro.serve import (
    FeatureStore,
    FixedServiceTime,
    ModelRegistry,
    ScoringService,
    ServeConfig,
)

N_ROWS = 240
N_FEATURES = 5


def make_matrix(seed: int = 0, n: int = N_ROWS) -> FeatureMatrix:
    rng = np.random.default_rng(seed)
    imsi = rng.permutation(np.arange(50_000, 50_000 + n)).astype(np.int64)
    values = rng.normal(size=(n, N_FEATURES))
    return FeatureMatrix(
        imsi=imsi, names=[f"f{i}" for i in range(N_FEATURES)], values=values
    )


def make_forest(matrix: FeatureMatrix, seed: int = 1) -> RandomForestClassifier:
    rng = np.random.default_rng(seed)
    y = (matrix.values[:, 0] + 0.2 * rng.normal(size=matrix.n_rows) > 0).astype(
        np.int64
    )
    return RandomForestClassifier(
        n_trees=5, max_depth=6, min_samples_leaf=10, seed=seed
    ).fit(matrix.values, y)


@pytest.fixture()
def matrix() -> FeatureMatrix:
    return make_matrix()


@pytest.fixture()
def store(matrix) -> FeatureStore:
    store = FeatureStore(cache_rows=64)
    store.materialize(matrix, "m3", buckets=4)
    return store


@pytest.fixture()
def registry(matrix) -> ModelRegistry:
    registry = ModelRegistry()
    registry.publish("v1", make_forest(matrix, seed=1), activate=True)
    return registry


def row_for(matrix: FeatureMatrix, cid: int) -> np.ndarray:
    (idx,) = np.nonzero(matrix.imsi == cid)
    return matrix.values[idx[0]]


class TestFeatureStore:
    def test_lookup_roundtrip_bit_identical(self, store, matrix):
        sample = matrix.imsi[[3, 77, 140, 10]]
        rows = store.lookup(sample)
        expected = np.stack([row_for(matrix, c) for c in sample.tolist()])
        assert np.array_equal(rows, expected)  # float64 codec is lossless

    def test_lookup_preserves_request_order_and_duplicates(self, store, matrix):
        sample = [matrix.imsi[9], matrix.imsi[4], matrix.imsi[9]]
        rows = store.lookup(sample)
        assert np.array_equal(rows[0], rows[2])
        assert np.array_equal(rows[1], row_for(matrix, int(matrix.imsi[4])))

    def test_unknown_customer_raises(self, store):
        with pytest.raises(ServeError, match="unknown customer"):
            store.lookup([123])

    def test_point_lookup_prunes_buckets(self, matrix, capture_spans):
        store = FeatureStore(cache_rows=0)
        store.materialize(matrix, "m3", buckets=4)
        before = capture_spans.counter("columnar.partitions_pruned")
        store.lookup([int(matrix.imsi[0])])
        pruned = capture_spans.counter("columnar.partitions_pruned") - before
        # One id lives in exactly one of four disjoint id-range buckets.
        assert pruned == 3

    def test_cache_hits_and_eviction(self, matrix, capture_spans):
        store = FeatureStore(cache_rows=2)
        store.materialize(matrix, "m3", buckets=4)
        a, b, c = (int(matrix.imsi[i]) for i in (0, 1, 2))
        store.lookup([a, b])
        assert capture_spans.counter("serve.store.misses") == 2
        store.lookup([a, b])
        assert capture_spans.counter("serve.store.hits") == 2
        store.lookup([c])  # evicts the LRU row (a)
        assert capture_spans.counter("serve.store.evictions") >= 1
        store.lookup([a])
        assert capture_spans.counter("serve.store.misses") == 4

    def test_attach_rediscovers_snapshot_from_catalog(self, matrix):
        catalog = Catalog()
        first = FeatureStore(catalog=catalog)
        first.materialize(matrix, "m3", buckets=4)
        second = FeatureStore(catalog=catalog)
        info = second.attach("m3")
        assert info.feature_names == tuple(matrix.names)
        assert info.n_rows == matrix.n_rows
        sample = matrix.imsi[:7]
        assert np.array_equal(second.lookup(sample), first.lookup(sample))

    def test_attach_unknown_snapshot_raises(self, store):
        with pytest.raises(ServeError, match="unknown snapshot"):
            store.attach("nope")

    def test_materialize_rejects_duplicates_and_bad_names(self, matrix):
        store = FeatureStore()
        dup = FeatureMatrix(
            imsi=np.array([1, 1]),
            names=list(matrix.names),
            values=np.zeros((2, N_FEATURES)),
        )
        with pytest.raises(ServeError, match="duplicate"):
            store.materialize(dup, "m3")
        with pytest.raises(ServeError, match="invalid snapshot"):
            store.materialize(matrix, "bad/name")


class TestModelRegistry:
    def test_publish_activate_current(self, matrix):
        registry = ModelRegistry()
        forest = make_forest(matrix)
        registry.publish("v1", forest)
        assert registry.active_version is None
        registry.activate("v1")
        assert registry.current() == ("v1", forest)
        assert registry.swaps == 1

    def test_duplicate_and_unknown_versions_raise(self, matrix):
        registry = ModelRegistry()
        registry.publish("v1", make_forest(matrix))
        with pytest.raises(ServeError, match="already published"):
            registry.publish("v1", make_forest(matrix))
        with pytest.raises(ServeError, match="unknown model version"):
            registry.activate("v9")
        with pytest.raises(ServeError, match="no active model"):
            registry.current()

    def test_model_without_predict_proba_rejected(self):
        with pytest.raises(ServeError, match="predict_proba"):
            ModelRegistry().publish("v1", object())

    def test_swap_counter_and_subscribers(self, matrix, capture_spans):
        registry = ModelRegistry()
        seen: list[str] = []
        registry.subscribe(seen.append)
        registry.publish("v1", make_forest(matrix, seed=1), activate=True)
        registry.publish("v2", make_forest(matrix, seed=2), activate=True)
        assert seen == ["v1", "v2"]
        assert capture_spans.counter("serve.model_swaps") == 2

    def test_failed_loader_falls_back_to_stale_model(self, matrix, capture_spans):
        registry = ModelRegistry()
        registry.publish("v1", make_forest(matrix), activate=True)

        def explode():
            raise TransientError("model bytes unreadable")

        assert registry.activate("v2", loader=explode) is False
        assert registry.active_version == "v1"  # stale model keeps serving
        assert capture_spans.counter("serve.model_swap_failures") == 1
        assert capture_spans.counter("serve.model_swaps") == 1

    def test_durable_publish_roundtrip(self, matrix):
        catalog = Catalog()
        forest = make_forest(matrix)
        registry = ModelRegistry()
        registry.publish_durable(catalog, "v1", forest, activate=True)
        other = ModelRegistry()
        assert other.activate_from_store(catalog, "v1") is True
        _, loaded = other.current()
        probe = matrix.values[:13]
        assert np.array_equal(
            loaded.predict_proba(probe), forest.predict_proba(probe)
        )


class TestServeConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"batch_window_s": -0.001},
            {"max_queue_depth": 3, "max_batch": 4},
            {"default_deadline_s": 0.0},
            {"score_cache_rows": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ServeError):
            ServeConfig(**kwargs)


class TestScoringService:
    def make_service(self, store, registry, **overrides) -> ScoringService:
        defaults = dict(
            max_batch=4,
            batch_window_s=0.010,
            max_queue_depth=8,
            default_deadline_s=0.250,
        )
        defaults.update(overrides)
        return ScoringService(
            store,
            registry,
            ServeConfig(**defaults),
            service_time=FixedServiceTime(base_s=0.002, per_row_s=0.0001),
        )

    def test_window_dispatch_timing(self, store, registry, matrix):
        service = self.make_service(store, registry)
        ticket = service.submit(int(matrix.imsi[0]), now=0.0)
        assert service.poll(0.009) == []  # window not elapsed
        done = service.poll(0.013)
        assert done == [ticket]
        assert ticket.outcome == "scored"
        # dispatch at 0.010 (window) + base 0.002 + 1 row * 0.0001
        assert ticket.completion_s == pytest.approx(0.0121)

    def test_full_batch_dispatches_immediately(self, store, registry, matrix):
        service = self.make_service(store, registry)
        tickets = [
            service.submit(int(matrix.imsi[i]), now=0.001) for i in range(4)
        ]
        done = service.poll(0.004)  # before the 10ms window
        assert done == tickets
        assert {t.batch_id for t in tickets} == {0}
        assert [t.request_id for t in tickets] == sorted(
            t.request_id for t in tickets
        )

    def test_shed_with_retry_after_when_queue_full(
        self, store, registry, matrix, capture_spans
    ):
        # A slow server: the first request dispatches alone (idle server,
        # zero window) and occupies the server for 50ms, so the next four
        # stay queued and the sixth submit finds the queue at its bound.
        service = ScoringService(
            store,
            registry,
            ServeConfig(
                max_batch=2, max_queue_depth=4, batch_window_s=0.0
            ),
            service_time=FixedServiceTime(base_s=0.050, per_row_s=0.0),
        )
        ids = [int(c) for c in matrix.imsi[:8]]
        for cid in ids[:5]:
            service.submit(cid, now=0.001)
        shed = service.submit(ids[5], now=0.001)
        assert shed.outcome == "shed"
        assert shed.retry_after_s is not None and shed.retry_after_s > 0
        assert capture_spans.counter("serve.shed") == 1
        assert capture_spans.metrics.gauge("serve.queue_depth").value <= 4
        service.drain()

    def test_deadline_expires_behind_slow_batches(self, store, registry, matrix):
        service = ScoringService(
            store,
            registry,
            ServeConfig(max_batch=1, batch_window_s=0.0, max_queue_depth=8),
            service_time=FixedServiceTime(base_s=0.100, per_row_s=0.0),
        )
        first = service.submit(int(matrix.imsi[0]), now=0.0)
        # Dispatches at t=0 and holds the server until t=0.1; the second
        # request's 20ms deadline passes before its batch can start.
        late = service.submit(int(matrix.imsi[1]), now=0.001, deadline_s=0.020)
        done = service.drain()
        assert first.outcome == "scored"
        assert late.outcome == "expired"
        assert late.score is None
        assert done == [first, late]

    def test_monotone_clock_enforced(self, store, registry, matrix):
        service = self.make_service(store, registry)
        service.submit(int(matrix.imsi[0]), now=1.0)
        with pytest.raises(ServeError, match="backwards"):
            service.submit(int(matrix.imsi[1]), now=0.5)

    def test_score_sync_matches_direct_predict(self, store, registry, matrix):
        service = self.make_service(store, registry)
        sample = matrix.imsi[:10]
        scores = service.score(sample)
        _, model = registry.current()
        expected = model.predict_proba(
            np.stack([row_for(matrix, int(c)) for c in sample.tolist()])
        )
        assert np.array_equal(scores, expected)

    def test_slo_snapshot_sets_gauges(self, store, registry, matrix, capture_spans):
        service = self.make_service(store, registry)
        service.score(matrix.imsi[:8])
        slo = service.slo_snapshot()
        gauges = capture_spans.metrics
        assert gauges.gauge("serve.latency_p99_s").value == slo["latency_p99_s"]
        assert slo["latency_p99_s"] > 0
        assert slo["shed_rate"] == 0.0


class TestModelSwapDuringTraffic:
    def test_swap_mid_batch_never_mixes_versions(self, matrix, capture_spans):
        """A swap landing while a batch is in flight must not split it.

        The store wrapper swaps the registry to v2 *during* the batch's
        feature lookup — after dispatch captured the active model.  Every
        response in that batch must still be a v1 score.
        """
        catalog = Catalog()
        store = FeatureStore(catalog=catalog, cache_rows=64)
        store.materialize(matrix, "m3", buckets=4)
        registry = ModelRegistry()
        v1 = make_forest(matrix, seed=1)
        v2 = make_forest(matrix, seed=2)
        registry.publish("v1", v1, activate=True)
        registry.publish("v2", v2)

        real_lookup = store.lookup
        fired = []

        def swapping_lookup(customer_ids):
            if not fired:
                fired.append(True)
                registry.activate("v2")
            return real_lookup(customer_ids)

        store.lookup = swapping_lookup
        # A long window keeps all eight requests in ONE batch: nothing
        # triggers during the submits, drain() dispatches them together.
        service = ScoringService(
            store,
            registry,
            ServeConfig(max_batch=8, batch_window_s=1.0, max_queue_depth=16,
                        score_cache_rows=0),
            service_time=FixedServiceTime(),
        )
        sample = [int(c) for c in matrix.imsi[:7]]
        tickets = [
            service.submit(c, now=0.0, deadline_s=30.0) for c in sample
        ]
        service.drain()
        assert {t.batch_id for t in tickets} == {0}
        assert {t.model_version for t in tickets} == {"v1"}
        rows = np.stack([row_for(matrix, c) for c in sample])
        assert np.array_equal(
            np.array([t.score for t in tickets]), v1.predict_proba(rows)
        )
        # The *next* batch picks up v2.
        after = [
            service.submit(c, now=10.0, deadline_s=30.0) for c in sample
        ]
        service.drain()
        assert {t.model_version for t in after} == {"v2"}
        assert np.array_equal(
            np.array([t.score for t in after]), v2.predict_proba(rows)
        )

    def test_swap_invalidates_memoized_scores(self, store, matrix, capture_spans):
        registry = ModelRegistry()
        v1 = make_forest(matrix, seed=1)
        v2 = make_forest(matrix, seed=2)
        registry.publish("v1", v1, activate=True)
        registry.publish("v2", v2)
        service = ScoringService(
            store,
            registry,
            ServeConfig(max_batch=4, batch_window_s=0.0, max_queue_depth=8,
                        score_cache_rows=128),
            service_time=FixedServiceTime(),
        )
        sample = matrix.imsi[:4]
        rows = np.stack([row_for(matrix, int(c)) for c in sample.tolist()])
        first = service.score(sample)
        assert np.array_equal(first, v1.predict_proba(rows))
        # Same ids again: served from the memoized score cache.
        again = service.score(sample)
        assert np.array_equal(again, first)
        registry.activate("v2")
        swapped = service.score(sample)
        assert np.array_equal(swapped, v2.predict_proba(rows))
        assert capture_spans.counter("serve.model_swaps") == 2


class TestHistogramQuantile:
    def test_empty_returns_zero(self):
        assert Histogram("h", (1.0, 2.0)).quantile(0.99) == 0.0

    def test_bucket_upper_bound_is_conservative(self):
        hist = Histogram("h", (0.01, 0.05, 0.1))
        for value in (0.002, 0.003, 0.004, 0.02):
            hist.observe(value)
        assert hist.quantile(0.5) == 0.01
        assert hist.quantile(0.99) == 0.05

    def test_overflow_bucket_reports_observed_max(self):
        hist = Histogram("h", (0.01,))
        hist.observe(0.005)
        hist.observe(7.5)
        assert hist.quantile(1.0) == 7.5

    def test_invalid_q_rejected(self):
        hist = Histogram("h", (1.0,))
        with pytest.raises(DataPlatformError):
            hist.quantile(0.0)
        with pytest.raises(DataPlatformError):
            hist.quantile(1.5)
