"""Hypothesis properties of the micro-batcher.

Whatever interleaving of arrivals, deadlines, time advances and capacity
the strategy draws:

* every submitted request reaches **exactly one** terminal outcome;
* FIFO order is preserved within every batch;
* the queue-depth gauge never exceeds the configured bound.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplat import observability
from repro.features.spec import FeatureMatrix
from repro.serve import (
    TERMINAL_OUTCOMES,
    FeatureStore,
    FixedServiceTime,
    ModelRegistry,
    ScoringService,
    ServeConfig,
)

N_CUSTOMERS = 32
N_FEATURES = 3

_matrix = FeatureMatrix(
    imsi=np.arange(N_CUSTOMERS, dtype=np.int64),
    names=[f"f{i}" for i in range(N_FEATURES)],
    values=np.random.default_rng(0).normal(size=(N_CUSTOMERS, N_FEATURES)),
)
_store = FeatureStore(cache_rows=N_CUSTOMERS)
_store.materialize(_matrix, "props", buckets=4)


class LinearStub:
    def __init__(self) -> None:
        self.w = np.random.default_rng(1).normal(size=N_FEATURES)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return x @ self.w


ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("submit"),
            st.integers(min_value=0, max_value=N_CUSTOMERS - 1),
            st.floats(min_value=0.001, max_value=0.5),
        ),
        st.tuples(st.just("advance"), st.floats(min_value=0.0, max_value=0.05)),
        st.tuples(st.just("poll")),
    ),
    max_size=60,
)

configs = st.builds(
    lambda max_batch, extra_depth, window: ServeConfig(
        max_batch=max_batch,
        max_queue_depth=max_batch + extra_depth,
        batch_window_s=window,
        score_cache_rows=0,
    ),
    max_batch=st.integers(min_value=1, max_value=8),
    extra_depth=st.integers(min_value=0, max_value=8),
    window=st.floats(min_value=0.0, max_value=0.02),
)


@settings(max_examples=80, deadline=None)
@given(ops=ops, config=configs)
def test_batcher_invariants(ops, config):
    previous = observability.set_metrics(observability.MetricsRegistry())
    try:
        registry = ModelRegistry()
        registry.publish("v1", LinearStub(), activate=True)
        service = ScoringService(
            _store,
            registry,
            config,
            service_time=FixedServiceTime(base_s=0.001, per_row_s=0.0001),
        )
        metrics = observability.get_metrics()
        now = 0.0
        tickets = []
        for op in ops:
            if op[0] == "submit":
                tickets.append(service.submit(op[1], now=now, deadline_s=op[2]))
            elif op[0] == "advance":
                now += op[1]
                service.poll(now)
            else:
                service.poll(now)
            # The gauge mirrors the live queue and never tops the bound.
            assert (
                metrics.gauge("serve.queue_depth").value
                <= config.max_queue_depth
            )
        service.drain()

        # Exactly one terminal outcome each (a double transition would
        # have raised inside ScoreRequest._finish).
        assert all(t.outcome in TERMINAL_OUTCOMES for t in tickets)
        counts = {name: 0 for name in TERMINAL_OUTCOMES}
        for t in tickets:
            counts[t.outcome] += 1
        assert sum(counts.values()) == len(tickets)
        assert counts["scored"] == metrics.counter("serve.scored").value
        assert counts["shed"] == metrics.counter("serve.shed").value
        assert counts["expired"] == metrics.counter("serve.expired").value

        # FIFO within every batch: scored members of a batch keep their
        # submission order, and batches themselves dispatch in order.
        by_batch: dict[int, list[int]] = {}
        for t in tickets:
            if t.outcome == "scored":
                by_batch.setdefault(t.batch_id, []).append(t.request_id)
        for ids in by_batch.values():
            assert ids == sorted(ids)
        batch_order = sorted(by_batch)
        firsts = [by_batch[b][0] for b in batch_order]
        assert firsts == sorted(firsts)

        # Queue-depth high-water mark respects the admission bound.
        assert service.max_queue_seen <= config.max_queue_depth

        # Scored requests respect causality and their deadline at dispatch.
        for t in tickets:
            if t.outcome == "scored":
                assert t.completion_s >= t.arrival_s
                assert t.score is not None and t.model_version == "v1"
            if t.outcome == "shed":
                assert t.retry_after_s is not None and t.retry_after_s >= 0
    finally:
        observability.set_metrics(previous)


@settings(max_examples=40, deadline=None)
@given(
    seeds=st.integers(min_value=0, max_value=2**31 - 1),
    config=configs,
)
def test_every_submitted_request_is_answered_under_random_traffic(seeds, config):
    """A denser randomized schedule: conservation of requests."""
    previous = observability.set_metrics(observability.MetricsRegistry())
    try:
        rng = np.random.default_rng(seeds)
        registry = ModelRegistry()
        registry.publish("v1", LinearStub(), activate=True)
        service = ScoringService(
            _store,
            registry,
            config,
            service_time=FixedServiceTime(base_s=0.002, per_row_s=0.0001),
        )
        now = 0.0
        tickets = []
        for _ in range(120):
            now += float(rng.exponential(0.001))
            tickets.append(
                service.submit(
                    int(rng.integers(0, N_CUSTOMERS)),
                    now=now,
                    deadline_s=float(rng.uniform(0.001, 0.2)),
                )
            )
        service.drain()
        assert all(t.outcome in TERMINAL_OUTCOMES for t in tickets)
        metrics = observability.get_metrics()
        assert metrics.counter("serve.requests").value == len(tickets)
        assert (
            metrics.counter("serve.scored").value
            + metrics.counter("serve.shed").value
            + metrics.counter("serve.expired").value
            + metrics.counter("serve.failures").value
        ) == len(tickets)
    finally:
        observability.set_metrics(previous)
