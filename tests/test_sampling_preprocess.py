"""Unit tests for imbalance treatments and preprocessing."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError
from repro.ml.preprocess import (
    QuantileBinner,
    Standardizer,
    binarize_for_linear,
    one_hot,
)
from repro.ml.sampling import STRATEGIES, rebalance


@pytest.fixture()
def imbalanced(rng):
    x = rng.normal(size=(1000, 3))
    y = (rng.random(1000) < 0.1).astype(int)
    return x, y


class TestRebalance:
    def test_none_is_identity(self, imbalanced):
        x, y = imbalanced
        xb, yb, w = rebalance(x, y, "none")
        assert np.array_equal(xb, x)
        assert np.array_equal(yb, y)
        assert np.all(w == 1.0)

    def test_weighted_equalizes_class_mass(self, imbalanced):
        x, y = imbalanced
        _, _, w = rebalance(x, y, "weighted")
        assert w[y == 1].sum() == pytest.approx(w[y == 0].sum())
        assert len(w) == len(y)

    def test_up_matches_counts(self, imbalanced, rng):
        x, y = imbalanced
        xb, yb, w = rebalance(x, y, "up", rng)
        assert (yb == 1).sum() == (yb == 0).sum()
        assert len(xb) > len(x)
        assert np.all(w == 1.0)

    def test_down_matches_counts(self, imbalanced, rng):
        x, y = imbalanced
        xb, yb, _ = rebalance(x, y, "down", rng)
        assert (yb == 1).sum() == (yb == 0).sum()
        assert len(xb) == 2 * (y == 1).sum()

    def test_up_preserves_minority_rows(self, imbalanced, rng):
        x, y = imbalanced
        xb, yb, _ = rebalance(x, y, "up", rng)
        # Every original positive row value appears among the rebalanced.
        orig = {tuple(row) for row in x[y == 1]}
        new = {tuple(row) for row in xb[yb == 1]}
        assert orig <= new

    def test_majority_flip(self, rng):
        # Works when positives outnumber negatives too.
        x = rng.normal(size=(100, 2))
        y = (rng.random(100) < 0.9).astype(int)
        xb, yb, _ = rebalance(x, y, "down", rng)
        assert (yb == 1).sum() == (yb == 0).sum()

    def test_unknown_strategy(self, imbalanced):
        with pytest.raises(ModelError):
            rebalance(*imbalanced, "smote")

    def test_single_class_rejected(self, rng):
        x = rng.normal(size=(10, 2))
        with pytest.raises(ModelError):
            rebalance(x, np.zeros(10, dtype=int), "weighted")

    def test_length_mismatch(self, rng):
        with pytest.raises(ModelError):
            rebalance(rng.normal(size=(5, 2)), np.zeros(4, dtype=int))

    def test_all_strategies_listed(self):
        assert set(STRATEGIES) == {"none", "up", "down", "weighted"}


class TestStandardizer:
    def test_zero_mean_unit_std(self, rng):
        x = rng.normal(5, 3, size=(500, 4))
        z = Standardizer().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0, atol=1e-10)
        assert np.allclose(z.std(axis=0), 1, atol=1e-10)

    def test_constant_column_safe(self):
        x = np.column_stack([np.ones(10), np.arange(10.0)])
        z = Standardizer().fit_transform(x)
        assert np.all(np.isfinite(z))
        assert np.allclose(z[:, 0], 0)

    def test_transform_uses_fit_statistics(self, rng):
        train = rng.normal(size=(100, 2))
        s = Standardizer().fit(train)
        test = rng.normal(10, 1, size=(50, 2))
        z = s.transform(test)
        assert z.mean() > 5  # shifted data stays shifted

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            Standardizer().transform(np.zeros((1, 1)))

    def test_width_checked(self, rng):
        s = Standardizer().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ModelError):
            s.transform(np.zeros((5, 2)))


class TestQuantileBinner:
    def test_codes_in_range(self, rng):
        x = rng.normal(size=(500, 3))
        binner = QuantileBinner(n_bins=8).fit(x)
        codes = binner.transform(x)
        assert codes.min() >= 0
        assert codes.max() < 8

    def test_roughly_equal_frequency(self, rng):
        x = rng.normal(size=(4000, 1))
        codes = QuantileBinner(n_bins=4).fit_transform(x)
        counts = np.bincount(codes[:, 0], minlength=4)
        assert counts.min() > 800

    def test_low_cardinality_column(self):
        x = np.array([[0.0], [0.0], [1.0], [1.0]])
        binner = QuantileBinner(n_bins=8).fit(x)
        codes = binner.transform(x)
        assert len(np.unique(codes)) == 2

    def test_bin_counts(self, rng):
        x = rng.normal(size=(100, 2))
        binner = QuantileBinner(n_bins=4).fit(x)
        assert all(1 <= c <= 4 for c in binner.bin_counts())

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            QuantileBinner().transform(np.zeros((1, 1)))

    def test_min_bins(self):
        with pytest.raises(ModelError):
            QuantileBinner(n_bins=1)


class TestOneHot:
    def test_expansion(self):
        codes = np.array([[0, 1], [1, 0]])
        out = one_hot(codes, counts=[2, 2])
        assert out.shape == (2, 4)
        assert out.sum() == 4.0
        assert np.array_equal(out[0], [1, 0, 0, 1])

    def test_inferred_counts(self):
        codes = np.array([[0], [2]])
        out = one_hot(codes)
        assert out.shape == (2, 3)

    def test_out_of_range_clipped(self):
        codes = np.array([[5]])
        out = one_hot(codes, counts=[3])
        assert out[0].tolist() == [0.0, 0.0, 1.0]

    def test_counts_length_checked(self):
        with pytest.raises(ModelError):
            one_hot(np.zeros((1, 2), dtype=int), counts=[2])

    def test_binarize_for_linear_shapes(self, rng):
        train = rng.normal(size=(200, 3))
        test = rng.normal(size=(50, 3))
        tr, te = binarize_for_linear(train, test, n_bins=4)
        assert tr.shape[1] == te.shape[1]
        assert np.all((tr == 0) | (tr == 1))
        assert np.all(tr.sum(axis=1) == 3)  # one hot bit per source column
