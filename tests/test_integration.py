"""Cross-module integration tests: the whole stack, end to end.

These run the actual deliverable path — simulate a world, push tables
through the platform, build all nine feature families, train, rank, and run
a retention campaign — and assert the paper's qualitative findings on a
small world.
"""

import numpy as np
import pytest

from repro import (
    ChurnPipeline,
    ModelConfig,
    RunConfig,
    ScaleConfig,
    TelcoSimulator,
)
from repro.core import experiments as ex
from repro.core.window import WindowSpec
from repro.dataplat import Catalog, SQLEngine
from repro.features.spec import ALL_CATEGORIES


@pytest.fixture(scope="module")
def cfg() -> RunConfig:
    return RunConfig.small(seed=19)


@pytest.fixture(scope="module")
def world(cfg):
    return TelcoSimulator(cfg.scale).run()


@pytest.fixture(scope="module")
def pipeline(world, cfg):
    return ChurnPipeline(world, cfg.scale, model=cfg.model, seed=3)


class TestPlatformIntegration:
    def test_sql_over_simulated_world(self, world):
        """Feature-style SQL over catalog-loaded raw tables works."""
        catalog = Catalog()
        world.load_catalog(catalog)
        engine = SQLEngine(catalog, database="telco")
        counts = engine.query("SELECT COUNT(*) AS n FROM user_base")
        assert counts["n"][0] == world.population.size * world.n_months
        out = engine.query(
            """
            SELECT u.town_id, AVG(b.balance) AS avg_balance, COUNT(*) AS n
            FROM user_base u JOIN billing b ON u.imsi = b.imsi
            GROUP BY u.town_id
            ORDER BY u.town_id
            """
        )
        # Joining all-months views matches each customer's user_base rows
        # with every billing row of the same IMSI: Σ (months present)².
        imsi_counts: dict[int, int] = {}
        for data in world.months:
            for v in data.imsi.tolist():
                imsi_counts[v] = imsi_counts.get(v, 0) + 1
        expected = sum(c * c for c in imsi_counts.values())
        assert out["n"].sum() == expected
        assert np.all(out["avg_balance"] > 0)

    def test_block_store_holds_the_world(self, world):
        catalog = Catalog()
        world.load_catalog(catalog)
        assert catalog.store.total_bytes > 100_000
        assert catalog.store.physical_bytes >= catalog.store.total_bytes


class TestFullPipeline:
    def test_full_feature_window(self, pipeline):
        result = pipeline.run_window(
            WindowSpec((4, 5), 6), categories=ALL_CATEGORIES
        )
        assert result.auc > 0.8
        assert len(result.feature_names) == 153

    def test_variety_headline(self, pipeline):
        """OSS features beat the BSS-only baseline (the paper's thesis).

        Averaged over three windows: single-window PR-AUC at this tiny
        scale carries ±0.05 noise.
        """
        months = [5, 6, 7]
        base = np.mean([
            pipeline.run_window(WindowSpec((m - 1,), m), categories=("F1",)).pr_auc
            for m in months
        ])
        full = np.mean([
            pipeline.run_window(
                WindowSpec((m - 1,), m), categories=ALL_CATEGORIES
            ).pr_auc
            for m in months
        ])
        # At 1.2k customers, 153 features dilute the √N split sampling and
        # the OSS lift is not yet visible (it is at the 4k+ bench scale —
        # see EXPERIMENTS.md); here we only require the full model to stay
        # in the same band as the baseline.
        assert full > base - 0.06

    def test_volume_headline(self, pipeline):
        """More training months do not hurt (Figure 7's direction)."""
        rows = ex.fig7_volume(pipeline, max_train_months=4, test_months=[6, 7])
        assert rows[-1]["pr_auc"] > rows[0]["pr_auc"] - 0.02

    def test_early_signal_decay(self, pipeline):
        """PR-AUC decays with prediction lead (Figure 8's direction)."""
        rows = ex.fig8_early_signals(pipeline, max_lead=3, test_months=[6])
        prs = [r["pr_auc"] for r in rows]
        assert prs[0] > prs[1] > prs[2] * 0.8

    def test_top_of_ranking_is_precise(self, pipeline, cfg):
        """The deployed system's headline: high precision at the top.

        The scaled top-50k list holds ~29 customers here, so the threshold
        stays conservative; the bench-scale run reproduces ~0.95.
        """
        result = pipeline.run_window(
            WindowSpec((3, 4, 5), 6), categories=ALL_CATEGORIES
        )
        assert result.precision_at[50_000] > 0.45

    def test_imbalance_weighted_competitive(self, world, cfg):
        rows = ex.table7_imbalance(
            world, cfg.scale, cfg.model, test_months=[5, 6, 7]
        )
        by_strategy = {r["strategy"]: r["pr_auc"] for r in rows}
        # Scale deviation from the paper (see EXPERIMENTS.md): the
        # unbalanced baseline is competitive here; weighting must still
        # beat down-sampling, the variance-heavy treatment.
        assert by_strategy["weighted"] >= by_strategy["down"] - 0.02

    def test_classifier_comparison_runs(self, world, cfg):
        rows = ex.fig9_classifiers(
            world,
            cfg.scale,
            ModelConfig(n_trees=10, min_samples_leaf=15, fm_epochs=6,
                        linear_epochs=10),
            test_months=[6],
        )
        by_clf = {r["classifier"]: r["auc"] for r in rows}
        assert set(by_clf) == {"rf", "gbdt", "liblinear", "libfm"}
        # All four are far better than chance; trees competitive with the best.
        assert min(by_clf.values()) > 0.7
        assert max(by_clf["rf"], by_clf["gbdt"]) >= max(by_clf.values()) - 0.03

    def test_retention_study(self, pipeline):
        campaigns = ex.table6_value(pipeline, months=(8, 9), seed=11)
        for campaign in campaigns:
            b_total = sum(c.total for c in campaign.outcomes if c.group == "B")
            b_hit = sum(c.recharged for c in campaign.outcomes if c.group == "B")
            a_total = sum(c.total for c in campaign.outcomes if c.group == "A")
            a_hit = sum(c.recharged for c in campaign.outcomes if c.group == "A")
            assert b_hit / b_total > a_hit / a_total


class TestScaleConfig:
    def test_scaled_u_fraction_invariant(self):
        scale = ScaleConfig(population=21_000, months=9, seed=0)
        assert scale.scaled_u(50_000) == 500
        assert scale.scaled_u(2_100_000) == 21_000

    def test_run_config_presets(self):
        assert RunConfig.small().scale.population < RunConfig.bench().scale.population
