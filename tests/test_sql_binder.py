"""Unit and property tests for the binder's statistics and row estimates."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataplat.catalog import Catalog
from repro.dataplat.columnar import ColumnStats
from repro.dataplat.sql import SQLEngine
from repro.dataplat.sql.ast_nodes import (
    Between,
    BinaryOp,
    ColumnRef,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from repro.dataplat.sql.binder import (
    DEFAULT_ROWS,
    Binder,
    join_selectivity,
    selectivity,
)
from repro.dataplat.sql.parser import parse
from repro.dataplat.sql.plan import Filter, Join, Scan
from repro.dataplat.sql.planner import build_plan, optimize
from repro.dataplat.table import Table


def col(name, table=None):
    return ColumnRef(name, table)


def eq(name, value):
    return BinaryOp("=", col(name), Literal(value))


def make_lookup(**stats):
    return lambda name: stats.get(name.rsplit(".", 1)[-1])


NO_STATS = make_lookup()


class TestSelectivity:
    def test_equality_uses_distinct_count(self):
        lookup = make_lookup(k=ColumnStats(100, 0, 0, 99, distinct=20.0))
        assert selectivity(eq("k", 5), lookup) == pytest.approx(1 / 20)

    def test_equality_outside_bounds_is_zero(self):
        lookup = make_lookup(k=ColumnStats(100, 0, 0, 9, distinct=10.0))
        assert selectivity(eq("k", 42), lookup) == 0.0

    def test_equality_without_stats_falls_back(self):
        assert selectivity(eq("k", 5), NO_STATS) == pytest.approx(0.1)

    def test_range_interpolates_into_span(self):
        lookup = make_lookup(k=ColumnStats(100, 0, 0.0, 100.0, distinct=None))
        lt = BinaryOp("<", col("k"), Literal(25.0))
        gt = BinaryOp(">", col("k"), Literal(25.0))
        assert selectivity(lt, lookup) == pytest.approx(0.25)
        assert selectivity(gt, lookup) == pytest.approx(0.75)

    def test_flipped_literal_comparison(self):
        # ``25 > k`` means ``k < 25``.
        lookup = make_lookup(k=ColumnStats(100, 0, 0.0, 100.0))
        expr = BinaryOp(">", Literal(25.0), col("k"))
        assert selectivity(expr, lookup) == pytest.approx(0.25)

    def test_and_multiplies_or_unions(self):
        lookup = make_lookup(k=ColumnStats(100, 0, 0.0, 100.0))
        a = BinaryOp("<", col("k"), Literal(50.0))  # 0.5
        b = BinaryOp(">", col("k"), Literal(75.0))  # 0.25
        assert selectivity(BinaryOp("AND", a, b), lookup) == pytest.approx(
            0.125
        )
        assert selectivity(BinaryOp("OR", a, b), lookup) == pytest.approx(
            0.5 + 0.25 - 0.125
        )

    def test_not_complements(self):
        lookup = make_lookup(k=ColumnStats(100, 0, 0.0, 100.0))
        a = BinaryOp("<", col("k"), Literal(25.0))
        assert selectivity(UnaryOp("NOT", a), lookup) == pytest.approx(0.75)

    def test_is_null_uses_null_fraction(self):
        lookup = make_lookup(v=ColumnStats(100, 30))
        assert selectivity(IsNull(col("v")), lookup) == pytest.approx(0.3)
        assert selectivity(
            IsNull(col("v"), negated=True), lookup
        ) == pytest.approx(0.7)

    def test_in_list_scales_equality(self):
        lookup = make_lookup(k=ColumnStats(100, 0, 0, 99, distinct=10.0))
        expr = InList(col("k"), (Literal(1), Literal(2), Literal(3)))
        assert selectivity(expr, lookup) == pytest.approx(0.3)

    def test_between_span_ratio(self):
        lookup = make_lookup(k=ColumnStats(100, 0, 0.0, 100.0))
        expr = Between(col("k"), Literal(10.0), Literal(35.0))
        assert selectivity(expr, lookup) == pytest.approx(0.25)

    def test_between_outside_span_is_zero(self):
        lookup = make_lookup(k=ColumnStats(100, 0, 0.0, 100.0))
        expr = Between(col("k"), Literal(200.0), Literal(300.0))
        assert selectivity(expr, lookup) == 0.0

    def test_like_without_wildcards_is_equality(self):
        lookup = make_lookup(s=ColumnStats(100, 0, "a", "z", distinct=50.0))
        assert selectivity(Like(col("s"), "abc"), lookup) == pytest.approx(
            1 / 50
        )
        assert selectivity(Like(col("s"), "ab%"), lookup) == pytest.approx(
            0.25
        )

    def test_join_selectivity_uses_larger_distinct(self):
        a = ColumnStats(1000, 0, distinct=100.0)
        b = ColumnStats(50, 0, distinct=50.0)
        assert join_selectivity(a, b, 1000.0) == pytest.approx(1 / 100)
        assert join_selectivity(None, None, 500.0) == pytest.approx(1 / 500)


# Expression strategy for property tests: conjunctions of simple
# comparisons over one column with known stats.
_comparisons = st.builds(
    lambda op, v: BinaryOp(op, col("k"), Literal(v)),
    st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
    st.floats(-50, 150, allow_nan=False),
)
_terms = st.one_of(
    _comparisons,
    st.builds(lambda neg: IsNull(col("k"), negated=neg), st.booleans()),
    st.builds(
        lambda lo, hi: Between(col("k"), Literal(lo), Literal(hi)),
        st.floats(-50, 150, allow_nan=False),
        st.floats(-50, 150, allow_nan=False),
    ),
)
_stats_options = st.one_of(
    st.none(),
    st.builds(
        lambda n, nulls, d: ColumnStats(
            n, min(nulls, n), 0.0, 100.0, distinct=d
        ),
        st.integers(0, 10_000),
        st.integers(0, 10_000),
        st.one_of(st.none(), st.floats(1, 1000)),
    ),
)


class TestEstimateProperties:
    @given(_terms, _stats_options)
    @settings(max_examples=200, deadline=None)
    def test_selectivity_in_unit_interval(self, expr, stats):
        sel = selectivity(expr, lambda name: stats)
        assert 0.0 <= sel <= 1.0

    @given(_terms, _terms, _stats_options)
    @settings(max_examples=200, deadline=None)
    def test_conjunction_is_monotone(self, a, b, stats):
        # est(A AND B) <= min(est(A), est(B)): adding a conjunct can only
        # shrink the estimate (independence assumption, clamped).
        lookup = lambda name: stats
        both = selectivity(BinaryOp("AND", a, b), lookup)
        assert both <= selectivity(a, lookup) + 1e-12
        assert both <= selectivity(b, lookup) + 1e-12

    @given(st.integers(0, 5), st.integers(0, 5))
    @settings(max_examples=50, deadline=None)
    def test_est_rows_never_negative(self, n_t, n_u):
        catalog = Catalog()
        engine = SQLEngine(catalog)
        engine.register(
            Table.from_arrays(k=np.arange(n_t), v=np.ones(n_t)), "t"
        )
        engine.register(
            Table.from_arrays(k=np.arange(n_u), w=np.ones(n_u)), "u"
        )
        plan = engine.plan(
            "SELECT t.k, SUM(t.v) AS s FROM t JOIN u ON t.k = u.k "
            "WHERE t.v > 0 GROUP BY t.k"
        )
        stack = [plan]
        while stack:
            node = stack.pop()
            assert node.est_rows is not None and node.est_rows >= 0.0
            stack.extend(node.children())


class TestBinder:
    def _bound_plan(self, engine, sql):
        plan = optimize(build_plan(parse(sql)))
        Binder(engine.catalog).bind(plan)
        return plan

    def test_temp_view_scan_gets_exact_rows(self):
        engine = SQLEngine()
        engine.register(Table.from_arrays(k=np.arange(123)), "t")
        plan = self._bound_plan(engine, "SELECT k FROM t")
        scan = [n for n in _walk(plan) if isinstance(n, Scan)][0]
        assert scan.est_rows == 123.0

    def test_missing_table_falls_back_to_default(self):
        plan = optimize(build_plan(parse("SELECT k FROM nope")))
        Binder(Catalog()).bind(plan)
        scan = [n for n in _walk(plan) if isinstance(n, Scan)][0]
        assert scan.est_rows == DEFAULT_ROWS

    def test_v2_table_stats_rolled_up_from_zone_maps(self):
        catalog = Catalog(default_format="v2")
        rng = np.random.default_rng(3)
        for month in (1, 2):
            catalog.save(
                Table.from_arrays(
                    month=np.full(500, month), v=rng.normal(size=500)
                ),
                "cdr",
                partition=f"month={month}",
            )
        stats = catalog.table_stats("cdr")
        assert stats is not None and stats.rows == 1000
        assert stats.columns["month"].min == 1
        assert stats.columns["month"].max == 2
        binder = Binder(catalog)
        plan = optimize(build_plan(parse("SELECT v FROM cdr WHERE month = 1")))
        binder.bind(plan)
        filt = [n for n in _walk(plan) if isinstance(n, Filter)][0]
        # month has 2 distinct values -> the filter keeps about half.
        assert filt.est_rows == pytest.approx(500.0, rel=0.05)

    def test_filter_estimate_below_scan_estimate(self):
        engine = SQLEngine()
        rng = np.random.default_rng(0)
        engine.register(
            Table.from_arrays(k=rng.integers(0, 10, size=1000)), "t"
        )
        plan = self._bound_plan(engine, "SELECT k FROM t WHERE k = 3")
        scan = [n for n in _walk(plan) if isinstance(n, Scan)][0]
        filt = [n for n in _walk(plan) if isinstance(n, Filter)][0]
        assert filt.est_rows <= scan.est_rows
        assert filt.est_rows == pytest.approx(100.0)

    def test_join_estimate_divides_by_key_distinct(self):
        engine = SQLEngine()
        engine.register(
            Table.from_arrays(
                k=np.arange(100, dtype=np.int64), v=np.ones(100)
            ),
            "t",
        )
        engine.register(
            Table.from_arrays(
                k=np.repeat(np.arange(100, dtype=np.int64), 5),
                w=np.ones(500),
            ),
            "u",
        )
        plan = self._bound_plan(
            engine, "SELECT t.v, u.w FROM t JOIN u ON t.k = u.k"
        )
        join = [n for n in _walk(plan) if isinstance(n, Join)][0]
        # 100 * 500 / max(distinct)=100 -> 500.
        assert join.est_rows == pytest.approx(500.0)

    def test_describe_shows_est_rows_on_every_scan_and_join(self):
        engine = SQLEngine()
        engine.register(Table.from_arrays(k=np.arange(10)), "t")
        engine.register(Table.from_arrays(k=np.arange(10)), "u")
        text = engine.explain("SELECT t.k FROM t JOIN u ON t.k = u.k")
        for line in text.splitlines():
            stripped = line.strip()
            if stripped.startswith(("Scan(", "Join(")):
                assert "[est_rows=" in stripped, text

    def test_explain_statement_returns_plan_table(self):
        engine = SQLEngine()
        engine.register(Table.from_arrays(k=np.arange(10)), "t")
        out = engine.query("EXPLAIN SELECT k FROM t WHERE k = 1")
        assert out.schema.names == ("plan",)
        lines = list(out["plan"])
        assert any("Scan(" in line for line in lines)
        assert any("[est_rows=" in line for line in lines)

    def test_missing_stats_never_prune_pushdown(self):
        # A table the catalog cannot provide stats for still answers
        # correctly — fallbacks only shape estimates, never results.
        catalog = Catalog(default_format="v1")  # v1: no zone-map stats
        catalog.save(
            Table.from_arrays(k=np.arange(50, dtype=np.int64)), "t"
        )
        assert catalog.table_stats("t") is None
        engine = SQLEngine(catalog, cost_based=True)
        out = engine.query("SELECT k FROM t WHERE k >= 48")
        assert sorted(int(v) for v in out["k"]) == [48, 49]


def _walk(plan):
    stack = [plan]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())
