"""Unit tests for the partitioned Dataset (mini-RDD)."""

import numpy as np
import pytest

from repro.dataplat.dataset import Dataset
from repro.dataplat.table import Table
from repro.errors import ExecutionError


@pytest.fixture()
def table() -> Table:
    return Table.from_arrays(
        imsi=np.arange(10), dur=np.linspace(0, 9, 10)
    )


class TestConstruction:
    def test_from_table_partitions(self, table):
        ds = Dataset.from_table(table, num_partitions=3)
        assert ds.num_partitions == 3
        assert ds.count() == 10

    def test_from_table_bad_partitions(self, table):
        with pytest.raises(ExecutionError):
            Dataset.from_table(table, num_partitions=0)

    def test_from_partitions(self, table):
        ds = Dataset.from_partitions([table, table])
        assert ds.count() == 20

    def test_from_partitions_schema_mismatch(self, table):
        with pytest.raises(ExecutionError):
            Dataset.from_partitions([table, table.select(["imsi"])])

    def test_from_partitions_empty(self):
        with pytest.raises(ExecutionError):
            Dataset.from_partitions([])


class TestTransformations:
    def test_filter(self, table):
        ds = Dataset.from_table(table, 4).filter(lambda t: t["dur"] > 5)
        assert ds.count() == 4

    def test_select(self, table):
        ds = Dataset.from_table(table, 2).select(["dur"])
        assert ds.schema.names == ("dur",)

    def test_union(self, table):
        a = Dataset.from_table(table, 2)
        b = Dataset.from_table(table, 3)
        assert a.union(b).count() == 20

    def test_union_schema_mismatch(self, table):
        a = Dataset.from_table(table, 2)
        b = Dataset.from_table(table.select(["imsi"]), 2)
        with pytest.raises(ExecutionError):
            a.union(b)

    def test_map_partitions_schema_checked(self, table):
        ds = Dataset.from_table(table, 2)
        with pytest.raises(ExecutionError):
            # Declares the same schema but produces a projection.
            ds.map_partitions(lambda t: t.select(["imsi"]), ds.schema).collect()

    def test_shuffle_colocates_keys(self, table):
        ds = Dataset.from_table(table, 3).repartition_by_key("imsi", 4)
        assert ds.num_partitions == 4
        assert ds.count() == 10
        # Every imsi value must live in exactly one partition.
        seen: dict[int, int] = {}
        for i in range(ds.num_partitions):
            part = ds._partition(i)
            for v in part["imsi"].tolist():
                assert v not in seen
                seen[v] = i
        assert len(seen) == 10

    def test_join(self, table):
        other = Table.from_arrays(imsi=np.array([0, 1, 2]), age=np.array([30, 40, 50]))
        joined = Dataset.from_table(table, 2).join(
            Dataset.from_table(other, 2), on="imsi", num_partitions=3
        )
        out = joined.collect()
        assert out.num_rows == 3
        assert set(out.schema.names) >= {"imsi", "dur", "age"}


class TestActions:
    def test_collect_round_trip(self, table):
        out = Dataset.from_table(table, 3).collect()
        assert out.num_rows == table.num_rows
        assert sorted(out["imsi"].tolist()) == sorted(table["imsi"].tolist())

    def test_reduce_sum(self, table):
        ds = Dataset.from_table(table, 3)
        assert ds.reduce_column("dur", "sum") == pytest.approx(table["dur"].sum())

    def test_reduce_min_max(self, table):
        ds = Dataset.from_table(table, 3)
        assert ds.reduce_column("dur", "min") == 0.0
        assert ds.reduce_column("dur", "max") == 9.0

    def test_reduce_unknown_fn(self, table):
        with pytest.raises(ExecutionError):
            Dataset.from_table(table, 2).reduce_column("dur", "median")

    def test_partitions_cached(self, table):
        calls = []

        def tracked(t: Table) -> Table:
            calls.append(1)
            return t

        ds = Dataset.from_table(table, 2).map_partitions(
            tracked, table.schema, op="tracked"
        )
        ds.count()
        ds.count()
        assert len(calls) == 2  # once per partition, not per action


class TestLineage:
    def test_lineage_records_operations(self, table):
        ds = (
            Dataset.from_table(table, 2)
            .filter(lambda t: t["dur"] > 1)
            .select(["imsi"])
        )
        chain = ds.lineage()
        assert chain[0].startswith("from_table")
        assert "filter" in chain
        assert "select" in chain

    def test_lineage_covers_both_union_parents(self, table):
        a = Dataset.from_table(table, 1)
        b = Dataset.from_table(table, 1)
        chain = a.union(b).lineage()
        assert chain.count("from_table[1]") == 2
