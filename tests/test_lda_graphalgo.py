"""Unit tests for LDA and the graph algorithms (PageRank, label propagation)."""

import numpy as np
import pytest

from repro.errors import ModelError, NotFittedError, TrainingError
from repro.ml.graphalgo import label_propagation, pagerank
from repro.ml.lda import LatentDirichletAllocation


def two_topic_corpus(n_docs: int = 200, seed: int = 0):
    """Docs alternating between two disjoint vocabulary blocks."""
    rng = np.random.default_rng(seed)
    docs = []
    for i in range(n_docs):
        base = 0 if i % 2 == 0 else 10
        docs.append(list(rng.integers(base, base + 10, size=15)))
    return docs


class TestLDA:
    @pytest.mark.parametrize("method", ["bp", "gibbs"])
    def test_recovers_topic_structure(self, method):
        docs = two_topic_corpus()
        lda = LatentDirichletAllocation(
            n_topics=2, n_iter=30, seed=0, method=method
        )
        theta = lda.fit_transform(docs, vocab_size=20)
        even = theta[::2].argmax(axis=1)
        odd = theta[1::2].argmax(axis=1)
        purity = max((even == 0).mean(), (even == 1).mean())
        assert purity > 0.9
        assert (even[0] != odd[0]) or purity > 0.95

    def test_theta_rows_are_distributions(self):
        docs = two_topic_corpus(50)
        lda = LatentDirichletAllocation(n_topics=3, n_iter=10, seed=0)
        theta = lda.fit_transform(docs, vocab_size=20)
        assert theta.shape == (50, 3)
        assert np.allclose(theta.sum(axis=1), 1.0)
        assert np.all(theta > 0)

    def test_phi_rows_are_distributions(self):
        docs = two_topic_corpus(50)
        lda = LatentDirichletAllocation(n_topics=2, n_iter=10, seed=0)
        lda.fit_transform(docs, vocab_size=20)
        phi = lda.topic_word
        assert phi.shape == (2, 20)
        assert np.allclose(phi.sum(axis=1), 1.0)

    def test_transform_new_documents(self):
        docs = two_topic_corpus()
        lda = LatentDirichletAllocation(n_topics=2, n_iter=20, seed=0)
        theta_fit = lda.fit_transform(docs, vocab_size=20)
        theta_new = lda.transform([list(range(0, 10)), list(range(10, 20))])
        # The two probe docs land on opposite topics.
        assert theta_new[0].argmax() != theta_new[1].argmax()
        assert np.allclose(theta_new.sum(axis=1), 1.0)
        del theta_fit

    def test_transform_empty_doc_uniform(self):
        docs = two_topic_corpus(20)
        lda = LatentDirichletAllocation(n_topics=2, n_iter=5, seed=0)
        lda.fit_transform(docs, vocab_size=20)
        theta = lda.transform([[]])
        assert np.allclose(theta[0], 0.5)

    def test_top_words_belong_to_topic_block(self):
        docs = two_topic_corpus()
        lda = LatentDirichletAllocation(n_topics=2, n_iter=30, seed=0)
        lda.fit_transform(docs, vocab_size=20)
        tops = set(lda.top_words(0, 5))
        assert tops <= set(range(0, 10)) or tops <= set(range(10, 20))

    def test_empty_corpus_rejected(self):
        lda = LatentDirichletAllocation(n_topics=2)
        with pytest.raises(TrainingError):
            lda.fit_transform([[], []], vocab_size=5)

    def test_out_of_vocab_rejected(self):
        lda = LatentDirichletAllocation(n_topics=2)
        with pytest.raises(ModelError):
            lda.fit_transform([[99]], vocab_size=5)

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            LatentDirichletAllocation(n_topics=2).transform([[1]])

    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            LatentDirichletAllocation(n_topics=1)
        with pytest.raises(ModelError):
            LatentDirichletAllocation(alpha=0)
        with pytest.raises(ModelError):
            LatentDirichletAllocation(method="vb")


class TestPageRank:
    def test_scores_sum_to_one(self):
        edges = np.array([[0, 1], [1, 2], [2, 0]])
        scores = pagerank(edges, np.ones(3), 3)
        assert scores.sum() == pytest.approx(1.0, abs=1e-4)

    def test_symmetric_cycle_is_uniform(self):
        edges = np.array([[0, 1], [1, 2], [2, 0]])
        scores = pagerank(edges, np.ones(3), 3)
        assert np.allclose(scores, scores[0])

    def test_hub_scores_highest(self):
        # Star graph: node 0 connected to 1..4.
        edges = np.array([[0, i] for i in range(1, 5)])
        scores = pagerank(edges, np.ones(4), 5)
        assert scores.argmax() == 0

    def test_isolated_node_gets_teleport_mass(self):
        edges = np.array([[0, 1]])
        scores = pagerank(edges, np.ones(1), 3, damping=0.85)
        assert scores[2] == pytest.approx(0.15 / 3, abs=1e-6)

    def test_weights_shift_mass(self):
        # Node 1 distributes to 0 (heavy) and 2 (light).
        edges = np.array([[0, 1], [1, 2]])
        scores = pagerank(edges, np.array([10.0, 1.0]), 3)
        assert scores[0] > scores[2]

    def test_validation(self):
        with pytest.raises(ModelError):
            pagerank(np.array([[0, 5]]), np.ones(1), 3)
        with pytest.raises(ModelError):
            pagerank(np.array([[0, 1]]), np.array([-1.0]), 2)
        with pytest.raises(ModelError):
            pagerank(np.array([[0, 1]]), np.ones(1), 2, damping=1.5)


class TestLabelPropagation:
    def test_seeds_are_clamped(self):
        edges = np.array([[0, 1], [1, 2]])
        beliefs = label_propagation(edges, np.ones(2), 3, {0: 1})
        assert beliefs[0, 1] == pytest.approx(1.0)

    def test_propagation_decays_with_distance(self):
        # Chain 0-1-2-3-4 with churner seed at 0 and non-churner at 4.
        edges = np.array([[i, i + 1] for i in range(4)])
        beliefs = label_propagation(edges, np.ones(4), 5, {0: 1, 4: 0})
        churn_probs = beliefs[:, 1]
        assert np.all(np.diff(churn_probs) < 0)

    def test_disconnected_nodes_keep_prior(self):
        edges = np.array([[0, 1]])
        beliefs = label_propagation(edges, np.ones(1), 3, {0: 1})
        assert beliefs[2, 1] == pytest.approx(0.5)

    def test_rows_remain_distributions(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        beliefs = label_propagation(edges, np.ones(3), 4, {0: 1, 3: 0})
        assert np.allclose(beliefs.sum(axis=1), 1.0)

    def test_multiclass(self):
        edges = np.array([[0, 1], [2, 3]])
        beliefs = label_propagation(
            edges, np.ones(2), 4, {0: 1, 2: 2}, n_classes=3
        )
        assert beliefs[1].argmax() == 1
        assert beliefs[3].argmax() == 2

    def test_validation(self):
        with pytest.raises(ModelError):
            label_propagation(np.array([[0, 1]]), np.ones(1), 2, {5: 1})
        with pytest.raises(ModelError):
            label_propagation(np.array([[0, 1]]), np.ones(1), 2, {0: 7})
        with pytest.raises(ModelError):
            label_propagation(
                np.array([[0, 1]]), np.ones(1), 2, {0: 0}, n_classes=1
            )
