"""Tests for the root-cause extension, validated against simulator truth."""

import numpy as np
import pytest

from repro.core.pipeline import ChurnPipeline
from repro.core.rootcause import (
    CAUSE_GROUPS,
    RootCauseAnalyzer,
    SUGGESTED_LEVER,
    report_root_causes,
)
from repro.core.window import WindowSpec
from repro.errors import ExperimentError
from repro.features.spec import ALL_CATEGORIES


@pytest.fixture(scope="module")
def analyzed(small_world, small_scale, small_model):
    pipeline = ChurnPipeline(small_world, small_scale, model=small_model, seed=3)
    result = pipeline.run_window(WindowSpec((4, 5), 6), categories=ALL_CATEGORIES)
    features = pipeline.builder.features(6, ALL_CATEGORIES).values[
        result.test_slots
    ]
    return RootCauseAnalyzer(result, features), result


class TestSetup:
    def test_every_cause_has_a_lever(self):
        assert set(SUGGESTED_LEVER) == set(CAUSE_GROUPS)

    def test_groups_cover_known_features(self, analyzed):
        analyzer, _ = analyzed
        assert len(analyzer.group_columns("financial")) >= 4
        assert len(analyzer.group_columns("data_service_quality")) >= 10
        assert len(analyzer.group_columns("voice_service_quality")) >= 6
        assert len(analyzer.group_columns("social")) == 6  # 3 graphs x 2

    def test_unknown_cause_rejected(self, analyzed):
        analyzer, _ = analyzed
        with pytest.raises(ExperimentError):
            analyzer.group_columns("astrology")

    def test_shape_validation(self, analyzed):
        _, result = analyzed
        with pytest.raises(ExperimentError):
            RootCauseAnalyzer(result, np.zeros((3, 3)))


class TestAttribution:
    def test_contributions_nonnegative(self, analyzed):
        analyzer, _ = analyzed
        for attribution in analyzer.attribute_top(30):
            assert all(v >= 0 for v in attribution.contributions.values())
            assert set(attribution.contributions) == set(CAUSE_GROUPS)

    def test_top_churners_have_material_causes(self, analyzed):
        analyzer, _ = analyzed
        attributions = analyzer.attribute_top(20)
        # For high-scoring customers, neutralizing the dominant cause
        # should noticeably drop the score.
        strong = [
            a for a in attributions
            if a.contributions[a.dominant_cause] > 0.05
        ]
        assert len(strong) > len(attributions) // 2

    def test_attribution_recovers_simulator_reasons(self, analyzed, small_world):
        """The headline validation: inferred causes track the hidden truth."""
        analyzer, result = analyzed
        attributions = analyzer.attribute_top(60)
        truth = small_world.month(6).churn_reason
        fin_scores = []
        nonfin_scores = []
        for attribution in attributions:
            reason = truth[attribution.slot]
            if reason == 0:
                continue  # not actually a churner (a false positive)
            share = attribution.contributions["financial"] / max(
                sum(attribution.contributions.values()), 1e-9
            )
            if reason == 1:
                fin_scores.append(share)
            else:
                nonfin_scores.append(share)
        assert len(fin_scores) > 3
        # True financial churners get a larger financial share than
        # quality/social churners do.
        if nonfin_scores:
            assert np.mean(fin_scores) > np.mean(nonfin_scores)

    def test_attribute_top_validates_u(self, analyzed):
        analyzer, _ = analyzed
        with pytest.raises(ExperimentError):
            analyzer.attribute_top(0)

    def test_cohort_summary_sums_to_one(self, analyzed):
        analyzer, _ = analyzed
        summary = analyzer.cohort_summary(analyzer.attribute_top(25))
        assert sum(summary.values()) == pytest.approx(1.0)

    def test_cohort_summary_empty_rejected(self, analyzed):
        analyzer, _ = analyzed
        with pytest.raises(ExperimentError):
            analyzer.cohort_summary([])

    def test_report_renders(self, analyzed):
        analyzer, _ = analyzed
        text = report_root_causes(analyzer, 15)
        assert "Root causes" in text
        assert "cashback" in text
