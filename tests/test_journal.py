"""Write-ahead journal: commit protocol, recovery, adoption, and fsck.

The systematic every-crash-point sweep lives in ``test_crash_matrix.py``;
this module covers the journal's unit surface — record codec, durability
modes, the record files a transaction leaves behind, targeted
crash/recover scenarios, manifest adoption, cache invalidation on
recovery, and the fsck report — plus the telemetry/watchtower wiring of
``recovery.*`` counters.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.watchtower import Watchtower, recovery_rules
from repro.dataplat.blockstore import BlockStore
from repro.dataplat.catalog import Catalog
from repro.dataplat.journal import (
    Durability,
    RecoveryReport,
    decode_record,
    encode_record,
    fsck_store,
    journal_dir,
    plan_recovery,
    staging_root,
    txn_floor,
)
from repro.dataplat.resilience import CrashPoint, FaultInjector, SimulatedCrash
from repro.dataplat.table import Table
from repro.dataplat.telemetry import TelemetryWarehouse
from repro.errors import CatalogError


def make_table(n: int = 24, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_arrays(
        imsi=np.arange(n, dtype=np.int64),
        dur=rng.integers(0, 100, size=n),
    )


def crash_world(**catalog_kwargs):
    """A catalog whose store carries an (unarmed) crash point."""
    crash = CrashPoint()
    store = BlockStore(fault_injector=FaultInjector(crash_point=crash))
    return Catalog(store=store, **catalog_kwargs), crash


def crash_during(build, op, label: str, occurrence: int = 1) -> BlockStore:
    """Run ``op`` crashed at the ``occurrence``-th hit of ``label``.

    ``build()`` constructs a fresh ``(catalog, crash)`` world; the first
    world enumerates the operation's crash points, the second re-runs it
    armed.  Returns the crashed world's store, frozen mid-operation.
    """
    catalog, crash = build()
    crash.reset()
    op(catalog)
    hits = [i for i, (l, _) in enumerate(crash.visited) if l == label]
    assert len(hits) >= occurrence, f"{label!r} hit {len(hits)} time(s)"
    k = hits[occurrence - 1] + 1

    catalog, crash = build()
    crash.reset()
    crash.raise_at(k)
    with pytest.raises(SimulatedCrash):
        op(catalog)
    return catalog.store


class TestDurability:
    def test_defaults_and_flags(self):
        d = Durability()
        assert d.journal and d.fsync == "commit"
        assert d.sync_on_commit and not d.sync_every_write
        always = Durability(fsync="always")
        assert always.sync_every_write and always.sync_on_commit

    def test_disabled_is_the_pre_journal_path(self):
        d = Durability.disabled()
        assert not d.journal
        assert not d.sync_on_commit and not d.sync_every_write

    def test_validation(self):
        with pytest.raises(CatalogError):
            Durability(fsync="sometimes")
        with pytest.raises(CatalogError):
            Durability(compact_after=1)


class TestRecordCodec:
    def test_round_trip(self):
        doc = {"op": "save", "txn": 7, "moves": [["a", "b"]]}
        assert decode_record(encode_record(doc)) == doc

    def test_torn_tail_reads_as_never_written(self):
        payload = encode_record({"op": "save", "txn": 7})
        for cut in (0, 5, len(payload) // 2, len(payload) - 1):
            assert decode_record(payload[:cut]) is None

    def test_corrupt_body_fails_crc(self):
        payload = bytearray(encode_record({"op": "drop"}))
        payload[-1] ^= 0xFF
        assert decode_record(bytes(payload)) is None

    def test_non_dict_json_rejected(self):
        body = json.dumps([1, 2]).encode()
        import zlib

        payload = f"{zlib.crc32(body) & 0xFFFFFFFF:08x} ".encode() + body
        assert decode_record(payload) is None


class TestJournaledWrites:
    def test_save_leaves_intent_commit_done(self):
        catalog, _ = crash_world()
        catalog.save(make_table(), "t", partition="month=1")
        records = catalog.store.list_files(journal_dir("default", "t") + "/")
        kinds = sorted(p.rsplit("-", 1)[-1] for p in records)
        assert kinds == ["commit.rec", "done.rec", "intent.rec"]

    def test_no_staging_residue_after_save(self):
        catalog, _ = crash_world()
        catalog.save(make_table(), "t", partition="month=1")
        assert catalog.store.list_files(staging_root("default", "t")) == []

    def test_overwrite_removes_old_version_chunks(self):
        catalog, _ = crash_world()
        catalog.save(make_table(seed=1), "t")
        before = set(catalog.partition_files("t"))
        catalog.save(make_table(seed=2), "t", overwrite=True)
        after = set(catalog.partition_files("t"))
        # Version-stamped chunk names: the new version shares only the
        # manifest path with the old one.
        assert before != after
        for path in before - after:
            assert not catalog.store.exists(path)

    def test_compaction_bounds_journal_growth(self):
        catalog, _ = crash_world(durability=Durability(compact_after=4))
        for month in range(6):
            catalog.save(make_table(seed=month), "t", partition=f"m={month}")
        records = catalog.store.list_files(journal_dir("default", "t") + "/")
        assert len(records) <= 4
        assert any(p.endswith("-checkpoint.rec") for p in records)
        reopened = Catalog.open(catalog.store)
        assert reopened.partitions("t") == [f"m={m}" for m in range(6)]

    def test_drop_last_partition_removes_journal_too(self):
        catalog, _ = crash_world()
        catalog.save(make_table(), "t", partition="m=1")
        catalog.save(make_table(seed=1), "t", partition="m=2")
        catalog.drop("t")
        assert catalog.store.total_bytes == 0
        assert catalog.store.list_files("/") == []

    def test_mixed_format_overwrite_leaves_no_residue(self):
        # v2 -> v1 and back: each overwrite must also remove the other
        # format's files (the interrupted-migration cleanup, satellite 1).
        catalog, _ = crash_world()
        catalog.save(make_table(), "t", format="v2")
        catalog.save(make_table(), "t", format="v1", overwrite=True)
        files = catalog.partition_files("t")
        assert files == ["/warehouse/default/t/__all__.npz"]
        assert catalog.store.list_files("/warehouse/") == files
        catalog.save(make_table(), "t", format="v2", overwrite=True)
        assert not catalog.store.exists("/warehouse/default/t/__all__.npz")
        assert catalog.load("t") == make_table()


class TestRecovery:
    def test_clean_reopen_round_trips_everything(self):
        catalog, _ = crash_world()
        catalog.create_database("ops")
        catalog.save(make_table(seed=1), "calls", partition="m=1")
        catalog.save(make_table(seed=2), "calls", partition="m=2")
        catalog.save(make_table(seed=3), "legacy", format="v1")
        catalog.save(make_table(seed=4), "audit", database="ops")
        reopened = Catalog.open(catalog.store)
        assert reopened.last_recovery is not None
        assert reopened.last_recovery.clean
        assert reopened.tables() == ["calls", "legacy"]
        assert reopened.tables("ops") == ["audit"]
        assert reopened.load("calls", partition="m=2") == make_table(seed=2)
        assert reopened.load("legacy") == make_table(seed=3)
        assert reopened.load("audit", database="ops") == make_table(seed=4)

    def test_uncommitted_save_rolls_back(self):
        def build():
            catalog, crash = crash_world()
            catalog.save(make_table(seed=1), "t", partition="m=1")
            return catalog, crash

        store = crash_during(
            build,
            lambda c: c.save(make_table(seed=9), "t", partition="m=2"),
            "catalog.save.barrier",
        )
        reopened = Catalog.open(store)
        report = reopened.last_recovery
        assert report.rolled_back == 1 and report.replayed == 0
        assert reopened.partitions("t") == ["m=1"]
        assert reopened.load("t", partition="m=1") == make_table(seed=1)
        assert store.list_files(staging_root("default", "t")) == []
        # Convergence: the rolled-back txn is settled, second open is clean.
        assert Catalog.open(store).last_recovery.clean

    def test_committed_save_replays_forward(self):
        def build():
            catalog, crash = crash_world()
            catalog.save(make_table(seed=1), "t")
            return catalog, crash

        store = crash_during(
            build,
            lambda c: c.save(make_table(seed=9), "t", overwrite=True),
            "catalog.save.commit",
        )
        reopened = Catalog.open(store)
        report = reopened.last_recovery
        assert report.replayed == 1 and report.rolled_back == 0
        assert reopened.load("t") == make_table(seed=9)
        assert store.list_files(staging_root("default", "t")) == []
        assert Catalog.open(store).last_recovery.clean

    def test_interrupted_drop_completes_on_recovery(self):
        def build():
            catalog, crash = crash_world()
            catalog.save(make_table(seed=1), "t", partition="m=1")
            catalog.save(make_table(seed=2), "t", partition="m=2")
            return catalog, crash

        store = crash_during(
            build,
            lambda c: c.drop_partition("t", "m=1"),
            "catalog.drop.commit",
        )
        reopened = Catalog.open(store)
        assert reopened.last_recovery.replayed == 1
        assert reopened.partitions("t") == ["m=2"]
        assert reopened.load("t", partition="m=2") == make_table(seed=2)

    def test_recovery_invalidates_stale_cache_entries(self):
        # Satellite: a recovery that deletes a partition's replaced files
        # must evict them from every attached TableCache, including one
        # belonging to the catalog instance that crashed.
        catalog, crash = crash_world()
        catalog.save(make_table(seed=1), "t")
        catalog.clear_cache()
        catalog.load("t")
        old_chunks = [
            p for p in catalog.partition_files("t") if ".chunk" in p
        ]
        assert any(p in catalog.table_cache for p in old_chunks)
        # Enumerate the overwrite on a scratch partition to find the
        # commit hit offset, then crash the real overwrite there.
        crash.reset()
        catalog.save(make_table(seed=5), "probe", partition="p=0")
        k = 1 + [l for l, _ in crash.visited].index("catalog.save.commit")
        crash.reset()
        crash.raise_at(k)
        with pytest.raises(SimulatedCrash):
            catalog.save(make_table(seed=9), "t", overwrite=True)
        # The crashed txn committed; recovery replays it, deleting the old
        # chunks — which must drop out of the crashed catalog's cache too.
        reopened = Catalog.open(catalog.store)
        assert reopened.last_recovery.replayed == 1
        assert not any(p in catalog.table_cache for p in old_chunks)
        assert reopened.load("t") == make_table(seed=9)

    def test_adoption_re_registers_from_manifest_identity(self):
        catalog, _ = crash_world()
        catalog.save(make_table(seed=1), "t", partition="m=1")
        catalog.save(make_table(seed=2), "t", partition="m=2")
        store = catalog.store
        for path in store.list_files("/journal/"):
            store.delete(path)
        reopened = Catalog.open(store)
        assert reopened.last_recovery.adopted == 2
        assert reopened.partitions("t") == ["m=1", "m=2"]
        assert reopened.load("t", partition="m=1") == make_table(seed=1)

    def test_identityless_manifest_preserved_not_adopted(self):
        catalog, _ = crash_world()
        catalog.save(make_table(), "t")
        store = catalog.store
        [manifest_path] = [
            p for p in store.list_files("/warehouse/") if p.endswith(".v2m")
        ]
        doc = json.loads(store.read(manifest_path).decode())
        doc.pop("identity")
        store.delete(manifest_path)
        store.write(manifest_path, json.dumps(doc).encode())
        for path in store.list_files("/journal/"):
            store.delete(path)
        before = store.list_files("/warehouse/")
        reopened = Catalog.open(store)
        assert reopened.tables() == []
        assert store.list_files("/warehouse/") == before  # nothing deleted
        report = fsck_store(store)
        assert any(i.kind == "unadoptable-manifest" for i in report.issues)

    def test_unjournaled_v1_table_is_preserved_and_reported(self):
        catalog, _ = crash_world(durability=Durability.disabled())
        catalog.save(make_table(), "t", format="v1")
        store = catalog.store
        reopened = Catalog.open(store)
        assert store.exists("/warehouse/default/t/__all__.npz")
        report = fsck_store(store)
        assert any(i.kind == "unattributable-table" for i in report.issues)

    def test_disabled_durability_recovers_via_adoption(self):
        catalog, _ = crash_world(durability=Durability.disabled())
        catalog.save(make_table(seed=1), "t", partition="m=1")
        assert catalog.store.list_files("/journal/") == []
        reopened = Catalog.open(catalog.store)
        assert reopened.last_recovery.adopted == 1
        assert reopened.load("t", partition="m=1") == make_table(seed=1)

    def test_txn_floor_prevents_id_reuse(self):
        catalog, _ = crash_world()
        for seed in range(3):
            catalog.save(make_table(seed=seed), "t", overwrite=True)
        floor = txn_floor(catalog.store)
        assert floor >= 3
        fresh = Catalog.open(catalog.store)
        fresh.save(make_table(seed=9), "t", overwrite=True)
        assert txn_floor(fresh.store) > floor


class TestFsck:
    def _crashed_store(self) -> BlockStore:
        def build():
            catalog, crash = crash_world()
            catalog.save(make_table(seed=1), "t")
            return catalog, crash

        return crash_during(
            build,
            lambda c: c.save(make_table(seed=9), "t", overwrite=True),
            "catalog.save.barrier",
        )

    def test_report_mode_does_not_mutate(self):
        store = self._crashed_store()
        before = store.to_snapshot()
        report = fsck_store(store, repair=False)
        assert not report.clean
        assert report.repaired is None
        assert store.to_snapshot() == before
        assert "pending-rollback" in report.counts()

    def test_repair_converges_to_clean(self):
        store = self._crashed_store()
        report = fsck_store(store, repair=True)
        assert report.repaired is not None
        assert report.repaired.rolled_back == 1
        after = fsck_store(store)
        assert after.clean
        assert "clean" in after.render()
        assert Catalog.open(store).last_recovery.clean

    def test_render_lists_tables_and_issues(self):
        store = self._crashed_store()
        text = fsck_store(store).render()
        assert "default.t: 1 partition(s)" in text
        assert "pending-rollback" in text

    def test_plan_is_empty_on_clean_store(self):
        catalog, _ = crash_world()
        catalog.save(make_table(), "t")
        assert plan_recovery(catalog.store).clean
        assert fsck_store(catalog.store).clean


class TestRecoveryTelemetry:
    def test_recovery_span_and_counters(self, capture_spans):
        def build():
            catalog, crash = crash_world()
            catalog.save(make_table(seed=1), "t")
            return catalog, crash

        store = crash_during(
            build,
            lambda c: c.save(make_table(seed=9), "t", overwrite=True),
            "catalog.save.commit",
        )
        Catalog.open(store)
        sp = capture_spans.assert_span("catalog.recover")
        assert sp.counters.get("replayed") == 1
        assert capture_spans.counter("recovery.replayed") >= 1

    def test_record_recovery_sinks_counters(self):
        wh = TelemetryWarehouse(git_sha="sha")
        wh.record_recovery("r1", 3, RecoveryReport(replayed=2, orphans_removed=1))
        table = wh.query(
            "SELECT name, value FROM __telemetry.metrics "
            "WHERE run_id = 'r1' AND kind = 'counter'"
        )
        rows = dict(zip(table["name"], table["value"]))
        assert rows["recovery.runs"] == 1.0
        assert rows["recovery.replayed"] == 2.0
        assert rows["recovery.orphans_removed"] == 1.0
        assert "recovery.rolled_back" not in rows  # zero counters elided

    def test_watchtower_pages_on_unexpected_recovery(self):
        wh = TelemetryWarehouse(git_sha="sha")
        tower = Watchtower(wh, recovery_rules())
        wh.record_recovery("r1", 1, RecoveryReport())  # clean open
        assert tower.evaluate("r1", 1) == []
        wh.record_recovery("r1", 2, RecoveryReport(rolled_back=1))
        fired = tower.evaluate("r1", 2)
        assert [a.rule for a in fired] == ["unexpected-crash-recovery"]
        assert fired[0].severity == "page"

    def test_watchtower_warns_on_orphan_sweep(self):
        wh = TelemetryWarehouse(git_sha="sha")
        tower = Watchtower(wh, recovery_rules())
        wh.record_recovery("r1", 4, RecoveryReport(orphans_removed=3))
        fired = tower.evaluate("r1", 4)
        assert [a.rule for a in fired] == ["recovery-orphans-removed"]
        assert fired[0].severity == "warn"
