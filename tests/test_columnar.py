"""Columnar v2 format: chunk codec, zone maps, and catalog scan pruning."""

import numpy as np
import pytest

from repro.dataplat.blockstore import BlockStore
from repro.dataplat.catalog import Catalog
from repro.dataplat.columnar import (
    MANIFEST_SUFFIX,
    PartitionManifest,
    ScanPredicate,
    ZoneMap,
    chunk_dir,
    decode_column,
    encode_column,
    manifest_allows,
    zone_allows,
)
from repro.dataplat.schema import Column, ColumnType, Schema
from repro.dataplat.table import Table
from repro.errors import CatalogError, StorageError


def chunk_path(catalog: Catalog, column: str, table: str = "t") -> str:
    """Resolve a column's version-stamped chunk path via the manifest."""
    manifest_path = f"/warehouse/default/{table}/__all__" + MANIFEST_SUFFIX
    manifest = PartitionManifest.from_bytes(catalog.store.read(manifest_path))
    meta = manifest.chunk(column)
    assert meta is not None, f"no chunk for column {column!r}"
    return meta.path


class TestChunkCodec:
    @pytest.mark.parametrize(
        "ctype, arr",
        [
            ("int", np.arange(-50, 50, dtype=np.int64)),
            ("float", np.linspace(-2.0, 2.0, 64)),
            ("bool", np.array([True, False, True, True, False])),
            (
                "string",
                np.asarray(
                    ["alpha", "", "beta", "alpha", "gamma"], dtype=object
                ),
            ),
        ],
    )
    def test_round_trip(self, ctype, arr):
        col = Column("c", ColumnType(ctype))
        payload, zone = encode_column(col, arr)
        out = decode_column(payload)
        assert zone.count == len(arr)
        if ctype == "string":
            assert out.tolist() == [str(v) for v in arr.tolist()]
        else:
            assert np.array_equal(out, np.asarray(arr))

    def test_round_trip_empty(self):
        for ctype in ("int", "float", "bool", "string"):
            col = Column("c", ColumnType(ctype))
            dtype = {"string": object, "bool": bool}.get(ctype, np.float64)
            payload, zone = encode_column(col, np.empty(0, dtype=dtype))
            assert zone == ZoneMap(0, 0, distinct=0)
            assert len(decode_column(payload)) == 0

    def test_decoded_arrays_writable(self):
        col = Column("c", ColumnType.FLOAT)
        payload, _ = encode_column(col, np.ones(8))
        out = decode_column(payload)
        out[0] = 5.0  # frombuffer views are read-only; decode must copy

    def test_dictionary_shrinks_repetitive_strings(self):
        col = Column("c", ColumnType.STRING)
        arr = np.asarray(["longvaluehere"] * 1000, dtype=object)
        payload, _ = encode_column(col, arr)
        assert len(payload) < 1000  # codes compress; dict stored once

    def test_float_zone_ignores_nan(self):
        col = Column("c", ColumnType.FLOAT)
        _, zone = encode_column(col, np.array([np.nan, 2.0, -1.0, np.nan]))
        assert zone == ZoneMap(4, 2, -1.0, 2.0, distinct=2)

    def test_all_nan_zone_has_no_bounds(self):
        col = Column("c", ColumnType.FLOAT)
        _, zone = encode_column(col, np.array([np.nan, np.nan]))
        assert zone == ZoneMap(2, 2, None, None, distinct=0)

    def test_unknown_encoding_rejected(self):
        with pytest.raises(StorageError):
            decode_column(b'{"enc": "wat", "rows": 1, "comp": false}\n??')


class TestZoneAllows:
    def test_empty_chunk_never_matches(self):
        zone = ZoneMap(0, 0)
        assert not zone_allows(zone, ScanPredicate("c", "=", 1))

    @pytest.mark.parametrize(
        "op, value, expected",
        [
            ("=", 5, True),
            ("=", 11, False),
            ("=", -1, False),
            ("<", 1, True),
            ("<", 0, False),
            ("<=", 0, True),
            (">", 9, True),
            (">", 10, False),
            (">=", 10, True),
            ("in", (11, 12), False),
            ("in", (11, 3), True),
        ],
    )
    def test_range_ops(self, op, value, expected):
        zone = ZoneMap(10, 0, 0, 10)  # values span [0, 10]
        assert zone_allows(zone, ScanPredicate("c", op, value)) is expected

    def test_not_equal_prunes_only_constant_chunks(self):
        constant = ZoneMap(5, 0, 3, 3)
        spread = ZoneMap(5, 0, 3, 7)
        assert not zone_allows(constant, ScanPredicate("c", "<>", 3))
        assert zone_allows(constant, ScanPredicate("c", "<>", 4))
        assert zone_allows(spread, ScanPredicate("c", "<>", 3))

    def test_not_equal_with_nulls_never_prunes(self):
        # NaN != literal is True under numpy, so null rows always match <>.
        zone = ZoneMap(5, 2, 3, 3)
        assert zone_allows(zone, ScanPredicate("c", "<>", 3))

    def test_all_null_chunk_fails_ordered_ops(self):
        zone = ZoneMap(4, 4, None, None)
        for op in ("=", "<", "<=", ">", ">="):
            assert not zone_allows(zone, ScanPredicate("c", op, 1))

    def test_type_mismatch_is_conservative(self):
        zone = ZoneMap(5, 0, "alpha", "beta")
        assert zone_allows(zone, ScanPredicate("c", "=", 3))
        assert zone_allows(zone, ScanPredicate("c", "in", (3, "alpha")))

    def test_string_bounds(self):
        zone = ZoneMap(5, 0, "beta", "delta")
        assert zone_allows(zone, ScanPredicate("c", "=", "cat"))
        assert not zone_allows(zone, ScanPredicate("c", "=", "zebra"))

    def test_is_null_prunes_by_null_count(self):
        no_nulls = ZoneMap(10, 0, 0, 9)
        some_nulls = ZoneMap(10, 3, 0, 9)
        assert not zone_allows(no_nulls, ScanPredicate("c", "isnull"))
        assert zone_allows(some_nulls, ScanPredicate("c", "isnull"))

    def test_is_not_null_prunes_all_null_chunks(self):
        all_null = ZoneMap(4, 4, None, None)
        some_nulls = ZoneMap(10, 3, 0, 9)
        assert not zone_allows(all_null, ScanPredicate("c", "notnull"))
        assert zone_allows(some_nulls, ScanPredicate("c", "notnull"))

    def test_null_ops_on_empty_chunk(self):
        empty = ZoneMap(0, 0)
        assert not zone_allows(empty, ScanPredicate("c", "isnull"))
        assert not zone_allows(empty, ScanPredicate("c", "notnull"))

    def test_distinct_survives_manifest_round_trip(self):
        zone = ZoneMap(10, 2, 0, 9, distinct=7)
        assert ZoneMap.from_dict(zone.to_dict()) == zone
        # Manifests written before the binder existed omit distinct.
        legacy = dict(zone.to_dict())
        legacy.pop("distinct")
        assert ZoneMap.from_dict(legacy).distinct is None

    def test_manifest_unknown_column_cannot_prune(self):
        catalog = Catalog()
        catalog.save(Table.from_arrays(x=np.arange(4)), "t")
        path = "/warehouse/default/t/__all__" + MANIFEST_SUFFIX
        manifest = PartitionManifest.from_bytes(catalog.store.read(path))
        assert manifest_allows(manifest, [ScanPredicate("nope", "=", 1)])
        assert not manifest_allows(manifest, [ScanPredicate("x", ">", 99)])


class TestManifest:
    def test_round_trip(self):
        catalog = Catalog()
        table = Table.from_arrays(
            a=np.arange(6), b=np.linspace(0, 1, 6)
        )
        catalog.save(table, "t")
        path = "/warehouse/default/t/__all__" + MANIFEST_SUFFIX
        manifest = PartitionManifest.from_bytes(catalog.store.read(path))
        round_tripped = PartitionManifest.from_bytes(manifest.to_bytes())
        assert round_tripped == manifest
        assert round_tripped.rows == 6
        assert round_tripped.schema == table.schema

    def test_future_version_rejected(self):
        with pytest.raises(StorageError):
            PartitionManifest.from_bytes(
                b'{"format": 99, "rows": 0, "columns": []}'
            )

    def test_chunk_dir_requires_manifest_path(self):
        assert chunk_dir("/warehouse/d/t/p.v2m") == "/warehouse/d/t/p/"
        with pytest.raises(StorageError):
            chunk_dir("/warehouse/d/t/p.npz")


@pytest.fixture()
def months_catalog():
    """Six month partitions with disjoint month zone maps."""
    catalog = Catalog()
    rng = np.random.default_rng(3)
    for month in range(1, 7):
        table = Table.from_arrays(
            month=np.full(50, month, dtype=np.int64),
            imsi=np.arange(50, dtype=np.int64),
            dur=rng.normal(size=50),
            plan=np.asarray(
                rng.choice(["gold", "silver"], size=50), dtype=object
            ),
        )
        catalog.save(table, "cdr", partition=f"month={month}")
    return catalog


class TestCatalogScan:
    def test_projection_only_decodes_requested_chunks(self, months_catalog):
        catalog = months_catalog
        out = catalog.scan("cdr", columns=["dur", "month"])
        assert out.schema.names == ("dur", "month")
        assert out.num_rows == 300
        health = catalog.store.health
        assert health.chunks_skipped == 6 * 2  # imsi + plan per partition
        assert health.bytes_decoded_saved > 0

    def test_predicate_prunes_partitions(self, months_catalog):
        catalog = months_catalog
        out = catalog.scan(
            "cdr",
            columns=["imsi", "dur"],
            predicate=[ScanPredicate("month", "=", 3)],
        )
        assert out.num_rows == 50  # only month=3 survives
        assert catalog.store.health.partitions_pruned == 5

    def test_pruning_never_filters_kept_partitions(self, months_catalog):
        # month >= 5 keeps partitions 5 and 6 whole; rows are NOT filtered
        # by the scan (the SQL layer's Filter does that).
        out = months_catalog.scan(
            "cdr", predicate=[ScanPredicate("month", ">=", 5)]
        )
        assert out.num_rows == 100

    def test_all_pruned_returns_empty_with_schema(self, months_catalog):
        out = months_catalog.scan(
            "cdr",
            columns=["imsi"],
            predicate=[ScanPredicate("month", ">", 99)],
        )
        assert out.num_rows == 0
        assert out.schema.names == ("imsi",)

    def test_scan_without_arguments_equals_load(self, months_catalog):
        assert months_catalog.scan("cdr") == months_catalog.load("cdr")

    def test_string_predicate_conservative(self, months_catalog):
        # Every partition has both plans; nothing prunable.
        out = months_catalog.scan(
            "cdr", predicate=[ScanPredicate("plan", "=", "gold")]
        )
        assert out.num_rows == 300
        assert months_catalog.store.health.partitions_pruned == 0


class TestFormatNegotiation:
    def test_v1_partitions_still_readable(self):
        catalog = Catalog(default_format="v1")
        table = Table.from_arrays(x=np.arange(5), s=np.asarray(
            ["a", "b", "c", "d", "e"], dtype=object
        ))
        catalog.save(table, "t")
        assert catalog.store.exists("/warehouse/default/t/__all__.npz")
        assert catalog.load("t") == table
        assert catalog.scan("t", columns=["s"]) == table.select(["s"])

    def test_mixed_format_partitions(self):
        catalog = Catalog()
        t1 = Table.from_arrays(m=np.full(3, 1), v=np.arange(3) * 1.0)
        t2 = Table.from_arrays(m=np.full(3, 2), v=np.arange(3) * 2.0)
        catalog.save(t1, "t", partition="m=1", format="v1")
        catalog.save(t2, "t", partition="m=2", format="v2")
        assert catalog.load("t").num_rows == 6
        # Pruning skips the v2 partition; the v1 one is format-blind.
        out = catalog.scan("t", predicate=[ScanPredicate("m", "=", 1)])
        assert out.num_rows == 3
        assert catalog.store.health.partitions_pruned == 1

    def test_save_format_switch_deletes_stale_files(self):
        catalog = Catalog()
        table = Table.from_arrays(x=np.arange(4))
        catalog.save(table, "t", format="v1")
        catalog.save(table, "t", format="v2")
        assert not catalog.store.exists("/warehouse/default/t/__all__.npz")
        catalog.save(table, "t", format="v1")
        assert not catalog.store.exists(
            "/warehouse/default/t/__all__" + MANIFEST_SUFFIX
        )
        assert catalog.load("t") == table

    def test_drop_removes_all_chunk_files(self):
        store = BlockStore()
        catalog = Catalog(store)
        catalog.save(Table.from_arrays(x=np.arange(4), y=np.arange(4)), "t")
        catalog.drop("t")
        assert store.total_bytes == 0
        assert store.list_files("/warehouse/") == []

    def test_unknown_format_rejected(self):
        with pytest.raises(CatalogError):
            Catalog(default_format="v3")
        with pytest.raises(CatalogError):
            Catalog().save(Table.from_arrays(x=np.arange(2)), "t", format="v9")


class TestChunkCache:
    def test_cache_keys_are_chunk_paths(self):
        catalog = Catalog()
        catalog.save(
            Table.from_arrays(a=np.arange(4), b=np.arange(4) * 2.0), "t"
        )
        assert chunk_path(catalog, "a") in catalog.table_cache
        assert chunk_path(catalog, "b") in catalog.table_cache

    def test_projection_scan_only_warms_requested_chunks(self):
        catalog = Catalog()
        catalog.save(
            Table.from_arrays(a=np.arange(4), b=np.arange(4) * 2.0), "t"
        )
        catalog.clear_cache()
        catalog.scan("t", columns=["a"])
        assert chunk_path(catalog, "a") in catalog.table_cache
        assert chunk_path(catalog, "b") not in catalog.table_cache

    def test_chunk_corruption_invalidates_only_that_chunk(self):
        catalog = Catalog()
        table = Table.from_arrays(a=np.arange(4), b=np.arange(4) * 2.0)
        catalog.save(table, "t")
        path = chunk_path(catalog, "a")
        status = catalog.store.status(path)
        catalog.store.corrupt_block(path, 0, status.blocks[0].replicas[0])
        assert path not in catalog.table_cache
        assert chunk_path(catalog, "b") in catalog.table_cache
        assert catalog.load("t") == table  # replica heals the read
