"""Tests for the cost-based optimizer: reordering, pushdown, strategies."""

import numpy as np
import pytest

from repro.dataplat import observability
from repro.dataplat.catalog import Catalog
from repro.dataplat.observability import MetricsRegistry
from repro.dataplat.sql import SQLEngine
from repro.dataplat.sql.cbo import MERGE_MIN_ROWS, _choose_strategies
from repro.dataplat.sql.plan import Aggregate, Join, Narrow, Scan
from repro.dataplat.table import Table
from repro.errors import SchemaError


@pytest.fixture
def metrics():
    previous = observability.set_metrics(MetricsRegistry())
    try:
        yield observability.get_metrics()
    finally:
        observability.set_metrics(previous)


def _walk(plan):
    stack = [plan]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


def _rows(table):
    cols = [table[c] for c in table.schema.names]
    out = []
    for row in zip(*cols):
        out.append(
            tuple(
                round(float(v), 9)
                if isinstance(v, (int, float, np.number))
                and not isinstance(v, (bool, np.bool_))
                else v
                for v in row
            )
        )
    # Mixed-type columns (object keys) aren't orderable; sort by a
    # type-tagged string key so parity checks stay total.
    return sorted(
        out, key=lambda r: tuple((type(v).__name__, str(v)) for v in r)
    )


def _star_world(n_facts=3000, n_dims=500):
    """A skewed fact table plus two shrinking dimensions."""
    rng = np.random.default_rng(11)
    engine_off = SQLEngine(Catalog(), cost_based=False)
    engine_on = SQLEngine(engine_off.catalog, cost_based=True)
    facts = Table.from_arrays(
        cust=rng.integers(0, n_dims, size=n_facts),
        dur=rng.integers(0, 100, size=n_facts).astype(np.float64),
    )
    custs = Table.from_arrays(
        id=np.arange(n_dims, dtype=np.int64),
        offer=rng.integers(0, 8, size=n_dims),
    )
    kinds = np.asarray(
        ["promo", "std", "std", "std", "std", "std", "std", "std"],
        dtype=object,
    )
    offers = Table.from_arrays(id=np.arange(8, dtype=np.int64), kind=kinds)
    for name, table in (("calls", facts), ("custs", custs), ("offers", offers)):
        engine_off.register(table, name)
    return engine_off, engine_on


JOIN_SQL = (
    "SELECT o.kind AS kind, SUM(c.dur) AS total, COUNT(*) AS n "
    "FROM calls c JOIN custs u ON c.cust = u.id "
    "JOIN offers o ON u.offer = o.id "
    "WHERE o.kind = 'promo' GROUP BY o.kind"
)


class TestJoinReordering:
    def test_smallest_filtered_leaf_becomes_build_side(self, metrics):
        _, engine_on = _star_world()
        plan = engine_on.plan(JOIN_SQL)
        joins = [n for n in _walk(plan) if isinstance(n, Join)]
        assert len(joins) == 2
        # The deepest join must start from the filtered offers dimension,
        # not from the fact table the query was written around.
        deepest = [j for j in joins if not any(
            isinstance(c, Join) for c in (j.left, j.right)
        )][0]
        bindings = {
            n.binding for n in _walk(deepest) if isinstance(n, Scan)
        }
        assert "o" in bindings and "c" not in bindings
        assert metrics.counter("planner.joins_reordered").value == 1

    def test_reordered_results_match_heuristic_plan(self):
        engine_off, engine_on = _star_world()
        assert _rows(engine_off.query(JOIN_SQL)) == _rows(
            engine_on.query(JOIN_SQL)
        )

    def test_two_table_join_not_reordered(self, metrics):
        _, engine_on = _star_world()
        engine_on.plan(
            "SELECT c.dur FROM calls c JOIN custs u ON c.cust = u.id"
        )
        assert metrics.counter("planner.joins_reordered").value == 0

    def test_left_join_cluster_kept_in_written_order(self, metrics):
        _, engine_on = _star_world()
        sql = (
            "SELECT c.dur, o.kind FROM calls c "
            "LEFT JOIN custs u ON c.cust = u.id "
            "LEFT JOIN offers o ON u.offer = o.id"
        )
        plan = engine_on.plan(sql)
        joins = [n for n in _walk(plan) if isinstance(n, Join)]
        assert all(j.kind == "left" for j in joins)
        assert metrics.counter("planner.joins_reordered").value == 0

    def test_select_star_disables_structural_rewrites(self, metrics):
        _, engine_on = _star_world()
        sql = (
            "SELECT * FROM calls c JOIN custs u ON c.cust = u.id "
            "JOIN offers o ON u.offer = o.id WHERE o.kind = 'promo'"
        )
        plan = engine_on.plan(sql)
        assert metrics.counter("planner.joins_reordered").value == 0
        assert not any(isinstance(n, Narrow) for n in _walk(plan))
        engine_off, _ = _star_world()
        assert _rows(engine_off.query(sql)) == _rows(engine_on.query(sql))

    def test_cbo_disabled_by_default(self, metrics):
        engine = SQLEngine()
        engine.register(Table.from_arrays(k=np.arange(5)), "t")
        assert engine.cost_based is False
        engine.query("SELECT k FROM t")
        assert metrics.counter("planner.plans_bound").value == 1
        assert metrics.counter("planner.joins_reordered").value == 0

    def test_env_flag_enables_cbo(self, monkeypatch):
        monkeypatch.setenv("REPRO_CBO", "1")
        assert SQLEngine().cost_based is True
        monkeypatch.setenv("REPRO_CBO", "0")
        assert SQLEngine().cost_based is False


class TestAggregatePushdown:
    def test_pre_aggregate_appears_below_join(self, metrics):
        _, engine_on = _star_world()
        plan = engine_on.plan(JOIN_SQL)
        aggs = [n for n in _walk(plan) if isinstance(n, Aggregate)]
        assert len(aggs) == 2
        assert metrics.counter("planner.aggregates_pushed").value == 1
        # The pre-aggregation groups the fact side by its join key and
        # carries the count partial.
        pre = [a for a in aggs if any(
            item.alias == "__cnt__" for item in a.items
        )][0]
        inner_bindings = {
            n.binding for n in _walk(pre) if isinstance(n, Scan)
        }
        assert inner_bindings == {"c"}

    @pytest.mark.parametrize(
        "exprs",
        [
            "SUM(c.dur) AS a, COUNT(*) AS b",
            "MIN(c.dur) AS a, MAX(c.dur) AS b",
            "COUNT(c.dur) AS a, SUM(c.dur) + COUNT(*) AS b",
        ],
    )
    def test_pushed_aggregates_match_unpushed(self, exprs):
        engine_off, engine_on = _star_world()
        sql = (
            f"SELECT o.kind AS kind, {exprs} "
            "FROM calls c JOIN custs u ON c.cust = u.id "
            "JOIN offers o ON u.offer = o.id GROUP BY o.kind"
        )
        assert _rows(engine_off.query(sql)) == _rows(engine_on.query(sql))

    def test_having_rewritten_with_partials(self):
        engine_off, engine_on = _star_world()
        sql = (
            "SELECT u.offer AS offer, SUM(c.dur) AS total "
            "FROM calls c JOIN custs u ON c.cust = u.id "
            "GROUP BY u.offer HAVING COUNT(*) > 300"
        )
        assert _rows(engine_off.query(sql)) == _rows(engine_on.query(sql))

    def test_distinct_aggregate_not_pushed(self, metrics):
        _, engine_on = _star_world()
        sql = (
            "SELECT o.kind AS kind, COUNT(DISTINCT c.cust) AS n "
            "FROM calls c JOIN custs u ON c.cust = u.id "
            "JOIN offers o ON u.offer = o.id GROUP BY o.kind"
        )
        engine_on.plan(sql)
        assert metrics.counter("planner.aggregates_pushed").value == 0

    def test_avg_not_pushed_but_correct(self, metrics):
        engine_off, engine_on = _star_world()
        sql = (
            "SELECT o.kind AS kind, AVG(c.dur) AS mean "
            "FROM calls c JOIN custs u ON c.cust = u.id "
            "JOIN offers o ON u.offer = o.id GROUP BY o.kind"
        )
        engine_on.plan(sql)
        assert metrics.counter("planner.aggregates_pushed").value == 0
        assert _rows(engine_off.query(sql)) == _rows(engine_on.query(sql))


class TestEarlyProjection:
    def test_narrow_inserted_and_results_unchanged(self, metrics):
        rng = np.random.default_rng(5)
        n = 30_000
        engine_off = SQLEngine(Catalog(), cost_based=False)
        engine_on = SQLEngine(engine_off.catalog, cost_based=True)
        wide = Table.from_arrays(
            k=rng.integers(0, 50, size=n),
            a=rng.normal(size=n),
            b=rng.normal(size=n),
            c=rng.normal(size=n),
        )
        dim = Table.from_arrays(
            k=np.arange(50, dtype=np.int64),
            grp=np.arange(50, dtype=np.int64) % 5,
        )
        other = Table.from_arrays(
            grp=np.arange(5, dtype=np.int64),
            label=np.asarray(list("vwxyz"), dtype=object),
        )
        engine_off.register(wide, "wide")
        engine_off.register(dim, "dim")
        engine_off.register(other, "other")
        sql = (
            "SELECT o.label AS label, SUM(w.a) AS s "
            "FROM wide w JOIN dim d ON w.k = d.k "
            "JOIN other o ON d.grp = o.grp "
            "GROUP BY o.label ORDER BY label"
        )
        plan = engine_on.plan(sql)
        # b and c never used above the join: a Narrow (or the pre-agg
        # rewrite) must keep them out of the join intermediates.
        assert _rows(engine_off.query(sql)) == _rows(engine_on.query(sql))

    def test_narrow_drops_used_up_join_keys(self, metrics):
        # Scan-level pruning already strips columns no operator uses at
        # all; Narrow earns its keep on join *intermediates* still hauling
        # a join key that no operator above references.  Here a.k2/c.k2
        # only connect the first join — the second join and projection
        # never read them, so the large intermediate should shed them.
        rng = np.random.default_rng(6)
        n = 30_000
        engine_off = SQLEngine(Catalog(), cost_based=False)
        engine_on = SQLEngine(engine_off.catalog, cost_based=True)
        ta = Table.from_arrays(
            k=rng.integers(0, 500, size=n),
            k2=rng.integers(0, 20, size=n),
            v1=rng.normal(size=n),
        )
        tb = Table.from_arrays(k=np.arange(500, dtype=np.int64))
        tc = Table.from_arrays(
            k2=np.arange(20, dtype=np.int64),
            w=np.arange(20, dtype=np.float64),
        )
        engine_off.register(ta, "ta")
        engine_off.register(tb, "tb")
        engine_off.register(tc, "tc")
        sql = (
            "SELECT a.v1, c.w FROM ta a JOIN tb b ON a.k = b.k "
            "JOIN tc c ON a.k2 = c.k2 WHERE c.w < 5"
        )
        plan = engine_on.plan(sql)
        narrows = [n for n in _walk(plan) if isinstance(n, Narrow)]
        assert narrows, plan.describe()
        assert metrics.counter("planner.narrows_inserted").value >= 1
        for narrow in narrows:
            names = {col.rsplit(".", 1)[-1] for col in narrow.columns}
            assert "k2" not in names
        assert _rows(engine_off.query(sql)) == _rows(engine_on.query(sql))


class TestJoinStrategy:
    def _tables(self, n=1000, with_nan=False):
        rng = np.random.default_rng(2)
        key = rng.integers(0, 50, size=n).astype(np.float64)
        if with_nan:
            key[:: 17] = np.nan
        left = Table.from_arrays(k=key, v=rng.normal(size=n))
        right = Table.from_arrays(
            k=np.arange(50, dtype=np.float64),
            w=rng.normal(size=50),
        )
        return left, right

    @pytest.mark.parametrize("how", ["inner", "left"])
    @pytest.mark.parametrize("with_nan", [False, True])
    def test_merge_join_bit_identical_to_hash(self, how, with_nan):
        left, right = self._tables(with_nan=with_nan)
        hashed = left.join(right, on=["k"], how=how, strategy="hash")
        merged = left.join(right, on=["k"], how=how, strategy="merge")
        assert hashed.schema == merged.schema
        for name in hashed.schema.names:
            np.testing.assert_array_equal(
                np.asarray(hashed[name]), np.asarray(merged[name])
            )

    def test_merge_join_mixed_type_keys_fall_back(self):
        left = Table.from_arrays(
            k=np.asarray([1, "x", 2.5, "x"], dtype=object),
            v=np.arange(4, dtype=np.float64),
        )
        right = Table.from_arrays(
            k=np.asarray(["x", 1], dtype=object),
            w=np.asarray([10.0, 20.0]),
        )
        hashed = left.join(right, on=["k"], strategy="hash")
        merged = left.join(right, on=["k"], strategy="merge")
        assert _rows(hashed) == _rows(merged)

    def test_unknown_strategy_rejected(self):
        left, right = self._tables()
        with pytest.raises(SchemaError):
            left.join(right, on=["k"], strategy="nested-loop")

    def test_strategy_flips_to_merge_above_threshold(self, metrics):
        big = float(MERGE_MIN_ROWS)
        left = Scan("t", "t", None, ())
        right = Scan("u", "u", None, ())
        join = Join(left, right, "inner", None)
        left.est_rows = big
        right.est_rows = big * 2
        join.est_rows = big * 2  # fan-out 1.0
        _choose_strategies(join)
        assert join.strategy == "merge"
        assert metrics.counter("planner.merge_joins").value == 1

    def test_small_or_exploding_joins_stay_hash(self, metrics):
        big = float(MERGE_MIN_ROWS)
        for l, r, out in [
            (big / 2, big * 2, big),        # small build side
            (big, big, big * 10),           # fan-out too large
            (None, big, big),               # missing estimate
        ]:
            left = Scan("t", "t", None, ())
            right = Scan("u", "u", None, ())
            join = Join(left, right, "inner", None)
            left.est_rows = l
            right.est_rows = r
            join.est_rows = out
            _choose_strategies(join)
            assert join.strategy == "hash"
        assert metrics.counter("planner.merge_joins").value == 0

    def test_merge_strategy_survives_execution(self):
        # End-to-end: force a plan whose join qualifies for merge and make
        # sure it still answers correctly through the executor.
        rng = np.random.default_rng(9)
        n = 60_000
        engine_off = SQLEngine(Catalog(), cost_based=False)
        engine_on = SQLEngine(engine_off.catalog, cost_based=True)
        left = Table.from_arrays(
            k=np.arange(n, dtype=np.int64), v=rng.normal(size=n)
        )
        right = Table.from_arrays(
            k=np.arange(n, dtype=np.int64), w=rng.normal(size=n)
        )
        engine_off.register(left, "big_l")
        engine_off.register(right, "big_r")
        sql = (
            "SELECT SUM(l.v + r.w) AS s "
            "FROM big_l l JOIN big_r r ON l.k = r.k"
        )
        plan = engine_on.plan(sql)
        joins = [n for n in _walk(plan) if isinstance(n, Join)]
        assert joins and joins[0].strategy == "merge"
        assert _rows(engine_off.query(sql)) == _rows(engine_on.query(sql))
