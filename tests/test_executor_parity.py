"""Bit-identical parity of parallel backends, and table-cache behavior.

The executor's contract is that a :class:`ProcessPoolBackend` changes only
wall-clock time, never results: forest probabilities, dataset collects and
wide tables must match a :class:`SerialBackend` run bit for bit — including
under injected faults, whose decisions are keyed by task id rather than by
submission order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ExecutorConfig
from repro.dataplat.blockstore import BlockStore, TableCache
from repro.dataplat.catalog import Catalog
from repro.dataplat.dataset import Dataset
from repro.dataplat.executor import (
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
    resolve_backend,
)
from repro.dataplat.resilience import (
    FaultInjector,
    FaultPolicy,
    RetryPolicy,
    TaskRuntime,
)
from repro.dataplat.table import Table
from repro.features import WideTableBuilder
from repro.ml.forest import OneVsRestForest, RandomForestClassifier


@pytest.fixture(scope="module")
def pool():
    backend = ProcessPoolBackend(max_workers=2)
    yield backend
    backend.close()


def _make_xy(n=300, d=8, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    y = (rng.random(n) < 1 / (1 + np.exp(-2.0 * x[:, 0]))).astype(np.int64)
    return x, y


def _calls_table(n=240, seed=1):
    rng = np.random.default_rng(seed)
    return Table.from_arrays(
        imsi=rng.integers(0, 40, size=n),
        dur=rng.integers(0, 100, size=n),
    )


def _double_dur(table: Table) -> Table:
    """Top-level map fn: process backends pickle tasks by name."""
    return table.with_column("dur", np.asarray(table["dur"]) * 2)


def _long_calls(table: Table) -> np.ndarray:
    return np.asarray(table["dur"]) > 20


def _grouped(table: Table, runtime=None) -> Table:
    return (
        Dataset.from_table(table, num_partitions=3, runtime=runtime)
        .map_partitions(_double_dur, table.schema, op="double")
        .filter(_long_calls)
        .group_by_key("imsi", {"total": ("sum", "dur"), "n": ("count", "dur")})
    )


class TestForestParity:
    def test_fit_predict_bit_identical(self, pool):
        x, y = _make_xy()
        weights = np.linspace(0.5, 2.0, len(y))
        serial = RandomForestClassifier(n_trees=7, seed=3).fit(
            x, y, sample_weight=weights, backend=SerialBackend()
        )
        parallel = RandomForestClassifier(n_trees=7, seed=3).fit(
            x, y, sample_weight=weights, backend=pool
        )
        legacy = RandomForestClassifier(n_trees=7, seed=3).fit(
            x, y, sample_weight=weights
        )
        p_serial = serial.predict_proba(x)
        assert np.array_equal(p_serial, parallel.predict_proba(x, backend=pool))
        assert np.array_equal(p_serial, parallel.predict_proba(x))
        assert np.array_equal(p_serial, legacy.predict_proba(x))
        assert np.array_equal(
            serial.feature_importances_, parallel.feature_importances_
        )
        assert np.array_equal(serial.rank(x), parallel.rank(x))

    def test_one_vs_rest_parity(self, pool):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(200, 5))
        y = rng.integers(0, 3, size=200)
        serial = OneVsRestForest(n_classes=3, n_trees=4, seed=2).fit(
            x, y, backend=SerialBackend()
        )
        parallel = OneVsRestForest(n_classes=3, n_trees=4, seed=2).fit(
            x, y, backend=pool
        )
        assert np.array_equal(serial.predict_proba(x), parallel.predict_proba(x))
        assert np.array_equal(serial.predict(x), parallel.predict(x))

    def test_fitted_forest_travels_without_backend(self, pool):
        import pickle

        x, y = _make_xy(n=80, d=4)
        model = RandomForestClassifier(n_trees=3, seed=0, backend=pool).fit(x, y)
        clone = pickle.loads(pickle.dumps(model))
        assert clone._backend is None
        assert np.array_equal(model.predict_proba(x), clone.predict_proba(x))


class TestDatasetParity:
    def test_collect_map_filter_group(self, pool):
        table = _calls_table()
        serial = _grouped(table).collect(backend=SerialBackend())
        parallel = _grouped(table).collect(backend=pool)
        assert serial == parallel

    def test_join_parity(self, pool):
        left = _calls_table(seed=2)
        right = Table.from_arrays(
            imsi=np.arange(40), plan=np.arange(40) % 3
        )
        def joined():
            return Dataset.from_table(left, 3).join(
                Dataset.from_table(right, 2), on="imsi", num_partitions=3
            )
        assert joined().collect(backend=SerialBackend()) == joined().collect(
            backend=pool
        )

    def test_parity_under_injected_faults(self, pool):
        table = _calls_table(seed=7)
        policy = FaultPolicy(task_failure_rate=0.3, task_slow_rate=0.2)

        def run(backend):
            runtime = TaskRuntime(
                retry_policy=RetryPolicy(max_attempts=6),
                injector=FaultInjector(policy, seed=13),
            )
            return _grouped(table, runtime=runtime).collect(backend=backend)

        assert run(SerialBackend()) == run(pool)

    def test_unpicklable_fn_falls_back_in_process(self):
        backend = ProcessPoolBackend(max_workers=2)
        table = _calls_table(seed=9)
        threshold = 30
        ds = Dataset.from_table(table, 3).filter(
            lambda t: np.asarray(t["dur"]) > threshold  # closure: unpicklable task
        )
        out = ds.collect(backend=backend)
        expected = table.mask(np.asarray(table["dur"]) > threshold)
        assert out == expected
        assert backend.fallbacks > 0
        backend.close()


class TestWideTableParity:
    def test_prefetch_matches_serial_builds(self, tiny_world, pool):
        months = [2, 3]
        categories = ("F1", "F2", "F3")
        lazy = WideTableBuilder(tiny_world, seed=0)
        warmed = WideTableBuilder(tiny_world, seed=0).prefetch(
            months, categories, pool
        )
        for month in months:
            a = lazy.features(month, categories)
            b = warmed.features(month, categories)
            assert a.names == b.names
            assert np.array_equal(a.imsi, b.imsi)
            assert np.array_equal(a.values, b.values)

    def test_prefetch_skips_unfitted_supervised_families(self, tiny_world):
        builder = WideTableBuilder(tiny_world, seed=0)
        builder.prefetch([2], ("F1", "F7", "F9"), SerialBackend())
        assert ("F1", 2) in builder._cache
        assert ("F7", 2) not in builder._cache
        assert ("F9", 2) not in builder._cache


class TestBackendConfig:
    def test_env_selects_process_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "3")
        cfg = ExecutorConfig.from_env()
        assert cfg.backend == "process"
        assert cfg.effective_workers == 3
        backend = make_backend(cfg)
        assert backend.parallelism == 3
        backend.close()

    def test_env_backend_override_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_WORKERS", "4")
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        cfg = ExecutorConfig.from_env()
        assert cfg.backend == "serial"
        assert make_backend(cfg).parallelism == 1

    def test_resolve_accepts_strings_and_instances(self):
        assert resolve_backend("serial").parallelism == 1
        backend = SerialBackend()
        assert resolve_backend(backend) is backend


class TestTableCache:
    def test_hit_miss_counters(self):
        cache = TableCache(max_bytes=1000)
        assert cache.get("a") is None
        cache.put("a", "va", 10)
        assert cache.get("a") == "va"
        assert cache.health.cache_misses == 1
        assert cache.health.cache_hits == 1
        assert cache.health.cache_hit_rate == 0.5

    def test_lru_eviction_respects_budget(self):
        cache = TableCache(max_bytes=100)
        cache.put("a", 1, 40)
        cache.put("b", 2, 40)
        assert cache.get("a") == 1  # now most-recently used
        cache.put("c", 3, 40)  # evicts b, the LRU entry
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.current_bytes <= cache.max_bytes
        assert cache.health.cache_evictions == 1

    def test_oversized_entry_never_admitted(self):
        cache = TableCache(max_bytes=50)
        cache.put("big", 1, 51)
        assert "big" not in cache
        assert len(cache) == 0

    def test_put_replaces_stale_entry(self):
        cache = TableCache(max_bytes=100)
        cache.put("a", "old", 30)
        cache.put("a", "new", 60)
        assert cache.peek("a") == "new"
        assert cache.current_bytes == 60


class TestCatalogCache:
    @pytest.fixture
    def table(self):
        return Table.from_arrays(
            imsi=np.arange(50), balance=np.linspace(0, 1, 50)
        )

    def test_repeated_scan_hits(self, table):
        catalog = Catalog()
        catalog.save(table, "t")
        catalog.clear_cache()
        before = catalog.store.health.cache_hits
        catalog.load("t")  # cold: decode both column chunks, then cache
        catalog.load("t")  # warm
        catalog.load("t")
        # v2 caches per column chunk: 2 warm loads x 2 columns.
        assert catalog.store.health.cache_hits - before == 4
        assert catalog.store.health.cache_hit_rate > 0

    def test_overwrite_refreshes_cache(self, table):
        catalog = Catalog()
        catalog.save(table, "t")
        assert catalog.load("t") == table
        updated = table.with_column("balance", np.zeros(50))
        catalog.save(updated, "t")
        assert catalog.load("t") == updated

    def test_corruption_invalidates_cached_table(self, table):
        catalog = Catalog()
        catalog.save(table, "t")
        catalog.load("t")
        [path] = [
            p
            for p in catalog.store.list_files("/warehouse/default/t/__all__/")
            if p.rsplit("/", 1)[-1].startswith("imsi.")
        ]
        assert path in catalog.table_cache
        status = catalog.store.status(path)
        catalog.store.corrupt_block(path, 0, status.blocks[0].replicas[0])
        # The cached decode may predate the corruption; it must not mask it.
        assert path not in catalog.table_cache
        assert catalog.load("t") == table  # healthy replica heals the read

    def test_drop_evicts_cache(self, table):
        catalog = Catalog()
        catalog.save(table, "t")
        catalog.load("t")
        chunks = catalog.partition_files("t")
        catalog.drop("t")
        assert not any(path in catalog.table_cache for path in chunks)
        assert chunks  # the partition had backing files before the drop

    def test_temp_views_survive_clear_cache(self, table):
        catalog = Catalog()
        catalog.register_temp(table, "tv")
        catalog.clear_cache()
        assert catalog.load("tv") == table
