"""Unit tests for repro.dataplat.schema."""

import numpy as np
import pytest

from repro.dataplat.schema import Column, ColumnType, Schema
from repro.errors import SchemaError


class TestColumnType:
    def test_dtype_mapping(self):
        assert ColumnType.INT.dtype == np.dtype(np.int64)
        assert ColumnType.FLOAT.dtype == np.dtype(np.float64)
        assert ColumnType.BOOL.dtype == np.dtype(np.bool_)
        assert ColumnType.STRING.dtype == np.dtype(object)

    def test_infer_int(self):
        assert ColumnType.infer(np.array([1, 2])) is ColumnType.INT

    def test_infer_unsigned_is_int(self):
        assert ColumnType.infer(np.array([1, 2], dtype=np.uint32)) is ColumnType.INT

    def test_infer_float(self):
        assert ColumnType.infer(np.array([1.5])) is ColumnType.FLOAT

    def test_infer_bool(self):
        assert ColumnType.infer(np.array([True])) is ColumnType.BOOL

    def test_infer_string_unicode(self):
        assert ColumnType.infer(np.array(["a"])) is ColumnType.STRING

    def test_infer_string_object(self):
        arr = np.array(["a"], dtype=object)
        assert ColumnType.infer(arr) is ColumnType.STRING

    def test_infer_rejects_complex(self):
        with pytest.raises(SchemaError):
            ColumnType.infer(np.array([1j]))


class TestColumn:
    def test_valid_names(self):
        Column("a", ColumnType.INT)
        Column("call_dur_2", ColumnType.FLOAT)
        Column("t.qualified", ColumnType.INT)  # SQL-internal form

    @pytest.mark.parametrize("name", ["", "a b", "x-y", "a$"])
    def test_invalid_names(self, name):
        with pytest.raises(SchemaError):
            Column(name, ColumnType.INT)

    def test_cast_coerces_dtype(self):
        col = Column("x", ColumnType.FLOAT)
        out = col.cast([1, 2, 3])
        assert out.dtype == np.float64

    def test_cast_string_to_object(self):
        col = Column("x", ColumnType.STRING)
        out = col.cast(np.array(["a", "b"]))
        assert out.dtype == object

    def test_cast_failure_raises(self):
        col = Column("x", ColumnType.INT)
        with pytest.raises(SchemaError):
            col.cast(np.array(["not-an-int"]))


class TestSchema:
    def test_of_builder(self):
        s = Schema.of(a="int", b="float", c="string", d="bool")
        assert s.names == ("a", "b", "c", "d")
        assert s["b"].ctype is ColumnType.FLOAT

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", ColumnType.INT), Column("a", ColumnType.INT)])

    def test_contains_and_getitem(self):
        s = Schema.of(a="int")
        assert "a" in s
        assert "b" not in s
        with pytest.raises(SchemaError):
            s["b"]

    def test_select_preserves_order(self):
        s = Schema.of(a="int", b="float", c="bool")
        assert s.select(["c", "a"]).names == ("c", "a")

    def test_rename(self):
        s = Schema.of(a="int", b="float")
        out = s.rename({"a": "z"})
        assert out.names == ("z", "b")
        assert out["z"].ctype is ColumnType.INT

    def test_concat(self):
        s = Schema.of(a="int").concat(Schema.of(b="float"))
        assert s.names == ("a", "b")

    def test_concat_collision_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of(a="int").concat(Schema.of(a="float"))

    def test_equality_and_hash(self):
        assert Schema.of(a="int") == Schema.of(a="int")
        assert Schema.of(a="int") != Schema.of(a="float")
        assert hash(Schema.of(a="int")) == hash(Schema.of(a="int"))

    def test_len_and_iter(self):
        s = Schema.of(a="int", b="float")
        assert len(s) == 2
        assert [c.name for c in s] == ["a", "b"]
