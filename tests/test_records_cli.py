"""Tests for the vendor record streams + ETL bridge, and the CLI."""

import numpy as np
import pytest

from repro.datagen.records import (
    VENDOR_B_CS_FIELDS,
    adapt_vendor_b_cs,
    cs_kpi_etl_job,
    table_records,
    vendor_b_cs_records,
)
from repro.dataplat.catalog import Catalog
from repro.errors import ETLError
from repro.__main__ import COMMANDS, build_parser, main


class TestRecordStreams:
    def test_table_records_round_trip(self, tiny_world):
        table = tiny_world.month(1).tables["cs_kpi"]
        records = list(table_records(table))
        assert len(records) == table.num_rows
        assert records[0]["imsi"] == table["imsi"][0]
        assert set(records[0]) == set(table.schema.names)

    def test_vendor_b_renames_and_rescales(self, tiny_world, rng):
        table = tiny_world.month(1).tables["cs_kpi"]
        record = next(vendor_b_cs_records(table, rng, malformed_fraction=0.0))
        assert "SUBSCRIBER_ID" in record
        assert "imsi" not in record
        # Percent / milliseconds conventions.
        assert record["DROP_RATE_PCT"] == pytest.approx(
            float(table["perceived_call_drop_rate"][0]) * 100
        )
        assert record["CONN_DELAY_MS"] == pytest.approx(
            float(table["e2e_conn_delay"][0]) * 1000
        )

    def test_malformed_fraction_validated(self, tiny_world, rng):
        table = tiny_world.month(1).tables["cs_kpi"]
        with pytest.raises(ETLError):
            list(vendor_b_cs_records(table, rng, malformed_fraction=1.5))

    def test_adapter_inverts_vendor_dialect(self, tiny_world, rng):
        table = tiny_world.month(1).tables["cs_kpi"]
        vendor = next(vendor_b_cs_records(table, rng, malformed_fraction=0.0))
        adapted = adapt_vendor_b_cs(vendor)
        assert adapted is not None
        assert adapted["perceived_call_drop_rate"] == pytest.approx(
            float(table["perceived_call_drop_rate"][0])
        )
        assert adapted["e2e_conn_delay"] == pytest.approx(
            float(table["e2e_conn_delay"][0])
        )

    def test_adapter_drops_malformed(self):
        assert adapt_vendor_b_cs({"CALL_SUCC_RATE": 0.9}) is None

    def test_full_etl_round_trip(self, tiny_world, rng):
        """vendor export → adapter → ETL → catalog ≈ the original table."""
        table = tiny_world.month(1).tables["cs_kpi"]
        catalog = Catalog()
        job = cs_kpi_etl_job()
        stats = job.run(
            vendor_b_cs_records(table, rng, malformed_fraction=0.02),
            catalog,
        )
        assert stats.rows_read == table.num_rows
        assert stats.rows_loaded >= 0.95 * table.num_rows
        loaded = catalog.load("cs_kpi")
        # The adapter restored the standard schema and units.
        assert set(loaded.schema.names) == set(table.schema.names)
        original = {
            int(i): float(v)
            for i, v in zip(table["imsi"], table["perceived_call_drop_rate"])
        }
        for imsi, value in zip(
            loaded["imsi"], loaded["perceived_call_drop_rate"]
        ):
            assert value == pytest.approx(original[int(imsi)], abs=1e-9)

    def test_field_map_is_bijective(self):
        assert len(set(VENDOR_B_CS_FIELDS.values())) == len(VENDOR_B_CS_FIELDS)


class TestCLI:
    def test_parser_lists_all_commands(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.population == 3000

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for command in COMMANDS:
            if command != "list":
                assert command in out

    def test_table1_runs(self, capsys):
        assert main(["table1", "--population", "600", "--months", "4"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "600" in out

    def test_fig5_runs(self, capsys):
        assert main(["fig5", "--population", "600", "--months", "3"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])
