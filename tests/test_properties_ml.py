"""Property-based tests (hypothesis) for the tree/forest/calibration layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml.calibration import IsotonicCalibrator
from repro.ml.forest import RandomForestClassifier
from repro.ml.preprocess import Standardizer
from repro.ml.tree import DecisionTree

features = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


@st.composite
def classification_data(draw, min_rows=20, max_rows=120):
    n = draw(st.integers(min_rows, max_rows))
    d = draw(st.integers(1, 4))
    x = draw(
        hnp.arrays(np.float64, (n, d), elements=features)
    )
    y = draw(hnp.arrays(np.int64, n, elements=st.integers(0, 1)))
    y[0], y[1] = 0, 1  # both classes
    return x, y.astype(np.float64)


class TestTreeProperties:
    @given(classification_data())
    @settings(max_examples=30, deadline=None)
    def test_leaf_values_are_probabilities(self, data):
        x, y = data
        tree = DecisionTree(max_depth=6, min_samples_leaf=2).fit(x, y)
        predictions = tree.predict(x)
        assert np.all((predictions >= 0) & (predictions <= 1))

    @given(classification_data())
    @settings(max_examples=30, deadline=None)
    def test_apply_and_predict_agree(self, data):
        x, y = data
        tree = DecisionTree(max_depth=5, min_samples_leaf=2).fit(x, y)
        values = tree.leaf_values()
        assert np.array_equal(tree.predict(x), values[tree.apply(x)])

    @given(classification_data())
    @settings(max_examples=30, deadline=None)
    def test_importances_nonnegative(self, data):
        x, y = data
        tree = DecisionTree(max_depth=5, min_samples_leaf=2).fit(x, y)
        assert np.all(tree.feature_importances_ >= 0)

    @given(classification_data())
    @settings(max_examples=20, deadline=None)
    def test_training_fit_beats_base_rate(self, data):
        """On its own training data a deep tree never does worse than the
        constant predictor (in squared error)."""
        x, y = data
        tree = DecisionTree(max_depth=10, min_samples_leaf=1).fit(x, y)
        predictions = tree.predict(x)
        mse_tree = np.mean((predictions - y) ** 2)
        mse_const = np.mean((y.mean() - y) ** 2)
        assert mse_tree <= mse_const + 1e-12


class TestForestProperties:
    @given(classification_data(min_rows=30))
    @settings(max_examples=15, deadline=None)
    def test_probabilities_bounded_and_deterministic(self, data):
        x, y = data
        forest = RandomForestClassifier(n_trees=4, min_samples_leaf=2, seed=9)
        forest.fit(x, y)
        p1 = forest.predict_proba(x)
        p2 = forest.predict_proba(x)
        assert np.array_equal(p1, p2)
        assert np.all((p1 >= 0) & (p1 <= 1))

    @given(classification_data(min_rows=30))
    @settings(max_examples=15, deadline=None)
    def test_importances_normalized(self, data):
        x, y = data
        forest = RandomForestClassifier(n_trees=4, min_samples_leaf=2, seed=9)
        forest.fit(x, y)
        imp = forest.feature_importances_
        assert np.all(imp >= 0)
        assert imp.sum() == pytest.approx(1.0) or imp.sum() == 0.0


class TestCalibrationProperties:
    @given(
        hnp.arrays(
            np.float64, st.integers(5, 200), elements=st.floats(0, 1, allow_nan=False)
        ),
        st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_isotonic_output_monotone_in_score(self, scores, seed):
        rng = np.random.default_rng(seed)
        y = (rng.random(len(scores)) < scores).astype(float)
        calibrator = IsotonicCalibrator().fit(scores, y)
        grid = np.linspace(0, 1, 64)
        out = calibrator.transform(grid)
        assert np.all(np.diff(out) >= -1e-12)

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(5, 60), st.integers(1, 4)),
            elements=features,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_standardizer_round_trips_statistics(self, x):
        s = Standardizer().fit(x)
        z = s.transform(x)
        # Non-constant columns end up standardized; numerically-constant
        # ones (std at float-epsilon scale) collapse to ~0 instead of
        # amplifying cancellation noise.
        for j in range(x.shape[1]):
            col = x[:, j]
            if col.std() > 1e-12 * (abs(col.mean()) + 1.0):
                assert z[:, j].mean() == pytest.approx(0.0, abs=1e-7)
                assert z[:, j].std() == pytest.approx(1.0, abs=1e-7)
            else:
                assert np.all(np.abs(z[:, j]) < 1e-9)
