"""Tests for the SQL LIKE operator and distributed Dataset.group_by_key."""

import numpy as np
import pytest

from repro.dataplat import Dataset, SQLEngine, Table
from repro.errors import SQLSyntaxError


@pytest.fixture()
def engine() -> SQLEngine:
    eng = SQLEngine()
    eng.register(
        Table.from_arrays(
            name=np.array(
                ["alice", "bob", "carol", "alan", "bo"], dtype=object
            ),
            v=np.arange(5),
        ),
        "t",
    )
    return eng


class TestLike:
    def test_percent_wildcard(self, engine):
        out = engine.query("SELECT name FROM t WHERE name LIKE 'a%'")
        assert sorted(out["name"].tolist()) == ["alan", "alice"]

    def test_underscore_wildcard(self, engine):
        out = engine.query("SELECT name FROM t WHERE name LIKE 'b_b'")
        assert out["name"].tolist() == ["bob"]

    def test_contains(self, engine):
        out = engine.query("SELECT name FROM t WHERE name LIKE '%o%'")
        assert sorted(out["name"].tolist()) == ["bo", "bob", "carol"]

    def test_not_like(self, engine):
        out = engine.query("SELECT name FROM t WHERE name NOT LIKE '%o%'")
        assert sorted(out["name"].tolist()) == ["alan", "alice"]

    def test_exact_match_without_wildcards(self, engine):
        out = engine.query("SELECT name FROM t WHERE name LIKE 'bo'")
        assert out["name"].tolist() == ["bo"]

    def test_regex_metacharacters_escaped(self):
        eng = SQLEngine()
        eng.register(
            Table.from_arrays(s=np.array(["a.b", "axb"], dtype=object)), "t"
        )
        out = eng.query("SELECT s FROM t WHERE s LIKE 'a.b'")
        assert out["s"].tolist() == ["a.b"]

    def test_like_in_compound_predicate(self, engine):
        out = engine.query(
            "SELECT name FROM t WHERE name LIKE '%a%' AND v > 0"
        )
        assert sorted(out["name"].tolist()) == ["alan", "carol"]

    def test_like_requires_string_pattern(self, engine):
        with pytest.raises(SQLSyntaxError):
            engine.query("SELECT name FROM t WHERE name LIKE 5")

    def test_like_usable_on_search_logs(self, tiny_world):
        """The realistic use: grep porting-intent queries from search logs."""
        eng = SQLEngine()
        eng.register(tiny_world.month(5).tables["search_logs"], "logs")
        out = eng.query(
            "SELECT imsi FROM logs WHERE doc LIKE '%srch_t0_%'"
        )
        assert out.num_rows > 0


class TestDatasetGroupBy:
    @pytest.fixture()
    def dataset(self) -> Dataset:
        rng = np.random.default_rng(0)
        table = Table.from_arrays(
            k=rng.integers(0, 20, size=300),
            v=rng.normal(size=300),
        )
        return Dataset.from_table(table, num_partitions=5)

    def test_matches_single_node_group_by(self, dataset):
        distributed = dataset.group_by_key(
            "k", {"s": ("sum", "v"), "n": ("count", "v")}, num_partitions=3
        ).collect()
        local = dataset.collect().group_by(
            ["k"], {"s": ("sum", "v"), "n": ("count", "v")}
        )
        d = {
            int(k): (s, n)
            for k, s, n in zip(distributed["k"], distributed["s"], distributed["n"])
        }
        l = {
            int(k): (s, n)
            for k, s, n in zip(local["k"], local["s"], local["n"])
        }
        assert set(d) == set(l)
        for key in d:
            assert d[key][0] == pytest.approx(l[key][0])
            assert d[key][1] == l[key][1]

    def test_each_key_appears_once(self, dataset):
        out = dataset.group_by_key("k", {"n": ("count", "v")}).collect()
        keys = out["k"].tolist()
        assert len(keys) == len(set(keys))

    def test_lineage_records_shuffle(self, dataset):
        ds = dataset.group_by_key("k", {"n": ("count", "v")})
        chain = ds.lineage()
        assert any(op.startswith("shuffle") for op in chain)
        assert any(op.startswith("group_by") for op in chain)

    def test_empty_partitions_tolerated(self):
        table = Table.from_arrays(k=np.array([1, 1]), v=np.array([1.0, 2.0]))
        ds = Dataset.from_table(table, num_partitions=2)
        out = ds.group_by_key("k", {"s": ("sum", "v")}, num_partitions=8).collect()
        assert out.num_rows == 1
        assert out["s"].tolist() == [3.0]


class TestUnionAll:
    @pytest.fixture()
    def engine2(self) -> SQLEngine:
        eng = SQLEngine()
        eng.register(
            Table.from_arrays(k=np.array([1, 2]), v=np.array([1.0, 2.0])), "a"
        )
        eng.register(
            Table.from_arrays(k=np.array([3]), v=np.array([3.0])), "b"
        )
        return eng

    def test_concatenates_rows(self, engine2):
        out = engine2.query("SELECT k, v FROM a UNION ALL SELECT k, v FROM b")
        assert out["k"].tolist() == [1, 2, 3]

    def test_three_way_union(self, engine2):
        out = engine2.query(
            "SELECT k FROM a UNION ALL SELECT k FROM b UNION ALL SELECT k FROM a"
        )
        assert sorted(out["k"].tolist()) == [1, 1, 2, 2, 3]

    def test_branches_keep_their_filters(self, engine2):
        out = engine2.query(
            "SELECT k FROM a WHERE v > 1 UNION ALL SELECT k FROM b"
        )
        assert sorted(out["k"].tolist()) == [2, 3]

    def test_aggregate_over_union_via_view(self, engine2):
        engine2.register(
            engine2.query("SELECT k, v FROM a UNION ALL SELECT k, v FROM b"),
            "all_rows",
        )
        out = engine2.query("SELECT SUM(v) AS s FROM all_rows")
        assert out["s"].tolist() == [6.0]

    def test_column_mismatch_rejected(self, engine2):
        from repro.errors import SQLAnalysisError

        with pytest.raises(SQLAnalysisError):
            engine2.query("SELECT k, v FROM a UNION ALL SELECT k FROM b")

    def test_union_requires_all_keyword(self, engine2):
        from repro.errors import SQLSyntaxError

        with pytest.raises(SQLSyntaxError):
            engine2.query("SELECT k FROM a UNION SELECT k FROM b")

    def test_monthly_partition_stitching(self, tiny_world):
        """The realistic use: one view over two monthly tables."""
        eng = SQLEngine()
        eng.register(tiny_world.month(1).tables["billing"], "billing_m1")
        eng.register(tiny_world.month(2).tables["billing"], "billing_m2")
        out = eng.query(
            "SELECT imsi, balance FROM billing_m1 "
            "UNION ALL SELECT imsi, balance FROM billing_m2"
        )
        assert out.num_rows == 2 * tiny_world.population.size


class TestMedian:
    def test_median_per_group(self):
        eng = SQLEngine()
        eng.register(
            Table.from_arrays(
                k=np.array([1, 1, 1, 2, 2]),
                v=np.array([1.0, 9.0, 5.0, 2.0, 4.0]),
            ),
            "t",
        )
        out = eng.query("SELECT k, MEDIAN(v) AS m FROM t GROUP BY k ORDER BY k")
        assert out["m"].tolist() == [5.0, 3.0]

    def test_global_median(self):
        eng = SQLEngine()
        eng.register(Table.from_arrays(v=np.array([3.0, 1.0, 2.0])), "t")
        out = eng.query("SELECT MEDIAN(v) AS m FROM t")
        assert out["m"].tolist() == [2.0]
