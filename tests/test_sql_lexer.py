"""Unit tests for the SQL lexer."""

import pytest

from repro.dataplat.sql.lexer import Token, TokenType, tokenize
from repro.errors import SQLSyntaxError


def kinds(sql: str) -> list[tuple[TokenType, str]]:
    return [(t.ttype, t.value) for t in tokenize(sql) if t.ttype is not TokenType.EOF]


class TestTokens:
    def test_keywords_are_case_insensitive(self):
        out = kinds("select From WHERE")
        assert out == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.KEYWORD, "WHERE"),
        ]

    def test_identifiers_keep_case(self):
        out = kinds("MyTable my_col")
        assert out == [
            (TokenType.IDENT, "MyTable"),
            (TokenType.IDENT, "my_col"),
        ]

    def test_integer_and_float_numbers(self):
        out = kinds("1 2.5 .5 1e3 2.5E-2")
        assert [v for _, v in out] == ["1", "2.5", ".5", "1e3", "2.5E-2"]
        assert all(t is TokenType.NUMBER for t, _ in out)

    def test_string_literal(self):
        out = kinds("'hello world'")
        assert out == [(TokenType.STRING, "hello world")]

    def test_string_escape(self):
        out = kinds("'it''s'")
        assert out == [(TokenType.STRING, "it's")]

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_operators(self):
        out = kinds("= <> != <= >= < > + - * / %")
        assert all(t is TokenType.OPERATOR for t, _ in out)
        assert [v for _, v in out] == [
            "=", "<>", "!=", "<=", ">=", "<", ">", "+", "-", "*", "/", "%",
        ]

    def test_two_char_operators_win(self):
        out = kinds("a<=b")
        assert (TokenType.OPERATOR, "<=") in out

    def test_punctuation(self):
        out = kinds("(a, b.c)")
        values = [v for _, v in out]
        assert values == ["(", "a", ",", "b", ".", "c", ")"]

    def test_comments_skipped(self):
        out = kinds("SELECT -- a comment\n x")
        assert out == [(TokenType.KEYWORD, "SELECT"), (TokenType.IDENT, "x")]

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError) as err:
            tokenize("SELECT @")
        assert err.value.position == 7

    def test_eof_token_present(self):
        toks = tokenize("x")
        assert toks[-1].ttype is TokenType.EOF

    def test_is_keyword_helper(self):
        tok = Token(TokenType.KEYWORD, "SELECT", 0)
        assert tok.is_keyword("SELECT")
        assert not tok.is_keyword("FROM")
