"""Tests for model persistence (ml.persistence)."""

import numpy as np
import pytest

from repro.dataplat.catalog import Catalog
from repro.errors import ModelError, NotFittedError
from repro.ml.forest import RandomForestClassifier
from repro.ml.persistence import (
    forest_from_bytes,
    forest_to_bytes,
    load_forest,
    save_forest,
    tree_from_arrays,
    tree_to_arrays,
)
from repro.ml.tree import DecisionTree


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(600, 7))
    y = (rng.random(600) < 1 / (1 + np.exp(-2 * x[:, 0] + x[:, 1]))).astype(int)
    forest = RandomForestClassifier(n_trees=6, min_samples_leaf=5, seed=3)
    forest.fit(x, y)
    return forest, x


class TestTreeRoundTrip:
    def test_predictions_identical(self, fitted):
        forest, x = fitted
        tree = forest._trees[0]
        rebuilt = tree_from_arrays(tree_to_arrays(tree))
        assert np.array_equal(tree.predict(x), rebuilt.predict(x))
        assert np.array_equal(tree.apply(x), rebuilt.apply(x))

    def test_importances_preserved(self, fitted):
        forest, _ = fitted
        tree = forest._trees[0]
        rebuilt = tree_from_arrays(tree_to_arrays(tree))
        assert np.array_equal(
            tree.feature_importances_, rebuilt.feature_importances_
        )

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            tree_to_arrays(DecisionTree())


class TestForestRoundTrip:
    def test_scores_identical(self, fitted):
        forest, x = fitted
        rebuilt = forest_from_bytes(forest_to_bytes(forest))
        assert np.array_equal(forest.predict_proba(x), rebuilt.predict_proba(x))

    def test_config_preserved(self, fitted):
        forest, _ = fitted
        rebuilt = forest_from_bytes(forest_to_bytes(forest))
        assert rebuilt.n_trees == forest.n_trees
        assert rebuilt.min_samples_leaf == forest.min_samples_leaf
        assert rebuilt.seed == forest.seed

    def test_importances_identical(self, fitted):
        forest, _ = fitted
        rebuilt = forest_from_bytes(forest_to_bytes(forest))
        assert np.allclose(
            forest.feature_importances_, rebuilt.feature_importances_
        )

    def test_feature_width_enforced_after_load(self, fitted):
        forest, _ = fitted
        rebuilt = forest_from_bytes(forest_to_bytes(forest))
        with pytest.raises(ModelError):
            rebuilt.predict_proba(np.zeros((2, 99)))

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            forest_to_bytes(RandomForestClassifier())

    def test_garbage_rejected(self):
        import io

        buf = io.BytesIO()
        np.savez(buf, __magic__=np.asarray(["nope"], dtype=str))
        with pytest.raises(ModelError):
            forest_from_bytes(buf.getvalue())


class TestCatalogStorage:
    def test_save_load_through_block_store(self, fitted):
        forest, x = fitted
        catalog = Catalog()
        save_forest(forest, catalog, "churn_2014_06", database="default")
        assert catalog.store.exists("/models/default/churn_2014_06.npz")
        rebuilt = load_forest(catalog, "churn_2014_06")
        assert np.array_equal(forest.predict_proba(x), rebuilt.predict_proba(x))

    def test_model_survives_datanode_failure(self, fitted):
        forest, x = fitted
        catalog = Catalog()
        save_forest(forest, catalog, "m")
        catalog.store.kill_node(0)
        rebuilt = load_forest(catalog, "m")
        assert np.array_equal(forest.predict_proba(x), rebuilt.predict_proba(x))
