"""Unit tests for repro.dataplat.table."""

import numpy as np
import pytest

from repro.dataplat.schema import Schema
from repro.dataplat.table import Table
from repro.errors import SchemaError


@pytest.fixture()
def sample() -> Table:
    return Table.from_arrays(
        imsi=np.array([1, 2, 3, 4]),
        dur=np.array([10.0, 20.0, 5.0, 7.5]),
        kind=np.array(["a", "b", "a", "c"], dtype=object),
        vip=np.array([True, False, False, True]),
    )


class TestConstruction:
    def test_from_arrays_infers_schema(self, sample):
        assert sample.schema.names == ("imsi", "dur", "kind", "vip")
        assert sample.num_rows == 4
        assert sample.num_columns == 4

    def test_from_rows(self):
        schema = Schema.of(a="int", b="string")
        t = Table.from_rows(schema, [(1, "x"), (2, "y")])
        assert t["a"].tolist() == [1, 2]
        assert t["b"].tolist() == ["x", "y"]

    def test_from_rows_wrong_width(self):
        schema = Schema.of(a="int", b="string")
        with pytest.raises(SchemaError):
            Table.from_rows(schema, [(1,)])

    def test_empty(self):
        t = Table.empty(Schema.of(a="int"))
        assert t.num_rows == 0
        assert t["a"].dtype == np.int64

    def test_missing_column_rejected(self):
        with pytest.raises(SchemaError):
            Table(Schema.of(a="int", b="int"), {"a": [1]})

    def test_extra_column_rejected(self):
        with pytest.raises(SchemaError):
            Table(Schema.of(a="int"), {"a": [1], "b": [2]})

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table(Schema.of(a="int", b="int"), {"a": [1], "b": [1, 2]})

    def test_2d_column_rejected(self):
        with pytest.raises(SchemaError):
            Table(Schema.of(a="int"), {"a": np.zeros((2, 2), dtype=np.int64)})


class TestAccess:
    def test_unknown_column(self, sample):
        with pytest.raises(SchemaError):
            sample.column("nope")

    def test_rows_iteration(self, sample):
        rows = list(sample.rows())
        assert rows[0] == (1, 10.0, "a", True)
        assert len(rows) == 4

    def test_equality(self, sample):
        other = Table.from_arrays(
            imsi=sample["imsi"],
            dur=sample["dur"],
            kind=sample["kind"],
            vip=sample["vip"],
        )
        assert sample == other

    def test_inequality_different_values(self, sample):
        other = sample.with_column("dur", np.array([1.0, 2.0, 3.0, 4.0]))
        assert sample != other


class TestTransforms:
    def test_select(self, sample):
        out = sample.select(["kind", "imsi"])
        assert out.schema.names == ("kind", "imsi")

    def test_rename(self, sample):
        out = sample.rename({"dur": "duration"})
        assert "duration" in out.schema
        assert out["duration"].tolist() == sample["dur"].tolist()

    def test_with_column_append_and_replace(self, sample):
        appended = sample.with_column("extra", np.arange(4))
        assert appended.num_columns == 5
        replaced = sample.with_column("dur", np.zeros(4))
        assert replaced.num_columns == 4
        assert replaced["dur"].sum() == 0.0

    def test_drop(self, sample):
        out = sample.drop(["kind", "vip"])
        assert out.schema.names == ("imsi", "dur")

    def test_drop_unknown_raises(self, sample):
        with pytest.raises(SchemaError):
            sample.drop(["nope"])

    def test_take_reorders(self, sample):
        out = sample.take(np.array([3, 0]))
        assert out["imsi"].tolist() == [4, 1]

    def test_mask(self, sample):
        out = sample.mask(sample["dur"] > 8)
        assert out["imsi"].tolist() == [1, 2]

    def test_mask_wrong_length(self, sample):
        with pytest.raises(SchemaError):
            sample.mask(np.array([True]))

    def test_filter_callable(self, sample):
        out = sample.filter(lambda t: t["kind"] == "a")
        assert out["imsi"].tolist() == [1, 3]

    def test_head(self, sample):
        assert sample.head(2).num_rows == 2
        assert sample.head(99).num_rows == 4

    def test_sort_by_single(self, sample):
        out = sample.sort_by(["dur"])
        assert out["dur"].tolist() == sorted(sample["dur"].tolist())

    def test_sort_by_descending(self, sample):
        out = sample.sort_by(["dur"], descending=True)
        assert out["dur"].tolist() == sorted(sample["dur"].tolist(), reverse=True)

    def test_sort_by_multi_is_stable(self):
        t = Table.from_arrays(
            k=np.array([1, 1, 0, 0]), v=np.array([2, 1, 2, 1])
        )
        out = t.sort_by(["k", "v"])
        assert list(zip(out["k"].tolist(), out["v"].tolist())) == [
            (0, 1), (0, 2), (1, 1), (1, 2),
        ]

    def test_concat_rows(self, sample):
        out = sample.concat_rows(sample)
        assert out.num_rows == 8

    def test_concat_rows_schema_mismatch(self, sample):
        with pytest.raises(SchemaError):
            sample.concat_rows(sample.select(["imsi"]))


class TestJoin:
    def test_inner_join(self, sample):
        right = Table.from_arrays(imsi=np.array([1, 3, 9]), age=np.array([30, 40, 50]))
        out = sample.join(right, on=["imsi"])
        assert sorted(out["imsi"].tolist()) == [1, 3]
        assert "age" in out.schema

    def test_inner_join_duplicates_multiply(self):
        left = Table.from_arrays(k=np.array([1, 1]), a=np.array([1, 2]))
        right = Table.from_arrays(k=np.array([1, 1]), b=np.array([3, 4]))
        out = left.join(right, on=["k"])
        assert out.num_rows == 4

    def test_left_join_fills(self, sample):
        right = Table.from_arrays(imsi=np.array([1]), age=np.array([30]))
        out = sample.join(right, on=["imsi"], how="left")
        assert out.num_rows == 4
        by_imsi = dict(zip(out["imsi"].tolist(), out["age"].tolist()))
        assert by_imsi[1] == 30
        assert by_imsi[2] == 0  # numeric fill

    def test_left_join_string_fill(self):
        left = Table.from_arrays(k=np.array([1, 2]))
        right = Table.from_arrays(k=np.array([1]), s=np.array(["x"], dtype=object))
        out = left.join(right, on=["k"], how="left")
        by_k = dict(zip(out["k"].tolist(), out["s"].tolist()))
        assert by_k[2] == ""

    def test_join_name_collision_suffix(self):
        left = Table.from_arrays(k=np.array([1]), v=np.array([1.0]))
        right = Table.from_arrays(k=np.array([1]), v=np.array([2.0]))
        out = left.join(right, on=["k"])
        assert "v" in out.schema and "v_r" in out.schema

    def test_multi_key_join(self):
        left = Table.from_arrays(a=np.array([1, 1]), b=np.array([1, 2]), x=np.array([10, 20]))
        right = Table.from_arrays(a=np.array([1]), b=np.array([2]), y=np.array([99]))
        out = left.join(right, on=["a", "b"])
        assert out.num_rows == 1
        assert out["x"].tolist() == [20]

    def test_unsupported_join_kind(self, sample):
        with pytest.raises(SchemaError):
            sample.join(sample, on=["imsi"], how="outer")


class TestGroupBy:
    def test_sum_and_count(self):
        t = Table.from_arrays(k=np.array([1, 1, 2]), v=np.array([1.0, 2.0, 3.0]))
        g = t.group_by(["k"], {"s": ("sum", "v"), "n": ("count", "v")})
        by_k = {k: (s, n) for k, s, n in zip(g["k"], g["s"], g["n"])}
        assert by_k[1] == (3.0, 2)
        assert by_k[2] == (3.0, 1)

    def test_mean_min_max(self):
        t = Table.from_arrays(k=np.array([1, 1]), v=np.array([2.0, 4.0]))
        g = t.group_by(["k"], {"m": ("mean", "v"), "lo": ("min", "v"), "hi": ("max", "v")})
        assert g["m"].tolist() == [3.0]
        assert g["lo"].tolist() == [2.0]
        assert g["hi"].tolist() == [4.0]

    def test_count_distinct(self):
        t = Table.from_arrays(k=np.array([1, 1, 1]), v=np.array([5, 5, 7]))
        g = t.group_by(["k"], {"d": ("count_distinct", "v")})
        assert g["d"].tolist() == [2]

    def test_first(self):
        t = Table.from_arrays(k=np.array([1, 1, 2]), v=np.array([9, 8, 7]))
        g = t.group_by(["k"], {"f": ("first", "v")})
        by_k = dict(zip(g["k"].tolist(), g["f"].tolist()))
        assert by_k[1] == 9
        assert by_k[2] == 7

    def test_multi_key(self):
        t = Table.from_arrays(
            a=np.array([1, 1, 2]), b=np.array(["x", "x", "y"], dtype=object),
            v=np.array([1.0, 1.0, 1.0]),
        )
        g = t.group_by(["a", "b"], {"n": ("count", "v")})
        assert g.num_rows == 2

    def test_no_keys_rejected(self):
        t = Table.from_arrays(v=np.array([1.0]))
        with pytest.raises(SchemaError):
            t.group_by([], {"n": ("count", "v")})

    def test_unknown_aggregate_rejected(self):
        t = Table.from_arrays(k=np.array([1]), v=np.array([1.0]))
        with pytest.raises(SchemaError):
            t.group_by(["k"], {"x": ("median", "v")})


class TestSerialization:
    def test_round_trip(self, sample):
        assert Table.from_bytes(sample.to_bytes()) == sample

    def test_round_trip_empty(self):
        t = Table.empty(Schema.of(a="int", s="string"))
        assert Table.from_bytes(t.to_bytes()) == t

    def test_round_trip_preserves_types(self, sample):
        out = Table.from_bytes(sample.to_bytes())
        assert out.schema == sample.schema


class TestJoinVectorizedParity:
    """The np.unique-based join must be bit-identical to the dict-bucket
    path it replaced — same pairs, same row order, same unmatched set."""

    @staticmethod
    def _random_tables(rng, trial):
        nl, nr = rng.integers(1, 40, size=2)
        kind = trial % 3
        if kind == 0:
            kl = rng.integers(0, 8, size=nl)
            kr = rng.integers(0, 8, size=nr)
        elif kind == 1:
            kl = rng.choice([0.25, 1.5, np.nan, 3.0], size=nl)
            kr = rng.choice([0.25, 1.5, np.nan, 3.0], size=nr)
        else:
            kl = np.asarray(rng.choice(list("abcde"), size=nl), dtype=object)
            kr = np.asarray(rng.choice(list("abcde"), size=nr), dtype=object)
        left = Table.from_arrays(
            k=kl, k2=rng.integers(0, 3, size=nl), lv=rng.normal(size=nl)
        )
        right = Table.from_arrays(
            k=kr, k2=rng.integers(0, 3, size=nr), rv=rng.normal(size=nr)
        )
        return left, right

    def test_indices_match_hashed_reference(self):
        from repro.dataplat.table import _join_indices, _join_indices_hashed

        rng = np.random.default_rng(7)
        for trial in range(200):
            left, right = self._random_tables(rng, trial)
            on = ["k"] if trial % 2 else ["k", "k2"]
            how = "left" if trial % 4 < 2 else "inner"
            got = _join_indices(left, right, on, how)
            want = _join_indices_hashed(left, right, on, how)
            for g, w in zip(got, want):
                assert np.array_equal(g, w), (trial, on, how)

    def test_nan_keys_never_match(self):
        left = Table.from_arrays(
            k=np.array([np.nan, 1.0]), lv=np.array([10.0, 20.0])
        )
        right = Table.from_arrays(
            k=np.array([np.nan, 1.0]), rv=np.array([1.0, 2.0])
        )
        out = left.join(right, on=["k"], how="left")
        # Row 0 (NaN key) is unmatched -> padded; row 1 matches.
        assert out["rv"].tolist() == [2.0, 0.0]

    def test_mixed_type_keys_fall_back(self):
        # numpy cannot sort ints against strings; the dict fallback keeps
        # the old "never matches" behavior instead of raising.
        left = Table.from_arrays(k=np.array([1, 2]), lv=np.array([1.0, 2.0]))
        right = Table.from_arrays(
            k=np.asarray(["1", "2"], dtype=object), rv=np.array([9.0, 8.0])
        )
        out = left.join(right, on=["k"], how="left")
        assert out.num_rows == 2
        assert out["rv"].tolist() == [0.0, 0.0]
