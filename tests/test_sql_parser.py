"""Unit tests for the SQL parser."""

import pytest

from repro.dataplat.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Star,
    UnaryOp,
)
from repro.dataplat.sql.parser import parse
from repro.errors import SQLSyntaxError


class TestSelectList:
    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, Star)

    def test_qualified_star(self):
        stmt = parse("SELECT u.* FROM t u")
        star = stmt.items[0].expr
        assert isinstance(star, Star) and star.table == "u"

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y, c FROM t")
        assert [i.alias for i in stmt.items] == ["x", "y", None]

    def test_expressions(self):
        stmt = parse("SELECT a + b * 2 FROM t")
        expr = stmt.items[0].expr
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"


class TestFromAndJoins:
    def test_table_alias(self):
        stmt = parse("SELECT * FROM cdr c")
        assert stmt.table.name == "cdr"
        assert stmt.table.binding == "c"

    def test_qualified_table_name(self):
        stmt = parse("SELECT * FROM telco.cdr")
        assert stmt.table.name == "telco.cdr"

    def test_inner_join(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.k = b.k")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].kind == "inner"

    def test_left_join(self):
        stmt = parse("SELECT * FROM a LEFT JOIN b ON a.k = b.k")
        assert stmt.joins[0].kind == "left"

    def test_multiple_joins(self):
        stmt = parse(
            "SELECT * FROM a JOIN b ON a.k = b.k LEFT JOIN c ON a.k = c.k"
        )
        assert [j.kind for j in stmt.joins] == ["inner", "left"]

    def test_join_requires_on(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT * FROM a JOIN b")


class TestClauses:
    def test_where(self):
        stmt = parse("SELECT * FROM t WHERE a > 1 AND b = 'x'")
        assert isinstance(stmt.where, BinaryOp)
        assert stmt.where.op == "AND"

    def test_group_by_and_having(self):
        stmt = parse("SELECT k, COUNT(*) FROM t GROUP BY k HAVING COUNT(*) > 1")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by(self):
        stmt = parse("SELECT * FROM t ORDER BY a DESC, b ASC, c")
        assert [o.descending for o in stmt.order_by] == [True, False, False]

    def test_limit(self):
        assert parse("SELECT * FROM t LIMIT 5").limit == 5

    def test_limit_requires_number(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT * FROM t LIMIT x")

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT * FROM t garbage !")


class TestExpressions:
    def expr(self, text: str):
        return parse(f"SELECT {text} FROM t").items[0].expr

    def test_literals(self):
        assert self.expr("1") == Literal(1)
        assert self.expr("2.5") == Literal(2.5)
        assert self.expr("'s'") == Literal("s")
        assert self.expr("TRUE") == Literal(True)
        assert self.expr("NULL") == Literal(None)

    def test_negative_number(self):
        expr = self.expr("-3")
        assert isinstance(expr, UnaryOp) and expr.op == "-"

    def test_qualified_column(self):
        assert self.expr("u.age") == ColumnRef("age", table="u")

    def test_function_call(self):
        expr = self.expr("SUM(x)")
        assert isinstance(expr, FunctionCall)
        assert expr.name == "SUM"

    def test_count_star(self):
        expr = self.expr("COUNT(*)")
        assert isinstance(expr, FunctionCall)
        assert isinstance(expr.args[0], Star)

    def test_count_distinct(self):
        expr = self.expr("COUNT(DISTINCT x)")
        assert expr.distinct

    def test_precedence_and_or(self):
        expr = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").where
        assert expr.op == "OR"  # AND binds tighter

    def test_not(self):
        expr = parse("SELECT * FROM t WHERE NOT a = 1").where
        assert isinstance(expr, UnaryOp) and expr.op == "NOT"

    def test_parentheses(self):
        expr = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3").where
        assert expr.op == "AND"

    def test_in_list(self):
        expr = parse("SELECT * FROM t WHERE a IN (1, 2, 3)").where
        assert isinstance(expr, InList) and not expr.negated
        assert len(expr.items) == 3

    def test_not_in(self):
        expr = parse("SELECT * FROM t WHERE a NOT IN (1)").where
        assert isinstance(expr, InList) and expr.negated

    def test_between(self):
        expr = parse("SELECT * FROM t WHERE a BETWEEN 1 AND 5").where
        assert isinstance(expr, Between)

    def test_not_between(self):
        expr = parse("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 5").where
        assert isinstance(expr, Between) and expr.negated

    def test_is_null(self):
        expr = parse("SELECT * FROM t WHERE a IS NULL").where
        assert isinstance(expr, IsNull) and not expr.negated

    def test_is_not_null(self):
        expr = parse("SELECT * FROM t WHERE a IS NOT NULL").where
        assert isinstance(expr, IsNull) and expr.negated

    def test_case_when(self):
        expr = self.expr("CASE WHEN a > 1 THEN 1 WHEN a > 0 THEN 2 ELSE 0 END")
        assert isinstance(expr, CaseWhen)
        assert len(expr.branches) == 2
        assert expr.otherwise == Literal(0)

    def test_case_requires_when(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT CASE END FROM t")

    def test_neq_normalized(self):
        expr = parse("SELECT * FROM t WHERE a != 1").where
        assert expr.op == "<>"


class TestExprHelpers:
    def test_columns_collects_qualified_names(self):
        stmt = parse("SELECT u.a + b FROM t u WHERE c = 1")
        assert stmt.items[0].expr.columns() == {"u.a", "b"}
        assert stmt.where.columns() == {"c"}

    def test_has_aggregate(self):
        stmt = parse("SELECT SUM(a) / COUNT(*) FROM t")
        assert stmt.items[0].expr.has_aggregate()
        stmt2 = parse("SELECT ABS(a) FROM t")
        assert not stmt2.items[0].expr.has_aggregate()
