"""Chaos tests: the serving path under injected storage and swap faults.

Faults are injected with the platform's seeded
:class:`~repro.dataplat.resilience.FaultInjector`, so every run sees the
same fault sequence.  The service must degrade gracefully — absorbed
retries, ``failed`` outcomes instead of crashes, stale-model fallback —
and the watchtower must fire *exactly* the expected SLO alerts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataplat import observability
from repro.dataplat.resilience import (
    FaultInjector,
    FaultPolicy,
    RetryPolicy,
    SimClock,
)
from repro.dataplat.telemetry import TelemetrySink, TelemetryWarehouse
from repro.core.watchtower import Watchtower
from repro.errors import TransientError
from repro.features.spec import FeatureMatrix
from repro.serve import (
    FeatureStore,
    FixedServiceTime,
    LoadProfile,
    ModelRegistry,
    ScoringService,
    ServeConfig,
    arrival_plan,
    drive,
    serve_rules,
)

POPULATION = 300
N_FEATURES = 4


class LinearStub:
    def __init__(self) -> None:
        self.w = np.random.default_rng(1).normal(size=N_FEATURES)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-(x @ self.w)))


def make_matrix() -> FeatureMatrix:
    rng = np.random.default_rng(8)
    return FeatureMatrix(
        imsi=(40_000 + np.arange(POPULATION)).astype(np.int64),
        names=[f"f{i}" for i in range(N_FEATURES)],
        values=rng.normal(size=(POPULATION, N_FEATURES)),
    )


def chaos_store(
    injector: FaultInjector, retry: RetryPolicy | None, cache_rows: int = 0
) -> tuple[FeatureStore, np.ndarray]:
    """A store whose catalog scans fail per the injector's read stream."""
    matrix = make_matrix()
    store = FeatureStore(
        cache_rows=cache_rows, retry_policy=retry, clock=SimClock()
    )
    store.materialize(matrix, "chaos", buckets=4)
    real_scan = store.catalog.scan

    def faulty_scan(*args, **kwargs):
        if injector.should("read_failure"):
            raise TransientError("injected block-store read failure")
        return real_scan(*args, **kwargs)

    store.catalog.scan = faulty_scan
    return store, matrix.imsi


def make_service(store: FeatureStore, registry=None, **overrides):
    if registry is None:
        registry = ModelRegistry()
        registry.publish("v1", LinearStub(), activate=True)
    defaults = dict(
        max_batch=16,
        batch_window_s=0.002,
        max_queue_depth=128,
        score_cache_rows=0,  # keep the fault-injected read path hot
    )
    defaults.update(overrides)
    return ScoringService(
        store,
        registry,
        ServeConfig(**defaults),
        service_time=FixedServiceTime(base_s=0.001, per_row_s=0.00005),
    )


class TestStorageChaos:
    def test_reads_faults_degrade_to_failed_outcomes_not_crashes(
        self, capture_spans
    ):
        """45% scan-failure rate with a 2-attempt retry: some fetches are
        absorbed, some batches fail — but every request terminates and
        the service keeps scoring."""
        injector = FaultInjector(
            FaultPolicy(read_failure_rate=0.45), seed=21
        )
        retry = RetryPolicy(max_attempts=2, base_delay=0.001, seed=21)
        store, imsi = chaos_store(injector, retry)
        service = make_service(store)
        plan = arrival_plan(
            LoadProfile(
                rate_rps=2000, duration_s=0.4, population=POPULATION, seed=6
            ),
            customer_ids=imsi,
        )
        report = drive(service, plan)

        assert injector.injected["read_failure"] > 0
        assert report.unaccounted == 0
        assert report.scored > 0, "service stopped serving under chaos"
        assert report.failed > 0, "expected some batches to exhaust retries"
        metrics = observability.get_metrics()
        assert metrics.counter("serve.failures").value == report.failed

    def test_retry_absorbs_low_fault_rate_completely(self, capture_spans):
        """A mild fault rate under a deeper retry budget: zero failed."""
        injector = FaultInjector(
            FaultPolicy(read_failure_rate=0.10), seed=3
        )
        retry = RetryPolicy(max_attempts=4, base_delay=0.001, seed=3)
        store, imsi = chaos_store(injector, retry)
        service = make_service(store)
        plan = arrival_plan(
            LoadProfile(
                rate_rps=1000, duration_s=0.3, population=POPULATION, seed=9
            ),
            customer_ids=imsi,
        )
        report = drive(service, plan)
        assert injector.injected["read_failure"] > 0
        assert report.failed == 0
        assert report.scored == report.submitted

    def test_chaos_runs_are_deterministic(self, capture_spans):
        outcomes = []
        for _ in range(2):
            injector = FaultInjector(
                FaultPolicy(read_failure_rate=0.45), seed=21
            )
            retry = RetryPolicy(max_attempts=2, base_delay=0.001, seed=21)
            store, imsi = chaos_store(injector, retry)
            service = make_service(store)
            plan = arrival_plan(
                LoadProfile(
                    rate_rps=2000,
                    duration_s=0.4,
                    population=POPULATION,
                    seed=6,
                ),
                customer_ids=imsi,
            )
            report = drive(service, plan)
            outcomes.append(
                (report.scored, report.failed, injector.total_injected)
            )
        assert outcomes[0] == outcomes[1]


class TestSwapChaos:
    def test_failed_swap_mid_traffic_serves_stale_model(self, capture_spans):
        store, imsi = chaos_store(FaultInjector.disabled(), retry=None)
        v1 = LinearStub()
        registry = ModelRegistry()
        registry.publish("v1", v1, activate=True)
        registry.publish("v2", LinearStub())
        service = make_service(store, registry=registry)

        first = [service.submit(int(c), now=0.0) for c in imsi[:20]]
        service.drain()

        def exploding_loader():
            raise TransientError("model artifact fetch failed")

        assert registry.activate("v2", loader=exploding_loader) is False
        assert registry.active_version == "v1"

        second = [service.submit(int(c), now=1.0) for c in imsi[20:40]]
        service.drain()

        for t in first + second:
            assert t.outcome == "scored"
            assert t.model_version == "v1"  # stale fallback, not a crash
        metrics = observability.get_metrics()
        assert metrics.counter("serve.model_swap_failures").value == 1
        # only the initial v1 activation counted as a completed swap
        assert metrics.counter("serve.model_swaps").value == 1


def _sink_window(service, run_id):
    """Fold the SLO gauges and drive one telemetry window + evaluation."""
    warehouse = TelemetryWarehouse()
    service.slo_snapshot()
    sink = TelemetrySink(
        warehouse, run_id, metrics=observability.get_metrics()
    )
    sink.record_window(0)
    tower = Watchtower(warehouse, serve_rules())
    return [a.rule for a in tower.evaluate(run_id, 0)]


class TestWatchtowerAlerts:
    """Each scenario asserts the *exact* fired-alert set."""

    def test_clean_run_fires_nothing(self, capture_spans):
        store, imsi = chaos_store(
            FaultInjector.disabled(), retry=None, cache_rows=POPULATION
        )
        service = make_service(store)
        plan = arrival_plan(
            LoadProfile(
                rate_rps=1000, duration_s=0.3, population=POPULATION, seed=2
            ),
            customer_ids=imsi,
        )
        drive(service, plan)
        assert _sink_window(service, "serve-clean") == []

    def test_overload_and_failed_swap_fire_shed_and_swap_alerts(
        self, capture_spans
    ):
        store, imsi = chaos_store(
            FaultInjector.disabled(), retry=None, cache_rows=POPULATION
        )
        registry = ModelRegistry()
        registry.publish("v1", LinearStub(), activate=True)
        # ~4 rows / 4.2 ms ≈ 950 req/s of capacity against 4000 offered:
        # admission control must shed hard while scored latency stays
        # bounded by the tiny queue.
        service = ScoringService(
            store,
            registry,
            ServeConfig(
                max_batch=4,
                batch_window_s=0.001,
                max_queue_depth=8,
                score_cache_rows=0,
            ),
            service_time=FixedServiceTime(base_s=0.004, per_row_s=0.00005),
        )
        plan = arrival_plan(
            LoadProfile(
                rate_rps=4000, duration_s=0.3, population=POPULATION, seed=5
            ),
            customer_ids=imsi,
        )
        report = drive(service, plan)
        assert report.shed > 0
        assert report.p99_s <= 0.050  # latency SLO still met while shedding

        def exploding_loader():
            raise TransientError("artifact store down")

        registry.publish("v2", LinearStub())
        assert registry.activate("v2", loader=exploding_loader) is False

        fired = _sink_window(service, "serve-overload")
        assert fired == ["serve-shed-spike", "serve-model-swap-failed"]

    def test_slow_model_fires_p99_breach_only(self, capture_spans):
        store, imsi = chaos_store(
            FaultInjector.disabled(), retry=None, cache_rows=POPULATION
        )
        service = make_service(
            store,
            batch_window_s=0.0,
            max_queue_depth=64,
        )
        # 80 ms per batch against a 50 ms p99 budget; arrivals spaced
        # 100 ms apart so nothing queues, sheds or expires — the only
        # SLO violated is latency.
        service._service_time = FixedServiceTime(base_s=0.080, per_row_s=0.0)
        for i, cid in enumerate(imsi[:20]):
            service.submit(int(cid), now=i * 0.1, deadline_s=1.0)
        service.drain()
        assert _sink_window(service, "serve-slow") == ["serve-p99-breach"]
