"""Micro-benchmarks for the substrate (repeated-timing pytest-benchmark).

These are classic performance benchmarks (multiple rounds) for the pieces
the experiment harness leans on: RF training, SQL aggregation with joins,
LDA inference, PageRank, the wide-table build.
"""

import numpy as np
import pytest

from repro.dataplat.sql import SQLEngine
from repro.dataplat.table import Table
from repro.ml.forest import RandomForestClassifier
from repro.ml.graphalgo import pagerank
from repro.ml.lda import LatentDirichletAllocation


@pytest.fixture(scope="module")
def train_data():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(4000, 70))
    y = (rng.random(4000) < 1 / (1 + np.exp(-1.5 * x[:, 0]))).astype(int)
    return x, y


def test_bench_rf_fit(benchmark, train_data):
    x, y = train_data

    def fit():
        return RandomForestClassifier(
            n_trees=10, min_samples_leaf=25, max_depth=12, seed=1
        ).fit(x, y)

    model = benchmark(fit)
    assert model.predict_proba(x[:10]).shape == (10,)


def test_bench_rf_predict(benchmark, train_data):
    x, y = train_data
    model = RandomForestClassifier(n_trees=10, seed=1).fit(x, y)
    scores = benchmark(model.predict_proba, x)
    assert len(scores) == len(x)


def test_bench_sql_join_aggregate(benchmark):
    rng = np.random.default_rng(1)
    n = 50_000
    engine = SQLEngine()
    engine.register(
        Table.from_arrays(
            imsi=rng.integers(0, 5000, size=n),
            dur=rng.exponential(10, size=n),
            day=rng.integers(1, 31, size=n),
        ),
        "cdr",
    )
    engine.register(
        Table.from_arrays(
            imsi=np.arange(5000), town=rng.integers(0, 20, size=5000)
        ),
        "users",
    )
    sql = """
        SELECT u.town, SUM(c.dur) AS total, COUNT(*) AS n
        FROM users u JOIN cdr c ON u.imsi = c.imsi
        WHERE c.day > 20
        GROUP BY u.town
        ORDER BY u.town
    """
    out = benchmark(engine.query, sql)
    assert out.num_rows == 20


def test_bench_lda_fit(benchmark):
    rng = np.random.default_rng(2)
    docs = [rng.integers(0, 400, size=16).tolist() for _ in range(2000)]

    def fit():
        lda = LatentDirichletAllocation(n_topics=10, n_iter=15, seed=0)
        return lda.fit_transform(docs, vocab_size=400)

    theta = benchmark(fit)
    assert theta.shape == (2000, 10)


def test_bench_pagerank(benchmark):
    rng = np.random.default_rng(3)
    n = 20_000
    edges = rng.integers(0, n, size=(n * 8, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    weights = rng.exponential(1.0, size=len(edges))
    scores = benchmark(pagerank, edges, weights, n)
    assert len(scores) == n


def test_bench_wide_table_build(benchmark, bench_world):
    from repro.features import WideTableBuilder

    def build():
        builder = WideTableBuilder(bench_world)
        return builder.features(5, ("F1", "F2", "F3"))

    block = benchmark.pedantic(build, rounds=2, iterations=1)
    assert block.n_features == 73 + 9 + 25
