"""Deterministic load generator CLI for the online scoring service.

Builds a synthetic feature snapshot, trains a compact forest, and drives
a seeded open-loop arrival process through the
:class:`~repro.serve.service.ScoringService`, printing the resulting
:class:`~repro.serve.loadgen.LoadReport` (or JSON with ``--json``).  The
``serve`` section of ``benchmarks/baseline.py`` calls :func:`run_load`
with the same defaults, so a CI number can be reproduced interactively::

    python benchmarks/load_gen.py --population 5000 --rate 6000 --duration 2

Logical arrival times come from the seeded plan; *service* time per
batch is measured wall-clock around the feature fetch + vectorized
predict (:class:`MeasuredServiceTime`), so the reported p50/p99 reflect
real model latency under the configured batch window while the request
sequence stays reproducible.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.features.spec import FeatureMatrix
from repro.ml.forest import RandomForestClassifier
from repro.serve import (
    FeatureStore,
    LoadProfile,
    ModelRegistry,
    ScoringService,
    ServeConfig,
    arrival_plan,
    drive,
)


def build_service(
    population: int,
    n_features: int = 20,
    seed: int = 0,
    config: ServeConfig | None = None,
    service_time=None,
    buckets: int = 8,
) -> tuple[ScoringService, FeatureStore, np.ndarray]:
    """A served snapshot + trained model over a synthetic population."""
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(population, n_features))
    imsi = (100_000 + np.arange(population)).astype(np.int64)
    matrix = FeatureMatrix(
        imsi=imsi,
        names=[f"f{i}" for i in range(n_features)],
        values=values,
    )
    store = FeatureStore(cache_rows=max(population // 2, 1024))
    store.materialize(matrix, "bench", buckets=buckets)
    train_n = min(population, 2000)
    y = (
        values[:train_n, 0] + 0.3 * rng.normal(size=train_n) > 0
    ).astype(np.int64)
    forest = RandomForestClassifier(
        n_trees=8, max_depth=8, min_samples_leaf=20, seed=seed
    ).fit(values[:train_n], y)
    registry = ModelRegistry()
    registry.publish("bench-v1", forest, activate=True)
    service = ScoringService(
        store,
        registry,
        config if config is not None else ServeConfig(),
        service_time=service_time,
    )
    return service, store, imsi


def run_load(
    population: int = 5000,
    rate_rps: float = 6000.0,
    duration_s: float = 2.0,
    seed: int = 7,
    batch_window_s: float = 0.005,
    max_batch: int = 64,
    max_queue_depth: int = 1024,
) -> dict:
    """One benchmark run; returns the BENCH_micro.json ``serve`` section."""
    config = ServeConfig(
        max_batch=max_batch,
        batch_window_s=batch_window_s,
        max_queue_depth=max_queue_depth,
        default_deadline_s=0.250,
    )
    service, _, imsi = build_service(population, seed=seed, config=config)
    profile = LoadProfile(
        rate_rps=rate_rps,
        duration_s=duration_s,
        population=population,
        seed=seed,
    )
    report = drive(service, arrival_plan(profile, customer_ids=imsi))
    assert report.unaccounted == 0, "request lost without a terminal outcome"
    return {
        "requests": report.submitted,
        "scored": report.scored,
        "shed": report.shed,
        "expired": report.expired,
        "failed": report.failed,
        "wall_s": report.wall_s,
        "throughput_rps": report.throughput_rps,
        "p50_ms": report.p50_s * 1e3,
        "p99_ms": report.p99_s * 1e3,
        "mean_batch_size": report.mean_batch_size,
        "max_queue_depth": report.max_queue_depth,
        "batch_window_ms": batch_window_s * 1e3,
        "offered_rate_rps": rate_rps,
        "population": population,
        "floor": {"throughput_rps": 5000.0, "p99_ms": 50.0},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--population", type=int, default=5000)
    parser.add_argument("--rate", type=float, default=6000.0)
    parser.add_argument("--duration", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--window-ms", type=float, default=5.0)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--json", action="store_true", help="emit JSON")
    args = parser.parse_args(argv)

    section = run_load(
        population=args.population,
        rate_rps=args.rate,
        duration_s=args.duration,
        seed=args.seed,
        batch_window_s=args.window_ms / 1e3,
        max_batch=args.max_batch,
    )
    if args.json:
        print(json.dumps(section, indent=2))
    else:
        print(
            f"serve load: {section['requests']} requests at "
            f"{section['offered_rate_rps']:,.0f} req/s offered"
        )
        print(
            f"  throughput {section['throughput_rps']:,.0f} req/s, "
            f"p50 {section['p50_ms']:.2f} ms, p99 {section['p99_ms']:.2f} ms"
        )
        print(
            f"  scored {section['scored']}, shed {section['shed']}, "
            f"expired {section['expired']}, failed {section['failed']}, "
            f"mean batch {section['mean_batch_size']:.1f}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
