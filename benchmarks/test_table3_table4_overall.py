"""Benchmarks for Table 3 (overall performance) and Table 4 (importances).

Paper shapes:

* Table 3 — all 150 features + 4 training months: AUC ≈ 0.93,
  PR-AUC ≈ 0.72, P@50k ≈ 0.96; precision decays / recall grows along the
  top-U sweep.
* Table 4 — ``balance`` is the #1 feature; OSS KPI features sit high;
  graph/topic/second-order features appear in the ranking.
"""

import numpy as np
import pytest

from repro.core import experiments as ex
from repro.core import reporting as rep


@pytest.fixture(scope="module")
def table3(bench_full_pipeline):
    return ex.table3_overall(bench_full_pipeline)


def test_table3_overall(benchmark, bench_full_pipeline, report_sink, table3):
    data = benchmark.pedantic(
        ex.table3_overall,
        kwargs={"pipeline": bench_full_pipeline},
        rounds=1,
        iterations=1,
    )
    report_sink("table3_overall", rep.report_table3(data))
    assert abs(data["auc"] - 0.932) < 0.035
    assert abs(data["pr_auc"] - 0.716) < 0.1
    # Paper: 0.959.  The scaled top-50k list holds ~140 customers here, so
    # the point estimate swings ±0.1 with the world seed.
    assert data["precision_at"][50_000] > 0.75
    # Monotone sweep: recall rises, precision falls with U.
    us = sorted(data["recall_at"])
    recalls = [data["recall_at"][u] for u in us]
    precisions = [data["precision_at"][u] for u in us]
    assert recalls == sorted(recalls)
    assert precisions == sorted(precisions, reverse=True)


def test_table4_importance(benchmark, table3, report_sink):
    rows = benchmark.pedantic(
        ex.table4_importance,
        kwargs={"result": table3["result"], "top": 20},
        rounds=1,
        iterations=1,
    )
    report_sink("table4_importance", rep.report_table4(rows))
    names = [r["feature"] for r in rows]
    # balance is the paper's #1 feature; ours stays in the top three.
    assert "balance" in names[:3]
    # OSS KPI features are represented high in the ranking.
    oss_markers = ("throughput", "delay", "mos", "drop_rate", "rtt")
    assert any(any(m in n for m in oss_markers) for n in names[:10])
    importances = np.asarray([r["importance"] for r in rows])
    assert np.all(np.diff(importances) <= 1e-12)
