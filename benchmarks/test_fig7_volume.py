"""Benchmark for Figure 7 — Volume.

Paper shape: accumulating more months of training data keeps improving all
four metrics with diminishing returns (largest jump from 1 → 2 months).
"""

import numpy as np

from repro.core import experiments as ex
from repro.core import reporting as rep
from repro.core.pipeline import DEFAULT_PAPER_U


def test_fig7_volume(benchmark, bench_pipeline, report_sink):
    rows = benchmark.pedantic(
        ex.fig7_volume,
        kwargs={
            "pipeline": bench_pipeline,
            "max_train_months": 5,
            "test_months": [7, 8, 9],
        },
        rounds=1,
        iterations=1,
    )
    report_sink("fig7_volume", rep.report_fig7(rows, DEFAULT_PAPER_U))
    prs = np.asarray([r["pr_auc"] for r in rows])
    aucs = np.asarray([r["auc"] for r in rows])
    # More data never hurts much, and the most data beats the least.
    assert prs[-1] > prs[0]
    assert aucs[-1] > aucs[0] - 0.005
    assert np.all(np.diff(prs) > -0.02)
    # Diminishing returns: the first added month gains at least as much as
    # the average of the later ones.
    first_gain = prs[1] - prs[0]
    later_gain = (prs[-1] - prs[1]) / (len(prs) - 2)
    assert first_gain > later_gain - 0.01
