"""Benchmarks for the dataset-shape results: Figure 1, Table 1, Figure 5.

Paper shapes asserted:

* Figure 1 — prepaid churn ≈ 9.4%/month, postpaid ≈ 5.2%, prepaid higher
  every month;
* Table 1 — population in dynamic balance, churners ≈ 9.2% of it;
* Figure 5 — days-to-recharge decays quickly; < 5% of recharges fall past
  the 15-day grace.
"""

import numpy as np

from repro.core import experiments as ex
from repro.core import reporting as rep


def test_fig1_churn_rates(benchmark, bench_world, report_sink):
    data = benchmark.pedantic(
        ex.fig1_churn_rates, args=(bench_world,), rounds=1, iterations=1
    )
    report_sink("fig1_churn_rates", rep.report_fig1(data))
    prepaid = np.asarray(data["prepaid"])
    postpaid = np.asarray(data["postpaid"])
    assert abs(prepaid.mean() - 0.094) < 0.02
    assert abs(postpaid.mean() - 0.052) < 0.01
    assert np.all(prepaid > postpaid)


def test_table1_dataset_stats(benchmark, bench_world, report_sink):
    rows = benchmark.pedantic(
        ex.table1_dataset_stats, args=(bench_world,), rounds=1, iterations=1
    )
    report_sink("table1_dataset_stats", rep.report_table1(rows))
    rates = [r["churn_rate"] for r in rows]
    totals = [r["total"] for r in rows]
    assert abs(np.mean(rates) - 0.092) < 0.015
    # Dynamic balance: population stays level (paper: ±4% over 9 months).
    assert max(totals) - min(totals) <= 0.05 * max(totals)


def test_fig5_recharge_distribution(benchmark, bench_world, report_sink):
    data = benchmark.pedantic(
        ex.fig5_recharge_distribution,
        args=(bench_world,),
        rounds=1,
        iterations=1,
    )
    report_sink("fig5_recharge_distribution", rep.report_fig5(data))
    counts = np.asarray(data["counts"])
    assert data["fraction_beyond_grace"] < 0.05
    # Fast decay: the first five days dominate the distribution.
    assert counts[:5].sum() > 0.6 * counts.sum()
