"""Benchmark for Table 7 — class-imbalance treatments.

Paper shape: Weighted Instance best, ~10% PR-AUC over Not Balanced; Up and
Down Sampling in between.  **Scale deviation** (see EXPERIMENTS.md): at a
9% churn rate with a few thousand training rows, the unbalanced baseline is
already competitive for ranking metrics, so we assert the robust part of
the shape — weighting beats down-sampling (the variance-heavy treatment)
and never collapses, while all four treatments stay in one band.
"""

import numpy as np

from repro.core import experiments as ex
from repro.core import reporting as rep


def test_table7_imbalance(benchmark, bench_world, bench_cfg, report_sink):
    rows = benchmark.pedantic(
        ex.table7_imbalance,
        kwargs={
            "world": bench_world,
            "scale": bench_cfg.scale,
            "model": bench_cfg.model,
            "test_months": [5, 6, 7, 8],
        },
        rounds=1,
        iterations=1,
    )
    report_sink("table7_imbalance", rep.report_table7(rows))
    by_strategy = {r["strategy"]: r for r in rows}
    assert set(by_strategy) == {"none", "up", "down", "weighted"}
    prs = {k: v["pr_auc"] for k, v in by_strategy.items()}
    # Weighting dominates down-sampling, which throws data away.
    assert prs["weighted"] > prs["down"]
    # Every treatment learns (well above the ~9% base rate).
    assert min(prs.values()) > 0.2
    # All four sit in one band — no treatment collapses the model.
    assert max(prs.values()) - min(prs.values()) < 0.15
    aucs = {k: v["auc"] for k, v in by_strategy.items()}
    assert max(aucs.values()) - min(aucs.values()) < 0.06
