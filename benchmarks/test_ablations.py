"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. **Loud-churner fraction** — DESIGN.md §5 claims Table 3's near-perfect
   top-of-ranking precision comes from the *loud* subpopulation of decided
   leavers. Sweep the fraction and watch P@50k respond.
2. **Label propagation vs PageRank** — Section 4.1.2 computes two features
   per graph; the paper's Table 4 ranks label propagation far above
   PageRank. Drop each half of the co-occurrence pair and compare.
"""

import numpy as np

from repro import ChurnPipeline, ModelConfig, ScaleConfig, TelcoSimulator
from repro.core.window import WindowSpec
from repro.datagen.simulator import SignalWeights
from repro.ml import RandomForestClassifier, pr_auc, rebalance


def test_ablation_loud_fraction(benchmark, report_sink):
    """P@50k tracks the share of loud churners."""
    model = ModelConfig(n_trees=20, min_samples_leaf=20)

    def sweep():
        rows = []
        for fraction in (0.1, 0.55, 0.9):
            weights = SignalWeights(loud_fraction=fraction)
            scale = ScaleConfig(population=3000, months=9, seed=13)
            world = TelcoSimulator(scale, weights).run()
            pipeline = ChurnPipeline(
                world, scale, categories=("F1",), model=model, seed=3
            )
            values = []
            for tm in (6, 7):
                result = pipeline.run_window(WindowSpec((tm - 1,), tm))
                values.append(result.precision_at[50_000])
            rows.append(
                {"loud_fraction": fraction, "p_at_50k": float(np.mean(values))}
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation — loud-churner fraction vs P@50k", "fraction | P@50k"]
    for row in rows:
        lines.append(f"{row['loud_fraction']:.2f}     | {row['p_at_50k']:.3f}")
    report_sink("ablation_loud_fraction", "\n".join(lines))
    precisions = [r["p_at_50k"] for r in rows]
    # More loud churners → purer top of the ranking, with a material gap
    # between the extremes.
    assert precisions[-1] > precisions[0] + 0.1
    assert precisions == sorted(precisions)


def test_ablation_labelprop_vs_pagerank(benchmark, bench_world, bench_cfg, report_sink):
    """Label propagation carries the co-occurrence lift; PageRank does not."""
    from repro.features import WideTableBuilder

    def sweep():
        builder = WideTableBuilder(bench_world)
        results = {}
        for variant, keep in (
            ("baseline", None),
            ("+pagerank", ["pagerank_cooccurrence"]),
            ("+labelprop", ["labelprop_cooccurrence"]),
            ("+both", ["pagerank_cooccurrence", "labelprop_cooccurrence"]),
        ):
            prs = []
            for tm in (5, 6, 7):
                f1_tr = builder.features(tm, ("F1",))
                f1_te = builder.features(tm + 1, ("F1",))
                x_tr, x_te = f1_tr.values, f1_te.values
                if keep is not None:
                    g_tr = builder.category("F6", tm).select(keep)
                    g_te = builder.category("F6", tm + 1).select(keep)
                    x_tr = np.hstack([x_tr, g_tr.values])
                    x_te = np.hstack([x_te, g_te.values])
                m_tr = bench_world.month(tm)
                m_te = bench_world.month(tm + 1)
                xt, yt, wt = rebalance(
                    x_tr[m_tr.eligible],
                    m_tr.churn_next[m_tr.eligible].astype(int),
                    "weighted",
                    np.random.default_rng(3),
                )
                rf = RandomForestClassifier(
                    n_trees=bench_cfg.model.n_trees,
                    min_samples_leaf=bench_cfg.model.min_samples_leaf,
                    max_depth=bench_cfg.model.max_depth,
                    seed=3,
                ).fit(xt, yt, wt)
                prs.append(
                    pr_auc(
                        m_te.churn_next[m_te.eligible].astype(int),
                        rf.predict_proba(x_te[m_te.eligible]),
                    )
                )
            results[variant] = float(np.mean(prs))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Ablation — co-occurrence graph features (PR-AUC)"]
    for variant, value in results.items():
        lines.append(f"{variant:<11} {value:.4f}")
    report_sink("ablation_labelprop_vs_pagerank", "\n".join(lines))
    # Label propagation is the working half of the pair (paper Table 4:
    # labelprop_cooccurrence rank 41, pagerank_cooccurrence rank 68).
    assert results["+labelprop"] > results["+pagerank"] - 0.005
    assert results["+labelprop"] > results["baseline"]
    # PageRank alone adds at most noise.
    assert abs(results["+pagerank"] - results["baseline"]) < 0.03
