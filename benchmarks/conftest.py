"""Shared benchmark fixtures.

One bench-scale world (6k customers ≈ 1/350 of the paper's population) is
simulated once per session and shared by every experiment benchmark; each
benchmark regenerates one table/figure of the paper, prints it, and writes
it to ``benchmarks/output/`` so EXPERIMENTS.md can cite the runs.
"""

from __future__ import annotations

import pathlib

import pytest

from repro import ChurnPipeline, RunConfig, TelcoSimulator

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_cfg() -> RunConfig:
    return RunConfig.bench(seed=7)


@pytest.fixture(scope="session")
def bench_world(bench_cfg):
    return TelcoSimulator(bench_cfg.scale).run()


@pytest.fixture(scope="session")
def bench_pipeline(bench_world, bench_cfg) -> ChurnPipeline:
    """Baseline-features pipeline (most experiments use F1 only)."""
    return ChurnPipeline(
        bench_world,
        bench_cfg.scale,
        categories=("F1",),
        model=bench_cfg.model,
        seed=3,
    )


@pytest.fixture(scope="session")
def bench_full_pipeline(bench_world, bench_cfg) -> ChurnPipeline:
    """All-150-features pipeline (Tables 3/4, retention)."""
    return ChurnPipeline(
        bench_world,
        bench_cfg.scale,
        model=bench_cfg.model,
        seed=3,
    )


@pytest.fixture(scope="session")
def report_sink():
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return write
