"""Benchmark for Figure 8 — early signals.

Paper shape: predictive performance decays monotonically with prediction
lead time, with the biggest drop between lead 1 and lead 2 ("prepaid
customers often churn abruptly without providing enough early signals").
Our synthetic world is even more abrupt than the production data, so the
decay is steeper (documented in EXPERIMENTS.md).
"""

import numpy as np

from repro.core import experiments as ex
from repro.core import reporting as rep


def test_fig8_early_signals(benchmark, bench_pipeline, report_sink):
    rows = benchmark.pedantic(
        ex.fig8_early_signals,
        kwargs={"pipeline": bench_pipeline, "max_lead": 4},
        rounds=1,
        iterations=1,
    )
    report_sink("fig8_early_signals", rep.report_fig8(rows))
    assert [r["lead_months"] for r in rows] == [1, 2, 3, 4]
    prs = np.asarray([r["pr_auc"] for r in rows])
    aucs = np.asarray([r["auc"] for r in rows])
    # Performance decays with lead time; largest loss at lead 1 → 2.
    assert np.all(np.diff(prs) < 0.02)
    assert prs[1] < 0.8 * prs[0]  # paper: ≈20% drop; ours is steeper
    assert aucs[0] > aucs[1] > aucs[3] - 0.05
    # Lead 1 is the paper's baseline setting.
    assert aucs[0] > 0.83
