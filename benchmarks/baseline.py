"""Machine-readable micro-benchmarks: serial vs parallel backend.

Times the compute hot paths the executor backend parallelizes — RF fit,
RF predict, dataset materialization, wide-table month builds — once on
:class:`SerialBackend` and once on :class:`ProcessPoolBackend`, plus the
catalog's repeated month-window scan to measure the table-cache hit rate.
The ``sharding`` section times the 4-shard scatter-gather SQL path and a
500k-customer wide-table-style build against the single-shard engine.
Writes ``benchmarks/output/BENCH_micro.json``::

    {"meta": {...},
     "ops": {"rf_fit": {"serial_s": ..., "parallel_s": ..., "speedup": ...},
             ...},
     "cache": {"cold_s": ..., "warm_s": ..., "hit_rate": ...}}

Usage::

    python benchmarks/baseline.py [--quick] [--workers N] [--out PATH]

``--quick`` shrinks problem sizes for CI smoke runs; numbers are then
dominated by process-pool overhead and NOT representative of speedup.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import subprocess
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from repro.config import ScaleConfig
from repro.datagen import TelcoSimulator
from repro.dataplat import observability
from repro.dataplat.catalog import Catalog
from repro.dataplat.dataset import Dataset
from repro.dataplat.executor import ProcessPoolBackend, SerialBackend
from repro.dataplat.table import Table
from repro.dataplat.telemetry import TelemetrySink
from repro.features import WideTableBuilder
from repro.ml.forest import RandomForestClassifier

DEFAULT_OUT = pathlib.Path(__file__).parent / "output" / "BENCH_micro.json"

#: Every run appends one summary line here (schema-versioned and
#: git_sha-stamped) so ``check_bench_regression.py`` can trend against
#: history instead of a single committed snapshot.
HISTORY_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_history.jsonl"

#: Bump when the BENCH_micro.json layout changes, so downstream dashboards
#: and the CI diff job can refuse to compare incompatible files.
BENCH_SCHEMA_VERSION = 9

#: Telemetry sinking must stay below this fraction of window wall time.
SINK_BUDGET = 0.05

#: Journaled writes must cost at most this fraction over the direct path
#: (gated by ``scripts/check_bench_regression.py``).
JOURNAL_BUDGET = 0.10

#: Query profiling (the EXPLAIN ANALYZE collector) must cost at most this
#: fraction over the unprofiled path (gated in CI).
PROFILE_BUDGET = 0.05

#: The 4-shard scatter-gather query must beat the single-shard engine by
#: at least this factor on the skewed planner world (best backend; gated
#: by ``scripts/check_bench_regression.py``).
SHARDING_SPEEDUP_FLOOR = 2.5

#: The 500k-customer sharded wide-table-style build must finish within
#: this wall-clock budget (seconds), quick mode included.
SHARDING_WIDETABLE_BUDGET_S = 30.0


def _git_sha() -> str:
    """Short commit hash of the benchmarked tree (``unknown`` outside git)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


def _median_time(fn, repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _partition_work(table: Table) -> Table:
    """CPU-heavy per-partition map (top-level so process backends pickle it)."""
    values = np.asarray(table["v"], dtype=np.float64)
    acc = values.copy()
    for _ in range(200):
        acc = np.sqrt(acc * acc + 1.0)
    return table.with_column("v", acc)


def bench_forest(backends, quick: bool, repeats: int):
    rng = np.random.default_rng(0)
    n, d = (800, 20) if quick else (4000, 60)
    x = rng.normal(size=(n, d))
    y = (rng.random(n) < 1 / (1 + np.exp(-1.5 * x[:, 0]))).astype(int)
    n_trees = 8 if quick else 32
    out = {}
    models = {}
    for label, backend in backends.items():
        out.setdefault("rf_fit", {})[label] = _median_time(
            lambda b=backend: models.__setitem__(
                label,
                RandomForestClassifier(
                    n_trees=n_trees, min_samples_leaf=20, max_depth=10, seed=1
                ).fit(x, y, backend=b),
            ),
            repeats,
        )
    for label, backend in backends.items():
        model = models[label]
        out.setdefault("rf_predict", {})[label] = _median_time(
            lambda b=backend, m=model: m.predict_proba(x, backend=b), repeats
        )
    probas = {k: m.predict_proba(x) for k, m in models.items()}
    first = next(iter(probas.values()))
    assert all(np.array_equal(first, p) for p in probas.values()), (
        "backend parity violated in benchmark"
    )
    return out


def bench_dataset(backends, quick: bool, repeats: int):
    rng = np.random.default_rng(1)
    n = 20_000 if quick else 200_000
    table = Table.from_arrays(
        k=rng.integers(0, 50, size=n), v=rng.normal(size=n)
    )
    def collect(backend):
        # Fresh lineage per run: materialized partitions are cached on the
        # dataset, so reusing one would time the cache, not the compute.
        ds = Dataset.from_table(table, num_partitions=8).map_partitions(
            _partition_work, table.schema, op="bench_map"
        )
        ds.collect(backend=backend)

    out = {}
    for label, backend in backends.items():
        out[label] = _median_time(lambda b=backend: collect(b), repeats)
    return {"dataset_collect": out}


def bench_widetable(world, backends, repeats: int):
    months = [2, 3]
    categories = ("F1", "F2", "F3")
    out = {}
    for label, backend in backends.items():

        def build(b=backend):
            builder = WideTableBuilder(world, seed=0)
            builder.prefetch(months, categories, b)

        out[label] = _median_time(build, repeats)
    return {"widetable_build": out}


def bench_catalog_scan(world, repeats: int):
    """Repeated month-window scan: cold decode vs warm cache hits."""
    catalog = Catalog()
    catalog.create_database("telco")
    world.load_catalog(catalog, database="telco")
    tables = catalog.tables("telco")

    def scan():
        for name in tables:
            catalog.load(name, database="telco")

    # Drop the entries populated by load_catalog's saves so the cold scan
    # actually decodes npz blocks; warm repeats then hit the LRU.
    catalog.clear_cache()
    start = time.perf_counter()
    scan()
    cold = time.perf_counter() - start
    warm = _median_time(scan, repeats)
    health = catalog.store.health
    return {
        "cold_s": cold,
        "warm_s": warm,
        "speedup": cold / warm if warm > 0 else float("inf"),
        "cache_hits": health.cache_hits,
        "cache_misses": health.cache_misses,
        "hit_rate": health.cache_hit_rate,
    }


def bench_columnar_scan(quick: bool, repeats: int):
    """v1 full decode vs v2 chunked scan with zone-map pruning.

    Six month partitions of a wide table; the query reads two columns of
    one month (``month = 3``).  v1 must decode every column of every
    partition; v2 fetches two chunks from the one partition whose zone map
    admits the predicate.  Caches are cleared before every run so the
    numbers measure decode + pruning, not the LRU.
    """
    from repro.dataplat.sql import SQLEngine

    rows = 4_000 if quick else 20_000
    months = 6
    wide_cols = 12

    def build_catalog(fmt: str) -> Catalog:
        rng = np.random.default_rng(7)  # same data whichever format
        catalog = Catalog(default_format=fmt)
        for month in range(1, months + 1):
            arrays = {
                "month": np.full(rows, month, dtype=np.int64),
                "imsi": np.arange(rows, dtype=np.int64),
            }
            for i in range(wide_cols):
                arrays[f"f{i}"] = rng.normal(size=rows)
            catalog.save(
                Table.from_arrays(**arrays), "cdr", partition=f"month={month}"
            )
        return catalog

    sql = "SELECT imsi, f0 FROM cdr WHERE month = 3 AND f0 > 0.5"
    engines = {
        "v1": SQLEngine(build_catalog("v1")),
        "v2": SQLEngine(build_catalog("v2")),
    }
    times = {}
    results = {}
    for label, engine in engines.items():
        def run(e=engine):
            e.catalog.clear_cache()
            results[label] = e.query(sql)
        times[label] = _median_time(run, repeats)
    assert results["v1"] == results["v2"], "v1/v2 scan results diverged"
    health = engines["v2"].catalog.store.health
    return {
        "v1_s": times["v1"],
        "v2_s": times["v2"],
        "speedup": times["v1"] / times["v2"] if times["v2"] > 0 else float("inf"),
        "rows": int(results["v2"].num_rows),
        "partitions_pruned": health.partitions_pruned,
        "chunks_skipped": health.chunks_skipped,
        "bytes_decoded_saved": health.bytes_decoded_saved,
    }


def bench_tracing_overhead(quick: bool, repeats: int):
    """The same dataset workload with tracing off vs on.

    ``overhead_ratio`` backs the ≤5 % disabled-path budget (DESIGN §9); the
    traced run's span summary ships in the output so a benchmark artifact
    doubles as a coarse profile of where the time went.
    """
    rng = np.random.default_rng(2)
    n = 20_000 if quick else 100_000
    table = Table.from_arrays(
        k=rng.integers(0, 50, size=n), v=rng.normal(size=n)
    )
    backend = SerialBackend()

    def collect():
        ds = Dataset.from_table(table, num_partitions=8).map_partitions(
            _partition_work, table.schema, op="bench_map"
        )
        ds.collect(backend=backend)

    untraced = _median_time(collect, repeats)
    tracer = observability.Tracer()

    def traced_collect():
        with observability.trace(tracer=tracer):
            collect()

    traced = _median_time(traced_collect, repeats)
    summary = tracer.summary()
    top = sorted(
        summary.items(), key=lambda kv: kv[1]["wall_s"], reverse=True
    )[:8]
    return {
        "untraced_s": untraced,
        "traced_s": traced,
        "overhead_ratio": traced / untraced if untraced > 0 else float("inf"),
        "spans": dict(top),
    }


class _TimedSink(TelemetrySink):
    """A sink that accounts for its own recording wall time."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.spent_s = 0.0

    def record_window(self, *args, **kwargs) -> None:
        start = time.perf_counter()
        super().record_window(*args, **kwargs)
        self.spent_s += time.perf_counter() - start


def bench_telemetry_sink(world, scale, quick: bool):
    """Sink cost as a fraction of traced pipeline-window wall time.

    Measures the warehouse writes directly (time spent inside
    ``record_window``) rather than differencing two noisy end-to-end
    medians, and asserts the ≤5 % budget: persisting a window's spans,
    metric deltas and health report must stay negligible next to building
    and scoring the window itself.
    """
    from repro.config import ModelConfig
    from repro.core import ChurnPipeline
    from repro.dataplat.telemetry import TelemetryWarehouse

    sink = _TimedSink(TelemetryWarehouse(), run_id="bench-0001")
    previous_tracer = observability.set_tracer(observability.Tracer())
    previous_metrics = observability.set_metrics(None)
    try:
        pipeline = ChurnPipeline(
            world,
            scale,
            model=ModelConfig(n_trees=8 if quick else 16, min_samples_leaf=20),
            seed=0,
            allow_degraded=True,
            telemetry=sink,
        )
        start = time.perf_counter()
        for spec in pipeline.windows.windows(test_months=[2, 3]):
            pipeline.run_window(spec)
        total = time.perf_counter() - start
    finally:
        observability.set_tracer(previous_tracer)
        observability.set_metrics(previous_metrics)
    ratio = sink.spent_s / total if total > 0 else float("inf")
    assert ratio < SINK_BUDGET, (
        f"telemetry sink cost {ratio:.1%} exceeds the {SINK_BUDGET:.0%} budget"
    )
    return {
        "windows_s": total,
        "sink_s": sink.spent_s,
        "overhead_ratio": ratio,
        "budget": SINK_BUDGET,
    }


def bench_recovery(quick: bool, repeats: int):
    """Journal overhead on the write path, and crash-recovery latency.

    ``journal_overhead_ratio`` is the fractional cost of the full commit
    protocol (staging, intent/commit records, fsync barriers, publish
    renames) over the direct pre-journal write path, on column-encode-
    dominated payloads; the ≤10 % budget is gated in CI.  ``open_s`` is a
    clean ``Catalog.open`` (recovery scan included) over a 50-partition
    warehouse — the price every process pays at startup.
    """
    from repro.dataplat.blockstore import BlockStore
    from repro.dataplat.journal import Durability

    rng = np.random.default_rng(7)
    rows = 20_000 if quick else 100_000
    table = Table.from_arrays(
        imsi=np.arange(rows, dtype=np.int64),
        dur=rng.integers(0, 3600, size=rows),
        bytes_up=rng.normal(size=rows),
    )
    partitions = 6 if quick else 12

    def write_all(durability: Durability) -> None:
        catalog = Catalog(store=BlockStore(), durability=durability)
        for month in range(partitions):
            catalog.save(table, "calls", partition=f"month={month}")

    direct = _median_time(lambda: write_all(Durability.disabled()), repeats)
    journaled = _median_time(lambda: write_all(Durability()), repeats)
    overhead = (
        (journaled - direct) / direct if direct > 0 else float("inf")
    )

    recovery_partitions = 50
    small = Table.from_arrays(
        imsi=np.arange(2_000, dtype=np.int64),
        dur=rng.integers(0, 3600, size=2_000),
    )
    store = BlockStore()
    warm = Catalog(store=store)
    for i in range(recovery_partitions):
        warm.save(small, "history", partition=f"month={i}")
    open_s = _median_time(lambda: Catalog.open(store), repeats)

    return {
        "direct_s": direct,
        "journaled_s": journaled,
        "journal_overhead_ratio": overhead,
        "budget": JOURNAL_BUDGET,
        "recovery_partitions": recovery_partitions,
        "open_s": open_s,
    }


def _planner_world(quick: bool, n_calls: int | None = None, n_cust: int | None = None):
    """The skewed multi-way-join world shared by the planner benchmarks.

    Returns ``(catalog, sql)``: two power-law fact tables joined to each
    other and through ``custs`` to a tiny filtered ``offers`` dimension,
    written in the worst join order.  ``bench_sharding`` reuses the same
    generator at its own scale-out sizes via the explicit row counts.
    """
    rng = np.random.default_rng(17)
    if n_calls is None:
        n_calls = 60_000 if quick else 150_000
    if n_cust is None:
        n_cust = 4_000 if quick else 10_000
    n_offer = 64

    # Power-law customer keys: a few heavy hitters dominate, so the
    # fact-to-fact join's output is far larger than either input — the
    # case where picking the wrong join order actually hurts.
    def skewed_keys(n):
        return (n_cust * rng.random(n) ** 2).astype(np.int64)

    calls = Table.from_arrays(
        cust=skewed_keys(n_calls),
        dur=rng.integers(0, 3600, size=n_calls),
    )
    events = Table.from_arrays(
        cust=skewed_keys(n_calls),
        bytes_dl=rng.integers(0, 10_000, size=n_calls),
    )
    custs = Table.from_arrays(
        id=np.arange(n_cust, dtype=np.int64),
        offer=rng.integers(0, n_offer, size=n_cust),
    )
    kinds = np.asarray(["std"] * n_offer, dtype=object)
    kinds[rng.choice(n_offer, size=4, replace=False)] = "promo"
    offers = Table.from_arrays(
        id=np.arange(n_offer, dtype=np.int64), kind=kinds
    )

    catalog = Catalog()
    catalog.save(calls, "calls")
    catalog.save(events, "events")
    catalog.save(custs, "custs")
    catalog.save(offers, "offers")

    sql = (
        "SELECT o.kind AS kind, SUM(c.dur) AS total_dur, COUNT(*) AS n "
        "FROM calls c JOIN events e ON c.cust = e.cust "
        "JOIN custs u ON c.cust = u.id "
        "JOIN offers o ON u.offer = o.id "
        "WHERE o.kind = 'promo' GROUP BY o.kind"
    )
    meta = {
        "rows_calls": n_calls,
        "rows_events": n_calls,
        "rows_custs": n_cust,
        "rows_offers": n_offer,
    }
    return catalog, sql, meta


def _norm_rows(table):
    cols = [table[c] for c in table.schema.names]
    return sorted(
        tuple(
            round(float(v), 6) if isinstance(v, (int, float, np.number))
            and not isinstance(v, (bool, np.bool_)) else v
            for v in row
        )
        for row in zip(*cols)
    )


def bench_planner(quick: bool, repeats: int):
    """Cost-based optimizer on a skewed multi-way join.

    Two fact tables (``calls`` and ``events``) share a power-law customer
    key; the query joins them to each other and through ``custs`` to a
    tiny ``offers`` dimension, filtering on the dimension — written in the
    worst order, fact-to-fact first.  With ``cost_based=False`` the plan
    executes as written and materializes the skewed many-to-many
    intermediate; with ``cost_based=True`` the binder's zone-map
    statistics let the CBO reorder smallest-build-first (dimension filter
    first) and pre-aggregate below the final join, so the blow-up never
    exists.  Both must return identical rows; the speedup is gated in CI
    (``scripts/check_bench_regression.py``).  ``estimate_error_*`` comes
    from the ``planner.estimate_error_q`` histogram of a fresh metrics
    registry: the q-error factor between estimated and actual rows per
    operator (1.0 = perfect).
    """
    from repro.dataplat.sql import SQLEngine
    from repro.dataplat.sql.executor import ESTIMATE_ERROR_BUCKETS

    catalog, sql, meta = _planner_world(quick)
    engines = {
        "off": SQLEngine(catalog, cost_based=False),
        "on": SQLEngine(catalog, cost_based=True),
    }
    times = {}
    results = {}
    for label, engine in engines.items():
        results[label] = engine.query(sql)  # warm caches before timing
        times[label] = _median_time(lambda e=engine: e.query(sql), repeats)

    assert _norm_rows(results["off"]) == _norm_rows(results["on"]), (
        "cost-based optimizer changed the query answer"
    )

    previous = observability.set_metrics(observability.MetricsRegistry())
    try:
        engines["on"].query(sql)
        hist = observability.get_metrics().histogram(
            "planner.estimate_error_q", boundaries=ESTIMATE_ERROR_BUCKETS
        )
        est_mean = hist.mean if hist.total else float("nan")
        est_max = hist.max if hist.total else float("nan")
        est_n = hist.total
    finally:
        observability.set_metrics(previous)

    return {
        **meta,
        "cbo_off_s": times["off"],
        "cbo_on_s": times["on"],
        "speedup": times["off"] / times["on"] if times["on"] > 0 else float("inf"),
        "estimate_error_mean_q": est_mean,
        "estimate_error_max_q": est_max,
        "estimate_error_observations": est_n,
    }


def bench_query_profiling(quick: bool, repeats: int):
    """EXPLAIN ANALYZE collector overhead plus the feedback loop's payoff.

    Runs the planner benchmark query with and without a
    :class:`~repro.dataplat.sql.profile.ProfileCollector` attached;
    ``overhead_ratio`` must stay under :data:`PROFILE_BUDGET` (gated by
    ``scripts/check_bench_regression.py``) — per-operator clock reads are
    nothing next to real join work.  The section also demonstrates the
    cardinality feedback loop: with ``feedback`` on, the second run of the
    same query plans with corrections learned from the first run's
    profile, and its mean q-error must drop.
    """
    from repro.dataplat.sql import SQLEngine

    catalog, sql, _ = _planner_world(quick)
    plain = SQLEngine(catalog, cost_based=True)
    profiled = SQLEngine(catalog, cost_based=True, profiling=True)

    baseline_rows = _norm_rows(plain.query(sql))  # warm caches
    assert _norm_rows(profiled.query(sql)) == baseline_rows, (
        "profiling changed the query answer"
    )
    unprofiled_s = _median_time(lambda: plain.query(sql), repeats)
    profiled_s = _median_time(lambda: profiled.query(sql), repeats)
    overhead = (
        (profiled_s - unprofiled_s) / unprofiled_s
        if unprofiled_s > 0
        else float("inf")
    )

    learner = SQLEngine(catalog, cost_based=True, feedback=True)
    learner.query(sql)
    q_first = learner.last_profile.mean_q_error()
    learner.query(sql)
    q_second = learner.last_profile.mean_q_error()

    return {
        "unprofiled_s": unprofiled_s,
        "profiled_s": profiled_s,
        "overhead_ratio": overhead,
        "budget": PROFILE_BUDGET,
        "operators": len(profiled.last_profile.operators),
        "q_error_mean_first_run": q_first,
        "q_error_mean_second_run": q_second,
        "feedback_keys": len(learner.feedback),
    }


def bench_serve(quick: bool):
    """Online scoring service under a seeded open-loop load.

    Drives :func:`load_gen.run_load` (the same entry point as the
    ``benchmarks/load_gen.py`` CLI): synthetic snapshot through the
    feature store, compact forest behind the model registry, Poisson
    arrivals micro-batched by the :class:`ScoringService`.  Arrival
    times are seeded; per-batch service time is measured wall-clock, so
    ``p99_ms``/``throughput_rps`` reflect real vectorized-predict
    latency.  The section carries its own hard floors (``floor``) and
    ``scripts/check_bench_regression.py`` gates on them.
    """
    from load_gen import run_load

    if quick:
        return run_load(population=2000, rate_rps=6000.0, duration_s=1.0)
    return run_load(population=5000, rate_rps=6000.0, duration_s=2.0)


def bench_sharding(quick: bool, repeats: int):
    """Scatter-gather SQL and wide-table build on a 4-shard catalog.

    Part one replays the skewed planner world — at a scale where the
    monolithic fact-to-fact join's materialized intermediate stops
    fitting cache — on a single-shard :class:`SQLEngine` versus a 4-shard
    :class:`ShardedSQLEngine` (cost-based off on both sides, so the plan
    shape is identical and only the partitioning differs).  Shard-local
    joins build four small hash tables over co-partitioned keys and the
    decomposable aggregate is pushed below the gather, so the speedup has
    two independent sources: smaller working sets per shard (visible even
    on one core, via ``serial``) and true parallelism (``process``).  The
    gate takes the best backend because a single-core CI box cannot show
    the second effect.  All three answers must be identical rows.

    Part two is the paper-scale claim: a 500k-customer wide-table-style
    build (per-imsi join + group-by, the F1 shape) through the sharded
    engine, traced, with the per-shard spans recorded into a
    ``__telemetry`` warehouse.  It must finish inside
    ``SHARDING_WIDETABLE_BUDGET_S`` and land at least one span per shard.
    """
    from repro.dataplat.observability import Span
    from repro.dataplat.sharding import ShardedCatalog
    from repro.dataplat.sql import ShardedSQLEngine, SQLEngine
    from repro.dataplat.telemetry import TELEMETRY_DATABASE, TelemetryWarehouse

    num_shards = 4
    n_calls = 150_000 if quick else 200_000
    n_cust = 5_000 if quick else 6_000
    catalog, sql, meta = _planner_world(quick, n_calls=n_calls, n_cust=n_cust)

    sharded = ShardedCatalog(num_shards=num_shards, shard_key="cust")
    for name in ("calls", "events", "custs", "offers"):
        sharded.save(catalog.load(name), name)

    pool = ProcessPoolBackend(max_workers=num_shards)
    engines = {
        "single": SQLEngine(catalog, cost_based=False),
        "serial": ShardedSQLEngine(
            sharded, cost_based=False, backend=SerialBackend()
        ),
        "process": ShardedSQLEngine(sharded, cost_based=False, backend=pool),
    }
    # The monolithic side runs tens of seconds by design (the blow-up is
    # the point), so cap this section's repeats to keep quick mode quick.
    sh_repeats = max(1, min(repeats, 2))
    results = {}
    times = {}
    for label, engine in engines.items():
        results[label] = engine.query(sql)  # warm caches before timing
        times[label] = _median_time(lambda e=engine: e.query(sql), sh_repeats)
    for label in ("serial", "process"):
        assert _norm_rows(results[label]) == _norm_rows(results["single"]), (
            f"sharded ({label}) scatter-gather changed the query answer"
        )

    speedup_serial = times["single"] / times["serial"]
    speedup_process = times["single"] / times["process"]

    # Part two: 500k-customer wide-table-style build, traced end to end.
    n_imsi = 500_000
    rows_cdr = 3 * n_imsi
    rng = np.random.default_rng(29)
    users = Table.from_arrays(
        imsi=np.arange(n_imsi, dtype=np.int64),
        age=rng.integers(18, 80, size=n_imsi),
    )
    cdr = Table.from_arrays(
        imsi=rng.integers(0, n_imsi, size=rows_cdr).astype(np.int64),
        dur=rng.integers(0, 3600, size=rows_cdr),
        sms=rng.integers(0, 20, size=rows_cdr),
    )
    wide_sql = (
        "SELECT u.imsi AS imsi, u.age AS age, SUM(c.dur) AS total_dur, "
        "COUNT(*) AS n_calls, SUM(c.sms) AS total_sms "
        "FROM users u JOIN cdr c ON u.imsi = c.imsi "
        "GROUP BY u.imsi, u.age ORDER BY imsi"
    )
    wide_sharded = ShardedCatalog(num_shards=num_shards, shard_key="imsi")
    wide_sharded.save(users, "users")
    wide_sharded.save(cdr, "cdr")
    wide_engine = ShardedSQLEngine(
        wide_sharded, cost_based=False, backend=pool
    )

    tracer = observability.Tracer()
    previous = observability.set_tracer(tracer)
    try:
        start = time.perf_counter()
        wide = wide_engine.query(wide_sql)
        widetable_s = time.perf_counter() - start
    finally:
        observability.set_tracer(previous)

    wide_catalog = Catalog()
    wide_catalog.save(users, "users")
    wide_catalog.save(cdr, "cdr")
    reference = SQLEngine(wide_catalog, cost_based=False).query(wide_sql)
    widetable_identical = list(wide.schema.names) == list(
        reference.schema.names
    ) and all(
        np.array_equal(np.asarray(wide[c]), np.asarray(reference[c]))
        for c in wide.schema.names
    )

    # The spans land in the __telemetry warehouse like any pipeline run.
    warehouse = TelemetryWarehouse(git_sha=_git_sha())
    warehouse.record_spans(
        "bench-sharding", 1, [Span.from_dict(d) for d in tracer.export()]
    )
    spans = warehouse.catalog.load("spans", database=TELEMETRY_DATABASE)
    span_names = list(spans.schema.names)
    shard_spans = sum(
        1
        for values in spans.rows()
        if "shard" in str(dict(zip(span_names, values)).get("tags", ""))
    )

    pool.close()
    return {
        "num_shards": num_shards,
        "world": meta,
        "single_s": times["single"],
        "serial_sharded_s": times["serial"],
        "process_sharded_s": times["process"],
        "speedup_serial": speedup_serial,
        "speedup_process": speedup_process,
        "speedup": max(speedup_serial, speedup_process),
        "speedup_floor": SHARDING_SPEEDUP_FLOOR,
        "shard_rows_calls": sharded.shard_rows("calls"),
        "widetable_customers": n_imsi,
        "widetable_rows": wide.num_rows,
        "widetable_s": widetable_s,
        "widetable_budget_s": SHARDING_WIDETABLE_BUDGET_S,
        "widetable_identical": bool(widetable_identical),
        "shard_spans": shard_spans,
    }


def _append_history(path: pathlib.Path, result: dict) -> None:
    """Append one compact trend line for this run to ``BENCH_history.jsonl``.

    The line carries the schema version, git sha and the headline numbers
    the regression gate trends on — enough to plot trajectories without
    parsing full BENCH_micro.json snapshots.
    """
    entry = {
        "schema_version": result["meta"]["schema_version"],
        "git_sha": result["meta"]["git_sha"],
        "quick": result["meta"]["quick"],
        "columnar_scan_speedup": result["columnar_scan"]["speedup"],
        "planner_speedup": result["planner"]["speedup"],
        "planner_q_error_mean": result["planner"]["estimate_error_mean_q"],
        "journal_overhead_ratio": result["recovery"]["journal_overhead_ratio"],
        "sink_overhead_ratio": result["telemetry_sink"]["overhead_ratio"],
        "profiling_overhead_ratio": result["query_profiling"]["overhead_ratio"],
        "serve_rps": result["serve"]["throughput_rps"],
        "serve_p99_ms": result["serve"]["p99_ms"],
        "sharding_speedup": result["sharding"]["speedup"],
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--workers", type=int, default=0, help="pool size (0 = per CPU)"
    )
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument("--repeats", type=int, default=0, help="0 = auto")
    parser.add_argument(
        "--history",
        type=pathlib.Path,
        default=HISTORY_PATH,
        help="JSONL file appended with one summary line per run",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip appending this run to the history file",
    )
    args = parser.parse_args(argv)

    repeats = args.repeats or (3 if args.quick else 5)
    pool = ProcessPoolBackend(max_workers=args.workers)
    backends = {"serial": SerialBackend(), "parallel": pool}

    scale = (
        ScaleConfig(population=400, months=4, seed=5)
        if args.quick
        else ScaleConfig(population=1500, months=4, seed=5)
    )
    world = TelcoSimulator(scale).run()

    ops = {}
    ops.update(bench_forest(backends, args.quick, repeats))
    ops.update(bench_dataset(backends, args.quick, repeats))
    ops.update(bench_widetable(world, backends, repeats))
    for name, times in ops.items():
        times["speedup"] = (
            times["serial"] / times["parallel"]
            if times["parallel"] > 0
            else float("inf")
        )

    cache = bench_catalog_scan(world, repeats)
    columnar = bench_columnar_scan(args.quick, repeats)
    tracing = bench_tracing_overhead(args.quick, repeats)
    telemetry_sink = bench_telemetry_sink(world, scale, args.quick)
    recovery = bench_recovery(args.quick, repeats)
    planner = bench_planner(args.quick, repeats)
    query_profiling = bench_query_profiling(args.quick, repeats)
    serve = bench_serve(args.quick)
    sharding = bench_sharding(args.quick, repeats)
    pool.close()

    result = {
        "meta": {
            "schema_version": BENCH_SCHEMA_VERSION,
            "git_sha": _git_sha(),
            "quick": args.quick,
            "workers": pool.parallelism,
            "cpu_count": os.cpu_count(),
            "repeats": repeats,
            "pool_fallbacks": pool.fallbacks,
        },
        "ops": {
            name: {
                "serial_s": times["serial"],
                "parallel_s": times["parallel"],
                "speedup": times["speedup"],
            }
            for name, times in ops.items()
        },
        "cache": cache,
        "columnar_scan": columnar,
        "tracing": tracing,
        "telemetry_sink": telemetry_sink,
        "recovery": recovery,
        "planner": planner,
        "query_profiling": query_profiling,
        "serve": serve,
        "sharding": sharding,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    if not args.no_history:
        _append_history(args.history, result)
    print(json.dumps(result, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
