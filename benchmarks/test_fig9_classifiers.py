"""Benchmark for Figure 9 — classifier comparison.

Paper shape: RF slightly (<3%) ahead of GBDT / LIBFM / LIBLINEAR on the
same baseline features; "the classifiers are not as important as the
features" — all four land in a narrow band.
"""

from repro.core import experiments as ex
from repro.core import reporting as rep


def test_fig9_classifiers(benchmark, bench_world, bench_cfg, report_sink):
    rows = benchmark.pedantic(
        ex.fig9_classifiers,
        kwargs={
            "world": bench_world,
            "scale": bench_cfg.scale,
            "model": bench_cfg.model,
            "test_months": [6, 7, 8],
        },
        rounds=1,
        iterations=1,
    )
    report_sink("fig9_classifiers", rep.report_fig9(rows))
    aucs = {r["classifier"]: r["auc"] for r in rows}
    prs = {r["classifier"]: r["pr_auc"] for r in rows}
    assert set(aucs) == {"rf", "gbdt", "liblinear", "libfm"}
    # Every classifier learns the task.
    assert min(aucs.values()) > 0.78
    # Tree ensembles are at (or within 3% AUC of) the top — the paper's
    # "RF slightly better, <3%" finding.
    best = max(aucs.values())
    assert max(aucs["rf"], aucs["gbdt"]) >= best - 0.01
    assert aucs["rf"] >= best - 0.03
    # The spread is narrow: features dominate classifiers.
    assert best - min(aucs.values()) < 0.08
    assert max(prs.values()) - min(prs.values()) < 0.2
