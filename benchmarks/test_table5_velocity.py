"""Benchmark for Table 5 — Velocity.

Paper shape: refreshing features/classifier more often (30 → 5 day stride)
improves PR-AUC monotonically; the paper's gains are small (<1%) because
their signal is mostly persistent — ours are larger because the synthetic
world's churn is more abrupt (documented in EXPERIMENTS.md).
"""

import numpy as np

from repro.core import experiments as ex
from repro.core import reporting as rep


def test_table5_velocity(benchmark, bench_pipeline, report_sink):
    rows = benchmark.pedantic(
        ex.table5_velocity,
        kwargs={"pipeline": bench_pipeline},
        rounds=1,
        iterations=1,
    )
    report_sink("table5_velocity", rep.report_table5(rows))
    assert [r["stride_days"] for r in rows] == [30, 20, 10, 5]
    prs = np.asarray([r["pr_auc"] for r in rows])
    # Fresher pipelines are better, monotonically (small tolerance for the
    # finite-sample noise of neighbouring strides).
    assert prs[-1] > prs[0]
    assert np.all(np.diff(prs) > -0.01)
    # The 30-day baseline already works (far above the ~9% base rate).
    assert rows[0]["pr_auc"] > 0.12
