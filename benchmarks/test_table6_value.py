"""Benchmark for Table 6 — business value of churn prediction + retention.

Paper shape (A/B test, months 8 and 9):

* group A (no offers): very low recharge rates in the top-50k tier, higher
  in the 50k–100k tier (lower precision there);
* group B month 8 (expert offers): recharge rates jump by an order of
  magnitude over group A;
* group B month 9 (matched offers): higher still — the closed loop pays.
"""

from repro.core import experiments as ex
from repro.core import reporting as rep


def _pooled_rate(campaign, group: str) -> float:
    total = sum(c.total for c in campaign.outcomes if c.group == group)
    hit = sum(c.recharged for c in campaign.outcomes if c.group == group)
    return hit / max(total, 1)


def test_table6_value(benchmark, bench_full_pipeline, report_sink):
    campaigns = benchmark.pedantic(
        ex.table6_value,
        kwargs={"pipeline": bench_full_pipeline, "seed": 5},
        rounds=1,
        iterations=1,
    )
    report_sink("table6_value", rep.report_table6(campaigns))
    expert, matched = campaigns
    assert expert.strategy == "expert"
    assert matched.strategy == "matched"

    # Control rates stay low; top tier is purer than the second tier.
    for campaign in campaigns:
        assert _pooled_rate(campaign, "A") < 0.2
        assert campaign.rate("A", "top50k") <= campaign.rate("A", "50k-100k") + 0.03

    # Offers lift recharge rates well past control (paper: ~2% → ~18-30%;
    # our control rates sit higher because the second tier's precision is
    # lower at this scale, so more non-churners recharge naturally).
    assert _pooled_rate(expert, "B") > 1.5 * _pooled_rate(expert, "A")
    assert _pooled_rate(matched, "B") > 1.5 * _pooled_rate(matched, "A")
    # In the pure top tier the lift is stark.
    assert expert.rate("B", "top50k") > 2 * expert.rate("A", "top50k")
    assert matched.rate("B", "top50k") > 2 * matched.rate("A", "top50k")

    # The matched campaign beats expert rules of thumb (paper: 18.5% → 30.8%
    # in the top tier); pooled across tiers with a noise margin.
    assert _pooled_rate(matched, "B") > _pooled_rate(expert, "B") - 0.02
