"""Chaos benchmark: graceful PR-AUC degradation under injected faults.

Runs the bench-scale pipeline three ways — plain, resilient-with-zero-
faults, and resilient under seeded chaos (transient read failures, a dead
datanode, a corrupted replica, a lost feature-family feed) — and reports
metric deltas plus the resilience accounting.  The zero-fault run must be
bit-identical to the plain run (resilience is free when nothing fails);
the chaos run must degrade boundedly, Table 2 scale: one family's lift.
"""

from __future__ import annotations

import numpy as np

from repro import ChurnPipeline
from repro.core.window import WindowSpec
from repro.dataplat import BlockStore, Catalog, CatalogTableSource
from repro.dataplat.resilience import FaultInjector, FaultPolicy, RetryPolicy

FAULT_SEED = 7
WINDOW = WindowSpec((4, 5), 6)
CATEGORIES = ("F1", "F3")


def _resilient_pipeline(bench_world, bench_cfg, injector):
    store = BlockStore(
        num_nodes=4,
        replication=3,
        fault_injector=injector,
        retry_policy=RetryPolicy(max_attempts=8, seed=FAULT_SEED),
    )
    catalog = Catalog(store)
    bench_world.load_catalog(catalog)
    catalog.clear_cache()
    pipeline = ChurnPipeline(
        bench_world,
        bench_cfg.scale,
        categories=CATEGORIES,
        model=bench_cfg.model,
        seed=3,
        table_source=CatalogTableSource(catalog).tables_for,
        store=store,
        allow_degraded=True,
    )
    return pipeline, catalog, store


def test_chaos_degradation(bench_world, bench_cfg, report_sink):
    plain = ChurnPipeline(
        bench_world,
        bench_cfg.scale,
        categories=CATEGORIES,
        model=bench_cfg.model,
        seed=3,
    ).run_window(WINDOW)

    calm, _, _ = _resilient_pipeline(
        bench_world, bench_cfg, FaultInjector.disabled()
    )
    calm_result = calm.run_window(WINDOW)
    assert np.array_equal(calm_result.scores, plain.scores)
    assert not calm_result.health.degraded

    injector = FaultInjector(
        FaultPolicy(read_failure_rate=0.05), seed=FAULT_SEED
    )
    chaotic, catalog, store = _resilient_pipeline(
        bench_world, bench_cfg, injector
    )
    victim = next(
        p for p in store.list_files("/warehouse/telco") if "month_5" in p
    )
    status = store.status(victim)
    store.corrupt_block(victim, 0, status.blocks[0].replicas[0])
    store.kill_node(status.blocks[0].replicas[1])
    catalog.drop("ps_kpi", database="telco")
    chaos_result = chaotic.run_window(WINDOW)
    health = chaos_result.health

    assert health.degraded and set(health.families_dropped) == {"F3"}
    assert health.repaired_replicas >= 1
    assert chaos_result.pr_auc >= plain.pr_auc - 0.30
    assert chaos_result.auc > 0.6

    lines = [
        "Chaos benchmark (seeded fault injection, bench-scale world)",
        f"  {'run':<22} {'AUC':>6} {'PR-AUC':>7}",
        f"  {'plain':<22} {plain.auc:>6.3f} {plain.pr_auc:>7.3f}",
        f"  {'resilient, 0 faults':<22} {calm_result.auc:>6.3f} "
        f"{calm_result.pr_auc:>7.3f}  (bit-identical to plain)",
        f"  {'resilient, chaos':<22} {chaos_result.auc:>6.3f} "
        f"{chaos_result.pr_auc:>7.3f}  [{health.status}]",
        "",
    ]
    lines.extend("  " + line for line in health.render().splitlines())
    report_sink("resilience_chaos", "\n".join(lines))
