"""Benchmark for Table 2 — Variety.

Paper shape: every OSS/derived family lifts PR-AUC over the BSS baseline;
the strong tier is {PS KPIs, CS KPIs, co-occurrence graph} and the weak
tier is {complaint topics, message graph}.  Exact percentages are scale-
sensitive (the paper averages over 2.1M customers; we run ~6k), so the
assertions are tier-based.
"""

import numpy as np

from repro.core import experiments as ex
from repro.core import reporting as rep


def test_table2_variety(benchmark, bench_pipeline, report_sink):
    rows = benchmark.pedantic(
        ex.table2_variety,
        kwargs={"pipeline": bench_pipeline},
        rounds=1,
        iterations=1,
    )
    report_sink("table2_variety", rep.report_table2(rows))
    lifts = {r["family"]: r["delta_pr_auc"] for r in rows if r["family"] != "F1"}
    baseline = next(r for r in rows if r["family"] == "F1")

    # Baseline in the paper's band (AUC 0.875 / PR-AUC 0.541).
    assert abs(baseline["auc"] - 0.875) < 0.04
    assert abs(baseline["pr_auc"] - 0.541) < 0.1

    # At 6k customers the per-family percentages compress hard relative to
    # the paper's 2.1M-customer averages (EXPERIMENTS.md discusses why), so
    # the assertions target the robust core of Table 2's shape:
    strong = [lifts["F2"], lifts["F3"], lifts["F6"]]
    weak = [lifts["F5"], lifts["F7"]]
    # The OSS-KPI/co-occurrence tier beats the complaint/message tier.
    assert np.mean(strong) > np.mean(weak)
    # The paper's two headline OSS families genuinely add signal.
    assert lifts["F3"] > 0
    assert lifts["F6"] > 0
    # No family is catastrophic — adding features never wrecks the model.
    assert min(lifts.values()) > -0.06
    # The message graph is never the top contributor (OTT killed SMS).
    assert lifts["F5"] < max(lifts.values())
