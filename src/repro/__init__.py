"""repro — a full reproduction of "Telco Churn Prediction with Big Data".

SIGMOD 2015, Huang et al. (Huawei Noah's Ark Lab / Soochow University).

The package rebuilds the paper's whole stack in Python:

* :mod:`repro.dataplat` — a mini big-data platform (block store, columnar
  tables, partitioned datasets, SQL engine, Hive-like catalog, ETL);
* :mod:`repro.datagen` — a synthetic telco world whose BSS/OSS tables and
  churn outcomes share calibrated latent drivers;
* :mod:`repro.ml` — from-scratch learners: random forest, GBDT, logistic
  regression, factorization machines, LDA, PageRank, label propagation;
* :mod:`repro.features` — the paper's nine feature families F1..F9;
* :mod:`repro.core` — churn labeling, the sliding-window protocol, the
  end-to-end pipeline, retention campaigns, and one experiment runner per
  table/figure of the paper.

Quickstart::

    from repro import RunConfig, TelcoSimulator, ChurnPipeline
    cfg = RunConfig.small()
    world = TelcoSimulator(cfg.scale).run()
    pipeline = ChurnPipeline(world, cfg.scale, model=cfg.model)
    results = pipeline.run_windows(n_train_months=1, test_months=[6])
    print(results[0].auc, results[0].pr_auc)
"""

from .config import ModelConfig, PaperConstants, RunConfig, ScaleConfig, PAPER
from .core import ChurnPipeline, ChurnPredictor, RetentionCampaign
from .datagen import SignalWeights, TelcoSimulator, TelcoWorld
from .features import WideTableBuilder

__version__ = "1.0.0"

__all__ = [
    "ChurnPipeline",
    "ChurnPredictor",
    "ModelConfig",
    "PAPER",
    "PaperConstants",
    "RetentionCampaign",
    "RunConfig",
    "ScaleConfig",
    "SignalWeights",
    "TelcoSimulator",
    "TelcoWorld",
    "WideTableBuilder",
    "__version__",
]
