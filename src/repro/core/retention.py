"""Retention campaigns with closed-loop offer matching (Sections 4.3, 5.5).

The monthly cycle reproduced here:

1. The churn model scores every active customer and the top-U list becomes
   the campaign's target population for the coming month.
2. An A/B split holds out group A (no offers); group B receives one of the
   four prepaid recharge offers.
3. In the first campaign month the offers follow operator *domain
   knowledge*; the observed accept/reject outcomes become multi-class
   labels.
4. A multi-class RF matcher is trained on those outcomes — churn features
   plus label-propagated campaign results on the three social graphs (the
   closed loop) — and assigns offers in the next month's campaign.

Recharge rates per group/tier reproduce Table 6's structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ModelConfig, ScaleConfig
from ..datagen.offers import (
    N_OFFERS,
    AcceptanceModel,
    expert_assignment,
    simulate_campaign,
)
from ..errors import ExperimentError
from ..ml.forest import OneVsRestForest
from ..ml.graphalgo import label_propagation
from .pipeline import ChurnPipeline
from .window import WindowSpec

#: Paper tier boundaries: top 50k and 50k..100k of the ranked list.
TIER_BOUNDS = (50_000, 100_000)


@dataclass
class TierOutcome:
    """Recharge outcome of one (group, tier) cell — a Table 6 cell."""

    group: str
    tier: str
    total: int
    recharged: int

    @property
    def rate(self) -> float:
        return self.recharged / self.total if self.total else 0.0


@dataclass
class CampaignResult:
    """All cells for one campaign month plus matcher training data."""

    month: int
    strategy: str  # "expert" or "matched"
    outcomes: list[TierOutcome]
    #: Slots of group-B customers and the offers/labels they produced.
    treated_slots: np.ndarray = field(repr=False)
    treated_offers: np.ndarray = field(repr=False)
    treated_labels: np.ndarray = field(repr=False)

    def rate(self, group: str, tier: str) -> float:
        for cell in self.outcomes:
            if cell.group == group and cell.tier == tier:
                return cell.rate
        raise ExperimentError(f"no cell for group={group!r} tier={tier!r}")


class RetentionCampaign:
    """Runs the two-month campaign study of Section 5.5."""

    def __init__(
        self,
        pipeline: ChurnPipeline,
        acceptance: AcceptanceModel | None = None,
        matcher_config: ModelConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.pipeline = pipeline
        self.acceptance = (
            acceptance
            if acceptance is not None
            else AcceptanceModel(
                nonchurner_recharge=0.35, churner_natural_recharge=0.01
            )
        )
        self.matcher_config = (
            matcher_config if matcher_config is not None else pipeline.model
        )
        self.seed = seed
        self._matcher: OneVsRestForest | None = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run_study(self, months: tuple[int, int] | None = None) -> list[CampaignResult]:
        """Expert campaign in the first month, matched in the second."""
        world = self.pipeline.world
        if months is None:
            months = (world.n_months - 1, world.n_months)
        first, second = months
        if second != first + 1:
            raise ExperimentError(
                f"campaign months must be consecutive, got {months}"
            )
        expert = self.run_campaign(first, strategy="expert")
        self.train_matcher(expert)
        matched = self.run_campaign(second, strategy="matched")
        return [expert, matched]

    def run_campaign(self, campaign_month: int, strategy: str) -> CampaignResult:
        """One campaign wave targeting the churners of ``campaign_month``."""
        if strategy not in ("expert", "matched"):
            raise ExperimentError(f"unknown strategy {strategy!r}")
        if strategy == "matched" and self._matcher is None:
            raise ExperimentError("matched campaigns need train_matcher() first")
        world = self.pipeline.world
        scale = self.pipeline.scale
        feature_month = campaign_month - 1
        if feature_month < 2:
            raise ExperimentError(
                f"campaign month {campaign_month} leaves no training window"
            )
        rng = np.random.default_rng(self.seed + campaign_month)

        # Score the active base with a one-month window ending just before
        # the campaign, exactly as Figure 6 prescribes.
        spec = WindowSpec((feature_month - 1,), feature_month)
        result = self.pipeline.run_window(spec)
        order = np.argsort(-result.scores, kind="mergesort")
        u_hi = min(scale.scaled_u(TIER_BOUNDS[0]), len(order))
        u_lo = min(scale.scaled_u(TIER_BOUNDS[1]), len(order))
        target_rows = order[:u_lo]
        tier_names = np.where(
            np.arange(len(target_rows)) < u_hi, "top50k", "50k-100k"
        )
        slots = result.test_slots[target_rows]
        is_churner = result.labels[target_rows].astype(bool)

        month_truth = world.month(feature_month)
        if month_truth.offer_class is None:
            raise ExperimentError("world lacks offer-affinity snapshots")
        affinity = month_truth.offer_class[slots]

        # A/B split.
        in_b = rng.random(len(slots)) < 0.5
        offered = np.zeros(len(slots), dtype=np.int64)
        if strategy == "expert":
            features = self.pipeline.builder.features(
                feature_month, ("F1",)
            )
            voice = features.column("voice_dur")[slots]
            data = features.column("gprs_all_flux")[slots]
            offered[in_b] = expert_assignment(voice[in_b], data[in_b], rng)
        else:
            x = self._matcher_features(feature_month, slots)
            predicted = self._matcher.predict(x)  # type: ignore[union-attr]
            # Class 0 = "refuses all"; still send the most likely paid offer.
            proba = self._matcher.predict_proba(x)  # type: ignore[union-attr]
            best_paid = 1 + proba[:, 1:].argmax(axis=1)
            chosen = np.where(predicted == 0, best_paid, predicted)
            offered[in_b] = chosen[in_b]

        recharged = simulate_campaign(
            affinity, is_churner, offered, rng, self.acceptance
        )

        outcomes = []
        for group, mask in (("A", ~in_b), ("B", in_b)):
            for tier in ("top50k", "50k-100k"):
                cell = mask & (tier_names == tier)
                outcomes.append(
                    TierOutcome(
                        group=group,
                        tier=tier,
                        total=int(cell.sum()),
                        recharged=int(recharged[cell].sum()),
                    )
                )
        labels = np.where(recharged & in_b, offered, 0)
        return CampaignResult(
            month=campaign_month,
            strategy=strategy,
            outcomes=outcomes,
            treated_slots=slots[in_b],
            treated_offers=offered[in_b],
            treated_labels=labels[in_b],
        )

    def train_matcher(self, campaign: CampaignResult) -> None:
        """Fit the multi-class offer matcher from campaign outcomes."""
        feature_month = campaign.month - 1
        x = self._matcher_features(
            feature_month, campaign.treated_slots, campaign
        )
        y = campaign.treated_labels
        matcher = OneVsRestForest(
            n_classes=N_OFFERS + 1,
            n_trees=max(10, self.matcher_config.n_trees // 2),
            min_samples_leaf=max(5, self.matcher_config.min_samples_leaf // 2),
            max_depth=self.matcher_config.max_depth,
            seed=self.seed,
        )
        matcher.fit(x, y)
        self._matcher = matcher

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _matcher_features(
        self,
        feature_month: int,
        slots: np.ndarray,
        campaign: CampaignResult | None = None,
    ) -> np.ndarray:
        """Churn features + label-propagated campaign results (closed loop).

        The 3 × C propagation features spread the previous campaign's offer
        acceptances over the call/message/co-occurrence graphs: customers
        with close relationships tend to accept similar offers.
        """
        world = self.pipeline.world
        base = self.pipeline.builder.features(feature_month, ("F1",))
        x = base.values[slots]
        reference = campaign if campaign is not None else self._last_campaign
        if reference is not None:
            seeds = {
                int(slot): int(label)
                for slot, label in zip(
                    reference.treated_slots.tolist(),
                    reference.treated_labels.tolist(),
                )
            }
            blocks = []
            for graph in world.graphs.values():
                beliefs = label_propagation(
                    graph.edges,
                    graph.weights,
                    graph.n_nodes,
                    seeds,
                    n_classes=N_OFFERS + 1,
                    max_iter=15,
                )
                blocks.append(beliefs[slots])
            x = np.hstack([x] + blocks)
        if campaign is not None:
            self._last_campaign = campaign
        return x

    _last_campaign: CampaignResult | None = None
