"""Customer-centric network optimization — the Figure-2 network application.

Section 5.3 of the paper, after finding that CS/PS service quality drives
churn: *"We can use a customer-centric network optimization solution to
improve KPI/KQI experiences of potential churners."*  This module closes
that loop:

1. score the base with the full churn model and take the top of the list;
2. attribute each potential churner's risk to causes
   (:mod:`~repro.core.rootcause`) and keep those leaving over *service
   quality* — cashback will not retain a customer whose pages will not
   load;
3. apply a :class:`~repro.datagen.simulator.QualityIntervention` (fix their
   cells) and re-simulate the same world seed — the simulator consumes an
   identical RNG stream either way, so the two runs are a matched
   counterfactual pair;
4. report churn avoided among the treated vs the untreated comparison
   group.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ModelConfig, ScaleConfig
from ..datagen.simulator import (
    QualityIntervention,
    SignalWeights,
    TelcoSimulator,
    TelcoWorld,
)
from ..errors import ExperimentError
from ..features.spec import ALL_CATEGORIES
from .pipeline import ChurnPipeline
from .rootcause import RootCauseAnalyzer
from .window import WindowSpec

#: Cause groups that a network fix can address.
QUALITY_CAUSES = ("data_service_quality", "voice_service_quality")


@dataclass
class NetworkOptimizationReport:
    """Outcome of one counterfactual network-optimization study."""

    start_month: int
    horizon_months: int
    treated_slots: np.ndarray
    comparison_slots: np.ndarray
    treated_baseline_churn: int
    treated_intervened_churn: int
    comparison_baseline_churn: int
    comparison_intervened_churn: int

    @property
    def churn_avoided(self) -> int:
        return self.treated_baseline_churn - self.treated_intervened_churn

    @property
    def treated_reduction(self) -> float:
        base = max(self.treated_baseline_churn, 1)
        return self.churn_avoided / base

    @property
    def comparison_drift(self) -> int:
        """Churn change among untreated targets (should be ≈ 0)."""
        return (
            self.comparison_baseline_churn - self.comparison_intervened_churn
        )

    def render(self) -> str:
        first = self.start_month + 1
        lines = [
            "Network optimization study "
            f"(cells fixed in month {self.start_month}; churn measured "
            f"months {first}..{first + self.horizon_months - 1})",
            f"  treated (quality-cause churn risks): {len(self.treated_slots)}",
            f"    churn without intervention: {self.treated_baseline_churn}",
            f"    churn with cell fixes:      {self.treated_intervened_churn}"
            f"  ({self.treated_reduction:.0%} avoided)",
            f"  comparison (other-cause churn risks): {len(self.comparison_slots)}",
            f"    churn without intervention: {self.comparison_baseline_churn}",
            f"    churn with cell fixes:      {self.comparison_intervened_churn}"
            f"  (drift {self.comparison_drift:+d})",
        ]
        return "\n".join(lines)


def churn_events(world: TelcoWorld, slots: np.ndarray, months: range) -> int:
    """Churn events among ``slots`` over ``months`` (churning_now counts)."""
    total = 0
    for month in months:
        total += int(world.month(month).churning_now[slots].sum())
    return total


def run_network_optimization_study(
    scale: ScaleConfig,
    weights: SignalWeights | None = None,
    model: ModelConfig | None = None,
    start_month: int | None = None,
    target_u: int = 100_000,
    improvement: float = 1.5,
    seed: int = 0,
) -> NetworkOptimizationReport:
    """The full counterfactual study on a fresh world at ``scale``.

    ``target_u`` is a paper-scale cutoff (translated through
    ``scale.scaled_u``); ``improvement`` is the latent quality gain of a
    cell fix, in standard deviations.
    """
    if model is None:
        model = ModelConfig()
    simulator = TelcoSimulator(scale, weights)
    baseline = simulator.run()
    if start_month is None:
        start_month = baseline.n_months // 2 + 1
    if not 3 <= start_month <= baseline.n_months - 1:
        raise ExperimentError(
            f"start_month must be in 3..{baseline.n_months - 1}, "
            f"got {start_month}"
        )

    # 1-2. Score and attribute on data available *before* the intervention.
    pipeline = ChurnPipeline(baseline, scale, model=model, seed=seed)
    feature_month = start_month - 1
    spec = WindowSpec((feature_month - 1,), feature_month)
    result = pipeline.run_window(spec, categories=ALL_CATEGORIES)
    features = pipeline.builder.features(feature_month, ALL_CATEGORIES).values[
        result.test_slots
    ]
    analyzer = RootCauseAnalyzer(result, features)
    u = min(scale.scaled_u(target_u), len(result.scores))
    attributions = analyzer.attribute_top(u)
    treated = np.asarray(
        [a.slot for a in attributions if a.dominant_cause in QUALITY_CAUSES],
        dtype=np.int64,
    )
    comparison = np.asarray(
        [a.slot for a in attributions if a.dominant_cause not in QUALITY_CAUSES],
        dtype=np.int64,
    )
    if len(treated) == 0:
        raise ExperimentError(
            "no quality-cause churn risks found in the target list"
        )

    # 3. The matched counterfactual run.  Reusing the baseline's absolute
    # risk thresholds keeps the churn bar fixed: without this, the monthly
    # quantile would re-adjust and avoided churn would displace onto
    # untreated customers.
    intervened = simulator.run(
        QualityIntervention(
            start_month=start_month,
            slots=treated,
            ps_improvement=improvement,
            cs_improvement=improvement,
        ),
        fixed_thresholds=baseline.risk_thresholds,
    )

    # 4. Compare realized churn over the remaining horizon.  Churn *in*
    # the start month was decided the month before, so the first month the
    # intervention can move is start_month + 1.
    months = range(start_month + 1, baseline.n_months + 1)
    return NetworkOptimizationReport(
        start_month=start_month,
        horizon_months=len(months),
        treated_slots=treated,
        comparison_slots=comparison,
        treated_baseline_churn=churn_events(baseline, treated, months),
        treated_intervened_churn=churn_events(intervened, treated, months),
        comparison_baseline_churn=churn_events(baseline, comparison, months),
        comparison_intervened_churn=churn_events(intervened, comparison, months),
    )
