"""Production monitoring for the deployed churn system.

The paper's platform retrains monthly and serves campaign lists
continuously; a deployment like that lives or dies on monitoring.  This
module implements the standard checks an operator runs between retrains:

* **feature drift** — population stability index (PSI) of every feature
  between a reference month and the current month;
* **score drift** — PSI of the model's churn-likelihood distribution;
* **label-rate drift** — the realized churn rate against the training
  baseline;
* a combined :class:`ModelMonitor` that renders one operator report and
  raises tiered alerts (the conventional PSI bands: <0.1 stable,
  0.1-0.25 drifting, >0.25 shifted).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataplat.resilience import PipelineHealthReport
from ..errors import ExperimentError

#: Conventional PSI alert bands.
PSI_WATCH = 0.1
PSI_ALERT = 0.25


def population_stability_index(
    reference: np.ndarray,
    current: np.ndarray,
    n_bins: int = 10,
) -> float:
    """PSI between two samples of one feature.

    Bins are deciles of the *reference* sample; both distributions are
    smoothed so empty bins never produce infinities.
    """
    reference = np.asarray(reference, dtype=np.float64)
    current = np.asarray(current, dtype=np.float64)
    if len(reference) == 0 or len(current) == 0:
        raise ExperimentError("PSI requires non-empty samples")
    if n_bins < 2:
        raise ExperimentError(f"n_bins must be >= 2, got {n_bins}")
    if reference.max() == reference.min():
        # Constant reference feature: any change at all is a full shift.
        return 0.0 if np.all(current == reference[0]) else float("inf")
    quantiles = np.linspace(0, 1, n_bins + 1)[1:-1]
    edges = np.unique(np.quantile(reference, quantiles))
    if len(edges) < 2:
        # Degenerate deciles: a near-constant (but not constant) reference
        # collapses every quantile onto one value, leaving a split where
        # one side holds ~all reference mass — a wholesale shift of the
        # current sample within the reference range then scores ~0.  Fall
        # back to a 2-bin split at the midpoint of the reference range so
        # mass moving across the range is visible.
        edges = np.array([0.5 * (reference.min() + reference.max())])
    ref_counts = np.bincount(
        np.searchsorted(edges, reference, side="right"), minlength=len(edges) + 1
    ).astype(np.float64)
    cur_counts = np.bincount(
        np.searchsorted(edges, current, side="right"), minlength=len(edges) + 1
    ).astype(np.float64)
    ref_frac = (ref_counts + 0.5) / (ref_counts.sum() + 0.5 * len(ref_counts))
    cur_frac = (cur_counts + 0.5) / (cur_counts.sum() + 0.5 * len(cur_counts))
    return float(np.sum((cur_frac - ref_frac) * np.log(cur_frac / ref_frac)))


@dataclass(frozen=True)
class DriftFinding:
    """One monitored quantity and its drift level."""

    name: str
    psi: float

    @property
    def level(self) -> str:
        if self.psi >= PSI_ALERT:
            return "ALERT"
        if self.psi >= PSI_WATCH:
            return "watch"
        return "ok"


@dataclass
class MonitoringReport:
    """Everything the operator sees between retrains."""

    reference_label: str
    current_label: str
    feature_findings: list[DriftFinding]
    score_finding: DriftFinding | None
    reference_churn_rate: float
    current_churn_rate: float
    #: Resilience accounting from the pipeline run that produced the
    #: serving scores (None when the pipeline ran without a runtime).
    pipeline_health: PipelineHealthReport | None = None

    @property
    def worst_features(self) -> list[DriftFinding]:
        return sorted(self.feature_findings, key=lambda f: -f.psi)

    @property
    def alerts(self) -> list[DriftFinding]:
        out = [f for f in self.feature_findings if f.level == "ALERT"]
        if self.score_finding is not None and self.score_finding.level == "ALERT":
            out.append(self.score_finding)
        return out

    @property
    def degraded(self) -> bool:
        """Whether the serving pipeline ran with dropped feature families."""
        return self.pipeline_health is not None and self.pipeline_health.degraded

    @property
    def healthy(self) -> bool:
        return not self.alerts and not self.degraded

    def render(self, top: int = 10) -> str:
        lines = [
            f"Model monitoring: {self.reference_label} -> {self.current_label}",
            f"  churn rate: {self.reference_churn_rate:.2%} -> "
            f"{self.current_churn_rate:.2%}",
        ]
        if self.score_finding is not None:
            lines.append(
                f"  score drift: PSI={self.score_finding.psi:.4f} "
                f"[{self.score_finding.level}]"
            )
        lines.append(f"  top drifting features (of {len(self.feature_findings)}):")
        for finding in self.worst_features[:top]:
            lines.append(
                f"    {finding.name:<40} PSI={finding.psi:.4f} [{finding.level}]"
            )
        if self.pipeline_health is not None:
            lines.extend(
                "  " + line for line in self.pipeline_health.render().splitlines()
            )
        if self.healthy:
            status = "HEALTHY"
        else:
            problems = []
            if self.alerts:
                problems.append(f"{len(self.alerts)} ALERT(S)")
            if self.degraded:
                problems.append(self.pipeline_health.status)
            status = ", ".join(problems) + " — retrain/investigate"
        lines.append("  status: " + status)
        return "\n".join(lines)


class ModelMonitor:
    """Compares a reference (training) month against a serving month.

    Parameters
    ----------
    feature_names:
        Column labels for the drift table.
    reference_features:
        (n, d) matrix from the month the model was trained on.
    reference_scores:
        Model scores on the reference month (optional).
    reference_churn_rate:
        Realized churn rate of the reference month.
    """

    def __init__(
        self,
        feature_names: list[str],
        reference_features: np.ndarray,
        reference_scores: np.ndarray | None = None,
        reference_churn_rate: float = 0.0,
        reference_label: str = "reference",
    ) -> None:
        reference_features = np.asarray(reference_features, dtype=np.float64)
        if reference_features.ndim != 2:
            raise ExperimentError("reference features must be a 2-D matrix")
        if reference_features.shape[1] != len(feature_names):
            raise ExperimentError(
                f"{reference_features.shape[1]} columns for "
                f"{len(feature_names)} names"
            )
        self._names = list(feature_names)
        self._reference = reference_features
        self._reference_scores = (
            None
            if reference_scores is None
            else np.asarray(reference_scores, dtype=np.float64)
        )
        self._reference_rate = reference_churn_rate
        self._reference_label = reference_label

    def compare(
        self,
        current_features: np.ndarray,
        current_scores: np.ndarray | None = None,
        current_churn_rate: float = 0.0,
        current_label: str = "current",
        pipeline_health: PipelineHealthReport | None = None,
    ) -> MonitoringReport:
        """Drift report for a serving month.

        Pass the serving window's :class:`PipelineHealthReport` so the
        operator report covers resilience (dropped families, repairs,
        quarantines) next to drift; a degraded pipeline marks the report
        unhealthy even with zero drift.
        """
        current_features = np.asarray(current_features, dtype=np.float64)
        if current_features.shape[1] != len(self._names):
            raise ExperimentError(
                f"current has {current_features.shape[1]} columns, "
                f"expected {len(self._names)}"
            )
        findings = [
            DriftFinding(
                name,
                population_stability_index(
                    self._reference[:, j], current_features[:, j]
                ),
            )
            for j, name in enumerate(self._names)
        ]
        score_finding = None
        if self._reference_scores is not None and current_scores is not None:
            score_finding = DriftFinding(
                "model_score",
                population_stability_index(
                    self._reference_scores, np.asarray(current_scores)
                ),
            )
        return MonitoringReport(
            reference_label=self._reference_label,
            current_label=current_label,
            feature_findings=findings,
            score_finding=score_finding,
            reference_churn_rate=self._reference_rate,
            current_churn_rate=current_churn_rate,
            pipeline_health=pipeline_health,
        )
