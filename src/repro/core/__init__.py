"""The paper's contribution: churn prediction + retention as a closed loop.

* :mod:`.labeling` — the 15-day recharge-grace churn rule (Section 5).
* :mod:`.window` — the 4-month sliding-window protocol (Figure 6), with
  velocity (day-stride) and early-signal (lead-time) variants.
* :mod:`.pipeline` — end-to-end train/predict over the feature families.
* :mod:`.predictor` — classifier facade (RF / GBDT / LR / FM) producing the
  ranked potential-churner list.
* :mod:`.retention` — campaign simulation, multi-class offer matching and
  the closed feedback loop (Section 4.3 / Table 6).
* :mod:`.rootcause` — per-churner cause attribution (the paper's stated
  Section-6 extension).
* :mod:`.monitoring` — PSI feature/score drift reports between retrains.
* :mod:`.watchtower` — the continuous monitoring loop: declarative alert
  rules evaluated over the telemetry warehouse after each window.
* :mod:`.budget` — expected-profit campaign depth optimization.
* :mod:`.netopt` — counterfactual network-optimization study (§5.3).
* :mod:`.experiments` — one runner per table/figure of Section 5.
* :mod:`.reporting` — paper-shaped text rendering of results.
"""

from .budget import CampaignEconomics, plan_campaign
from .labeling import churn_labels, dataset_statistics, recharge_delay_histogram
from .pipeline import ChurnPipeline, WindowResult
from .predictor import ChurnPredictor
from .retention import RetentionCampaign
from .monitoring import ModelMonitor
from .rootcause import RootCauseAnalyzer
from .watchtower import Alert, AlertRule, Watchtower
from .window import SlidingWindow, WindowSpec

__all__ = [
    "Alert",
    "AlertRule",
    "CampaignEconomics",
    "ChurnPipeline",
    "ChurnPredictor",
    "ModelMonitor",
    "RetentionCampaign",
    "RootCauseAnalyzer",
    "SlidingWindow",
    "Watchtower",
    "WindowResult",
    "WindowSpec",
    "churn_labels",
    "dataset_statistics",
    "plan_campaign",
    "recharge_delay_histogram",
]
