"""Churner labeling (Section 5).

The rule, set by the operator's domain experts: *a prepaid customer who does
not recharge within 15 days of entering the recharge period is a churner.*
Labels are computed from the ``recharge_period`` table, not read from
simulator ground truth — the labeling pipeline is the real artifact, and the
tests separately verify it agrees with the simulator's internal state.
"""

from __future__ import annotations

import numpy as np

from ..config import PAPER
from ..datagen.simulator import TelcoWorld
from ..errors import ExperimentError


def labels_from_delays(delay_days: np.ndarray, grace_days: int = PAPER.churn_grace_days) -> np.ndarray:
    """Apply the 15-day rule to a delay column (−1 = never recharged)."""
    delay_days = np.asarray(delay_days)
    return (delay_days < 0) | (delay_days > grace_days)


def churn_labels(world: TelcoWorld, month: int) -> np.ndarray:
    """Per-slot churn labels for features observed in ``month``.

    The label of month ``t`` is whether the customer churns in month
    ``t + 1``, read from that month's recharge-period outcomes.  Slots are
    returned in slot order (= IMSI order of month ``t``).
    """
    if not 1 <= month <= world.n_months:
        raise ExperimentError(
            f"month {month} out of range 1..{world.n_months}"
        )
    table = world.recharge_period_for(month + 1)
    slots = world.population.slots_of(table["imsi"])
    labels = labels_from_delays(table["delay_days"])
    out = np.zeros(world.population.size, dtype=bool)
    out[slots] = labels
    return out


def recharge_delay_histogram(
    world: TelcoWorld, max_day: int = 30
) -> tuple[np.ndarray, np.ndarray]:
    """Figure 5: number of customers recharging after each delay.

    Returns ``(days 1..max_day, counts)`` pooled over all months; customers
    who never recharged are excluded (they are not "recharged customers").
    """
    delays = []
    for t in range(1, world.n_months + 1):
        column = world.recharge_period_for(t)["delay_days"]
        delays.append(np.asarray(column))
    all_delays = np.concatenate(delays)
    recharged = all_delays[all_delays >= 1]
    days = np.arange(1, max_day + 1)
    counts = np.asarray(
        [(recharged == d).sum() for d in days], dtype=np.int64
    )
    return days, counts


def dataset_statistics(world: TelcoWorld) -> list[dict]:
    """Table 1: per-month churner / non-churner / total counts.

    A month's churners are the customers whose recharge period that month
    exceeded the grace rule — i.e. the observable churn events of the month.
    """
    rows = []
    for data in world.months:
        churners = int(data.churning_now.sum())
        total = len(data.churning_now)
        rows.append(
            {
                "month": data.month,
                "churners": churners,
                "non_churners": total - churners,
                "total": total,
                "churn_rate": churners / total,
            }
        )
    return rows
