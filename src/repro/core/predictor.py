"""Classifier facade producing the monthly potential-churner list.

Wraps the four classifiers the paper benchmarks (Section 5.8) behind one
interface; linear models (LIBLINEAR / LIBFM analogues) get the paper's
discretize-and-binarize preprocessing automatically.  The business output is
:meth:`ChurnPredictor.top_u`: the top-U customers by churn likelihood, which
downstream retention campaigns consume.
"""

from __future__ import annotations

import numpy as np

from ..config import ModelConfig
from ..dataplat.observability import span
from ..errors import ModelError, NotFittedError
from ..ml.fm import FactorizationMachine
from ..ml.forest import RandomForestClassifier
from ..ml.gbdt import GradientBoostedTrees
from ..ml.linear import LogisticRegression
from ..ml.preprocess import QuantileBinner, one_hot

#: Classifier names accepted by :class:`ChurnPredictor`.
CLASSIFIERS = ("rf", "gbdt", "liblinear", "libfm")


class ChurnPredictor:
    """Train on a labeled month, rank the next month's customers.

    Parameters
    ----------
    classifier:
        One of ``rf`` (the deployed choice), ``gbdt``, ``liblinear``,
        ``libfm``.
    config:
        Hyper-parameters, shared across classifiers for fair comparison.
    backend:
        Execution backend handed to classifiers that support parallel
        fit/predict (currently ``rf``); ``None`` uses the process-wide
        default.  Never pickled with the predictor.
    """

    def __init__(
        self,
        classifier: str = "rf",
        config: ModelConfig | None = None,
        seed: int = 0,
        backend=None,
    ) -> None:
        if classifier not in CLASSIFIERS:
            raise ModelError(
                f"unknown classifier {classifier!r}; choose from {CLASSIFIERS}"
            )
        self.classifier = classifier
        self.config = config if config is not None else ModelConfig()
        self.seed = seed
        self._backend = backend
        #: How the features behind this model were assembled: ``"full"``,
        #: or ``"degraded(F2,...)"`` when the pipeline dropped families
        #: (see :meth:`annotate_degradation`).  Campaign consumers read
        #: this off the ranked list's provenance.
        self.degradation_state = "full"
        self._model = None
        self._binner: QuantileBinner | None = None
        self._bin_counts: list[int] | None = None
        self._n_features = 0

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_backend"] = None  # backends own OS resources; never pickle
        return state

    def annotate_degradation(self, state: str) -> "ChurnPredictor":
        """Record the pipeline degradation state this model was built under."""
        self.degradation_state = str(state)
        return self

    @property
    def is_degraded(self) -> bool:
        return self.degradation_state != "full"

    @property
    def is_linear(self) -> bool:
        """Whether this classifier uses binarized features (Section 5.8)."""
        return self.classifier in ("liblinear", "libfm")

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "ChurnPredictor":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self._n_features = x.shape[1]
        cfg = self.config
        with span(
            "predictor.fit",
            classifier=self.classifier,
            rows=int(x.shape[0]),
            features=int(x.shape[1]),
        ):
            design = self._design(x, fit=True)
            if self.classifier == "rf":
                model = RandomForestClassifier(
                    n_trees=cfg.n_trees,
                    min_samples_leaf=cfg.min_samples_leaf,
                    max_depth=cfg.max_depth,
                    seed=self.seed,
                    backend=self._backend,
                )
            elif self.classifier == "gbdt":
                model = GradientBoostedTrees(
                    n_trees=cfg.gbdt_trees,
                    learning_rate=cfg.learning_rate,
                    max_depth=4,
                    min_samples_leaf=max(cfg.min_samples_leaf, 10),
                    seed=self.seed,
                )
            elif self.classifier == "liblinear":
                model = LogisticRegression(
                    l2=1e-3, max_iter=cfg.linear_epochs * 5
                )
            else:  # libfm
                model = FactorizationMachine(
                    n_factors=cfg.fm_factors,
                    learning_rate=cfg.learning_rate,
                    n_epochs=cfg.fm_epochs,
                    seed=self.seed,
                )
            model.fit(design, y, sample_weight=sample_weight)
        self._model = model
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Churn likelihood per customer."""
        if self._model is None:
            raise NotFittedError("ChurnPredictor has not been fitted")
        x = np.asarray(x, dtype=np.float64)
        if x.shape[1] != self._n_features:
            raise ModelError(
                f"x has {x.shape[1]} features, fitted with {self._n_features}"
            )
        with span(
            "predictor.predict", classifier=self.classifier, rows=int(x.shape[0])
        ):
            return self._model.predict_proba(self._design(x, fit=False))

    def rank(self, x: np.ndarray) -> np.ndarray:
        """Row indices by descending churn likelihood."""
        return np.argsort(-self.predict_proba(x), kind="mergesort")

    def top_u(self, x: np.ndarray, u: int) -> np.ndarray:
        """The monthly potential-churner list: top-``u`` row indices."""
        if u < 1:
            raise ModelError(f"u must be >= 1, got {u}")
        return self.rank(x)[:u]

    @property
    def feature_importances_(self) -> np.ndarray:
        """RF feature importances (Eq. 7); only defined for ``rf``."""
        if self.classifier != "rf":
            raise ModelError(
                f"feature importances require the rf classifier, "
                f"not {self.classifier}"
            )
        if self._model is None:
            raise NotFittedError("ChurnPredictor has not been fitted")
        return self._model.feature_importances_

    def _design(self, x: np.ndarray, fit: bool) -> np.ndarray:
        if not self.is_linear:
            return x
        if fit:
            self._binner = QuantileBinner(n_bins=8).fit(x)
            self._bin_counts = self._binner.bin_counts()
        if self._binner is None or self._bin_counts is None:
            raise NotFittedError("ChurnPredictor has not been fitted")
        return one_hot(self._binner.transform(x), self._bin_counts)
