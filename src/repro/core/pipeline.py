"""End-to-end churn pipeline: features → rebalance → train → rank → score.

:class:`ChurnPipeline` executes :class:`~repro.core.window.WindowSpec`
windows over one simulated world.  It owns a
:class:`~repro.features.widetable.WideTableBuilder` (so expensive blocks are
cached across windows), applies the imbalance treatment, fits the chosen
classifier and reports the paper's four metrics at the scaled top-U cutoffs.

The **velocity** variant (Table 5) uses a compact fast-feature set computed
from the daily CDR over a 30-day window ending ``staleness_days`` before the
month boundary — sliding the window every 5 days instead of every 30 means
the model that scores a customer saw fresher behaviour.
"""

from __future__ import annotations

import copy
import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from ..config import ModelConfig, ScaleConfig
from ..datagen.bss import DAYS_PER_MONTH
from ..datagen.simulator import TelcoWorld
from ..dataplat import observability
from ..dataplat.blockstore import BlockStore
from ..dataplat.executor import ExecutorBackend
from ..dataplat.observability import span
from ..dataplat.resilience import PipelineHealthReport
from ..dataplat.telemetry import TelemetrySink
from ..errors import DataPlatformError, ExperimentError, FeatureError
from ..features import ALL_CATEGORIES, WideTableBuilder
from ..ml.metrics import pr_auc, precision_at, recall_at, roc_auc
from ..ml.sampling import rebalance
from .labeling import churn_labels
from .predictor import ChurnPredictor
from .window import SlidingWindow, WindowSpec

#: Paper cutoffs used in most experiments (Figure 7, Tables 2/5).
DEFAULT_PAPER_U = (50_000, 100_000, 200_000)


@dataclass
class WindowResult:
    """Metrics plus raw predictions for one window."""

    spec: WindowSpec
    auc: float
    pr_auc: float
    recall_at: dict[int, float]
    precision_at: dict[int, float]
    #: Slots of the scored (test) customers, aligned with scores/labels.
    test_slots: np.ndarray = field(repr=False)
    scores: np.ndarray = field(repr=False)
    labels: np.ndarray = field(repr=False)
    predictor: ChurnPredictor = field(repr=False)
    feature_names: list[str] = field(repr=False)
    #: Resilience accounting for degraded-mode runs (None when the pipeline
    #: runs without a resilience runtime).
    health: PipelineHealthReport | None = field(default=None, repr=False)

    def metric(self, name: str, u: int | None = None) -> float:
        """Uniform metric accessor for reporting code."""
        if name == "auc":
            return self.auc
        if name == "pr_auc":
            return self.pr_auc
        if u is None:
            raise ExperimentError(f"metric {name!r} requires a cutoff u")
        if name == "recall":
            return self.recall_at[u]
        if name == "precision":
            return self.precision_at[u]
        raise ExperimentError(f"unknown metric {name!r}")


class ChurnPipeline:
    """Train/evaluate churn prediction windows over one world."""

    def __init__(
        self,
        world: TelcoWorld,
        scale: ScaleConfig,
        categories: tuple[str, ...] = ALL_CATEGORIES,
        classifier: str = "rf",
        model: ModelConfig | None = None,
        imbalance: str = "weighted",
        paper_u: tuple[int, ...] = DEFAULT_PAPER_U,
        seed: int = 0,
        table_source: Callable[[int], dict] | None = None,
        store: BlockStore | None = None,
        allow_degraded: bool = False,
        backend: "ExecutorBackend | str | None" = None,
        telemetry: TelemetrySink | None = None,
    ) -> None:
        unknown = set(categories) - set(ALL_CATEGORIES)
        if unknown:
            raise ExperimentError(f"unknown feature categories: {sorted(unknown)}")
        self.world = world
        self.scale = scale
        self.categories = tuple(categories)
        self.classifier = classifier
        self.model = model if model is not None else ModelConfig()
        self.imbalance = imbalance
        self.paper_u = paper_u
        self.seed = seed
        #: ``table_source`` routes raw-table reads through an alternative
        #: provider (e.g. a catalog over the block store); ``store`` lets the
        #: per-window health report absorb that store's repair counters;
        #: ``allow_degraded`` turns on graceful degradation — windows drop
        #: unbuildable F2..F9 families instead of failing, and each
        #: :class:`WindowResult` carries a :class:`PipelineHealthReport`.
        #: ``backend`` fans out per-month feature builds and per-tree RF
        #: work; results are bit-identical to serial runs.
        #: ``telemetry`` sinks every window's spans, metric deltas and
        #: health report into the warehouse, keyed by the sink's run id.
        self.allow_degraded = allow_degraded
        self._table_source = table_source
        self._store = store
        self._backend = backend
        self.telemetry = telemetry
        self.builder = WideTableBuilder(world, seed=seed, table_source=table_source)
        self.windows = SlidingWindow(world)
        self._label_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Labels
    # ------------------------------------------------------------------

    def labels(self, month: int) -> np.ndarray:
        """Per-slot churn-next labels of a feature month (cached)."""
        cached = self._label_cache.get(month)
        if cached is None:
            cached = churn_labels(self.world, month)
            self._label_cache[month] = cached
        return cached

    # ------------------------------------------------------------------
    # Window execution
    # ------------------------------------------------------------------

    def run_window(
        self, spec: WindowSpec, categories: tuple[str, ...] | None = None
    ) -> WindowResult:
        """Train on the window's labeled months, score its test month.

        With ``allow_degraded`` the window survives missing sources: F2..F9
        families that cannot be built for every month of the window are
        dropped (recorded on the health report) and the model trains on the
        surviving columns, so a degraded platform still ships a churn list.

        Under an active tracer the whole window runs inside a
        ``pipeline.window`` span, and the window's health report (when
        present) absorbs the per-stage span timings of its own subtree.
        """
        start = time.perf_counter()
        with span(
            "pipeline.window",
            test_month=spec.test_month,
            train_months=list(spec.train_months),
        ) as window_span:
            result = self._execute_window(spec, categories)
        if result.health is not None and observability.enabled():
            result.health.absorb_trace(window_span)
        self._record_window_telemetry(
            spec, result, window_span, time.perf_counter() - start
        )
        return result

    def _record_window_telemetry(
        self, spec: WindowSpec, result: WindowResult, window_span, wall_s: float
    ) -> None:
        """Update metric instruments and sink the window (when enabled).

        Metric updates happen unconditionally so a metrics-only consumer
        (no warehouse) still sees them; the sink additionally persists the
        finished ``pipeline.window`` span subtree, the per-window metric
        deltas and the health report under ``(run_id, test_month)``.
        """
        metrics = observability.get_metrics()
        metrics.counter("pipeline.windows").inc()
        metrics.gauge("pipeline.auc").set(result.auc)
        metrics.gauge("pipeline.pr_auc").set(result.pr_auc)
        metrics.histogram("pipeline.window_wall_s").observe(wall_s)
        if self.telemetry is None:
            return
        spans = [window_span] if observability.enabled() else []
        self.telemetry.record_window(
            spec.test_month, spans=spans, health=result.health
        )

    def _execute_window(
        self, spec: WindowSpec, categories: tuple[str, ...] | None
    ) -> WindowResult:
        categories = self.categories if categories is None else tuple(categories)
        health: PipelineHealthReport | None = None
        storage_before = None
        if self.allow_degraded:
            health = PipelineHealthReport()
            if self._store is not None:
                storage_before = copy.copy(self._store.health)
            source_health = getattr(self._table_source, "health", None)
            if source_health is not None:
                # Route the source's per-read accounting into this window.
                self._table_source.health = health
        needs_fit = any(c in ("F7", "F8", "F9") for c in categories)
        if needs_fit:
            try:
                self.builder.fit_extractors(
                    list(spec.train_months),
                    {m: self.labels(m + spec.lead - 1) for m in spec.train_months},
                )
            except (FeatureError, DataPlatformError) as exc:
                if health is None:
                    raise
                for family in ("F7", "F8", "F9"):
                    if family in categories:
                        health.drop_family(family, f"extractor fit failed: {exc}")
                categories = tuple(
                    c for c in categories if c not in ("F7", "F8", "F9")
                )
        if health is not None:
            months = list(spec.train_months) + [spec.test_month]
            categories = self.builder.surviving_categories(
                months, categories, health
            )
        # Warm every month's blocks through the backend before the serial
        # assembly below; a no-op after degraded-mode probing (all cached).
        self.builder.prefetch(
            list(spec.train_months) + [spec.test_month],
            categories,
            self._backend,
        )
        x_parts, y_parts = [], []
        feature_names: list[str] = []
        for month in spec.train_months:
            block = self.builder.features(month, categories)
            mask = self.windows.eligible_mask(spec, month)
            x_parts.append(block.values[mask])
            # The label of feature month t at lead k is churn in month t+k,
            # i.e. the churn-next indicator of month t+k−1.
            y_parts.append(self.labels(month + spec.lead - 1)[mask])
            feature_names = block.names
        x_train = np.vstack(x_parts)
        y_train = np.concatenate(y_parts).astype(np.int64)

        test_block = self.builder.features(spec.test_month, categories)
        test_mask = self.windows.eligible_mask(spec, spec.test_month)
        x_test = test_block.values[test_mask]
        y_test = self.labels(spec.test_month + spec.lead - 1)[test_mask].astype(
            np.int64
        )
        test_slots = np.flatnonzero(test_mask)

        predictor = self._fit(x_train, y_train)
        scores = predictor.predict_proba(x_test)
        if health is not None:
            if self._store is not None and storage_before is not None:
                health.absorb_storage(
                    _storage_delta(storage_before, self._store.health)
                )
            predictor.annotate_degradation(health.status)
        return self._result(
            spec, predictor, test_slots, scores, y_test, feature_names,
            health=health,
        )

    def run_windows(
        self,
        n_train_months: int = 1,
        lead: int = 1,
        test_months: list[int] | None = None,
        categories: tuple[str, ...] | None = None,
    ) -> list[WindowResult]:
        """Run every valid window; the paper averages these repetitions."""
        specs = self.windows.windows(n_train_months, lead, test_months)
        return [self.run_window(spec, categories) for spec in specs]

    # ------------------------------------------------------------------
    # Velocity (day-stride) variant
    # ------------------------------------------------------------------

    def run_velocity_window(
        self, test_month: int, staleness_days: int
    ) -> WindowResult:
        """One velocity window: features with a stale day offset.

        The feature vector combines (a) the monthly baseline block of the
        last *complete* month — the paper notes BSS summarizes its big
        tables monthly regardless of how often the classifier refreshes —
        and (b) daily-CDR aggregates over the 30 days ending
        ``staleness_days`` before the month boundary.  A pipeline refreshed
        every ``k`` days is on average ``k − 5`` days stale, so only the
        recency block degrades as the stride grows, giving the small
        monotone deltas of Table 5.
        """
        if not 0 <= staleness_days < DAYS_PER_MONTH:
            raise ExperimentError(
                f"staleness_days must be in [0, {DAYS_PER_MONTH}), "
                f"got {staleness_days}"
            )
        train_month = test_month - 1
        if train_month < 2 or test_month + 1 > self.world.n_months + 1:
            raise ExperimentError(
                f"velocity window needs months {train_month - 1}.."
                f"{test_month + 1} inside the simulation"
            )
        spec = WindowSpec((train_month,), test_month, lead=1)
        x_train, names = self._fast_features(train_month, staleness_days)
        x_test, _ = self._fast_features(test_month, staleness_days)
        train_mask = self.windows.eligible_mask(spec, train_month)
        test_mask = self.windows.eligible_mask(spec, test_month)
        y_train = self.labels(train_month)[train_mask].astype(np.int64)
        y_test = self.labels(test_month)[test_mask].astype(np.int64)
        predictor = self._fit(x_train[train_mask], y_train)
        scores = predictor.predict_proba(x_test[test_mask])
        return self._result(
            spec, predictor, np.flatnonzero(test_mask), scores, y_test, names
        )

    def _fast_features(
        self, month: int, staleness_days: int
    ) -> tuple[np.ndarray, list[str]]:
        """Monthly baseline of month−1 plus daily recency aggregates."""
        world = self.world
        engine = self.builder.engine
        self.builder.category("F1", month)  # ensures month views registered
        end_day = month * DAYS_PER_MONTH - staleness_days
        start_day = end_day - DAYS_PER_MONTH
        span = world.month(month).tables["cdr_daily"]
        if month > 1:
            span = world.month(month - 1).tables["cdr_daily"].concat_rows(span)
        engine.register(span, f"cdr_daily_span_m{month}")
        late_cut = end_day - 10
        agg = engine.query(
            f"""
            SELECT imsi,
                   SUM(call_cnt) AS f_call_cnt,
                   SUM(call_dur) AS f_call_dur,
                   SUM(sms_cnt) AS f_sms_cnt,
                   SUM(data_mb) AS f_data_mb,
                   SUM(CASE WHEN day > {late_cut} THEN call_dur ELSE 0 END)
                       AS f_late_call,
                   SUM(CASE WHEN day > {late_cut} THEN data_mb ELSE 0 END)
                       AS f_late_data,
                   SUM(CASE WHEN call_cnt > 0 THEN 1 ELSE 0 END)
                       AS f_active_days
            FROM cdr_daily_span_m{month}
            WHERE day > {start_day} AND day <= {end_day}
            GROUP BY imsi
            ORDER BY imsi
            """
        )
        names = [n for n in agg.schema.names if n != "imsi"]
        values = np.column_stack(
            [np.asarray(agg[n], dtype=np.float64) for n in names]
        )
        # Ratio features sharpen the recency signal.
        call_share = values[:, 4] / np.maximum(values[:, 1], 1e-9)
        data_share = values[:, 5] / np.maximum(values[:, 3], 1e-9)
        values = np.column_stack([values, call_share, data_share])
        names = names + ["f_late_call_share", "f_late_data_share"]
        # Align to slot order with zero fill for silent customers.
        slots = world.population.slots_of(agg["imsi"])
        full = np.zeros((world.population.size, values.shape[1]))
        full[slots] = values
        # Monthly baseline block of the last complete month.  IMSIs differ
        # across the month boundary only for reborn slots, which are
        # ineligible anyway, so slot alignment is sound.
        monthly = self.builder.category("F1", month - 1)
        full = np.hstack([monthly.values, full])
        names = [f"m_{n}" for n in monthly.names] + names
        return full, names

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _fit(self, x: np.ndarray, y: np.ndarray) -> ChurnPredictor:
        rng = np.random.default_rng(self.seed)
        x_bal, y_bal, weights = rebalance(x, y, self.imbalance, rng)
        predictor = ChurnPredictor(
            classifier=self.classifier,
            config=self.model,
            seed=self.seed,
            backend=self._backend,
        )
        return predictor.fit(x_bal, y_bal, sample_weight=weights)

    def _result(
        self,
        spec: WindowSpec,
        predictor: ChurnPredictor,
        test_slots: np.ndarray,
        scores: np.ndarray,
        y_test: np.ndarray,
        feature_names: list[str],
        health: PipelineHealthReport | None = None,
    ) -> WindowResult:
        u_values = tuple(self.scale.scaled_u(u) for u in self.paper_u)
        return WindowResult(
            health=health,
            spec=spec,
            auc=roc_auc(y_test, scores),
            pr_auc=pr_auc(y_test, scores),
            recall_at={
                pu: recall_at(y_test, scores, su)
                for pu, su in zip(self.paper_u, u_values)
            },
            precision_at={
                pu: precision_at(y_test, scores, su)
                for pu, su in zip(self.paper_u, u_values)
            },
            test_slots=test_slots,
            scores=scores,
            labels=y_test,
            predictor=predictor,
            feature_names=list(feature_names),
        )


def _storage_delta(before, after):
    """Per-window view of a shared store's monotonically-growing counters."""
    from ..dataplat.blockstore import StorageHealth

    return StorageHealth(
        corrupt_replicas_detected=(
            after.corrupt_replicas_detected - before.corrupt_replicas_detected
        ),
        replicas_repaired=after.replicas_repaired - before.replicas_repaired,
        replicas_recreated=after.replicas_recreated - before.replicas_recreated,
        transient_read_failures=(
            after.transient_read_failures - before.transient_read_failures
        ),
        read_retries=after.read_retries - before.read_retries,
        files_healed=after.files_healed - before.files_healed,
        cache_hits=after.cache_hits - before.cache_hits,
        cache_misses=after.cache_misses - before.cache_misses,
        cache_evictions=after.cache_evictions - before.cache_evictions,
    )


def average_results(results: list[WindowResult]) -> dict:
    """Mean metrics over repeated windows (the paper reports averages)."""
    if not results:
        raise ExperimentError("no results to average")
    out = {
        "auc": float(np.mean([r.auc for r in results])),
        "pr_auc": float(np.mean([r.pr_auc for r in results])),
        "recall_at": {},
        "precision_at": {},
    }
    for u in results[0].recall_at:
        out["recall_at"][u] = float(np.mean([r.recall_at[u] for r in results]))
        out["precision_at"][u] = float(
            np.mean([r.precision_at[u] for r in results])
        )
    return out
