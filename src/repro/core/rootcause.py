"""Churn root-cause inference — the paper's stated extension.

Section 6: "Extension work includes inferring root causes of churners for
actionable and suitable retention strategies."  This module implements that
extension on top of the fitted churn model: for each predicted churner, it
attributes the churn score to interpretable *cause groups* by group
neutralization — replace one group's feature values with the population
median, re-score, and read the score drop as that group's contribution.

Cause groups map directly onto retention levers:

======================  ===========================================
cause group             suggested lever
======================  ===========================================
financial               cashback offers (offer classes 1/2)
data_service_quality    network fix + flux top-up (offer class 3)
voice_service_quality   network fix + free minutes (offer class 4)
engagement              win-back/usage stimulation campaign
social                  community-level campaign (whole cluster)
lifecycle               contract/loyalty upgrade
======================  ===========================================

The simulator knows every churner's true reason (financial / quality /
social), which the tests use to validate that the attribution recovers it
far better than chance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExperimentError
from .pipeline import WindowResult

#: Cause-group definitions: name → predicate over feature names.
#: Order matters only for reporting.
CAUSE_GROUPS: dict[str, tuple[str, ...]] = {
    "financial": (
        "balance", "balance_rate", "recharge_cnt", "recharge_amt",
        "total_charge", "gprs_charge", "p2p_sms_mo_charge",
    ),
    "data_service_quality": (
        "page_response", "page_browsing", "page_download", "stream_",
        "email_", "l4_", "tcp_", "pagesize",
    ),
    "voice_service_quality": (
        "perceived_call", "e2e_conn", "voice_quality", "oneway_audio",
        "noise_cnt", "echo_cnt",
    ),
    "engagement": (
        "call_dur", "call_cnt", "called_dur", "voice_dur", "voice_cnt",
        "caller_", "sms_", "mms_", "gprs_flux", "gprs_all_flux",
        "late_call_share", "late_data_share", "total_call_dur_d",
        "total_data_mb_d", "_minutes",
    ),
    "social": (
        "pagerank_", "labelprop_",
    ),
    # Second-order products (x2_a__b) match through their component
    # markers, so e.g. x2_balance__balance_rate lands in "financial" and
    # x2_innet_dura__total_charge in both "lifecycle" and "financial".
    "lifecycle": (
        "innet_dura", "age", "product_", "credit_value",
    ),
}

#: Retention lever suggested per cause (Section 4.3's offer catalogue).
SUGGESTED_LEVER = {
    "financial": "cashback offer (100-on-100 or 50-on-100)",
    "data_service_quality": "network optimization + 500MB flux offer",
    "voice_service_quality": "network optimization + 200-minute voice offer",
    "engagement": "win-back usage stimulation campaign",
    "social": "community-level retention campaign",
    "lifecycle": "loyalty/contract upgrade",
}


@dataclass
class Attribution:
    """Per-customer churn-cause attribution."""

    slot: int
    score: float
    #: cause → score drop when the cause group is neutralized.
    contributions: dict[str, float]

    @property
    def dominant_cause(self) -> str:
        return max(self.contributions, key=self.contributions.get)  # type: ignore[arg-type]

    @property
    def suggested_lever(self) -> str:
        return SUGGESTED_LEVER[self.dominant_cause]


class RootCauseAnalyzer:
    """Attributes churn scores to cause groups by group neutralization.

    Parameters
    ----------
    result:
        A fitted window result (scores + predictor + feature names).
    features:
        The feature matrix the test customers were scored on, aligned with
        ``result.test_slots`` row order.
    """

    def __init__(self, result: WindowResult, features: np.ndarray) -> None:
        features = np.asarray(features, dtype=np.float64)
        if len(features) != len(result.test_slots):
            raise ExperimentError(
                f"{len(features)} feature rows for "
                f"{len(result.test_slots)} scored customers"
            )
        if features.shape[1] != len(result.feature_names):
            raise ExperimentError(
                f"{features.shape[1]} feature columns for "
                f"{len(result.feature_names)} feature names"
            )
        self._result = result
        self._features = features
        self._groups = self._resolve_groups(result.feature_names)
        self._medians = np.median(features, axis=0)

    @staticmethod
    def _resolve_groups(names: list[str]) -> dict[str, np.ndarray]:
        """Column indices per cause group (a column joins every group whose
        marker matches; unmatched columns are ignored)."""
        out: dict[str, np.ndarray] = {}
        for cause, markers in CAUSE_GROUPS.items():
            cols = [
                j
                for j, name in enumerate(names)
                if any(marker in name for marker in markers)
            ]
            out[cause] = np.asarray(cols, dtype=np.intp)
        return out

    def group_columns(self, cause: str) -> list[int]:
        """Feature columns attributed to one cause group."""
        if cause not in self._groups:
            raise ExperimentError(
                f"unknown cause {cause!r}; have {sorted(self._groups)}"
            )
        return self._groups[cause].tolist()

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------

    def attribute(self, rows: np.ndarray | None = None) -> list[Attribution]:
        """Attributions for the given scored rows (default: all of them).

        For each cause group, the group's columns are replaced with the
        population median and the cohort re-scored in one batch; the drop
        in a customer's score is the group's contribution (floored at 0 —
        a group whose removal *raises* the score is not a churn cause).
        """
        if rows is None:
            rows = np.arange(len(self._features))
        rows = np.asarray(rows, dtype=np.intp)
        base_scores = self._result.scores[rows]
        x = self._features[rows]
        contributions: dict[str, np.ndarray] = {}
        predictor = self._result.predictor
        for cause, cols in self._groups.items():
            if len(cols) == 0:
                contributions[cause] = np.zeros(len(rows))
                continue
            neutralized = x.copy()
            neutralized[:, cols] = self._medians[cols]
            contributions[cause] = np.maximum(
                base_scores - predictor.predict_proba(neutralized), 0.0
            )
        out = []
        for i, row in enumerate(rows.tolist()):
            out.append(
                Attribution(
                    slot=int(self._result.test_slots[row]),
                    score=float(base_scores[i]),
                    contributions={
                        cause: float(values[i])
                        for cause, values in contributions.items()
                    },
                )
            )
        return out

    def attribute_top(self, u: int) -> list[Attribution]:
        """Attributions for the top-``u`` scored customers."""
        if u < 1:
            raise ExperimentError(f"u must be >= 1, got {u}")
        order = np.argsort(-self._result.scores, kind="mergesort")[:u]
        return self.attribute(order)

    def cohort_summary(self, attributions: list[Attribution]) -> dict[str, float]:
        """Share of customers per dominant cause."""
        if not attributions:
            raise ExperimentError("no attributions to summarize")
        counts: dict[str, int] = {cause: 0 for cause in CAUSE_GROUPS}
        for attribution in attributions:
            counts[attribution.dominant_cause] += 1
        total = len(attributions)
        return {cause: counts[cause] / total for cause in counts}


def report_root_causes(
    analyzer: RootCauseAnalyzer, u: int, top_examples: int = 5
) -> str:
    """Readable root-cause report for the top-``u`` potential churners."""
    attributions = analyzer.attribute_top(u)
    summary = analyzer.cohort_summary(attributions)
    lines = [f"Root causes for the top {u} potential churners:"]
    for cause, share in sorted(summary.items(), key=lambda kv: -kv[1]):
        lines.append(
            f"  {cause:<22} {share:6.1%}  -> {SUGGESTED_LEVER[cause]}"
        )
    lines.append("")
    lines.append("Examples:")
    for attribution in attributions[:top_examples]:
        top_cause = attribution.dominant_cause
        lines.append(
            f"  slot {attribution.slot:>6}  score {attribution.score:.3f}  "
            f"cause={top_cause} "
            f"(+{attribution.contributions[top_cause]:.3f})"
        )
    return "\n".join(lines)
