"""Sliding-window experiment protocol (Figure 6).

One window: label features of month ``N−1`` with the churn outcomes of month
``N``, train; score features of month ``N``; evaluate against the churners
of month ``N+1``.  Variants:

* **volume** — accumulate more labeled months backwards;
* **early signals** — widen the gap between features and label month
  (``lead`` > 1);
* **velocity** — slide by day strides instead of whole months (handled in
  :mod:`.pipeline` with day-windowed fast features).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datagen.simulator import TelcoWorld
from ..errors import ExperimentError


@dataclass(frozen=True)
class WindowSpec:
    """One train/test window.

    ``train_months`` are *feature* months; each is labeled by churn
    ``lead`` months later.  ``test_month``'s features predict churners
    ``lead`` months after it.
    """

    train_months: tuple[int, ...]
    test_month: int
    lead: int = 1

    def __post_init__(self) -> None:
        if not self.train_months:
            raise ExperimentError("a window needs at least one training month")
        if self.lead < 1:
            raise ExperimentError(f"lead must be >= 1, got {self.lead}")
        if self.test_month in self.train_months:
            raise ExperimentError(
                f"test month {self.test_month} overlaps training months"
            )

    @property
    def label_month(self) -> int:
        """The month whose churners the test predictions are scored on."""
        return self.test_month + self.lead


class SlidingWindow:
    """Enumerates valid windows over a world."""

    def __init__(self, world: TelcoWorld) -> None:
        self._world = world

    def windows(
        self,
        n_train_months: int = 1,
        lead: int = 1,
        test_months: list[int] | None = None,
    ) -> list[WindowSpec]:
        """All windows whose months fit the simulated range.

        A window with test month ``P`` trains on feature months
        ``P−1, P−2, …`` (each labeled ``lead`` months later); the label of
        the last training month must be observable before ``P``'s
        prediction is made, and ``P + lead`` must lie within the world's
        labeled range.
        """
        if n_train_months < 1:
            raise ExperimentError(
                f"n_train_months must be >= 1, got {n_train_months}"
            )
        m = self._world.n_months
        out = []
        candidates = (
            test_months
            if test_months is not None
            else list(range(1, m + 1))
        )
        for p in candidates:
            train = tuple(range(p - n_train_months - lead + 1, p - lead + 1))
            if train[0] < 1:
                continue
            # Labels exist for feature month t when t + lead <= m + 1
            # (month m+1 outcomes come from the final recharge table).
            if p + lead > m + 1:
                continue
            out.append(WindowSpec(train, p, lead))
        if not out:
            raise ExperimentError(
                f"no valid windows: months={m}, "
                f"n_train={n_train_months}, lead={lead}, tests={test_months}"
            )
        return out

    def eligible_mask(self, spec: WindowSpec, month: int) -> np.ndarray:
        """Slots usable in ``month`` under the window's lead.

        The slot must be active (not in its churn month) and must not churn
        in the gap months — otherwise the occupant scored at ``month`` is
        not the one whose churn at ``month + lead`` would be predicted.
        """
        world = self._world
        mask = world.month(month).eligible.copy()
        for gap in range(month, month + spec.lead - 1):
            if gap <= world.n_months:
                mask &= ~world.month(gap).churn_next
        return mask
