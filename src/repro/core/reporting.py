"""Paper-shaped text rendering of experiment results.

Every formatter takes the plain-data output of one
:mod:`~repro.core.experiments` runner and returns a string laid out like the
corresponding table or figure series in the paper, so benchmark output can
be compared against the original side by side.
"""

from __future__ import annotations

from .retention import CampaignResult


def _rule(widths: list[int]) -> str:
    return "-+-".join("-" * w for w in widths)


def render_table(headers: list[str], rows: list[list[str]]) -> str:
    """Monospace table with a header rule."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
        _rule(widths),
    ]
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def fmt(value: float, digits: int = 5) -> str:
    return f"{value:.{digits}f}"


def report_fig1(data: dict) -> str:
    rows = [
        [str(m), f"{p:.1%}", f"{q:.1%}"]
        for m, p, q in zip(data["months"], data["prepaid"], data["postpaid"])
    ]
    return "Figure 1 — monthly churn rates\n" + render_table(
        ["month", "prepaid", "postpaid"], rows
    )


def report_table1(rows: list[dict]) -> str:
    body = [
        [
            str(r["month"]),
            str(r["churners"]),
            str(r["non_churners"]),
            str(r["total"]),
            f"{r['churn_rate']:.1%}",
        ]
        for r in rows
    ]
    return "Table 1 — dataset statistics\n" + render_table(
        ["month", "churners", "non-churners", "total", "rate"], body
    )


def report_fig5(data: dict) -> str:
    body = [
        [str(d), str(c)] for d, c in zip(data["days"], data["counts"])
    ]
    tail = (
        f"\nrecharges beyond the 15-day grace: "
        f"{data['fraction_beyond_grace']:.1%} (paper: <5%)"
    )
    return (
        "Figure 5 — days-to-recharge distribution\n"
        + render_table(["day", "recharged"], body)
        + tail
    )


def report_fig7(rows: list[dict], paper_u: tuple[int, ...]) -> str:
    headers = ["train months", "AUC", "PR-AUC"]
    headers += [f"R@{u // 1000}k" for u in paper_u]
    headers += [f"P@{u // 1000}k" for u in paper_u]
    body = []
    for r in rows:
        line = [str(r["train_months"]), fmt(r["auc"]), fmt(r["pr_auc"])]
        line += [fmt(r["recall_at"][u]) for u in paper_u]
        line += [fmt(r["precision_at"][u]) for u in paper_u]
        body.append(line)
    return "Figure 7 — Volume: metrics vs training months\n" + render_table(
        headers, body
    )


def report_table2(rows: list[dict], u: int = 200_000) -> str:
    headers = ["features", "AUC", "PR-AUC", f"R@{u // 1000}k", f"P@{u // 1000}k", "ΔPR-AUC"]
    body = []
    for r in rows:
        body.append(
            [
                r["family"],
                fmt(r["auc"]),
                fmt(r["pr_auc"]),
                fmt(r["recall_at"][u]),
                fmt(r["precision_at"][u]),
                f"{r['delta_pr_auc']:+.3%}",
            ]
        )
    return "Table 2 — Variety (F1 + one family at a time)\n" + render_table(
        headers, body
    )


def report_table3(data: dict) -> str:
    headers = ["top U (paper scale)", "recall", "precision"]
    body = [
        [str(u), fmt(data["recall_at"][u]), fmt(data["precision_at"][u])]
        for u in sorted(data["recall_at"])
    ]
    tail = f"\nAUC = {fmt(data['auc'])}   PR-AUC = {fmt(data['pr_auc'])}"
    return (
        "Table 3 — overall predictive performance (150 features, 4 months)\n"
        + render_table(headers, body)
        + tail
    )


def report_table4(rows: list[dict]) -> str:
    body = [
        [str(r["rank"]), r["feature"], f"{r['importance']:.6f}"] for r in rows
    ]
    return "Table 4 — RF feature importance\n" + render_table(
        ["rank", "feature", "importance"], body
    )


def report_table5(rows: list[dict], u: int = 200_000) -> str:
    headers = ["stride", "AUC", "PR-AUC", f"R@{u // 1000}k", f"P@{u // 1000}k", "ΔPR-AUC"]
    body = []
    for r in rows:
        body.append(
            [
                f"{r['stride_days']} days",
                fmt(r["auc"]),
                fmt(r["pr_auc"]),
                fmt(r["recall_at"][u]),
                fmt(r["precision_at"][u]),
                f"{r['delta_pr_auc']:+.3%}",
            ]
        )
    return "Table 5 — Velocity (sliding stride)\n" + render_table(headers, body)


def report_table6(campaigns: list[CampaignResult]) -> str:
    headers = ["month", "strategy", "group", "tier", "total", "recharged", "rate"]
    body = []
    for campaign in campaigns:
        for cell in campaign.outcomes:
            body.append(
                [
                    str(campaign.month),
                    campaign.strategy,
                    cell.group,
                    cell.tier,
                    str(cell.total),
                    str(cell.recharged),
                    f"{cell.rate:.2%}",
                ]
            )
    return "Table 6 — business value of churn prediction (A/B test)\n" + render_table(
        headers, body
    )


def report_fig8(rows: list[dict]) -> str:
    headers = ["lead (months)", "AUC", "PR-AUC"]
    body = [
        [str(r["lead_months"]), fmt(r["auc"]), fmt(r["pr_auc"])] for r in rows
    ]
    return "Figure 8 — early signals: metrics vs lead time\n" + render_table(
        headers, body
    )


def report_table7(rows: list[dict], u: int = 200_000) -> str:
    headers = ["method", "AUC", "PR-AUC", f"R@{u // 1000}k", f"P@{u // 1000}k"]
    label = {
        "none": "Not Balanced",
        "up": "Up Sampling",
        "down": "Down Sampling",
        "weighted": "Weighted Instance",
    }
    body = []
    for r in rows:
        body.append(
            [
                label[r["strategy"]],
                fmt(r["auc"]),
                fmt(r["pr_auc"]),
                fmt(r["recall_at"][u]),
                fmt(r["precision_at"][u]),
            ]
        )
    return "Table 7 — class-imbalance treatments\n" + render_table(headers, body)


def report_fig9(rows: list[dict]) -> str:
    label = {
        "rf": "RF",
        "gbdt": "GBDT",
        "liblinear": "LIBLINEAR",
        "libfm": "LIBFM",
    }
    headers = ["classifier", "AUC", "PR-AUC"]
    body = [
        [label[r["classifier"]], fmt(r["auc"]), fmt(r["pr_auc"])] for r in rows
    ]
    return "Figure 9 — classifier comparison\n" + render_table(headers, body)
