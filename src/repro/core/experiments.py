"""One runner per table/figure of the paper's Section 5.

Each function takes a :class:`~repro.core.pipeline.ChurnPipeline` (or a
world) plus light knobs and returns a plain-data result the benchmarks and
:mod:`.reporting` render.  Experiment ↔ module mapping lives in DESIGN.md §4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ModelConfig, ScaleConfig
from ..datagen.simulator import TelcoWorld
from ..errors import ExperimentError
from ..features.spec import ALL_CATEGORIES
from .labeling import dataset_statistics, recharge_delay_histogram
from .pipeline import ChurnPipeline, WindowResult, average_results
from .retention import CampaignResult, RetentionCampaign
from .window import WindowSpec

#: Feature-family study order of Table 2.
VARIETY_CATEGORIES = ("F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9")

#: Day-staleness per sliding stride (Table 5): a pipeline refreshed every k
#: days is on average k/2 days stale.
VELOCITY_STALENESS = {30: 15, 20: 10, 10: 5, 5: 2}


# ----------------------------------------------------------------------
# Figure 1 / Table 1 / Figure 5 — the dataset itself
# ----------------------------------------------------------------------


def fig1_churn_rates(world: TelcoWorld) -> dict:
    """Monthly churn rate, prepaid vs postpaid."""
    prepaid = [m.churn_rate for m in world.months]
    return {
        "months": [m.month for m in world.months],
        "prepaid": prepaid,
        "postpaid": list(world.postpaid_rates),
    }


def table1_dataset_stats(world: TelcoWorld) -> list[dict]:
    """Per-month churner / non-churner counts."""
    return dataset_statistics(world)


def fig5_recharge_distribution(world: TelcoWorld, max_day: int = 30) -> dict:
    """Days-to-recharge histogram plus the share beyond the 15-day grace."""
    days, counts = recharge_delay_histogram(world, max_day)
    total = counts.sum()
    beyond = counts[days > 15].sum()
    return {
        "days": days.tolist(),
        "counts": counts.tolist(),
        "fraction_beyond_grace": float(beyond / total) if total else 0.0,
    }


# ----------------------------------------------------------------------
# Figure 7 — Volume
# ----------------------------------------------------------------------


def fig7_volume(
    pipeline: ChurnPipeline,
    max_train_months: int | None = None,
    test_months: list[int] | None = None,
) -> list[dict]:
    """Metrics vs number of accumulated training months (baseline features).

    The paper predicts months 7–9 with 1..6 training months and averages.
    """
    world = pipeline.world
    if test_months is None:
        test_months = [world.n_months - 2, world.n_months - 1, world.n_months]
    if max_train_months is None:
        max_train_months = min(test_months) - 1
    if max_train_months < 1:
        raise ExperimentError("not enough months for a volume sweep")
    rows = []
    for n_train in range(1, max_train_months + 1):
        results = pipeline.run_windows(
            n_train_months=n_train,
            test_months=test_months,
            categories=("F1",),
        )
        row = average_results(results)
        row["train_months"] = n_train
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table 2 — Variety
# ----------------------------------------------------------------------


def table2_variety(
    pipeline: ChurnPipeline, test_months: list[int] | None = None
) -> list[dict]:
    """Per-family metrics: F1 alone, then F1 + each other family.

    The paper repeats over months 3..9 with one training month and averages.
    """
    world = pipeline.world
    if test_months is None:
        test_months = list(range(3, world.n_months + 1))
    rows = []
    baseline_pr: float | None = None
    for family in VARIETY_CATEGORIES:
        categories = ("F1",) if family == "F1" else ("F1", family)
        results = pipeline.run_windows(
            n_train_months=1, test_months=test_months, categories=categories
        )
        row = average_results(results)
        row["family"] = family
        if family == "F1":
            baseline_pr = row["pr_auc"]
            row["delta_pr_auc"] = 0.0
        else:
            assert baseline_pr is not None
            row["delta_pr_auc"] = (row["pr_auc"] - baseline_pr) / baseline_pr
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table 3 / Table 4 — the deployed configuration
# ----------------------------------------------------------------------


def table3_overall(
    pipeline: ChurnPipeline,
    test_month: int | None = None,
    n_train_months: int = 4,
) -> dict:
    """All 150 features, 4 months of training data, full top-U sweep."""
    world = pipeline.world
    if test_month is None:
        test_month = world.n_months - 1
    spec_months = tuple(
        range(test_month - n_train_months, test_month)
    )
    if spec_months[0] < 1:
        raise ExperimentError(
            f"need {n_train_months} training months before month {test_month}"
        )
    result = pipeline.run_window(
        WindowSpec(spec_months, test_month), categories=ALL_CATEGORIES
    )
    return {
        "auc": result.auc,
        "pr_auc": result.pr_auc,
        "recall_at": dict(result.recall_at),
        "precision_at": dict(result.precision_at),
        "result": result,
    }


def table4_importance(result: WindowResult, top: int = 20) -> list[dict]:
    """RF feature-importance ranking of a fitted window (Eq. 7)."""
    importances = result.predictor.feature_importances_
    order = np.argsort(-importances)
    rows = []
    for rank, j in enumerate(order[:top], start=1):
        rows.append(
            {
                "rank": rank,
                "feature": result.feature_names[j],
                "importance": float(importances[j]),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table 5 — Velocity
# ----------------------------------------------------------------------


def table5_velocity(
    pipeline: ChurnPipeline, test_months: list[int] | None = None
) -> list[dict]:
    """Metrics per sliding stride (30/20/10/5 days), averaged over months."""
    world = pipeline.world
    if test_months is None:
        test_months = list(range(3, world.n_months))
    rows = []
    baseline_pr: float | None = None
    for stride in (30, 20, 10, 5):
        staleness = VELOCITY_STALENESS[stride]
        results = [
            pipeline.run_velocity_window(tm, staleness) for tm in test_months
        ]
        row = average_results(results)
        row["stride_days"] = stride
        if baseline_pr is None:
            baseline_pr = row["pr_auc"]
            row["delta_pr_auc"] = 0.0
        else:
            row["delta_pr_auc"] = (row["pr_auc"] - baseline_pr) / baseline_pr
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table 6 — Value (retention campaigns)
# ----------------------------------------------------------------------


def table6_value(
    pipeline: ChurnPipeline,
    months: tuple[int, int] | None = None,
    seed: int = 0,
) -> list[CampaignResult]:
    """Two campaign waves: expert offers, then matched offers."""
    campaign = RetentionCampaign(pipeline, seed=seed)
    return campaign.run_study(months)


# ----------------------------------------------------------------------
# Figure 8 — early signals
# ----------------------------------------------------------------------


def fig8_early_signals(
    pipeline: ChurnPipeline,
    max_lead: int = 4,
    test_months: list[int] | None = None,
) -> list[dict]:
    """Metrics vs lead time (1..4 months ahead), baseline features."""
    world = pipeline.world
    rows = []
    for lead in range(1, max_lead + 1):
        months = test_months
        if months is None:
            months = [
                t
                for t in range(1 + lead, world.n_months + 2 - lead)
            ]
        results = pipeline.run_windows(
            n_train_months=1,
            lead=lead,
            test_months=months,
            categories=("F1",),
        )
        row = average_results(results)
        row["lead_months"] = lead
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table 7 — imbalance
# ----------------------------------------------------------------------


def table7_imbalance(
    world: TelcoWorld,
    scale: ScaleConfig,
    model: ModelConfig | None = None,
    test_months: list[int] | None = None,
    seed: int = 0,
) -> list[dict]:
    """The four imbalance treatments on baseline features."""
    rows = []
    for strategy in ("none", "up", "down", "weighted"):
        pipeline = ChurnPipeline(
            world,
            scale,
            categories=("F1",),
            model=model,
            imbalance=strategy,
            seed=seed,
        )
        results = pipeline.run_windows(
            n_train_months=1, test_months=test_months
        )
        row = average_results(results)
        row["strategy"] = strategy
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 9 — classifiers
# ----------------------------------------------------------------------


def fig9_classifiers(
    world: TelcoWorld,
    scale: ScaleConfig,
    model: ModelConfig | None = None,
    test_months: list[int] | None = None,
    seed: int = 0,
) -> list[dict]:
    """RF vs GBDT vs LIBLINEAR vs LIBFM on baseline features."""
    rows = []
    for classifier in ("rf", "gbdt", "liblinear", "libfm"):
        pipeline = ChurnPipeline(
            world,
            scale,
            categories=("F1",),
            classifier=classifier,
            model=model,
            seed=seed,
        )
        results = pipeline.run_windows(
            n_train_months=1, test_months=test_months
        )
        row = average_results(results)
        row["classifier"] = classifier
        rows.append(row)
    return rows
