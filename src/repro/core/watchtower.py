"""Continuous monitoring loop: declarative alert rules over telemetry SQL.

The paper's system retrains monthly but serves continuously, so the
operator's real job is watching the windows in between.  :class:`Watchtower`
is that loop's deterministic core: after each pipeline window lands in the
:class:`~repro.dataplat.telemetry.TelemetryWarehouse`, every declared
:class:`AlertRule` runs its SQL query over the warehouse and applies its
predicate; fired :class:`Alert` s are tiered (``info`` < ``warn`` <
``page``), sunk back into ``__telemetry.alerts``, and folded into the
window's :class:`~repro.dataplat.resilience.PipelineHealthReport` so a
degraded *or* drifting window reads unhealthy from one place.

Rule semantics (all evaluated at one ``(run_id, window)`` point, using
only rows with ``window <= current``, so replays are reproducible):

``threshold``
    Fire when the current window's value crosses the threshold.
``delta``
    Fire when ``value(current) − value(previous window)`` crosses the
    threshold; never fires on the first observed window.
``consecutive``
    Fire when the threshold predicate held for the last ``consecutive``
    observed windows (ending at the current one).

A rule's SQL must return a ``window`` column and the rule's
``value_column`` (default ``value``); ``{run_id}`` in the SQL is
substituted before execution.  Queries returning no row for the current
window simply do not fire — absence of data is not an alert.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..dataplat.telemetry import TelemetrySink, TelemetryWarehouse
from ..errors import ExperimentError

__all__ = [
    "AlertRule",
    "Alert",
    "Watchtower",
    "SEVERITIES",
    "recovery_rules",
    "query_profile_rules",
]

#: Alert tiers, least to most urgent.
SEVERITIES = ("info", "warn", "page")

_COMPARATORS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}

_KINDS = ("threshold", "delta", "consecutive")


@dataclass(frozen=True)
class AlertRule:
    """One declarative predicate over telemetry history.

    >>> rule = AlertRule(
    ...     name="worst-psi-alert",
    ...     sql=(
    ...         "SELECT window, MAX(psi) AS value FROM __telemetry.drift "
    ...         "WHERE run_id = '{run_id}' GROUP BY window"
    ...     ),
    ...     threshold=0.25,
    ...     severity="page",
    ... )
    >>> rule.kind
    'threshold'
    """

    name: str
    sql: str
    threshold: float
    comparison: str = ">"
    kind: str = "threshold"
    severity: str = "warn"
    #: Number of consecutive windows the predicate must hold
    #: (``kind="consecutive"`` only).
    consecutive: int = 2
    value_column: str = "value"
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ExperimentError(
                f"rule {self.name!r}: unknown kind {self.kind!r}; "
                f"expected one of {_KINDS}"
            )
        if self.comparison not in _COMPARATORS:
            raise ExperimentError(
                f"rule {self.name!r}: unknown comparison {self.comparison!r}"
            )
        if self.severity not in SEVERITIES:
            raise ExperimentError(
                f"rule {self.name!r}: unknown severity {self.severity!r}; "
                f"expected one of {SEVERITIES}"
            )
        if self.kind == "consecutive" and self.consecutive < 1:
            raise ExperimentError(
                f"rule {self.name!r}: consecutive must be >= 1"
            )

    def holds(self, value: float) -> bool:
        """Whether the raw predicate holds for one value."""
        return bool(_COMPARATORS[self.comparison](value, self.threshold))


@dataclass(frozen=True)
class Alert:
    """One fired rule at one window."""

    rule: str
    severity: str
    kind: str
    window: int
    value: float
    threshold: float
    message: str = ""

    def render(self) -> str:
        return (
            f"[{self.severity.upper():<4}] window {self.window} "
            f"{self.rule}: {self.message}"
        )


def recovery_rules() -> tuple[AlertRule, ...]:
    """Stock rules over the ``recovery.*`` counters the catalog emits.

    A scenario run is expected to open its catalog cleanly; any window
    where crash recovery actually replayed, rolled back or lost a
    transaction means the previous process died mid-commit — that pages.
    Orphan chunks swept during recovery are benign on their own (the
    crashed transaction's staging files) but worth a warning trail.

    The counters land in ``__telemetry.metrics`` via
    :meth:`~repro.dataplat.telemetry.TelemetryWarehouse.record_recovery`.
    """
    work = "('recovery.replayed', 'recovery.rolled_back', 'recovery.lost_commits', 'recovery.torn_records')"
    return (
        AlertRule(
            name="unexpected-crash-recovery",
            sql=(
                "SELECT window, SUM(value) AS value FROM __telemetry.metrics "
                "WHERE run_id = '{run_id}' AND kind = 'counter' "
                f"AND name IN {work} GROUP BY window"
            ),
            threshold=0.0,
            comparison=">",
            severity="page",
            description="catalog performed crash recovery",
        ),
        AlertRule(
            name="recovery-orphans-removed",
            sql=(
                "SELECT window, SUM(value) AS value FROM __telemetry.metrics "
                "WHERE run_id = '{run_id}' AND kind = 'counter' "
                "AND name = 'recovery.orphans_removed' GROUP BY window"
            ),
            threshold=0.0,
            comparison=">",
            severity="warn",
            description="fsck/recovery removed orphan files",
        ),
    )


def query_profile_rules(
    max_q_error: float = 100.0, wall_regression: float = 2.0
) -> tuple[AlertRule, ...]:
    """Stock rules over ``__telemetry.query_profiles``.

    * ``query-estimate-misfire``: some operator's q-error in the window
      exceeded ``max_q_error`` — the binder's cardinality model is badly
      wrong for a query shape (candidate for cardinality feedback).
    * ``query-wall-regression``: a query fingerprint's total wall time
      (its root operator, ``op_id = 0``) is more than ``wall_regression``
      times the same fingerprint's wall time in an *earlier* run stored in
      the warehouse.  Division by a zero baseline yields 0 in the SQL
      dialect, so instantaneous baselines never fire it.
    """
    return (
        AlertRule(
            name="query-estimate-misfire",
            sql=(
                "SELECT window, MAX(q_error) AS value "
                "FROM __telemetry.query_profiles "
                "WHERE run_id = '{run_id}' GROUP BY window"
            ),
            threshold=max_q_error,
            comparison=">",
            severity="warn",
            description="cardinality estimate off by more than the q-error budget",
        ),
        AlertRule(
            name="query-wall-regression",
            sql=(
                "SELECT a.window AS window, MAX(a.wall_s / b.wall_s) AS value "
                "FROM __telemetry.query_profiles a "
                "JOIN __telemetry.query_profiles b "
                "ON a.fingerprint = b.fingerprint "
                "WHERE a.run_id = '{run_id}' AND b.run_id < '{run_id}' "
                "AND a.op_id = 0 AND b.op_id = 0 "
                "GROUP BY a.window"
            ),
            threshold=wall_regression,
            comparison=">",
            severity="warn",
            description="query wall time regressed vs an earlier run",
        ),
    )


class Watchtower:
    """Evaluates alert rules against a telemetry warehouse.

    Parameters
    ----------
    warehouse:
        The telemetry warehouse the rules' SQL runs against.
    rules:
        Declared :class:`AlertRule` s; duplicate names are rejected so an
        alert row always identifies one rule.
    """

    def __init__(
        self, warehouse: TelemetryWarehouse, rules: Sequence[AlertRule]
    ) -> None:
        names = [r.name for r in rules]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ExperimentError(f"duplicate alert rules: {sorted(dupes)}")
        self.warehouse = warehouse
        self.rules = tuple(rules)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, run_id: str, window: int) -> list[Alert]:
        """Run every rule at one window; returns fired alerts (rule order)."""
        fired = []
        for rule in self.rules:
            alert = self._evaluate_rule(rule, run_id, window)
            if alert is not None:
                fired.append(alert)
        return fired

    def observe(
        self,
        sink: TelemetrySink,
        window: int,
        *,
        monitoring=None,
        health=None,
    ) -> list[Alert]:
        """One turn of the monitoring loop, after a pipeline window.

        Sinks the window's drift report into the warehouse, evaluates
        every rule at this window, records fired alerts into
        ``__telemetry.alerts`` and folds them into ``health``.  Spans,
        metric deltas and the health row are the pipeline's job (via
        ``TelemetrySink.record_window``) — each telemetry table has
        exactly one writer per window.  Returns the fired alerts.
        """
        run_id = sink.run_id
        if monitoring is not None:
            self.warehouse.record_drift(run_id, window, monitoring)
        alerts = self.evaluate(run_id, window)
        if alerts:
            self.warehouse.record_alerts(run_id, window, alerts)
        if health is not None:
            health.absorb_alerts(alerts)
        return alerts

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _series(
        self, rule: AlertRule, run_id: str, window: int
    ) -> list[tuple[int, float]]:
        """(window, value) pairs up to ``window``, ascending, deduplicated."""
        table = self.warehouse.query(rule.sql.format(run_id=run_id))
        if "window" not in table.schema:
            raise ExperimentError(
                f"rule {rule.name!r}: query must return a 'window' column, "
                f"got {list(table.schema.names)}"
            )
        if rule.value_column not in table.schema:
            raise ExperimentError(
                f"rule {rule.name!r}: query must return a "
                f"{rule.value_column!r} column, got {list(table.schema.names)}"
            )
        points: dict[int, float] = {}
        for w, v in zip(table["window"], table[rule.value_column]):
            w = int(w)
            if w <= window:
                points[w] = float(v)
        return sorted(points.items())

    def _evaluate_rule(
        self, rule: AlertRule, run_id: str, window: int
    ) -> Alert | None:
        series = self._series(rule, run_id, window)
        if not series or series[-1][0] != window:
            return None
        value = series[-1][1]
        if rule.kind == "threshold":
            if not rule.holds(value):
                return None
            message = (
                f"value {value:.4f} {rule.comparison} {rule.threshold:g}"
            )
        elif rule.kind == "delta":
            if len(series) < 2:
                return None
            value = value - series[-2][1]
            if not rule.holds(value):
                return None
            message = (
                f"delta {value:+.4f} vs window {series[-2][0]} "
                f"{rule.comparison} {rule.threshold:g}"
            )
        else:  # consecutive
            if len(series) < rule.consecutive:
                return None
            tail = series[-rule.consecutive:]
            if not all(rule.holds(v) for _, v in tail):
                return None
            message = (
                f"{rule.comparison} {rule.threshold:g} for "
                f"{rule.consecutive} consecutive windows "
                f"({tail[0][0]}..{tail[-1][0]})"
            )
        if rule.description:
            message = f"{rule.description}: {message}"
        return Alert(
            rule=rule.name,
            severity=rule.severity,
            kind=rule.kind,
            window=window,
            value=value,
            threshold=rule.threshold,
            message=message,
        )
