"""Campaign economics: how deep into the ranked list to spend.

The paper's stated goal for the closed loop is to "use a reasonable campaign
cost to make the most profit", and its footnote notes campaigns are budget-
limited.  This module turns calibrated churn probabilities into an expected
profit curve over the ranked list and picks the optimal targeting depth:

    E[profit of contacting customer i]
        = p_churn(i) · p_retain · (CLV − offer_cost) − (1 − p_churn(i)) ·
          deadweight − contact_cost

where ``deadweight`` is the offer value wasted on customers who would have
stayed anyway (the paper's group-A non-churners recharge regardless).
Contacting customers in score order, profit first rises (high-probability
churners are worth the offer), peaks, and then falls as the tail of the list
fills with retained-anyway customers — exactly the economics behind the
paper's choice of U = 50k–100k.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExperimentError


@dataclass(frozen=True)
class CampaignEconomics:
    """Unit economics of one retention offer.

    Values are in the same currency unit; defaults are shaped after the
    paper's offers ("get 100 cashback on recharge of 100") against the
    ~3× acquisition-to-retention cost ratio quoted in its introduction.
    """

    #: Net present value of keeping one subscriber (future margin).
    customer_lifetime_value: float = 300.0
    #: Cost of the offer when a targeted *churner* accepts it.
    offer_cost: float = 100.0
    #: Offer value wasted when a would-stay-anyway customer redeems it.
    deadweight_cost: float = 50.0
    #: Cost of contacting one customer (SMS/outbound call).
    contact_cost: float = 1.0
    #: P(accept | true churner, contacted) — the campaign's retention power.
    retention_rate: float = 0.3

    def __post_init__(self) -> None:
        if self.customer_lifetime_value <= 0:
            raise ExperimentError("customer_lifetime_value must be positive")
        if not 0 < self.retention_rate <= 1:
            raise ExperimentError("retention_rate must be in (0, 1]")
        for name in ("offer_cost", "deadweight_cost", "contact_cost"):
            if getattr(self, name) < 0:
                raise ExperimentError(f"{name} must be >= 0")

    def expected_profit(self, churn_probability: np.ndarray) -> np.ndarray:
        """Per-customer expected profit of contacting, vectorized."""
        p = np.asarray(churn_probability, dtype=np.float64)
        if np.any((p < 0) | (p > 1)):
            raise ExperimentError("churn probabilities must lie in [0, 1]")
        gain = self.retention_rate * (
            self.customer_lifetime_value - self.offer_cost
        )
        return p * gain - (1 - p) * self.deadweight_cost - self.contact_cost

    @property
    def breakeven_probability(self) -> float:
        """Churn probability above which contacting has positive value."""
        gain = self.retention_rate * (
            self.customer_lifetime_value - self.offer_cost
        )
        denominator = gain + self.deadweight_cost
        if denominator <= 0:
            return 1.0
        return min(
            1.0, (self.deadweight_cost + self.contact_cost) / denominator
        )


@dataclass
class CampaignPlan:
    """Chosen targeting depth plus the full profit curve."""

    order: np.ndarray
    cumulative_profit: np.ndarray
    optimal_depth: int
    economics: CampaignEconomics

    @property
    def targeted_rows(self) -> np.ndarray:
        """Row indices to contact, best first."""
        return self.order[: self.optimal_depth]

    @property
    def expected_profit(self) -> float:
        if self.optimal_depth == 0:
            return 0.0
        return float(self.cumulative_profit[self.optimal_depth - 1])

    def render(self, marks: tuple[int, ...] = ()) -> str:
        lines = [
            "Campaign plan",
            f"  breakeven churn probability: "
            f"{self.economics.breakeven_probability:.3f}",
            f"  optimal depth: {self.optimal_depth} of {len(self.order)} "
            f"customers",
            f"  expected profit at optimum: {self.expected_profit:,.0f}",
        ]
        for mark in marks:
            if 1 <= mark <= len(self.cumulative_profit):
                lines.append(
                    f"  profit at depth {mark}: "
                    f"{self.cumulative_profit[mark - 1]:,.0f}"
                )
        return "\n".join(lines)


def plan_campaign(
    churn_probability: np.ndarray,
    economics: CampaignEconomics | None = None,
) -> CampaignPlan:
    """Rank by churn probability and cut the list where profit peaks.

    ``churn_probability`` should be *calibrated* (see
    :mod:`repro.ml.calibration`) — raw ensemble vote scores overstate tail
    probabilities and push the cutoff too deep.
    """
    economics = economics if economics is not None else CampaignEconomics()
    p = np.asarray(churn_probability, dtype=np.float64)
    if p.ndim != 1 or len(p) == 0:
        raise ExperimentError("need a non-empty 1-D probability vector")
    order = np.argsort(-p, kind="mergesort")
    per_customer = economics.expected_profit(p[order])
    cumulative = np.cumsum(per_customer)
    best = int(np.argmax(cumulative))
    optimal_depth = best + 1 if cumulative[best] > 0 else 0
    return CampaignPlan(
        order=order,
        cumulative_profit=cumulative,
        optimal_depth=optimal_depth,
        economics=economics,
    )
