"""Shared-nothing sharding: hash-partitioned catalogs and shuffle exchange.

The paper's platform reaches 2.1M customers by hash-partitioning every
per-customer table across independent workers, so joins and per-customer
aggregation run shard-local with zero data movement.  This module is that
layer for our catalog:

- :func:`shard_of` — the stable CRC32 partitioner.  A customer id maps to
  the same shard on every platform, every run, and in any insertion order,
  because the hash is the CRC32 of the id's fixed-width little-endian
  encoding (``zlib.crc32`` compatible), not Python's salted ``hash()``.
- :class:`ShardedCatalog` — N fully independent :class:`~.catalog.Catalog`
  instances, each with its own block store, write-ahead journal and
  telemetry run context.  Tables carrying the shard key are hash-placed
  (rows split by :func:`shard_of`); tables without it are replicated to
  every shard (broadcast dimensions).  Two hash-placed tables sharing the
  shard key are *co-partitioned*: equal keys live on the same shard, so an
  equi-join on the key needs no network step.
- :class:`ShuffleExchange` — repartitions a table on a different key for
  non-aligned joins, spilling over-memory repartitions to the destination
  shard's block store as ordinary v2 columnar partitions under the
  ``__shuffle`` database.

The scatter-gather SQL path on top lives in
:mod:`repro.dataplat.sql.scatter`; the shard-parallel wide-table build in
:mod:`repro.features.sharded`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..errors import CatalogError
from .blockstore import DEFAULT_TABLE_CACHE_BYTES, BlockStore
from .catalog import Catalog
from .observability import get_metrics, span
from .table import Table

__all__ = [
    "Placement",
    "ShardedCatalog",
    "ShuffleExchange",
    "shard_of",
]

#: Database (created on every shard) holding shuffled repartitions.
SHUFFLE_DATABASE = "__shuffle"

#: Repartitions above this many bytes spill to the destination shard's
#: block store (ordinary journaled v2 partitions) instead of living as
#: in-memory temp views.
DEFAULT_SPILL_BYTES = 8 << 20

_AUTO = object()  # sentinel: derive the placement from the table's schema


def _make_crc_table() -> np.ndarray:
    table = np.empty(256, dtype=np.uint32)
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ (0xEDB88320 if crc & 1 else 0)
        table[i] = crc
    return table


_CRC_TABLE = _make_crc_table()


def _crc32_int64(values: np.ndarray) -> np.ndarray:
    """Vectorized CRC32 of each int64's 8-byte little-endian encoding.

    Bit-identical to ``zlib.crc32(int(v).to_bytes(8, "little",
    signed=True))`` per element — the table-driven algorithm applied to all
    rows at once, eight gather ops instead of a Python loop.
    """
    u = np.ascontiguousarray(values, dtype=np.int64).view(np.uint64)
    crc = np.full(u.shape, 0xFFFFFFFF, dtype=np.uint32)
    for byte_index in range(8):
        b = ((u >> np.uint64(8 * byte_index)) & np.uint64(0xFF)).astype(
            np.uint32
        )
        crc = (crc >> np.uint32(8)) ^ _CRC_TABLE[(crc ^ b) & np.uint32(0xFF)]
    return crc ^ np.uint32(0xFFFFFFFF)


def shard_of(values, num_shards: int):
    """Map shard-key value(s) to owning shard indices in ``[0, num_shards)``.

    Integers hash as their fixed-width little-endian bytes, strings as
    their UTF-8 bytes, both through CRC32 — stable across platforms,
    processes and insertion orders, and uniform enough that even heavily
    skewed id distributions balance (CRC32 avalanches low-entropy inputs).

    Scalars return a plain ``int``; arrays return an int64 array.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if isinstance(values, (int, np.integer)):
        crc = zlib.crc32(int(values).to_bytes(8, "little", signed=True))
        return int(crc % num_shards)
    if isinstance(values, (str, bytes)):
        raw = values.encode() if isinstance(values, str) else values
        return int(zlib.crc32(raw) % num_shards)
    arr = np.asarray(values)
    if arr.dtype.kind in "iu":
        return (
            _crc32_int64(arr.astype(np.int64, copy=False))
            % np.uint32(num_shards)
        ).astype(np.int64)
    if arr.dtype.kind in "OU":
        out = np.empty(len(arr), dtype=np.int64)
        for i, v in enumerate(arr):
            out[i] = zlib.crc32(str(v).encode()) % num_shards
        return out
    raise TypeError(
        f"shard keys must be integers or strings, got dtype {arr.dtype}"
    )


@dataclass(frozen=True)
class Placement:
    """Where a table's rows live: hash-split on ``key`` or replicated."""

    kind: str  # "hash" | "replicated"
    key: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("hash", "replicated"):
            raise CatalogError(f"unknown placement kind {self.kind!r}")
        if (self.kind == "hash") != (self.key is not None):
            raise CatalogError(
                "hash placement requires a key; replicated forbids one"
            )


class ShardedCatalog:
    """N independent catalogs plus the placement map tying them together.

    Each shard owns a private :class:`~.blockstore.BlockStore` (its own
    replication, health counters and journal) — shared-nothing, so a shard
    can be crashed, recovered or benchmarked in isolation.  ``save`` and
    ``register_temp`` split rows by :func:`shard_of` on the shard-key
    column when the table has one (``key=None`` forces replication,
    ``key="col"`` forces hashing on another column).

    The *co-partitioning contract*: any two tables hash-placed on columns
    holding the same id domain put equal keys on the same shard — that is
    what makes per-customer joins and F1..F9 aggregation shard-local.
    """

    def __init__(
        self,
        num_shards: int,
        shard_key: str = "imsi",
        cache_bytes: int = DEFAULT_TABLE_CACHE_BYTES,
        durability=None,
        store_factory=None,
    ) -> None:
        if num_shards < 1:
            raise CatalogError(f"num_shards must be >= 1, got {num_shards}")
        make = store_factory if store_factory is not None else lambda i: BlockStore()
        self._shards = tuple(
            Catalog(make(i), cache_bytes=cache_bytes, durability=durability)
            for i in range(num_shards)
        )
        self._shard_key = shard_key
        self._placement: dict[tuple[str, str], Placement] = {}
        #: Bumped on every placement-visible mutation; shuffle memos key on
        #: it so a re-saved table invalidates its cached repartitions.
        self._version = 0
        for shard in self._shards:
            shard.create_database(SHUFFLE_DATABASE)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[Catalog, ...]:
        return self._shards

    @property
    def shard_key(self) -> str:
        return self._shard_key

    @property
    def version(self) -> int:
        return self._version

    def telemetry_run_id(self, shard: int) -> str:
        """The per-shard run context under which its spans/metrics land."""
        return f"shard-{shard:02d}"

    def placement(self, name: str, database: str = "default") -> Placement | None:
        return self._placement.get((database, name))

    def placements(self) -> dict[tuple[str, str], Placement]:
        return dict(self._placement)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def create_database(self, name: str) -> None:
        for shard in self._shards:
            shard.create_database(name)

    def _resolve_placement(
        self, table: Table, name: str, database: str, key
    ) -> Placement:
        if key is _AUTO:
            key = self._shard_key if self._shard_key in table.schema else None
        if key is not None and key not in table.schema:
            raise CatalogError(
                f"shard key {key!r} not in columns of {database}.{name}: "
                f"{list(table.schema.names)}"
            )
        placement = (
            Placement("hash", key) if key is not None else Placement("replicated")
        )
        existing = self._placement.get((database, name))
        if existing is not None and existing != placement:
            raise CatalogError(
                f"{database}.{name} is already placed as {existing}; "
                f"cannot re-place as {placement}"
            )
        return placement

    def save(
        self,
        table: Table,
        name: str,
        database: str = "default",
        partition: str | None = None,
        key=_AUTO,
        overwrite: bool = True,
        format: str | None = None,
    ) -> Placement:
        """Hash-split (or replicate) ``table`` across the shards.

        Every shard receives a (possibly empty) piece, so schemas bind
        identically everywhere.  Row order within a shard preserves the
        input order — what makes shard-local aggregation bit-identical to
        the single-catalog path.
        """
        placement = self._resolve_placement(table, name, database, key)
        with span(
            "shard.save", table=f"{database}.{name}", placement=placement.kind
        ) as sp:
            for i, piece in enumerate(self._split(table, placement)):
                self._shards[i].save(
                    piece,
                    name,
                    database=database,
                    partition=partition,
                    overwrite=overwrite,
                    format=format,
                )
                sp.incr("rows", piece.num_rows)
        self._placement[(database, name)] = placement
        self._version += 1
        return placement

    def register_temp(
        self,
        table: Table,
        name: str,
        database: str = "default",
        key=_AUTO,
    ) -> Placement:
        """Register an in-memory table, split exactly like :meth:`save`."""
        placement = self._resolve_placement(table, name, database, key)
        for i, piece in enumerate(self._split(table, placement)):
            self._shards[i].register_temp(piece, name, database=database)
        self._placement[(database, name)] = placement
        self._version += 1
        return placement

    def _split(self, table: Table, placement: Placement):
        if placement.kind == "replicated":
            for _ in self._shards:
                yield table
            return
        codes = shard_of(table.column(placement.key), self.num_shards)
        for i in range(self.num_shards):
            yield table.mask(codes == i)

    def drop(self, name: str, database: str = "default") -> None:
        for shard in self._shards:
            shard.drop(name, database=database)
        self._placement.pop((database, name), None)
        self._version += 1

    # ------------------------------------------------------------------
    # Reads (gather)
    # ------------------------------------------------------------------

    def scan(
        self,
        name: str,
        database: str = "default",
        columns=None,
        predicate=None,
    ) -> Table:
        """Gather one table: shard pieces concatenated in shard order.

        Replicated tables read from shard 0 only — every copy is
        identical, and reading one keeps counters comparable to a
        single-catalog scan.
        """
        placement = self._placement.get((database, name))
        if placement is not None and placement.kind == "replicated":
            return self._shards[0].scan(
                name, database=database, columns=columns, predicate=predicate
            )
        pieces = [
            shard.scan(
                name, database=database, columns=columns, predicate=predicate
            )
            for shard in self._shards
        ]
        out = pieces[0]
        for piece in pieces[1:]:
            out = out.concat_rows(piece)
        return out

    def load(self, name: str, database: str = "default") -> Table:
        return self.scan(name, database=database)

    def exists(self, name: str, database: str = "default") -> bool:
        return self._shards[0].exists(name, database=database)

    def tables(self, database: str = "default") -> list[str]:
        return self._shards[0].tables(database=database)

    def shard_rows(self, name: str, database: str = "default") -> list[int]:
        """Per-shard row counts — the balance picture for one table."""
        return [
            shard.scan(name, database=database).num_rows
            for shard in self._shards
        ]


class ShuffleExchange:
    """Repartition a table on a new key so a non-aligned join runs local.

    ``repartition`` reads each owning shard's piece, splits rows with
    :func:`shard_of` on the new key, and lands each destination piece on
    its shard under the ``__shuffle`` database — as a temp view while
    small, spilled to the shard's block store (normal journaled v2
    columnar partitions, zone maps included) once the repartition exceeds
    ``spill_bytes``.  Destination pieces concatenate source shards in
    shard order, so results are deterministic.

    Repartitions are memoized per (table, key, columns) against the
    catalog version: re-running the 220-query fuzz corpus shuffles each
    (table, key) pair once, not per query.
    """

    def __init__(
        self,
        catalog: ShardedCatalog,
        spill_bytes: int = DEFAULT_SPILL_BYTES,
    ) -> None:
        self._catalog = catalog
        self._spill_bytes = spill_bytes
        self._memo: dict[tuple, str] = {}
        self.shuffles = 0
        self.spills = 0

    def repartition(
        self,
        name: str,
        key: str,
        database: str = "default",
        columns=None,
    ) -> str:
        """Land ``database.name`` rehashed on ``key``; return the new name.

        The returned name is ``__shuffle.<db>__<table>__by__<key>`` (with
        a column-set digest suffix when ``columns`` narrows the table) —
        scannable on every shard, hash-placed on ``key``.
        """
        cols = None if columns is None else list(dict.fromkeys([*columns, key]))
        memo_key = (
            database,
            name,
            key,
            None if cols is None else tuple(cols),
            self._catalog.version,
        )
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached
        num_shards = self._catalog.num_shards
        placement = self._catalog.placement(name, database)
        metrics = get_metrics()
        with span(
            "shard.shuffle", table=f"{database}.{name}", key=key
        ) as sp:
            sources = (
                self._catalog.shards[:1]
                if placement is not None and placement.kind == "replicated"
                else self._catalog.shards
            )
            buckets: list[list[Table]] = [[] for _ in range(num_shards)]
            moved = 0
            for shard in sources:
                piece = shard.scan(name, database=database, columns=cols)
                codes = shard_of(piece.column(key), num_shards)
                for dest in range(num_shards):
                    part = piece.mask(codes == dest)
                    moved += part.num_rows
                    buckets[dest].append(part)
            safe = name.replace(".", "_")
            shuffled = f"{database}__{safe}__by__{key}"
            if cols is not None:
                # Distinct column subsets must land under distinct names:
                # the memo keeps older entries alive, so reusing one name
                # would let a later narrow shuffle clobber a wider one.
                digest = zlib.crc32(",".join(cols).encode("utf-8"))
                shuffled = f"{shuffled}__{digest:08x}"
            spilled = 0
            for dest, parts in enumerate(buckets):
                out = parts[0]
                for part in parts[1:]:
                    out = out.concat_rows(part)
                nbytes = _table_nbytes(out)
                target = self._catalog.shards[dest]
                if nbytes > self._spill_bytes:
                    target.save(out, shuffled, database=SHUFFLE_DATABASE)
                    spilled += 1
                    metrics.counter("shard.shuffle_spill_bytes").inc(nbytes)
                else:
                    target.register_temp(
                        out, shuffled, database=SHUFFLE_DATABASE
                    )
            self.shuffles += 1
            self.spills += spilled
            metrics.counter("shard.shuffles").inc()
            metrics.counter("shard.shuffle_rows").inc(moved)
            if spilled:
                metrics.counter("shard.shuffle_spills").inc(spilled)
            sp.incr("rows", moved)
            sp.incr("spilled_shards", spilled)
        self._catalog._placement[(SHUFFLE_DATABASE, shuffled)] = Placement(
            "hash", key
        )
        self._memo[memo_key] = shuffled
        return shuffled


def _table_nbytes(table: Table) -> int:
    total = 0
    for name in table.schema.names:
        arr = table.column(name)
        if arr.dtype.kind == "O":
            total += sum(len(str(v)) for v in arr) + 8 * len(arr)
        else:
            total += arr.nbytes
    return total
