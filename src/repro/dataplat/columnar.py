"""Columnar block format v2: per-column chunks, zone maps, scan pruning.

The v1 on-store format serializes a whole table as one npz file, so every
read decodes every column of every partition before projection or selection
can happen.  v2 stores **one addressable chunk per column per partition**:

* string columns are dictionary-encoded (sorted unique values + int32
  codes),
* bool columns are bit-packed,
* int/float columns are raw little-endian bytes,
* any chunk body is zlib-compressed when that actually shrinks it.

Each chunk carries a **zone map** — ``count`` / ``null_count`` / ``min`` /
``max`` computed at encode time — written into a per-partition JSON
manifest.  A scan with pushed-down conjuncts consults the zone maps and
skips whole partitions whose chunks *provably* contain no matching row.
Pruning may only ever **skip**, never filter: a kept partition is returned
in full and the residual predicate is re-evaluated above the scan, so a
zone-map false positive costs time, never correctness.

The catalog negotiates formats by path: ``*.npz`` partitions decode through
the v1 whole-table codec, ``*.v2m`` manifests through this module — a table
may even mix both across partitions.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..errors import StorageError
from .schema import Column, ColumnType, Schema

#: Current chunked format version (v1 is the whole-table npz codec).
FORMAT_VERSION = 2

#: Path suffix of a v2 partition manifest in the block store.
MANIFEST_SUFFIX = ".v2m"

#: Path suffix of one column chunk.
CHUNK_SUFFIX = ".chunk"

#: Compress a chunk body only when zlib shrinks it below this fraction —
#: incompressible numeric data then skips the decompress on every read.
_COMPRESS_RATIO = 0.9


def array_nbytes(arr: np.ndarray) -> int:
    """Decoded size of one column array, string payload included.

    Mirrors :attr:`Table.nbytes` accounting so chunk-level cache budgeting
    bills object columns for their characters, not 8 bytes per pointer.
    """
    total = arr.nbytes
    if arr.dtype.kind == "O":
        total += sum(len(str(v)) for v in arr)
    return total


def chunk_dir(manifest_path: str) -> str:
    """The directory holding a manifest's column chunks (trailing slash)."""
    if not manifest_path.endswith(MANIFEST_SUFFIX):
        raise StorageError(f"not a v2 manifest path: {manifest_path!r}")
    return manifest_path[: -len(MANIFEST_SUFFIX)] + "/"


# ----------------------------------------------------------------------
# Zone maps
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ZoneMap:
    """Per-chunk statistics: row count, null count, min/max of non-nulls.

    ``min``/``max`` are ``None`` when the chunk has no non-null value
    (empty, or all-NaN float).  Only NaN counts as null — the platform has
    no other null representation.  ``distinct`` is the exact number of
    distinct non-null values at encode time (``None`` on manifests written
    before the binder existed); the cost-based optimizer sums it across
    partitions as a cardinality upper bound.
    """

    count: int
    null_count: int
    min: Any = None
    max: Any = None
    distinct: int | None = None

    def to_dict(self) -> dict:
        out = {
            "count": self.count,
            "null_count": self.null_count,
            "min": self.min,
            "max": self.max,
        }
        if self.distinct is not None:
            out["distinct"] = self.distinct
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "ZoneMap":
        distinct = data.get("distinct")
        return cls(
            count=int(data["count"]),
            null_count=int(data["null_count"]),
            min=data.get("min"),
            max=data.get("max"),
            distinct=None if distinct is None else int(distinct),
        )


def _comparable(bound, value) -> bool:
    """Whether a zone bound and a predicate literal order consistently."""
    bound_str = isinstance(bound, str)
    value_str = isinstance(value, str)
    return bound_str == value_str


@dataclass(frozen=True)
class ScanPredicate:
    """One pushed-down conjunct a zone map can be tested against.

    ``op`` is one of ``= <> < <= > >= in isnull notnull``; for ``in``,
    ``value`` is a tuple of literals, for ``isnull``/``notnull`` it is
    ignored.  These describe the *storage-level* view of a SQL conjunct —
    the full SQL predicate is still evaluated post-scan.
    """

    column: str
    op: str
    value: Any = None


def zone_allows(zone: ZoneMap, pred: ScanPredicate) -> bool:
    """Whether a chunk with ``zone`` *may* contain a row matching ``pred``.

    Conservative by construction: any doubt (type mismatch, unknown
    operator, missing stats) returns True.  False means *provably empty*,
    which is the only case pruning is allowed to act on.
    """
    if zone.count == 0:
        return False
    if pred.op == "isnull":
        # Only float NaN is null; int/string/bool chunks record null_count 0
        # and IS NULL over them is vacuously false, so pruning them is exact.
        return zone.null_count > 0
    if pred.op == "notnull":
        return zone.count - zone.null_count > 0
    lo, hi = zone.min, zone.max
    if pred.op == "<>":
        # NaN != literal is True under numpy semantics, so any null row
        # matches; otherwise only a constant chunk equal to the literal
        # can be skipped.
        if zone.null_count > 0:
            return True
        return not (lo == hi == pred.value)
    if lo is None or hi is None:
        # Only nulls remain, and NaN fails every ordered comparison.
        return False
    try:
        if pred.op == "in":
            return any(
                not _comparable(lo, item) or lo <= item <= hi
                for item in pred.value
            )
        if not _comparable(lo, pred.value):
            return True
        if pred.op == "=":
            return lo <= pred.value <= hi
        if pred.op == "<":
            return lo < pred.value
        if pred.op == "<=":
            return lo <= pred.value
        if pred.op == ">":
            return hi > pred.value
        if pred.op == ">=":
            return hi >= pred.value
    except TypeError:
        return True
    return True


# ----------------------------------------------------------------------
# Column chunk codec
# ----------------------------------------------------------------------


def _json_scalar(value):
    """A zone-map bound as a JSON-serializable python scalar."""
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, (bool, np.bool_)):
        return int(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    return float(value)


def _maybe_compress(body: bytes) -> tuple[bytes, bool]:
    packed = zlib.compress(body, 6)
    if len(packed) < len(body) * _COMPRESS_RATIO:
        return packed, True
    return body, False


def encode_column(column: Column, arr: np.ndarray) -> tuple[bytes, ZoneMap]:
    """Encode one column into a self-describing chunk payload + zone map."""
    n = len(arr)
    header: dict[str, Any] = {"ctype": column.ctype.value, "rows": n}
    if column.ctype is ColumnType.STRING:
        strings = np.asarray([str(v) for v in arr.tolist()], dtype=object)
        if n:
            uniq, codes = np.unique(strings, return_inverse=True)
            values = [str(v) for v in uniq.tolist()]
            body = codes.astype("<i4").tobytes()
            zone = ZoneMap(n, 0, values[0], values[-1], distinct=len(values))
        else:
            values, body, zone = [], b"", ZoneMap(0, 0, distinct=0)
        header["enc"] = "dict"
        header["dict"] = values
    elif column.ctype is ColumnType.BOOL:
        bools = np.asarray(arr, dtype=bool)
        body = np.packbits(bools).tobytes()
        header["enc"] = "bitpack"
        zone = ZoneMap(
            n,
            0,
            int(bools.min()) if n else None,
            int(bools.max()) if n else None,
            distinct=len(np.unique(bools)) if n else 0,
        )
    else:
        dtype = "<i8" if column.ctype is ColumnType.INT else "<f8"
        numeric = np.asarray(arr)
        body = numeric.astype(dtype, copy=False).tobytes()
        header["enc"] = "raw"
        header["dtype"] = dtype
        if column.ctype is ColumnType.FLOAT:
            nulls = int(np.isnan(numeric).sum())
            if n - nulls:
                present = numeric[~np.isnan(numeric)] if nulls else numeric
                zone = ZoneMap(
                    n,
                    nulls,
                    _json_scalar(np.nanmin(numeric)),
                    _json_scalar(np.nanmax(numeric)),
                    distinct=len(np.unique(present)),
                )
            else:
                zone = ZoneMap(n, nulls, distinct=0)
        else:
            zone = ZoneMap(
                n,
                0,
                int(numeric.min()) if n else None,
                int(numeric.max()) if n else None,
                distinct=len(np.unique(numeric)) if n else 0,
            )
    body, compressed = _maybe_compress(body)
    header["comp"] = compressed
    payload = json.dumps(header).encode("utf-8") + b"\n" + body
    return payload, zone


def decode_column(payload: bytes) -> np.ndarray:
    """Inverse of :func:`encode_column`."""
    split = payload.index(b"\n")
    header = json.loads(payload[:split].decode("utf-8"))
    body = payload[split + 1 :]
    if header.get("comp"):
        body = zlib.decompress(body)
    rows = int(header["rows"])
    enc = header["enc"]
    if enc == "dict":
        values = np.asarray(header["dict"], dtype=object)
        if rows == 0:
            return np.empty(0, dtype=object)
        codes = np.frombuffer(body, dtype="<i4").astype(np.intp)
        return values[codes]
    if enc == "bitpack":
        bits = np.unpackbits(np.frombuffer(body, dtype=np.uint8), count=rows)
        return bits.astype(bool)
    if enc == "raw":
        # Copy: frombuffer views are read-only, and decoded columns must
        # behave exactly like v1 npz arrays.
        return np.frombuffer(body, dtype=header["dtype"]).copy()
    raise StorageError(f"unknown chunk encoding {enc!r}")


# ----------------------------------------------------------------------
# Partition manifests
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChunkMeta:
    """Manifest entry for one column chunk."""

    name: str
    ctype: str
    path: str
    encoded_bytes: int
    decoded_bytes: int
    zone: ZoneMap

    @property
    def column(self) -> Column:
        return Column(self.name, ColumnType(self.ctype))


@dataclass(frozen=True)
class PartitionManifest:
    """Everything a scan needs to know about one v2 partition.

    ``database``/``table``/``partition`` record the catalog identity the
    manifest was written under.  Registration paths mangle partition specs
    lossily (``month=3`` → ``month_3``), so these fields are what recovery
    and fsck use to re-register a partition found on storage when the
    journal that created it is gone.  They are optional for backward
    compatibility with manifests written before the journal existed.
    """

    rows: int
    chunks: tuple[ChunkMeta, ...]
    database: str | None = None
    table: str | None = None
    partition: str | None = None

    @property
    def identity(self) -> tuple[str, str, str] | None:
        """``(database, table, partition)`` when fully recorded, else None."""
        if self.database is None or self.table is None or self.partition is None:
            return None
        return (self.database, self.table, self.partition)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_by_name", {c.name: c for c in self.chunks}
        )

    def chunk(self, name: str) -> ChunkMeta | None:
        return self._by_name.get(name)

    @property
    def schema(self) -> Schema:
        return Schema(c.column for c in self.chunks)

    def to_bytes(self) -> bytes:
        doc = {
            "format": FORMAT_VERSION,
            "rows": self.rows,
            "columns": [
                {
                    "name": c.name,
                    "ctype": c.ctype,
                    "path": c.path,
                    "encoded_bytes": c.encoded_bytes,
                    "decoded_bytes": c.decoded_bytes,
                    "zone": c.zone.to_dict(),
                }
                for c in self.chunks
            ],
        }
        if self.identity is not None:
            doc["identity"] = {
                "database": self.database,
                "table": self.table,
                "partition": self.partition,
            }
        return json.dumps(doc).encode("utf-8")

    @classmethod
    def from_bytes(cls, payload: bytes) -> "PartitionManifest":
        doc = json.loads(payload.decode("utf-8"))
        version = doc.get("format")
        if version != FORMAT_VERSION:
            raise StorageError(
                f"unsupported columnar format version {version!r} "
                f"(this build reads v{FORMAT_VERSION})"
            )
        chunks = tuple(
            ChunkMeta(
                name=c["name"],
                ctype=c["ctype"],
                path=c["path"],
                encoded_bytes=int(c["encoded_bytes"]),
                decoded_bytes=int(c["decoded_bytes"]),
                zone=ZoneMap.from_dict(c["zone"]),
            )
            for c in doc["columns"]
        )
        identity = doc.get("identity", {})
        return cls(
            rows=int(doc["rows"]),
            chunks=chunks,
            database=identity.get("database"),
            table=identity.get("table"),
            partition=identity.get("partition"),
        )


def manifest_allows(
    manifest: PartitionManifest, predicates: list[ScanPredicate]
) -> bool:
    """Whether a partition may hold rows satisfying *all* ``predicates``.

    Conjuncts over columns the manifest does not know (projection renames,
    computed columns) cannot prune.  One provably-empty conjunct is enough
    to skip the partition, since conjuncts are AND-ed.
    """
    for pred in predicates:
        meta = manifest.chunk(pred.column)
        if meta is None:
            continue
        if not zone_allows(meta.zone, pred):
            return False
    return True


# ----------------------------------------------------------------------
# Table statistics (binder / cost-based optimizer surface)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnStats:
    """Aggregated statistics for one column of one table.

    ``distinct`` is an estimate (exact for temp views, a cross-partition
    upper bound for persisted v2 tables, ``None`` when unknown).  Bounds
    follow zone-map semantics: ``min``/``max`` cover non-null values only
    and only float NaN counts as null.
    """

    rows: int
    nulls: int
    min: Any = None
    max: Any = None
    distinct: float | None = None

    @property
    def null_fraction(self) -> float:
        return self.nulls / self.rows if self.rows else 0.0


@dataclass(frozen=True)
class TableStats:
    """Row count plus per-column stats, as the binder consumes them.

    ``exact`` distinguishes stats computed from a whole in-memory table
    (temp views) from zone-map rollups, whose distinct counts can only
    over-count across partitions.
    """

    rows: int
    columns: dict[str, ColumnStats]
    exact: bool = False

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name)


def column_stats_from_array(arr: np.ndarray) -> ColumnStats:
    """Exact :class:`ColumnStats` for one in-memory column."""
    n = len(arr)
    if n == 0:
        return ColumnStats(0, 0, distinct=0.0)
    values = np.asarray(arr)
    if values.dtype.kind == "f":
        nan = np.isnan(values)
        nulls = int(nan.sum())
        present = values[~nan] if nulls else values
        if not len(present):
            return ColumnStats(n, nulls, distinct=0.0)
        return ColumnStats(
            n,
            nulls,
            _json_scalar(present.min()),
            _json_scalar(present.max()),
            distinct=float(len(np.unique(present))),
        )
    if values.dtype.kind == "O":
        strings = np.asarray([str(v) for v in values.tolist()], dtype=object)
        uniq = np.unique(strings)
        return ColumnStats(
            n, 0, str(uniq[0]), str(uniq[-1]), distinct=float(len(uniq))
        )
    return ColumnStats(
        n,
        0,
        _json_scalar(values.min()),
        _json_scalar(values.max()),
        distinct=float(len(np.unique(values))),
    )


def _combine_bounds(a, b, pick):
    if a is None:
        return b
    if b is None:
        return a
    if not _comparable(a, b):
        return None
    return pick(a, b)


def rollup_table_stats(manifests: list[PartitionManifest]) -> TableStats:
    """Fold per-partition zone maps into whole-table column statistics.

    Distinct counts sum across partitions (an upper bound — partitions can
    share values), additionally capped by the integer value span and the
    non-null row count.  A column missing ``distinct`` in any partition
    (pre-binder manifest) reports ``distinct=None``.
    """
    rows = sum(m.rows for m in manifests)
    names: list[str] = []
    for manifest in manifests:
        for chunk in manifest.chunks:
            if chunk.name not in names:
                names.append(chunk.name)
    columns: dict[str, ColumnStats] = {}
    for name in names:
        count = nulls = 0
        lo = hi = None
        distinct: float | None = 0.0
        for manifest in manifests:
            chunk = manifest.chunk(name)
            if chunk is None:
                continue
            zone = chunk.zone
            count += zone.count
            nulls += zone.null_count
            lo = _combine_bounds(lo, zone.min, min)
            hi = _combine_bounds(hi, zone.max, max)
            if distinct is not None and zone.distinct is not None:
                distinct += zone.distinct
            else:
                distinct = None
        if distinct is not None:
            distinct = min(distinct, float(count - nulls))
            if (
                isinstance(lo, (int, np.integer))
                and isinstance(hi, (int, np.integer))
            ):
                distinct = min(distinct, float(hi - lo + 1))
        columns[name] = ColumnStats(count, nulls, lo, hi, distinct=distinct)
    return TableStats(rows=rows, columns=columns, exact=False)
