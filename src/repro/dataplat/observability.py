"""Zero-dependency observability: tracing spans, metrics, profiling hooks.

The paper's production loop (Tables 5-6) lives or dies on per-stage
visibility — where did the monthly build spend its time, which reads were
retried, which feature family was slow this month.  This module is the
reproduction's observability layer, deliberately dependency-free:

* :class:`Tracer` — produces *nested* spans.  A span records its name, tags,
  wall/CPU time, ad-hoc counters and child spans; the tree is exported as
  plain dicts for JSON serialization (``scripts/trace_report.py`` renders
  it).  Span structure (names, nesting, tags) is deterministic for a given
  workload; only the timings vary.
* :class:`MetricsRegistry` — process-wide counters, gauges and
  fixed-boundary histograms.  Histograms merge associatively and conserve
  observation counts, so per-worker histograms can be folded back exactly
  like the resilience layer's fault counters.
* :func:`span` / :func:`profiled` — the hooks hot paths are threaded with.
  When no tracer is installed they cost one module-global load and return a
  shared no-op context, keeping the disabled-path overhead within the
  ≤5 % budget measured by ``benchmarks/baseline.py``.

Worker propagation: a process-pool task runs under a *fresh* local tracer,
exports its finished spans to dicts, and the parent re-attaches them under
its own current span (:meth:`Tracer.attach`) — the same snapshot/absorb
pattern :class:`~repro.dataplat.resilience.TaskRuntime` uses for fault
counters, so traces stay complete whether a task ran in-process or not.
"""

from __future__ import annotations

import bisect
import functools
import json
import math
import time
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager

from ..errors import DataPlatformError

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "trace",
    "span",
    "profiled",
    "enabled",
    "get_tracer",
    "set_tracer",
    "current_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "DEFAULT_BUCKETS",
]


# ----------------------------------------------------------------------
# Spans and tracer
# ----------------------------------------------------------------------


class Span:
    """One timed, tagged unit of work in a trace tree."""

    __slots__ = (
        "name",
        "tags",
        "counters",
        "children",
        "status",
        "wall_s",
        "cpu_s",
        "_wall_start",
        "_cpu_start",
    )

    def __init__(self, name: str, tags: dict | None = None) -> None:
        self.name = name
        self.tags: dict = dict(tags) if tags else {}
        self.counters: dict[str, float] = {}
        self.children: list[Span] = []
        self.status = "ok"
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._wall_start = 0.0
        self._cpu_start = 0.0

    # -- mutation hooks (safe on the no-op span too) -------------------

    def set_tag(self, key: str, value) -> "Span":
        self.tags[key] = value
        return self

    def incr(self, counter: str, amount: float = 1) -> "Span":
        self.counters[counter] = self.counters.get(counter, 0) + amount
        return self

    # -- lifecycle -----------------------------------------------------

    def _start(self) -> None:
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()

    def _finish(self) -> None:
        self.wall_s = time.perf_counter() - self._wall_start
        self.cpu_s = time.process_time() - self._cpu_start

    # -- export --------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable view of this span and its subtree."""
        out: dict = {"name": self.name, "wall_s": self.wall_s, "cpu_s": self.cpu_s}
        if self.status != "ok":
            out["status"] = self.status
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span tree exported by :meth:`to_dict`."""
        span = cls(data["name"], data.get("tags"))
        span.wall_s = float(data.get("wall_s", 0.0))
        span.cpu_s = float(data.get("cpu_s", 0.0))
        span.status = data.get("status", "ok")
        span.counters = dict(data.get("counters", {}))
        span.children = [cls.from_dict(c) for c in data.get("children", ())]
        return span

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def summary(self) -> dict[str, dict[str, float]]:
        """Aggregate ``{name: {count, wall_s, cpu_s}}`` over this subtree.

        Same shape as :meth:`Tracer.summary`, so consumers (health reports)
        can scope their accounting to one span instead of the whole run.
        """
        out: dict[str, dict[str, float]] = {}
        for node in self.walk():
            agg = out.setdefault(
                node.name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
            )
            agg["count"] += 1
            agg["wall_s"] += node.wall_s
            agg["cpu_s"] += node.cpu_s
        return out

    def __repr__(self) -> str:
        return f"Span({self.name!r}, wall={self.wall_s:.6f}s, tags={self.tags})"


class _NullSpan(Span):
    """Shared do-nothing span handed out when tracing is disabled."""

    def set_tag(self, key: str, value) -> "Span":
        return self

    def incr(self, counter: str, amount: float = 1) -> "Span":
        return self


#: The span every :func:`span` call yields while tracing is disabled.
NULL_SPAN = _NullSpan("null")


class _NullContext:
    """Reusable no-op context manager (no per-call generator object)."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class _SpanContext:
    """Context manager pushing one span onto a tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._span._start()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span._finish()
        if exc_type is not None:
            self._span.status = f"error:{exc_type.__name__}"
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Collects nested spans for one traced run."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **tags) -> _SpanContext:
        """Open a child span of the current span (or a new root)."""
        return _SpanContext(self, Span(name, tags))

    def current(self) -> Span | None:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def _push(self, span: Span) -> None:
        parent = self.current()
        (parent.children if parent is not None else self.roots).append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:  # pragma: no cover
            raise DataPlatformError(f"span stack corrupted at {span.name!r}")
        self._stack.pop()

    # -- worker merge --------------------------------------------------

    def attach(self, span_dicts: Sequence[dict]) -> None:
        """Graft exported worker spans under the current span.

        The counterpart of a worker's ``[s.to_dict() for s in roots]``:
        remote subtrees appear in the parent trace exactly where the
        fan-out happened, like fault counters folding into the parent
        :class:`~repro.dataplat.resilience.TaskRuntime`.
        """
        parent = self.current()
        bucket = parent.children if parent is not None else self.roots
        for data in span_dicts:
            bucket.append(Span.from_dict(data))

    # -- inspection / export -------------------------------------------

    def iter_spans(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> list[Span]:
        """All spans with ``name``, depth-first document order."""
        return [s for s in self.iter_spans() if s.name == name]

    def export(self) -> list[dict]:
        """The whole trace as JSON-serializable dicts."""
        return [root.to_dict() for root in self.roots]

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps({"spans": self.export()}, indent=indent, default=str)

    def summary(self) -> dict[str, dict[str, float]]:
        """Aggregate ``{span name: {count, wall_s, cpu_s}}`` over the tree.

        Wall/CPU sums include time spent in child spans (they nest), so the
        numbers answer "how much time was under spans named X", the question
        a stage budget asks.
        """
        out: dict[str, dict[str, float]] = {}
        for span in self.iter_spans():
            agg = out.setdefault(
                span.name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0}
            )
            agg["count"] += 1
            agg["wall_s"] += span.wall_s
            agg["cpu_s"] += span.cpu_s
        return out


# ----------------------------------------------------------------------
# Process-wide tracer installation and the hot-path hooks
# ----------------------------------------------------------------------

_ACTIVE: Tracer | None = None


def enabled() -> bool:
    """Whether a tracer is currently installed (the hot-path guard)."""
    return _ACTIVE is not None


def get_tracer() -> Tracer | None:
    return _ACTIVE


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or clear) the process-wide tracer; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextmanager
def trace(name: str | None = None, tracer: Tracer | None = None):
    """Install a tracer for the duration of the block and yield it.

    >>> with trace() as t:
    ...     with span("work", month=3):
    ...         pass
    >>> [s["name"] for s in t.export()]
    ['work']
    """
    tracer = tracer if tracer is not None else Tracer()
    previous = set_tracer(tracer)
    try:
        if name is not None:
            with tracer.span(name):
                yield tracer
        else:
            yield tracer
    finally:
        set_tracer(previous)


def span(name: str, **tags):
    """Open a span on the active tracer; a shared no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_CONTEXT
    return tracer.span(name, **tags)


def current_span() -> Span:
    """The innermost open span (``NULL_SPAN`` when tracing is disabled)."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.current() or NULL_SPAN


def profiled(name: str | None = None, **tags) -> Callable:
    """Decorator tracing every call of the wrapped function.

    ``@profiled()`` uses the function's qualified name; explicit names keep
    the span taxonomy stable across refactors.  With tracing disabled the
    wrapper adds one global load and a falsy check.
    """

    def decorate(fn: Callable) -> Callable:
        span_name = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _ACTIVE
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(span_name, **tags):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise DataPlatformError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """Point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


#: Default latency-ish bucket boundaries (seconds, roughly log-spaced).
DEFAULT_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Histogram:
    """Fixed-boundary histogram with exact merge semantics.

    ``boundaries`` are upper bounds of the first ``len(boundaries)``
    buckets; one overflow bucket catches everything above the last bound.
    Two invariants the property tests pin down:

    * *bucket-count conservation* — ``sum(counts) == total`` always;
    * *merge associativity* — ``(a + b) + c`` equals ``a + (b + c)``
      bucket-for-bucket (and in total/sum/min/max), so worker histograms
      can be folded back in any order.
    """

    __slots__ = ("name", "boundaries", "counts", "total", "sum", "min", "max")

    def __init__(
        self, name: str, boundaries: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise DataPlatformError("histogram needs at least one boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise DataPlatformError(
                f"boundaries must be strictly increasing, got {bounds}"
            )
        self.name = name
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.total += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Conservative ``q``-quantile from the bucket counts.

        Returns the smallest bucket upper bound that covers at least
        ``ceil(q * total)`` observations — an over-estimate by at most one
        bucket width, which is the right direction for an SLO gauge (a
        latency budget can only be *falsely breached*, never falsely met).
        Observations in the overflow bucket report the exact observed
        maximum.  An empty histogram returns ``0.0``.
        """
        if not 0.0 < q <= 1.0:
            raise DataPlatformError(f"quantile q must be in (0, 1], got {q}")
        if self.total == 0:
            return 0.0
        target = math.ceil(q * self.total)
        covered = 0
        for bound, count in zip(self.boundaries, self.counts):
            covered += count
            if covered >= target:
                return bound
        return self.max

    def merge(self, other: "Histogram") -> "Histogram":
        """A new histogram combining both operands (inputs untouched)."""
        if self.boundaries != other.boundaries:
            raise DataPlatformError(
                f"cannot merge histograms with different boundaries: "
                f"{self.boundaries} vs {other.boundaries}"
            )
        out = Histogram(self.name, self.boundaries)
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.total = self.total + other.total
        out.sum = self.sum + other.sum
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        return out

    def to_dict(self) -> dict:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "mean": self.mean,
            "min": None if self.total == 0 else self.min,
            "max": None if self.total == 0 else self.max,
        }


class MetricsRegistry:
    """Named counters, gauges and histograms for one process.

    Instruments are created on first use and live for the registry's
    lifetime; :meth:`snapshot` exports everything as plain data for health
    reports and the benchmark JSON.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, boundaries: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, boundaries)
        elif tuple(float(b) for b in boundaries) != instrument.boundaries:
            raise DataPlatformError(
                f"histogram {name!r} already registered with different "
                f"boundaries"
            )
        return instrument

    def snapshot(self) -> dict:
        """All instruments as JSON-serializable plain data."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (tests isolate through this)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


_METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _METRICS


def set_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    ``None`` installs a fresh empty registry.  Tests use this to isolate
    their counter assertions from whatever ran before.
    """
    global _METRICS
    previous = _METRICS
    _METRICS = registry if registry is not None else MetricsRegistry()
    return previous
