"""Cardinality feedback: learned corrections for the binder's estimates.

The binder's System-R style estimates (uniformity, independence) are
systematically wrong on skewed data — the whole reason the
``planner.estimate_error_q`` histogram exists.  This module closes the
loop: query profiles (:mod:`.profile`) record actual row counts per
operator, :class:`CardinalityFeedback` aggregates the actual/estimated
ratio per *(relation set, operator shape)* key, and the binder multiplies
its raw estimate by the learned correction on the next planning pass.

Keys abstract literals away (``kind = 'promo'`` and ``kind = 'std'``
share the shape ``kind=?``) and are invariant under join reordering: a
node's key covers the *set* of base tables below it plus the multiset of
cardinality-affecting predicate shapes in its subtree, so the top join of
a reordered cluster keeps its key.

Corrections are learned against the binder's *raw* (uncorrected)
estimate, so repeated runs converge to ``actual / raw`` instead of
oscillating, and are clamped to ``[1/1000, 1000]`` so one pathological
observation cannot blow up planning.
"""

from __future__ import annotations

import math
from typing import Iterable

from .ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
)
from .plan import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    PlanNode,
    Scan,
    UnionAll,
)

__all__ = ["CardinalityFeedback", "expr_shape", "node_signature"]

#: Corrections are clamped to [1/CORRECTION_CLAMP, CORRECTION_CLAMP].
CORRECTION_CLAMP = 1000.0


def expr_shape(expr: Expr) -> str:
    """Canonical predicate shape: literals become ``?``, aliases drop.

    Column references use the bare column name (the qualifier is an alias
    chosen per query), AND/OR operands are flattened and sorted, and LIKE
    patterns keep only their wildcard skeleton — so structurally identical
    predicates over different constants share one shape:
    ``o.kind = 'promo'`` and ``o.kind = 'std'`` are both ``kind=?``.
    """
    if isinstance(expr, Literal):
        return "?"
    if isinstance(expr, Star):
        return "*"
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, UnaryOp):
        return f"{expr.op.lower()}({expr_shape(expr.operand)})"
    if isinstance(expr, BinaryOp):
        if expr.op in ("AND", "OR"):
            parts: list[str] = []
            _flatten(expr, expr.op, parts)
            joiner = " and " if expr.op == "AND" else " or "
            return "(" + joiner.join(sorted(parts)) + ")"
        return f"{expr_shape(expr.left)}{expr.op}{expr_shape(expr.right)}"
    if isinstance(expr, FunctionCall):
        args = ",".join(expr_shape(a) for a in expr.args)
        return f"{expr.name.lower()}({args})"
    if isinstance(expr, CaseWhen):
        return f"case#{len(expr.branches)}"
    if isinstance(expr, InList):
        word = "not in" if expr.negated else "in"
        return f"{expr_shape(expr.operand)} {word}#{len(expr.items)}"
    if isinstance(expr, Between):
        word = "not between" if expr.negated else "between"
        return f"{expr_shape(expr.operand)} {word} ?"
    if isinstance(expr, IsNull):
        word = "is not null" if expr.negated else "is null"
        return f"{expr_shape(expr.operand)} {word}"
    if isinstance(expr, Like):
        skeleton = "".join(c if c in "%_" else "x" for c in expr.pattern)
        word = "not like" if expr.negated else "like"
        return f"{expr_shape(expr.operand)} {word} {skeleton}"
    return type(expr).__name__.lower()


def _flatten(expr: Expr, op: str, out: list[str]) -> None:
    if isinstance(expr, BinaryOp) and expr.op == op:
        _flatten(expr.left, op, out)
        _flatten(expr.right, op, out)
    else:
        out.append(expr_shape(expr))


def node_signature(node: PlanNode) -> tuple[str, str] | None:
    """``(relations, shape)`` feedback key, or None for pass-through nodes.

    Only the node types whose cardinality the binder genuinely estimates
    (Scan/Filter/Join/Aggregate) get keys; Project/Sort/etc. inherit their
    child's row count and learning a correction for them would double
    count.  The shape is the node's own class plus the sorted multiset of
    cardinality-affecting predicate shapes in its subtree, which makes the
    key stable when the cost-based optimizer reorders a join cluster.
    """
    if not isinstance(node, (Scan, Filter, Join, Aggregate)):
        return None
    tables: set[str] = set()
    _collect_tables(node, tables)
    parts: list[str] = []
    _collect_shape_parts(node, parts)
    shape = f"{type(node).__name__.lower()}|{';'.join(sorted(parts))}"
    return "+".join(sorted(tables)), shape


def _collect_tables(node: PlanNode, out: set[str]) -> None:
    if isinstance(node, Scan):
        out.add(node.table)
    for child in node.children():
        _collect_tables(child, out)


def _collect_shape_parts(node: PlanNode, out: list[str]) -> None:
    if isinstance(node, Filter):
        out.append(f"f:{expr_shape(node.predicate)}")
    elif isinstance(node, Join):
        conjuncts: list[Expr] = []
        _split_condition(node.condition, conjuncts)
        for conjunct in conjuncts:
            out.append(f"j[{node.kind}]:{expr_shape(conjunct)}")
    elif isinstance(node, Aggregate):
        keys = ",".join(sorted(expr_shape(k) for k in node.group_by))
        out.append(f"a:{keys}" if keys else "a:global")
    elif isinstance(node, Limit):
        out.append(f"l:{node.count}")
    elif isinstance(node, Distinct):
        out.append("d")
    elif isinstance(node, UnionAll):
        out.append(f"u:{len(node.inputs)}")
    # Scan predicate hints are advisory copies of Filter conjuncts — a
    # scan contributes its table (via _collect_tables), not a shape.
    for child in node.children():
        _collect_shape_parts(child, out)


def _split_condition(expr: Expr, out: list[Expr]) -> None:
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        _split_condition(expr.left, out)
        _split_condition(expr.right, out)
    else:
        out.append(expr)


class CardinalityFeedback:
    """Aggregated actual/estimated ratios, queryable by plan node.

    Stores, per key, the observation count and the sum of
    ``log((actual + 1) / (raw_estimate + 1))``; the correction is the
    clamped geometric mean of the observed ratios.  The +1 smoothing keeps
    empty results finite and pulls tiny samples toward 1.
    """

    def __init__(self) -> None:
        self._stats: dict[tuple[str, str], tuple[int, float]] = {}

    def __len__(self) -> int:
        return len(self._stats)

    def observe(
        self, rel: str, shape: str, est_rows: float, actual_rows: float
    ) -> None:
        """Record one (raw estimate, actual) pair for a key."""
        if est_rows < 0 or actual_rows < 0:
            return
        ratio = math.log((actual_rows + 1.0) / (est_rows + 1.0))
        count, log_sum = self._stats.get((rel, shape), (0, 0.0))
        self._stats[(rel, shape)] = (count + 1, log_sum + ratio)

    def ingest(self, profile) -> int:
        """Absorb every keyed operator of a :class:`~.profile.QueryProfile`.

        Returns the number of observations recorded.
        """
        seen = 0
        for op in profile.operators:
            if op.rel and op.shape and op.est_rows_raw >= 0:
                self.observe(op.rel, op.shape, op.est_rows_raw, op.actual_rows)
                seen += 1
        return seen

    def correction_for(self, rel: str, shape: str) -> float:
        """Geometric-mean correction for a key (1.0 when unobserved)."""
        stat = self._stats.get((rel, shape))
        if stat is None:
            return 1.0
        count, log_sum = stat
        factor = math.exp(log_sum / count)
        return min(CORRECTION_CLAMP, max(1.0 / CORRECTION_CLAMP, factor))

    def correction(self, node: PlanNode) -> float:
        """Correction for a plan node (1.0 for unkeyed/unobserved nodes)."""
        key = node_signature(node)
        if key is None:
            return 1.0
        return self.correction_for(*key)

    def observations(self) -> dict[tuple[str, str], int]:
        """Observation counts per key (for reports and tests)."""
        return {key: count for key, (count, _) in self._stats.items()}

    @classmethod
    def from_profiles(cls, profiles: Iterable) -> "CardinalityFeedback":
        """Build a store from an iterable of query profiles."""
        feedback = cls()
        for profile in profiles:
            feedback.ingest(profile)
        return feedback

    @classmethod
    def from_warehouse(
        cls, warehouse, run_id: str | None = None
    ) -> "CardinalityFeedback":
        """Rebuild a store from ``__telemetry.query_profiles`` rows.

        This is how a fresh process warms up from history recorded by
        earlier runs; ``run_id`` restricts to one run.
        """
        feedback = cls()
        if "query_profiles" not in warehouse.tables():
            return feedback
        table = warehouse.catalog.load(
            "query_profiles", database="__telemetry"
        )
        names = list(table.schema.names)
        idx = {name: names.index(name) for name in names}
        for row in table.rows():
            if run_id is not None and row[idx["run_id"]] != run_id:
                continue
            rel = row[idx["rel"]]
            shape = row[idx["shape"]]
            est_raw = float(row[idx["est_rows_raw"]])
            if rel and shape and est_raw >= 0:
                feedback.observe(
                    rel, shape, est_raw, float(row[idx["actual_rows"]])
                )
        return feedback
