"""Abstract syntax tree for the SQL dialect.

Expressions form a small algebra (:class:`Expr` subclasses); a query is a
:class:`SelectStatement` over a :class:`TableRef` chain with optional joins.
Nodes are frozen dataclasses so plans can hash/compare them.
"""

from __future__ import annotations

from dataclasses import dataclass


class Expr:
    """Base class for expressions."""

    def columns(self) -> set[str]:
        """All (possibly qualified) column names referenced in this expr."""
        out: set[str] = set()
        _collect_columns(self, out)
        return out

    def has_aggregate(self) -> bool:
        return _has_aggregate(self)


@dataclass(frozen=True)
class Literal(Expr):
    value: object  # int | float | str | bool | None


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str
    table: str | None = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``t.*`` in a select list or ``COUNT(*)``."""

    table: str | None = None


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "-" | "NOT"
    operand: Expr


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # arithmetic, comparison, AND, OR
    left: Expr
    right: Expr


@dataclass(frozen=True)
class FunctionCall(Expr):
    name: str  # upper-cased
    args: tuple[Expr, ...]
    distinct: bool = False


@dataclass(frozen=True)
class CaseWhen(Expr):
    branches: tuple[tuple[Expr, Expr], ...]  # (condition, value)
    otherwise: Expr | None = None


@dataclass(frozen=True)
class InList(Expr):
    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class Like(Expr):
    """SQL LIKE with ``%`` (any run) and ``_`` (one char) wildcards."""

    operand: Expr
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class JoinClause:
    table: TableRef
    kind: str  # "inner" | "left"
    condition: Expr


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    items: tuple[SelectItem, ...]
    table: TableRef
    joins: tuple[JoinClause, ...] = ()
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False


@dataclass(frozen=True)
class UnionAllStatement:
    """Two or more SELECTs concatenated with UNION ALL."""

    selects: tuple[SelectStatement, ...]


@dataclass(frozen=True)
class ExplainStatement:
    """``EXPLAIN [ANALYZE] <select>``: return the bound optimized plan.

    With ``analyze`` the inner statement is actually executed and every
    plan line carries actual rows, wall/CPU time and storage counters
    alongside the binder's estimate.
    """

    statement: "SelectStatement | UnionAllStatement"
    analyze: bool = False


from .functions import AGGREGATE_FUNCTIONS  # noqa: E402  (cycle-free import)


def _collect_columns(expr: Expr, out: set[str]) -> None:
    if isinstance(expr, ColumnRef):
        out.add(expr.qualified)
    elif isinstance(expr, UnaryOp):
        _collect_columns(expr.operand, out)
    elif isinstance(expr, BinaryOp):
        _collect_columns(expr.left, out)
        _collect_columns(expr.right, out)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            _collect_columns(arg, out)
    elif isinstance(expr, CaseWhen):
        for cond, value in expr.branches:
            _collect_columns(cond, out)
            _collect_columns(value, out)
        if expr.otherwise is not None:
            _collect_columns(expr.otherwise, out)
    elif isinstance(expr, InList):
        _collect_columns(expr.operand, out)
        for item in expr.items:
            _collect_columns(item, out)
    elif isinstance(expr, Between):
        _collect_columns(expr.operand, out)
        _collect_columns(expr.low, out)
        _collect_columns(expr.high, out)
    elif isinstance(expr, IsNull):
        _collect_columns(expr.operand, out)
    elif isinstance(expr, Like):
        _collect_columns(expr.operand, out)


def _has_aggregate(expr: Expr) -> bool:
    if isinstance(expr, FunctionCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            return True
        return any(_has_aggregate(a) for a in expr.args)
    if isinstance(expr, UnaryOp):
        return _has_aggregate(expr.operand)
    if isinstance(expr, BinaryOp):
        return _has_aggregate(expr.left) or _has_aggregate(expr.right)
    if isinstance(expr, CaseWhen):
        for cond, value in expr.branches:
            if _has_aggregate(cond) or _has_aggregate(value):
                return True
        return expr.otherwise is not None and _has_aggregate(expr.otherwise)
    if isinstance(expr, InList):
        return _has_aggregate(expr.operand)
    if isinstance(expr, Between):
        return any(
            _has_aggregate(e) for e in (expr.operand, expr.low, expr.high)
        )
    if isinstance(expr, IsNull):
        return _has_aggregate(expr.operand)
    if isinstance(expr, Like):
        return _has_aggregate(expr.operand)
    return False
