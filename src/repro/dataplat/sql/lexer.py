"""SQL tokenizer.

Produces a flat list of :class:`Token` objects.  Keywords are
case-insensitive; identifiers keep their original case.  String literals use
single quotes with ``''`` as the escape for a quote.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ...errors import SQLSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AS", "AND", "OR", "NOT", "JOIN", "INNER", "LEFT", "ON", "ASC", "DESC",
    "DISTINCT", "CASE", "WHEN", "THEN", "ELSE", "END", "NULL", "TRUE",
    "UNION", "ALL", "EXPLAIN", "ANALYZE",
    "FALSE", "IN", "BETWEEN", "LIKE", "IS",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    ttype: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.ttype is TokenType.KEYWORD and self.value == word

    def __repr__(self) -> str:
        return f"Token({self.ttype.value}, {self.value!r}@{self.position})"


_OPERATORS = ("<>", "<=", ">=", "!=", "=", "<", ">", "+", "-", "*", "/", "%")
_PUNCT = "(),."


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL ``text``; raises :class:`SQLSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            newline = text.find("\n", i)
            i = n if newline < 0 else newline + 1
            continue
        if ch == "'":
            literal, i = _read_string(text, i)
            tokens.append(Token(TokenType.STRING, literal, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            i += 1
            seen_dot = ch == "."
            seen_exp = False
            while i < n:
                c = text[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i + 1 < n and (
                    text[i + 1].isdigit() or text[i + 1] in "+-"
                ):
                    seen_exp = True
                    i += 2 if text[i + 1] in "+-" else 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, text[start:i], start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), start))
            else:
                tokens.append(Token(TokenType.IDENT, word, start))
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise SQLSyntaxError(f"unexpected character {ch!r}", position=i)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _read_string(text: str, start: int) -> tuple[str, int]:
    """Read a single-quoted string starting at ``start``; returns (value, end)."""
    i = start + 1
    out: list[str] = []
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise SQLSyntaxError("unterminated string literal", position=start)
