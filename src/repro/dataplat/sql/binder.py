"""Binder: annotate logical plans with catalog statistics and row estimates.

Mirrors the opteryx-style pipeline (rewriter → logical planner → heuristic
optimizer → **binder** → cost-based optimizer): after the rule-based passes
run, the binder walks the plan, resolves every :class:`~.plan.Scan` against
the catalog, attaches :class:`~..columnar.TableStats` (row count, per-column
distinct / min / max / null fraction rolled up from zone maps), and computes
an ``est_rows`` annotation bottom-up for every node.  The estimates feed
:mod:`.cbo` and surface in ``describe()``/EXPLAIN and tracing spans so
estimate quality is inspectable.

Estimation is deliberately classical (System-R style):

* equality selectivity ``1/distinct``, ranges by linear interpolation into
  the ``[min, max]`` span, ``IS NULL`` by the null fraction;
* conjunction multiplies selectivities (independence assumption), which
  keeps estimates *monotone*: ``est(A AND B) <= est(A)``;
* joins divide the cross product by the larger key distinct count;
* anything unknown falls back to a conservative constant — missing stats
  must never make a plan worse than the heuristic one, only estimates.

All estimates are clamped non-negative and carry no correctness weight:
they may only influence join order, join strategy, and early projection.
"""

from __future__ import annotations

from ...errors import CatalogError
from ..catalog import Catalog
from ..columnar import ColumnStats, TableStats
from ..observability import get_metrics
from .ast_nodes import (
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
)
from .plan import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    Narrow,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAll,
)

__all__ = [
    "Binder",
    "DEFAULT_ROWS",
    "selectivity",
    "join_selectivity",
]

#: Fallback row count for scans without statistics.
DEFAULT_ROWS = 1000.0

#: Fallback selectivities when column statistics are missing.
DEFAULT_EQ_SEL = 0.1
DEFAULT_RANGE_SEL = 1.0 / 3.0
DEFAULT_BETWEEN_SEL = 0.25
DEFAULT_LIKE_SEL = 0.25
DEFAULT_NULL_SEL = 0.05
DEFAULT_BOOL_SEL = 1.0 / 3.0


def _clamp(sel: float) -> float:
    """Selectivities live in [0, 1]."""
    return min(1.0, max(0.0, sel))


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _eq_selectivity(stats: ColumnStats | None, value=None) -> float:
    if stats is None:
        return DEFAULT_EQ_SEL
    if stats.rows == 0:
        return 0.0
    if (
        value is not None
        and _numeric(value)
        and _numeric(stats.min)
        and _numeric(stats.max)
        and not (stats.min <= value <= stats.max)
    ):
        return 0.0
    if stats.distinct:
        return _clamp(1.0 / stats.distinct)
    return DEFAULT_EQ_SEL


def _range_selectivity(stats: ColumnStats | None, op: str, value) -> float:
    """``col < value`` etc. by linear interpolation into the value span."""
    if (
        stats is None
        or not _numeric(value)
        or not _numeric(stats.min)
        or not _numeric(stats.max)
    ):
        return DEFAULT_RANGE_SEL
    lo, hi = float(stats.min), float(stats.max)
    if hi <= lo:
        # Constant column: the comparison either keeps all rows or none.
        if op in ("<", "<="):
            kept = lo < value or (op == "<=" and lo == value)
        else:
            kept = lo > value or (op == ">=" and lo == value)
        return 1.0 if kept else 0.0
    frac = _clamp((float(value) - lo) / (hi - lo))
    return frac if op in ("<", "<=") else 1.0 - frac


def selectivity(expr: Expr, lookup) -> float:
    """Estimated fraction of rows satisfying ``expr``.

    ``lookup`` maps a (possibly qualified) column name to
    :class:`ColumnStats` or None.  Always in ``[0, 1]``; unknown shapes
    fall back to :data:`DEFAULT_BOOL_SEL`.
    """
    if isinstance(expr, BinaryOp):
        if expr.op == "AND":
            return _clamp(
                selectivity(expr.left, lookup) * selectivity(expr.right, lookup)
            )
        if expr.op == "OR":
            a = selectivity(expr.left, lookup)
            b = selectivity(expr.right, lookup)
            return _clamp(a + b - a * b)
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            ref, op, lit = _comparison_parts(expr)
            if ref is None:
                return DEFAULT_BOOL_SEL
            stats = lookup(ref.qualified)
            if op == "=":
                return _eq_selectivity(stats, lit)
            if op == "<>":
                return _clamp(1.0 - _eq_selectivity(stats, lit))
            return _clamp(_range_selectivity(stats, op, lit))
        return DEFAULT_BOOL_SEL
    if isinstance(expr, UnaryOp) and expr.op == "NOT":
        return _clamp(1.0 - selectivity(expr.operand, lookup))
    if isinstance(expr, InList):
        sel = DEFAULT_BOOL_SEL
        if isinstance(expr.operand, ColumnRef):
            stats = lookup(expr.operand.qualified)
            per_item = _eq_selectivity(stats)
            sel = _clamp(len(expr.items) * per_item)
        return _clamp(1.0 - sel) if expr.negated else sel
    if isinstance(expr, Between):
        sel = _between_selectivity(expr, lookup)
        return _clamp(1.0 - sel) if expr.negated else sel
    if isinstance(expr, IsNull):
        sel = DEFAULT_NULL_SEL
        if isinstance(expr.operand, ColumnRef):
            stats = lookup(expr.operand.qualified)
            if stats is not None:
                sel = _clamp(stats.null_fraction)
        return _clamp(1.0 - sel) if expr.negated else sel
    if isinstance(expr, Like):
        sel = DEFAULT_LIKE_SEL
        if "%" not in expr.pattern and "_" not in expr.pattern:
            # No wildcard: LIKE degenerates to equality.
            if isinstance(expr.operand, ColumnRef):
                sel = _eq_selectivity(lookup(expr.operand.qualified))
            else:
                sel = DEFAULT_EQ_SEL
        return _clamp(1.0 - sel) if expr.negated else sel
    if isinstance(expr, Literal):
        if isinstance(expr.value, bool):
            return 1.0 if expr.value else 0.0
        if _numeric(expr.value):
            return 1.0 if expr.value != 0 else 0.0
        return DEFAULT_BOOL_SEL
    return DEFAULT_BOOL_SEL


def _comparison_parts(expr: BinaryOp):
    """``(ref, op, literal)`` of a column-vs-literal comparison, else Nones.

    The operator is mirrored when the literal sits on the left.
    """
    flip = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
    if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
        return expr.left, expr.op, expr.right.value
    if isinstance(expr.left, Literal) and isinstance(expr.right, ColumnRef):
        return expr.right, flip[expr.op], expr.left.value
    return None, expr.op, None


def _between_selectivity(expr: Between, lookup) -> float:
    if not (
        isinstance(expr.operand, ColumnRef)
        and isinstance(expr.low, Literal)
        and isinstance(expr.high, Literal)
        and _numeric(expr.low.value)
        and _numeric(expr.high.value)
    ):
        return DEFAULT_BETWEEN_SEL
    stats = lookup(expr.operand.qualified)
    if (
        stats is None
        or not _numeric(stats.min)
        or not _numeric(stats.max)
        or float(stats.max) <= float(stats.min)
    ):
        return DEFAULT_BETWEEN_SEL
    lo, hi = float(stats.min), float(stats.max)
    a = max(lo, float(expr.low.value))
    b = min(hi, float(expr.high.value))
    if b < a:
        return 0.0
    return _clamp((b - a) / (hi - lo))


def join_selectivity(
    left_stats: ColumnStats | None,
    right_stats: ColumnStats | None,
    fallback_rows: float,
) -> float:
    """Selectivity of one equi-join conjunct: ``1 / max(d_left, d_right)``.

    With both distinct counts unknown, assume the key is unique on the
    smaller side (the textbook primary-key/foreign-key default).
    """
    distincts = [
        float(s.distinct)
        for s in (left_stats, right_stats)
        if s is not None and s.distinct
    ]
    if distincts:
        return 1.0 / max(max(distincts), 1.0)
    return 1.0 / max(fallback_rows, 1.0)


class Binder:
    """Resolves scans against the catalog and annotates row estimates.

    One binder instance accumulates a column-statistics namespace
    (``binding.column`` → :class:`ColumnStats`) across every plan it
    binds, so the cost-based optimizer can re-bind rewritten trees with
    the same statistics view.

    ``feedback`` (a :class:`~.feedback.CardinalityFeedback`) supplies
    learned corrections from earlier query profiles: every node's
    ``est_rows`` becomes ``raw * correction`` while the uncorrected value
    is kept in ``est_rows_raw``.  Parents always build on the *raw* child
    estimates, so a correction applies exactly once at its own node and
    corrections never compound up the tree.
    """

    def __init__(
        self,
        catalog: Catalog,
        database: str = "default",
        feedback=None,
    ) -> None:
        self._catalog = catalog
        self._database = database
        self._feedback = feedback
        self._columns: dict[str, ColumnStats] = {}
        self._scan_stats: dict[str, TableStats | None] = {}

    def bind(self, plan: PlanNode) -> PlanNode:
        """Annotate ``plan`` (in place) with ``est_rows``; returns it."""
        self.annotate(plan)
        get_metrics().counter("planner.plans_bound").inc()
        return plan

    def annotate(self, plan: PlanNode) -> PlanNode:
        """Like :meth:`bind` but without the ``plans_bound`` metric — the
        cost-based optimizer re-annotates rewritten trees with this."""
        self._annotate(plan)
        return plan

    # ------------------------------------------------------------------
    # Statistics lookup
    # ------------------------------------------------------------------

    def lookup(self, name: str) -> ColumnStats | None:
        """Column stats by qualified name, with unique-suffix fallback."""
        stats = self._columns.get(name)
        if stats is not None:
            return stats
        if "." not in name:
            matches = [
                v for k, v in self._columns.items()
                if k.endswith(f".{name}")
            ]
            if len(matches) == 1:
                return matches[0]
        return None

    def scan_stats(self, binding: str) -> TableStats | None:
        """The :class:`TableStats` registered for one scan binding."""
        return self._scan_stats.get(binding)

    def table_stats(self, table: str) -> TableStats | None:
        """Catalog stats for ``table`` (``db.name`` or bare) or None."""
        database = self._database
        name = table
        if "." in name:
            database, name = name.split(".", 1)
        try:
            return self._catalog.table_stats(name, database=database)
        except CatalogError:
            return None

    # ------------------------------------------------------------------
    # Cardinality estimation
    # ------------------------------------------------------------------

    def _annotate(self, node: PlanNode) -> float:
        raw = max(0.0, self._estimate(node))
        node.est_rows_raw = raw
        if self._feedback is None:
            node.est_rows = raw
        else:
            node.est_rows = max(0.0, raw * self._feedback.correction(node))
        return raw

    def _estimate(self, node: PlanNode) -> float:
        if isinstance(node, Scan):
            stats = self.table_stats(node.table)
            self._scan_stats[node.binding] = stats
            if stats is not None:
                for col, cstats in stats.columns.items():
                    self._columns[f"{node.binding}.{col}"] = cstats
                return float(stats.rows)
            return DEFAULT_ROWS
        if isinstance(node, Filter):
            child = self._annotate(node.child)
            return child * selectivity(node.predicate, self.lookup)
        if isinstance(node, Join):
            left = self._annotate(node.left)
            right = self._annotate(node.right)
            est = self.join_estimate(left, right, node.condition)
            if node.kind == "left":
                # Every left row survives at least once.
                est = max(est, left)
            return est
        if isinstance(node, Aggregate):
            child = self._annotate(node.child)
            if not node.group_by:
                return 1.0
            groups = 1.0
            for key in node.group_by:
                if isinstance(key, ColumnRef):
                    stats = self.lookup(key.qualified)
                    if stats is not None and stats.distinct:
                        groups *= float(stats.distinct)
                        continue
                groups *= max(1.0, child ** 0.5)
            return min(child, groups) if child else 0.0
        if isinstance(node, Project):
            return self._annotate(node.child)
        if isinstance(node, Narrow):
            return self._annotate(node.child)
        if isinstance(node, Sort):
            return self._annotate(node.child)
        if isinstance(node, Distinct):
            return self._annotate(node.child)
        if isinstance(node, Limit):
            return min(self._annotate(node.child), float(node.count))
        if isinstance(node, UnionAll):
            return sum(self._annotate(c) for c in node.inputs)
        for child in node.children():
            self._annotate(child)
        return DEFAULT_ROWS

    def join_estimate(
        self, left_rows: float, right_rows: float, condition: Expr
    ) -> float:
        """Estimated output rows of an inner equi-join."""
        est = left_rows * right_rows
        fallback = max(min(left_rows, right_rows), 1.0)
        for term in _conjuncts(condition):
            if (
                isinstance(term, BinaryOp)
                and term.op == "="
                and isinstance(term.left, ColumnRef)
                and isinstance(term.right, ColumnRef)
            ):
                est *= join_selectivity(
                    self.lookup(term.left.qualified),
                    self.lookup(term.right.qualified),
                    fallback,
                )
            else:
                est *= selectivity(term, self.lookup)
        return est


def _conjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]
