"""Cost-based plan rewrites driven by binder row estimates.

Runs after the rule-based optimizer and the binder, gated behind the
engine's ``cost_based`` flag (env ``REPRO_CBO``).  Four rewrites, applied
in order with re-annotation between them:

1. **Join reordering** — maximal inner-join clusters are rebuilt greedy
   left-deep, starting from the smallest estimated leaf and always adding
   the connected table that minimizes the estimated intermediate size.
   Bails (keeping the heuristic order) on unqualified ON references, on
   clusters smaller than three tables, or whenever a step would need a
   cross product — the executor requires an equality per join and a cross
   product is never a win at these scales.
2. **Aggregate pushdown** (eager aggregation) — when the grouping keys of
   an aggregate over an inner equi-join restrict one side to its join
   keys, that side is pre-aggregated by those keys before the join, with
   partial SUM/MIN/MAX columns plus a ``COUNT(*)`` partial.  The upper
   aggregate combines partials (``SUM``→``SUM``, ``MIN``→``MIN``,
   ``MAX``→``MAX``, any non-distinct ``COUNT``→``SUM`` of the count
   partial — exact because this engine's COUNT never skips NaN).
3. **Early projection (Narrow)** — between chained joins, drop columns no
   operator above references, sized by estimated bytes saved.
4. **Join strategy** — flip ``hash`` to ``merge`` when both inputs are
   large and the estimated fan-out is small.

Every rewrite preserves results; estimates only steer shape and strategy.
``SELECT *`` disables the structural rewrites (1–3) because star expansion
is sensitive to child column order.
"""

from __future__ import annotations

from ..observability import get_metrics
from .ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expr,
    FunctionCall,
    Literal,
    SelectItem,
    Star,
    UnaryOp,
)
from .binder import Binder
from .functions import AGGREGATE_FUNCTIONS
from .plan import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    Narrow,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAll,
)
from .planner import (
    _bindings_of,
    _combine_conjuncts,
    _expr_bindings,
    _referenced_columns,
    _split_conjuncts,
)

__all__ = ["optimize_cost_based"]

#: Minimum rows on the *smaller* join side before merge join is considered.
MERGE_MIN_ROWS = 50_000.0
#: Maximum estimated output/input fan-out for merge join.
MERGE_MAX_FANOUT = 1.5
#: Minimum estimated bytes saved before a Narrow node is inserted.
NARROW_MIN_BYTES = 32_768.0
#: Rough bytes per cell for the Narrow sizing heuristic.
BYTES_PER_CELL = 8.0
#: Pre-aggregation must shrink its side below this fraction to be worth it.
AGG_PUSH_RATIO = 0.8


def optimize_cost_based(plan: PlanNode, binder: Binder) -> PlanNode:
    """Rewrite an already-bound plan using the binder's estimates."""
    if _contains_star(plan):
        return _choose_strategies(plan)
    plan = _reorder_joins(plan, binder)
    binder.annotate(plan)
    plan = _push_aggregates(plan, binder)
    binder.annotate(plan)
    plan = _insert_narrows(plan, set())
    binder.annotate(plan)
    return _choose_strategies(plan)


def _contains_star(node: PlanNode) -> bool:
    if isinstance(node, (Project, Aggregate)):
        if any(isinstance(item.expr, Star) for item in node.items):
            return True
    return any(_contains_star(c) for c in node.children())


def _rebuild(node: PlanNode, fn) -> PlanNode:
    """Structural recursion helper: ``fn`` maps each child."""
    if isinstance(node, Filter):
        return Filter(fn(node.child), node.predicate)
    if isinstance(node, Join):
        return Join(
            fn(node.left), fn(node.right), node.kind, node.condition,
            node.strategy,
        )
    if isinstance(node, Project):
        return Project(fn(node.child), node.items)
    if isinstance(node, Aggregate):
        return Aggregate(fn(node.child), node.group_by, node.items, node.having)
    if isinstance(node, Sort):
        return Sort(fn(node.child), node.order_by)
    if isinstance(node, Limit):
        return Limit(fn(node.child), node.count)
    if isinstance(node, Distinct):
        return Distinct(fn(node.child))
    if isinstance(node, Narrow):
        return Narrow(fn(node.child), node.columns)
    if isinstance(node, UnionAll):
        return UnionAll(tuple(fn(c) for c in node.inputs))
    return node


# ----------------------------------------------------------------------
# 1. Selectivity-aware join reordering
# ----------------------------------------------------------------------


def _reorder_joins(node: PlanNode, binder: Binder) -> PlanNode:
    if isinstance(node, Join) and node.kind == "inner":
        reordered = _reorder_cluster(node, binder)
        if reordered is not None:
            get_metrics().counter("planner.joins_reordered").inc()
            return reordered
    return _rebuild(node, lambda c: _reorder_joins(c, binder))


def _reorder_cluster(join: Join, binder: Binder) -> PlanNode | None:
    """Greedy left-deep rebuild of one maximal inner-join cluster.

    Returns None to keep the original tree (too small, unsafe, or the
    greedy order matches the existing one).
    """
    leaves: list[PlanNode] = []
    conjuncts: list[Expr] = []

    def collect(n: PlanNode) -> None:
        if isinstance(n, Join) and n.kind == "inner":
            collect(n.left)
            collect(n.right)
            conjuncts.extend(_split_conjuncts(n.condition))
        else:
            leaves.append(n)

    collect(join)
    if len(leaves) < 3:
        return None
    conj_refs: list[tuple[Expr, set[str]]] = []
    for c in conjuncts:
        refs = _expr_bindings(c)
        if not refs:
            # Unqualified (None) or binding-free conjuncts cannot be
            # attributed to a join step safely; keep the written order.
            return None
        conj_refs.append((c, refs))
    infos = []
    for idx, leaf in enumerate(leaves):
        leaf = _reorder_joins(leaf, binder)  # nested clusters under e.g. LEFT
        binder.annotate(leaf)
        infos.append((idx, leaf, _bindings_of(leaf)))

    start = min(infos, key=lambda e: (e[1].est_rows, e[0]))
    order_idx = [start[0]]
    remaining = [e for e in infos if e is not start]
    unplaced = list(conj_refs)
    acc_bindings = set(start[2])
    acc_est = start[1].est_rows or 0.0
    steps: list[tuple[PlanNode, Expr, float]] = []
    while remaining:
        best = None
        for entry in remaining:
            idx, leaf, bindings = entry
            combined = acc_bindings | bindings
            conjs = [p for p in unplaced if p[1] <= combined]
            if not _has_cross_equality(conjs, acc_bindings, bindings):
                continue  # would be a cross product; never pick it
            cond = _combine_conjuncts([c for c, _ in conjs])
            est = binder.join_estimate(acc_est, leaf.est_rows or 0.0, cond)
            if best is None or (est, idx) < (best[4], best[0]):
                best = (idx, entry, conjs, cond, est)
        if best is None:
            return None  # only cross products remain; keep original plan
        idx, entry, conjs, cond, est = best
        order_idx.append(idx)
        remaining.remove(entry)
        for pair in conjs:
            unplaced.remove(pair)
        acc_bindings |= entry[2]
        acc_est = est
        steps.append((entry[1], cond, est))
    if unplaced or order_idx == sorted(order_idx):
        return None
    node: PlanNode = start[1]
    for leaf, cond, est in steps:
        node = Join(node, leaf, "inner", cond)
        node.est_rows = est
    return node


def _has_cross_equality(
    conjs: list[tuple[Expr, set[str]]],
    left_bindings: set[str],
    right_bindings: set[str],
) -> bool:
    for c, _ in conjs:
        if not (
            isinstance(c, BinaryOp)
            and c.op == "="
            and isinstance(c.left, ColumnRef)
            and isinstance(c.right, ColumnRef)
        ):
            continue
        lb = _expr_bindings(c.left)
        rb = _expr_bindings(c.right)
        if not lb or not rb:
            continue
        if (lb <= left_bindings and rb <= right_bindings) or (
            lb <= right_bindings and rb <= left_bindings
        ):
            return True
    return False


# ----------------------------------------------------------------------
# 2. Aggregate pushdown below joins (eager aggregation)
# ----------------------------------------------------------------------


class _PushAbort(Exception):
    """Raised while rewriting when an expression blocks the pushdown."""


def _push_aggregates(node: PlanNode, binder: Binder) -> PlanNode:
    if isinstance(node, Aggregate):
        child = _push_aggregates(node.child, binder)
        candidate = Aggregate(child, node.group_by, node.items, node.having)
        if isinstance(child, Join) and child.kind == "inner":
            pushed = _try_push_aggregate(candidate, binder)
            if pushed is not None:
                get_metrics().counter("planner.aggregates_pushed").inc()
                return pushed
        return candidate
    return _rebuild(node, lambda c: _push_aggregates(c, binder))


def _try_push_aggregate(agg: Aggregate, binder: Binder) -> PlanNode | None:
    join = agg.child
    assert isinstance(join, Join)
    left_b = _bindings_of(join.left)
    right_b = _bindings_of(join.right)
    equalities: list[tuple[ColumnRef, ColumnRef]] = []  # (left ref, right ref)
    for term in _split_conjuncts(join.condition):
        if not (
            isinstance(term, BinaryOp)
            and term.op == "="
            and isinstance(term.left, ColumnRef)
            and isinstance(term.right, ColumnRef)
        ):
            return None  # residual conjuncts filter *pairs*; cannot pre-agg
        lb = _expr_bindings(term.left)
        rb = _expr_bindings(term.right)
        if not lb or not rb:
            return None
        if lb <= left_b and rb <= right_b:
            equalities.append((term.left, term.right))
        elif lb <= right_b and rb <= left_b:
            equalities.append((term.right, term.left))
        else:
            return None
    for side in ("right", "left"):
        pushed = _push_into_side(agg, join, equalities, side, binder)
        if pushed is not None:
            return pushed
    return None


def _push_into_side(
    agg: Aggregate,
    join: Join,
    equalities: list[tuple[ColumnRef, ColumnRef]],
    side: str,
    binder: Binder,
) -> PlanNode | None:
    s_node = join.right if side == "right" else join.left
    s_bindings = _bindings_of(s_node)
    keys: list[ColumnRef] = []
    seen: set[str] = set()
    for left_ref, right_ref in equalities:
        key = right_ref if side == "right" else left_ref
        if key.qualified not in seen:
            seen.add(key.qualified)
            keys.append(key)
    key_names = {k.qualified for k in keys}

    # Group keys restricted to this side must be join keys, so rows of one
    # pre-aggregation group can never split across output groups.
    for group_key in agg.group_by:
        if not isinstance(group_key, ColumnRef):
            return None
        refs = _expr_bindings(group_key)
        if refs is None:
            return None
        if refs <= s_bindings and group_key.qualified not in key_names:
            return None

    # Cost gate: only pre-aggregate when it actually shrinks the side.
    if s_node.est_rows is None:
        return None
    distinct_product = 1.0
    for key in keys:
        stats = binder.lookup(key.qualified)
        if stats is None or not stats.distinct:
            return None
        distinct_product *= float(stats.distinct)
    if distinct_product >= AGG_PUSH_RATIO * s_node.est_rows:
        return None

    partials: list[SelectItem] = []
    used_count = [False]

    def partial_ref(call: FunctionCall) -> ColumnRef:
        alias = f"__partial{len(partials)}__"
        partials.append(SelectItem(call, alias))
        return ColumnRef(alias)

    def rewrite(expr: Expr) -> Expr:
        for key in agg.group_by:
            if expr == key:
                return expr
        if isinstance(expr, Literal):
            return expr
        if isinstance(expr, FunctionCall) and expr.name in AGGREGATE_FUNCTIONS:
            if expr.distinct:
                raise _PushAbort
            if expr.name == "COUNT":
                # COUNT never skips NaN here, so any COUNT is the pair
                # count per group: the sum of per-key pre-agg row counts.
                used_count[0] = True
                return FunctionCall("SUM", (ColumnRef("__cnt__"),))
            if expr.name not in ("SUM", "MIN", "MAX") or len(expr.args) != 1:
                raise _PushAbort
            refs = _expr_bindings(expr.args[0])
            if not refs or not refs <= s_bindings:
                raise _PushAbort  # aggregates the other side; would need ×cnt
            return FunctionCall(expr.name, (partial_ref(expr),))
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, rewrite(expr.operand))
        if isinstance(expr, BinaryOp):
            return BinaryOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        raise _PushAbort  # bare non-key columns (FIRST semantics) et al.

    try:
        new_items = tuple(
            SelectItem(rewrite(item.expr), item.alias) for item in agg.items
        )
        new_having = rewrite(agg.having) if agg.having is not None else None
    except _PushAbort:
        return None

    pre_items = [SelectItem(key, key.qualified) for key in keys]
    pre_items.extend(partials)
    pre_items.append(SelectItem(FunctionCall("COUNT", (Star(),)), "__cnt__"))
    pre = Aggregate(s_node, tuple(keys), tuple(pre_items), None)
    if side == "right":
        new_join = Join(join.left, pre, "inner", join.condition, join.strategy)
    else:
        new_join = Join(pre, join.right, "inner", join.condition, join.strategy)
    return Aggregate(new_join, agg.group_by, new_items, new_having)


# ----------------------------------------------------------------------
# 3. Early projection between joins
# ----------------------------------------------------------------------


def _insert_narrows(node: PlanNode, required: set[str] | None) -> PlanNode:
    """Mirror of the planner's required-column propagation, inserting
    :class:`Narrow` above join inputs that carry dead columns."""
    own = _referenced_columns(node)
    needed = None if (own is None or required is None) else required | own
    if isinstance(node, Join):
        left = _maybe_narrow(_insert_narrows(node.left, needed), needed)
        right = _maybe_narrow(_insert_narrows(node.right, needed), needed)
        out = Join(left, right, node.kind, node.condition, node.strategy)
        out.est_rows = node.est_rows
        return out
    if isinstance(node, (Limit, Distinct)):
        out = _rebuild(node, lambda c: _insert_narrows(c, required))
    elif isinstance(node, UnionAll):
        out = UnionAll(tuple(_insert_narrows(c, set()) for c in node.inputs))
    else:
        out = _rebuild(node, lambda c: _insert_narrows(c, needed))
    out.est_rows = node.est_rows
    return out


def _maybe_narrow(child: PlanNode, needed: set[str] | None) -> PlanNode:
    if needed is None or not isinstance(child, Join) or child.est_rows is None:
        return child
    columns = _subtree_columns(child)
    if columns is None:
        return child
    # Keep a column when its qualified or bare name is needed; keeping every
    # suffix match preserves ambiguity errors for bare references above.
    kept = sorted(
        c for c in columns
        if c in needed or c.rsplit(".", 1)[-1] in needed
    )
    dropped = len(columns) - len(kept)
    if not kept or dropped == 0:
        return child
    if child.est_rows * dropped * BYTES_PER_CELL < NARROW_MIN_BYTES:
        return child
    get_metrics().counter("planner.narrows_inserted").inc()
    narrow = Narrow(child, tuple(kept))
    narrow.est_rows = child.est_rows
    return narrow


def _subtree_columns(node: PlanNode) -> set[str] | None:
    """Output column names of a subtree, or None when not enumerable."""
    if isinstance(node, Scan):
        if node.columns is None:
            return None
        return {f"{node.binding}.{c}" for c in node.columns}
    if isinstance(node, (Filter, Sort, Limit, Distinct)):
        return _subtree_columns(node.child)
    if isinstance(node, Narrow):
        return set(node.columns)
    if isinstance(node, Join):
        left = _subtree_columns(node.left)
        right = _subtree_columns(node.right)
        if left is None or right is None:
            return None
        return left | right
    if isinstance(node, (Project, Aggregate)):
        out: set[str] = set()
        for item in node.items:
            if item.alias:
                out.add(item.alias)
            elif isinstance(item.expr, ColumnRef):
                out.add(item.expr.name)
            else:
                return None  # positional default names; stay conservative
        return out
    return None


# ----------------------------------------------------------------------
# 4. Join strategy selection
# ----------------------------------------------------------------------


def _choose_strategies(node: PlanNode) -> PlanNode:
    for child in node.children():
        _choose_strategies(child)
    if isinstance(node, Join) and node.strategy == "hash":
        left = node.left.est_rows
        right = node.right.est_rows
        if (
            left is not None
            and right is not None
            and min(left, right) >= MERGE_MIN_ROWS
            and node.est_rows is not None
            and node.est_rows <= MERGE_MAX_FANOUT * max(left, right, 1.0)
        ):
            node.strategy = "merge"
            get_metrics().counter("planner.merge_joins").inc()
    return node
