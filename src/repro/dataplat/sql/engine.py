"""Public SQL entry point.

:class:`SQLEngine` glues the front-end together: it parses, plans,
optimizes, binds and executes queries against a
:class:`~repro.dataplat.catalog.Catalog`, and can register in-memory
tables (like Spark's ``createOrReplaceTempView``).

Planning pipeline per query: parse → logical plan → rule-based optimize →
**bind** (attach catalog statistics and ``est_rows``) → optionally the
**cost-based optimizer** (join reorder, aggregate pushdown, early
projection, join strategy), enabled by the ``cost_based`` flag or the
``REPRO_CBO`` environment variable.  ``EXPLAIN <select>`` returns the
final plan as a one-column table instead of executing it;
``EXPLAIN ANALYZE <select>`` executes it and annotates every operator
with actual rows, wall/CPU time and storage counters.

Profiling (``profiling=True`` or ``REPRO_SQL_PROFILE=1``) records a
:class:`~.profile.QueryProfile` for every executed query — readable via
:attr:`SQLEngine.last_profile`, forwarded to ``profile_sink`` when set,
and feeding the optional :class:`~.feedback.CardinalityFeedback` store
(``feedback=True`` or ``REPRO_CBO_FEEDBACK=1``) that lets the binder
correct its cardinality estimates from observed run history.
"""

from __future__ import annotations

import os

import numpy as np

from ..catalog import Catalog
from ..observability import get_metrics, span
from ..table import Table
from .ast_nodes import ExplainStatement, SelectStatement, UnionAllStatement
from .binder import Binder
from .cbo import optimize_cost_based
from .executor import Executor
from .feedback import CardinalityFeedback
from .parser import parse
from .plan import PlanNode
from .planner import build_plan, optimize
from .profile import ProfileCollector, QueryProfile, annotate_plan

_ENV_TRUTHY = ("1", "true", "yes", "on")


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in _ENV_TRUTHY


def _env_cost_based() -> bool:
    return _env_flag("REPRO_CBO")


class SQLEngine:
    """Run SQL over catalog tables.

    >>> engine = SQLEngine()
    >>> import numpy as np
    >>> engine.register(Table.from_arrays(x=np.array([1, 2, 3])), "t")
    >>> float(engine.query("SELECT SUM(x) AS total FROM t")["total"][0])
    6.0

    ``cost_based`` turns on the statistics-driven optimizer; ``None``
    (default) defers to the ``REPRO_CBO`` environment variable so whole
    test suites can flip it without touching call sites.  ``profiling``
    works the same way against ``REPRO_SQL_PROFILE``, and ``feedback``
    against ``REPRO_CBO_FEEDBACK`` (pass an existing
    :class:`~.feedback.CardinalityFeedback` to share one store across
    engines).  ``profile_sink`` is called with each finished
    :class:`~.profile.QueryProfile` (the telemetry sink's
    ``record_query_profile`` slots in directly).
    """

    def __init__(
        self,
        catalog: Catalog | None = None,
        database: str = "default",
        scan_pruning: bool = True,
        cost_based: bool | None = None,
        profiling: bool | None = None,
        profile_sink=None,
        feedback: "CardinalityFeedback | bool | None" = None,
    ) -> None:
        self._catalog = catalog if catalog is not None else Catalog()
        self._database = database
        self._scan_pruning = scan_pruning
        self._cost_based = (
            _env_cost_based() if cost_based is None else bool(cost_based)
        )
        self._profiling = (
            _env_flag("REPRO_SQL_PROFILE") if profiling is None else bool(profiling)
        )
        self._profile_sink = profile_sink
        if feedback is None:
            feedback = _env_flag("REPRO_CBO_FEEDBACK")
        if feedback is True:
            self._feedback: CardinalityFeedback | None = CardinalityFeedback()
        elif feedback is False:
            self._feedback = None
        else:
            self._feedback = feedback
        self._last_profile: QueryProfile | None = None

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def cost_based(self) -> bool:
        return self._cost_based

    @property
    def feedback(self) -> CardinalityFeedback | None:
        """The cardinality-feedback store, when enabled."""
        return self._feedback

    @property
    def last_profile(self) -> QueryProfile | None:
        """The profile of the most recent profiled query, if any."""
        return self._last_profile

    def register(self, table: Table, name: str) -> None:
        """Register an in-memory table under ``name`` (temp view).

        Like Spark's ``createOrReplaceTempView``: queryable immediately, no
        bytes written to the block store, replaced on re-registration.
        """
        self._catalog.register_temp(table, name, database=self._database)

    def plan(self, sql: str, optimized: bool = True) -> PlanNode:
        """Parse, plan and bind a query without executing it.

        ``EXPLAIN`` prefixes are transparent here: the plan of the inner
        statement is returned.
        """
        with span("sql.parse"):
            stmt = parse(sql)
        if isinstance(stmt, ExplainStatement):
            stmt = stmt.statement
        return self._plan_statement(stmt, optimized=optimized)

    def _plan_statement(
        self,
        stmt: "SelectStatement | UnionAllStatement",
        optimized: bool = True,
    ) -> PlanNode:
        with span("sql.plan", optimized=optimized):
            plan = build_plan(stmt)
            if optimized:
                plan = optimize(plan)
        binder = Binder(self._catalog, self._database, feedback=self._feedback)
        with span("sql.bind"):
            binder.bind(plan)
        if self._cost_based and optimized:
            with span("sql.cbo"):
                plan = optimize_cost_based(plan, binder)
        return plan

    def explain(self, sql: str) -> str:
        """Readable bound (and, if enabled, cost-optimized) plan."""
        return self.plan(sql).describe()

    def _collecting(self) -> bool:
        return (
            self._profiling
            or self._feedback is not None
            or self._profile_sink is not None
        )

    def _execute_profiled(
        self, plan: PlanNode, sql: str
    ) -> tuple[Table, QueryProfile]:
        collector = ProfileCollector(health=self._catalog.store.health)
        executor = Executor(
            self._catalog,
            self._database,
            scan_pruning=self._scan_pruning,
            profiler=collector,
        )
        with span("sql.execute"):
            out = executor.execute(plan)
        profile = collector.finish(sql)
        self._absorb_profile(profile)
        return out, profile

    def _absorb_profile(self, profile: QueryProfile) -> None:
        self._last_profile = profile
        get_metrics().counter("sql.queries_profiled").inc()
        if self._feedback is not None:
            self._feedback.ingest(profile)
        if self._profile_sink is not None:
            self._profile_sink(profile)

    def query(self, sql: str) -> Table:
        """Execute a SELECT statement and return the result table.

        ``EXPLAIN <select>`` returns the plan text as a one-column table
        (column ``plan``, one row per plan line) without executing;
        ``EXPLAIN ANALYZE <select>`` executes the inner statement
        (discarding its rows) and returns the plan annotated with actual
        row counts, timings and storage counters per operator.
        """
        with span("sql.query", sql=sql.strip()[:80]) as sp:
            with span("sql.parse"):
                stmt = parse(sql)
            if isinstance(stmt, ExplainStatement):
                plan = self._plan_statement(stmt.statement)
                if stmt.analyze:
                    _, profile = self._execute_profiled(plan, sql)
                    lines = annotate_plan(plan, profile)
                else:
                    lines = plan.describe().split("\n")
                out = Table.from_arrays(
                    plan=np.asarray(lines, dtype=object)
                )
                sp.incr("rows", out.num_rows)
                return out
            plan = self._plan_statement(stmt)
            if self._collecting():
                out, _ = self._execute_profiled(plan, sql)
            else:
                executor = Executor(
                    self._catalog,
                    self._database,
                    scan_pruning=self._scan_pruning,
                )
                with span("sql.execute"):
                    out = executor.execute(plan)
            sp.incr("rows", out.num_rows)
        return out

    def create_table_as(self, name: str, sql: str, partition: str | None = None) -> Table:
        """CTAS: run ``sql`` and save the result under ``name``.

        The paper stores intermediate feature tables back into Hive so later
        stages can reuse them; this is that operation.
        """
        result = self.query(sql)
        self._catalog.save(result, name, database=self._database, partition=partition)
        return result
