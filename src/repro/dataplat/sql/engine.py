"""Public SQL entry point.

:class:`SQLEngine` glues the front-end together: it parses, plans, optimizes
and executes queries against a :class:`~repro.dataplat.catalog.Catalog`, and
can register in-memory tables (like Spark's ``createOrReplaceTempView``).
"""

from __future__ import annotations

from ..catalog import Catalog
from ..observability import span
from ..table import Table
from .executor import Executor
from .parser import parse
from .plan import PlanNode
from .planner import build_plan, optimize


class SQLEngine:
    """Run SQL over catalog tables.

    >>> engine = SQLEngine()
    >>> import numpy as np
    >>> engine.register(Table.from_arrays(x=np.array([1, 2, 3])), "t")
    >>> float(engine.query("SELECT SUM(x) AS total FROM t")["total"][0])
    6.0
    """

    def __init__(
        self,
        catalog: Catalog | None = None,
        database: str = "default",
        scan_pruning: bool = True,
    ) -> None:
        self._catalog = catalog if catalog is not None else Catalog()
        self._database = database
        self._scan_pruning = scan_pruning

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    def register(self, table: Table, name: str) -> None:
        """Register an in-memory table under ``name`` (temp view).

        Like Spark's ``createOrReplaceTempView``: queryable immediately, no
        bytes written to the block store, replaced on re-registration.
        """
        self._catalog.register_temp(table, name, database=self._database)

    def plan(self, sql: str, optimized: bool = True) -> PlanNode:
        """Parse and plan a query without executing it."""
        with span("sql.parse"):
            stmt = parse(sql)
        with span("sql.plan", optimized=optimized):
            plan = build_plan(stmt)
            if optimized:
                plan = optimize(plan)
        return plan

    def explain(self, sql: str) -> str:
        """Readable optimized plan for a query."""
        return self.plan(sql).describe()

    def query(self, sql: str) -> Table:
        """Execute a SELECT statement and return the result table."""
        with span("sql.query", sql=sql.strip()[:80]) as sp:
            plan = self.plan(sql)
            executor = Executor(
                self._catalog, self._database, scan_pruning=self._scan_pruning
            )
            with span("sql.execute"):
                out = executor.execute(plan)
            sp.incr("rows", out.num_rows)
        return out

    def create_table_as(self, name: str, sql: str, partition: str | None = None) -> Table:
        """CTAS: run ``sql`` and save the result under ``name``.

        The paper stores intermediate feature tables back into Hive so later
        stages can reuse them; this is that operation.
        """
        result = self.query(sql)
        self._catalog.save(result, name, database=self._database, partition=partition)
        return result
