"""Logical plan operators.

The planner lowers an AST into a tree of these nodes; the optimizer rewrites
the tree; the executor walks it bottom-up.  Column naming convention inside a
plan: every scan qualifies its output columns as ``binding.column`` so joins
never collide and references resolve unambiguously.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast_nodes import Expr, OrderItem, SelectItem


class PlanNode:
    """Base class for logical plan operators."""

    #: Estimated output rows, set by the binder (None = never bound).
    #: A plain attribute rather than a dataclass field so node equality
    #: (which plan-shape tests rely on) ignores the annotation.
    est_rows: float | None = None

    #: The uncorrected System-R estimate, kept alongside ``est_rows`` when
    #: cardinality feedback is active (equal otherwise).  Feedback learns
    #: ratios against this value so corrections never compound run-over-run.
    est_rows_raw: float | None = None

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def describe(self, indent: int = 0) -> str:
        """Readable plan tree (for EXPLAIN)."""
        pad = "  " * indent
        label = self._label()
        if self.est_rows is not None:
            label += f" [est_rows={format_rows(self.est_rows)}]"
        lines = [f"{pad}{label}"]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__


def format_rows(est: float) -> str:
    """Compact row estimate for plan labels: integers unless tiny."""
    if est >= 10 or est == int(est):
        return f"{est:.0f}"
    return f"{est:.2f}"


@dataclass
class Scan(PlanNode):
    """Read a catalog table; outputs columns qualified by ``binding``.

    ``predicate`` holds storage-level conjuncts
    (:class:`~..columnar.ScanPredicate`) the optimizer pushed down for
    zone-map pruning.  They are advisory: the scan may only *skip* chunks
    provably empty under them, and the full SQL predicate is still
    evaluated by the ``Filter`` above, so attaching them never changes
    results.
    """

    table: str
    binding: str
    columns: tuple[str, ...] | None = None  # None = all columns
    predicate: tuple = ()  # tuple[ScanPredicate, ...]

    def _label(self) -> str:
        cols = "*" if self.columns is None else ",".join(self.columns)
        label = f"Scan({self.table} as {self.binding}, cols=[{cols}])"
        if self.predicate:
            preds = " AND ".join(
                f"{p.column} {p.op} {p.value!r}" for p in self.predicate
            )
            label = label[:-1] + f", prune=[{preds}])"
        return label


@dataclass
class Filter(PlanNode):
    child: PlanNode
    predicate: Expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Filter({self.predicate!r})"


@dataclass
class Join(PlanNode):
    """Equi-join; ``strategy`` is chosen by the cost-based optimizer.

    ``"hash"`` is the default bucket-count join; ``"merge"`` probes a
    sorted copy of the right side with binary search — same output,
    bit-for-bit, chosen when both inputs are large and keys are
    high-cardinality (few matches per key).
    """

    left: PlanNode
    right: PlanNode
    kind: str  # "inner" | "left"
    condition: Expr
    strategy: str = "hash"  # "hash" | "merge"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def _label(self) -> str:
        return f"Join({self.kind}, {self.strategy}, on={self.condition!r})"


@dataclass
class Project(PlanNode):
    """Final projection: evaluates select items and names the outputs."""

    child: PlanNode
    items: tuple[SelectItem, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Project({len(self.items)} items)"


@dataclass
class Aggregate(PlanNode):
    """Grouped (or global) aggregation producing the select items."""

    child: PlanNode
    group_by: tuple[Expr, ...]
    items: tuple[SelectItem, ...]
    having: Expr | None = None

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Aggregate(keys={len(self.group_by)}, items={len(self.items)})"


@dataclass
class Sort(PlanNode):
    child: PlanNode
    order_by: tuple[OrderItem, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Sort({len(self.order_by)} keys)"


@dataclass
class Limit(PlanNode):
    child: PlanNode
    count: int

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Limit({self.count})"


@dataclass
class Narrow(PlanNode):
    """Early projection inserted by the cost-based optimizer.

    Keeps only ``columns`` (qualified names) of the child's output —
    used between chained joins to stop carrying key/payload columns no
    operator above references.  Selection is an intersection, so a column
    the child does not produce is ignored rather than an error.
    """

    child: PlanNode
    columns: tuple[str, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Narrow({len(self.columns)} cols)"


@dataclass
class Distinct(PlanNode):
    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class UnionAll(PlanNode):
    """Concatenate the outputs of several sub-plans (schemas must match)."""

    inputs: tuple[PlanNode, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return self.inputs

    def _label(self) -> str:
        return f"UnionAll({len(self.inputs)} inputs)"
