"""Logical plan operators.

The planner lowers an AST into a tree of these nodes; the optimizer rewrites
the tree; the executor walks it bottom-up.  Column naming convention inside a
plan: every scan qualifies its output columns as ``binding.column`` so joins
never collide and references resolve unambiguously.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast_nodes import Expr, OrderItem, SelectItem


class PlanNode:
    """Base class for logical plan operators."""

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def describe(self, indent: int = 0) -> str:
        """Readable plan tree (for EXPLAIN)."""
        pad = "  " * indent
        lines = [f"{pad}{self._label()}"]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__


@dataclass
class Scan(PlanNode):
    """Read a catalog table; outputs columns qualified by ``binding``.

    ``predicate`` holds storage-level conjuncts
    (:class:`~..columnar.ScanPredicate`) the optimizer pushed down for
    zone-map pruning.  They are advisory: the scan may only *skip* chunks
    provably empty under them, and the full SQL predicate is still
    evaluated by the ``Filter`` above, so attaching them never changes
    results.
    """

    table: str
    binding: str
    columns: tuple[str, ...] | None = None  # None = all columns
    predicate: tuple = ()  # tuple[ScanPredicate, ...]

    def _label(self) -> str:
        cols = "*" if self.columns is None else ",".join(self.columns)
        label = f"Scan({self.table} as {self.binding}, cols=[{cols}])"
        if self.predicate:
            preds = " AND ".join(
                f"{p.column} {p.op} {p.value!r}" for p in self.predicate
            )
            label = label[:-1] + f", prune=[{preds}])"
        return label


@dataclass
class Filter(PlanNode):
    child: PlanNode
    predicate: Expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Filter({self.predicate!r})"


@dataclass
class Join(PlanNode):
    left: PlanNode
    right: PlanNode
    kind: str  # "inner" | "left"
    condition: Expr

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def _label(self) -> str:
        return f"Join({self.kind}, on={self.condition!r})"


@dataclass
class Project(PlanNode):
    """Final projection: evaluates select items and names the outputs."""

    child: PlanNode
    items: tuple[SelectItem, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Project({len(self.items)} items)"


@dataclass
class Aggregate(PlanNode):
    """Grouped (or global) aggregation producing the select items."""

    child: PlanNode
    group_by: tuple[Expr, ...]
    items: tuple[SelectItem, ...]
    having: Expr | None = None

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Aggregate(keys={len(self.group_by)}, items={len(self.items)})"


@dataclass
class Sort(PlanNode):
    child: PlanNode
    order_by: tuple[OrderItem, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Sort({len(self.order_by)} keys)"


@dataclass
class Limit(PlanNode):
    child: PlanNode
    count: int

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Limit({self.count})"


@dataclass
class Distinct(PlanNode):
    child: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class UnionAll(PlanNode):
    """Concatenate the outputs of several sub-plans (schemas must match)."""

    inputs: tuple[PlanNode, ...]

    def children(self) -> tuple[PlanNode, ...]:
        return self.inputs

    def _label(self) -> str:
        return f"UnionAll({len(self.inputs)} inputs)"
