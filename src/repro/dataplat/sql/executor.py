"""Vectorized execution of logical plans over catalog tables.

Naming convention: inside a plan, columns are qualified ``binding.column``.
Expression references resolve by exact qualified match first, then by unique
``.column`` suffix match (so unqualified references work in single-table
queries and unambiguous joins).  The final :class:`~.plan.Project` /
:class:`~.plan.Aggregate` strips qualifications from output names unless the
user supplied aliases.
"""

from __future__ import annotations

import re

import numpy as np

from ...errors import SQLAnalysisError, ExecutionError
from .. import observability
from ..catalog import Catalog
from ..schema import Column, ColumnType, Schema
from ..table import Table
from .ast_nodes import (
    Between,
    BinaryOp,
    Like,
    CaseWhen,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    SelectItem,
    Star,
    UnaryOp,
)
from .functions import AGGREGATE_FUNCTIONS, aggregate_grouped, scalar_function
from .plan import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    Narrow,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAll,
)

#: Buckets for the estimate-error q-factor ``(max+1)/(min+1)`` of
#: estimated vs actual rows — 1.0 means a perfect estimate.  Every
#: observer must pass these same boundaries (the registry enforces it).
ESTIMATE_ERROR_BUCKETS = (1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 100.0, 1000.0)


def _record_estimate(node: PlanNode, actual: int) -> None:
    """Feed the planner's estimate-quality histogram for bound nodes."""
    if node.est_rows is None:
        return
    if not isinstance(node, (Scan, Filter, Join, Aggregate)):
        return
    q = (max(node.est_rows, actual) + 1.0) / (min(node.est_rows, actual) + 1.0)
    observability.get_metrics().histogram(
        "planner.estimate_error_q", boundaries=ESTIMATE_ERROR_BUCKETS
    ).observe(q)


class Executor:
    """Evaluates logical plans against a :class:`Catalog`.

    ``scan_pruning`` forwards the optimizer's storage-level conjuncts to
    :meth:`Catalog.scan` so zone maps can skip partitions; turning it off
    (the pruning-parity fuzz harness does) must never change results, only
    how many chunks get decoded.
    """

    def __init__(
        self,
        catalog: Catalog,
        database: str = "default",
        scan_pruning: bool = True,
        profiler=None,
    ) -> None:
        self._catalog = catalog
        self._database = database
        self._scan_pruning = scan_pruning
        self._profiler = profiler

    def execute(self, plan: PlanNode) -> Table:
        return self._run(plan)

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def _run(self, node: PlanNode) -> Table:
        """Execute one operator, profiling it when a collector is attached.

        The profiler (a :class:`~.profile.ProfileCollector`) brackets the
        whole operator including its children, mirroring the span tree;
        results are unchanged either way.
        """
        profiler = self._profiler
        if profiler is None:
            return self._run_traced(node)
        frame = profiler.enter(node)
        try:
            out = self._run_traced(node)
        except BaseException:
            profiler.exit(frame, -1)
            raise
        profiler.exit(frame, out.num_rows)
        return out

    def _run_traced(self, node: PlanNode) -> Table:
        """Execute one operator, tracing a span per plan node.

        Children are executed by the operator handlers (inside the parent's
        span), so the trace tree mirrors the plan tree, each span carrying
        the operator's output row count.
        """
        if not observability.enabled():
            out = self._dispatch(node)
            _record_estimate(node, out.num_rows)
            return out
        with observability.span(f"sql.{type(node).__name__.lower()}") as sp:
            if isinstance(node, Scan):
                sp.set_tag("table", node.table)
            if node.est_rows is not None:
                sp.set_tag("est_rows", node.est_rows)
            out = self._dispatch(node)
            sp.incr("rows", out.num_rows)
            _record_estimate(node, out.num_rows)
            return out

    def _dispatch(self, node: PlanNode) -> Table:
        if isinstance(node, Scan):
            return self._scan(node)
        if isinstance(node, Filter):
            child = self._run(node.child)
            mask = _as_bool(evaluate(node.predicate, child), node.predicate)
            return child.mask(mask)
        if isinstance(node, Join):
            return self._join(node)
        if isinstance(node, Project):
            return self._project(node)
        if isinstance(node, Aggregate):
            return self._aggregate(node)
        if isinstance(node, Sort):
            child = self._run(node.child)
            if child.num_rows == 0:
                return child
            keys = []
            for item in reversed(node.order_by):
                values = np.asarray(evaluate(item.expr, child))
                if item.descending:
                    if values.dtype.kind in "if":
                        values = -values
                    else:
                        # Lexicographic descending for strings: invert ranks.
                        order = np.argsort(values, kind="stable")
                        ranks = np.empty(len(values), dtype=np.int64)
                        ranks[order] = np.arange(len(values))
                        values = -ranks
                keys.append(values)
            order = np.lexsort(keys)
            return child.take(order)
        if isinstance(node, Limit):
            return self._run(node.child).head(node.count)
        if isinstance(node, UnionAll):
            parts = [self._run(child) for child in node.inputs]
            out = parts[0]
            for part in parts[1:]:
                if part.schema.names != out.schema.names:
                    raise SQLAnalysisError(
                        f"UNION ALL column mismatch: {list(out.schema.names)} "
                        f"vs {list(part.schema.names)}"
                    )
                out = out.concat_rows(part)
            return out
        if isinstance(node, Narrow):
            child = self._run(node.child)
            wanted = set(node.columns)
            keep = [
                c for c in child.schema.names
                if c in wanted or c.rsplit(".", 1)[-1] in wanted
            ]
            return child.select(keep)
        if isinstance(node, Distinct):
            child = self._run(node.child)
            if child.num_rows == 0:
                return child
            # Factorize the packed row key: np.unique's first-occurrence
            # indices, sorted, keep rows in input order — same result as
            # the old per-row hash-set walk without the Python loop.
            _, _, first_idx = _factorize(
                [child.column(name) for name in child.schema.names]
            )
            return child.take(np.sort(first_idx))
        raise ExecutionError(f"unknown plan node {type(node).__name__}")

    def _scan(self, node: Scan) -> Table:
        name = node.table
        database = self._database
        if "." in name:
            database, name = name.split(".", 1)
        predicate = list(node.predicate) if self._scan_pruning else None
        table = self._catalog.scan(
            name,
            database=database,
            columns=node.columns,
            predicate=predicate or None,
        )
        return table.rename(
            {c: f"{node.binding}.{c}" for c in table.schema.names}
        )

    def _join(self, node: Join) -> Table:
        left = self._run(node.left)
        right = self._run(node.right)
        left_keys, right_keys, residual = _equi_keys(node.condition, left, right)
        if not left_keys:
            raise SQLAnalysisError(
                f"join condition must contain at least one equality between "
                f"the two sides: {node.condition!r}"
            )
        # Rename right keys to match left for the table-level join, then
        # restore both sides' columns.
        tmp_names = [f"__jk{i}__" for i in range(len(left_keys))]
        lt = left
        rt = right
        for tmp, lk in zip(tmp_names, left_keys):
            lt = lt.with_column(tmp, lt.column(lk))
        for tmp, rk in zip(tmp_names, right_keys):
            rt = rt.with_column(tmp, rt.column(rk))
        mark_matched = node.kind == "left" and residual is not None
        if mark_matched:
            # The join pads unmatched left rows with fill values, so this
            # marker comes out False exactly on the null-extended rows.
            rt = rt.with_column(
                "__matched__", np.ones(rt.num_rows, dtype=bool)
            )
        joined = lt.join(
            rt,
            on=tmp_names,
            how=node.kind,
            strategy=getattr(node, "strategy", "hash"),
        )
        joined = joined.drop(tmp_names)
        if residual is not None:
            mask = _as_bool(evaluate(residual, joined), residual)
            if mark_matched:
                # Keep unmatched left rows; only filter genuinely matched
                # ones — the residual never saw them, so it cannot reject
                # them (they would otherwise silently vanish on any
                # residual their fill values fail).
                unmatched = ~np.asarray(joined.column("__matched__"))
                joined = joined.mask(mask | unmatched)
            else:
                joined = joined.mask(mask)
        if mark_matched:
            joined = joined.drop(["__matched__"])
        return joined

    def _project(self, node: Project) -> Table:
        child = self._run(node.child)
        return _materialize_items(node.items, child)

    def _aggregate(self, node: Aggregate) -> Table:
        child = self._run(node.child)
        n = child.num_rows
        if node.group_by:
            key_values = [np.asarray(evaluate(e, child)) for e in node.group_by]
            group_ids, n_groups, first_idx = _factorize(key_values)
        else:
            group_ids = np.zeros(n, dtype=np.int64)
            n_groups = 1
            first_idx = np.zeros(1, dtype=np.intp) if n else np.empty(0, np.intp)
            if n == 0:
                n_groups = 1  # global aggregate over empty input: one row
        group_env = _GroupEnv(child, group_ids, n_groups, first_idx, node.group_by)

        columns: dict[str, np.ndarray] = {}
        cols: list[Column] = []
        for idx, item in enumerate(node.items):
            name = item.alias or _default_name(item.expr, idx)
            values = group_env.evaluate(item.expr)
            arr = np.asarray(values)
            columns[name] = arr
            cols.append(Column(name, ColumnType.infer(arr)))
        out = Table(Schema(cols), columns)
        if node.having is not None:
            mask = _as_bool(group_env.evaluate(node.having), node.having)
            out = out.mask(mask)
        return out


# ----------------------------------------------------------------------
# Expression evaluation over row-aligned tables
# ----------------------------------------------------------------------


def resolve_column(ref: ColumnRef, table: Table) -> np.ndarray:
    """Resolve a (possibly unqualified) column reference."""
    names = table.schema.names
    if ref.table is not None:
        qualified = ref.qualified
        if qualified in table.schema:
            return table.column(qualified)
        # After a projection/aggregation the qualification is gone; fall back
        # to the bare name so ORDER BY u.imsi still works above GROUP BY.
        if ref.name in table.schema:
            return table.column(ref.name)
        raise SQLAnalysisError(
            f"unknown column {qualified!r}; available: {list(names)}"
        )
    if ref.name in table.schema:
        return table.column(ref.name)
    matches = [n for n in names if n.endswith(f".{ref.name}")]
    if len(matches) == 1:
        return table.column(matches[0])
    if len(matches) > 1:
        raise SQLAnalysisError(
            f"ambiguous column {ref.name!r}: matches {matches}"
        )
    raise SQLAnalysisError(
        f"unknown column {ref.name!r}; available: {list(names)}"
    )


def evaluate(expr: Expr, table: Table) -> np.ndarray:
    """Vectorized evaluation of ``expr`` over every row of ``table``."""
    n = table.num_rows
    if isinstance(expr, Literal):
        return np.full(n, expr.value) if expr.value is not None else np.full(
            n, np.nan
        )
    if isinstance(expr, ColumnRef):
        return resolve_column(expr, table)
    if isinstance(expr, UnaryOp):
        operand = evaluate(expr.operand, table)
        if expr.op == "-":
            return -np.asarray(operand, dtype=np.float64)
        if expr.op == "NOT":
            return ~_as_bool(operand, expr.operand)
        raise SQLAnalysisError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinaryOp):
        return _binary(expr, table)
    if isinstance(expr, FunctionCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            raise SQLAnalysisError(
                f"aggregate {expr.name} used outside GROUP BY context"
            )
        fn = scalar_function(expr.name)
        args = [evaluate(a, table) for a in expr.args]
        return fn(*args)
    if isinstance(expr, CaseWhen):
        out: np.ndarray | None = None
        decided = np.zeros(n, dtype=bool)
        for cond, value in expr.branches:
            mask = _as_bool(evaluate(cond, table), cond) & ~decided
            values = np.asarray(evaluate(value, table), dtype=np.float64)
            if out is None:
                out = np.zeros(n, dtype=np.float64)
            out[mask] = values[mask] if values.ndim else values
            decided |= mask
        if expr.otherwise is not None and out is not None:
            values = np.asarray(evaluate(expr.otherwise, table), dtype=np.float64)
            rest = ~decided
            out[rest] = values[rest] if values.ndim else values
        return out if out is not None else np.zeros(n)
    if isinstance(expr, InList):
        operand = evaluate(expr.operand, table)
        result = np.zeros(n, dtype=bool)
        for item in expr.items:
            if not isinstance(item, Literal):
                raise SQLAnalysisError("IN list items must be literals")
            result |= operand == item.value
        return ~result if expr.negated else result
    if isinstance(expr, Between):
        operand = np.asarray(evaluate(expr.operand, table), dtype=np.float64)
        low = np.asarray(evaluate(expr.low, table), dtype=np.float64)
        high = np.asarray(evaluate(expr.high, table), dtype=np.float64)
        result = (operand >= low) & (operand <= high)
        return ~result if expr.negated else result
    if isinstance(expr, IsNull):
        operand = np.asarray(evaluate(expr.operand, table))
        if operand.dtype.kind == "f":
            result = np.isnan(operand)
        else:
            result = np.zeros(n, dtype=bool)
        return ~result if expr.negated else result
    if isinstance(expr, Like):
        operand = np.atleast_1d(np.asarray(evaluate(expr.operand, table)))
        result = _like_match(operand, expr.pattern)
        return ~result if expr.negated else result
    if isinstance(expr, Star):
        raise SQLAnalysisError("* is only valid in SELECT lists and COUNT(*)")
    raise SQLAnalysisError(f"cannot evaluate expression {expr!r}")


_COMPARISONS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _binary(expr: BinaryOp, table: Table) -> np.ndarray:
    if expr.op == "AND":
        return _as_bool(evaluate(expr.left, table), expr.left) & _as_bool(
            evaluate(expr.right, table), expr.right
        )
    if expr.op == "OR":
        return _as_bool(evaluate(expr.left, table), expr.left) | _as_bool(
            evaluate(expr.right, table), expr.right
        )
    left = evaluate(expr.left, table)
    right = evaluate(expr.right, table)
    if expr.op in _COMPARISONS:
        return np.asarray(_COMPARISONS[expr.op](left, right))
    lf = np.asarray(left, dtype=np.float64)
    rf = np.asarray(right, dtype=np.float64)
    if expr.op == "+":
        return lf + rf
    if expr.op == "-":
        return lf - rf
    if expr.op == "*":
        return lf * rf
    if expr.op == "/":
        out = np.zeros(np.broadcast_shapes(lf.shape, rf.shape))
        rb = np.broadcast_to(rf, out.shape)
        lb = np.broadcast_to(lf, out.shape)
        nz = rb != 0
        out[nz] = lb[nz] / rb[nz]
        return out
    if expr.op == "%":
        return np.mod(lf, np.where(rf == 0, 1, rf))
    raise SQLAnalysisError(f"unknown operator {expr.op!r}")


def _like_match(values: np.ndarray, pattern: str) -> np.ndarray:
    """Vectorized LIKE over a column.

    The common wildcard shapes — ``foo``, ``foo%``, ``%foo``, ``%foo%``
    (no ``_``, ``%`` only at the ends) — map onto whole-column equality /
    prefix / suffix / substring tests; anything else keeps the anchored
    regex per row.
    """
    strings = values.astype(str)
    if "_" not in pattern:
        body = pattern.strip("%")
        if "%" not in body:
            leading = pattern.startswith("%")
            trailing = pattern.endswith("%")
            if leading and trailing:
                return np.char.find(strings, body) >= 0
            if trailing:
                return np.char.startswith(strings, body)
            if leading:
                return np.char.endswith(strings, body)
            return strings == body
    regex = _like_regex(pattern)
    # dtype=bool matters for the 0-row case: a bare empty list would
    # default to float64 and break the caller's ``~result`` negation.
    return np.asarray([bool(regex.fullmatch(v)) for v in strings], dtype=bool)


def _like_regex(pattern: str) -> "re.Pattern[str]":
    """Compile a SQL LIKE pattern (%, _) into an anchored regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out), re.DOTALL)


def _as_bool(values: np.ndarray, expr: Expr) -> np.ndarray:
    arr = np.asarray(values)
    if arr.dtype.kind == "b":
        return arr
    if arr.dtype.kind in "if":
        return arr != 0
    raise SQLAnalysisError(f"expression is not boolean: {expr!r}")


# ----------------------------------------------------------------------
# Grouped evaluation
# ----------------------------------------------------------------------


class _GroupEnv:
    """Evaluates mixed group-key / aggregate expressions per group."""

    def __init__(
        self,
        child: Table,
        group_ids: np.ndarray,
        n_groups: int,
        first_idx: np.ndarray,
        group_by: tuple[Expr, ...],
    ) -> None:
        self._child = child
        self._group_ids = group_ids
        self._n_groups = n_groups
        self._first_idx = first_idx
        self._group_by = group_by

    def evaluate(self, expr: Expr) -> np.ndarray:
        # A bare group key: evaluate on representatives.
        for key in self._group_by:
            if expr == key:
                values = np.asarray(evaluate(key, self._child))
                return values[self._first_idx]
        if isinstance(expr, FunctionCall) and expr.name in AGGREGATE_FUNCTIONS:
            return self._aggregate_call(expr)
        if isinstance(expr, Literal):
            return np.full(self._n_groups, expr.value)
        if isinstance(expr, UnaryOp):
            operand = self.evaluate(expr.operand)
            if expr.op == "-":
                return -np.asarray(operand, dtype=np.float64)
            return ~np.asarray(operand, dtype=bool)
        if isinstance(expr, BinaryOp):
            left = self.evaluate(expr.left)
            right = self.evaluate(expr.right)
            fake = Table.from_arrays(
                __l=np.asarray(left), __r=np.asarray(right)
            )
            proxy = BinaryOp(expr.op, ColumnRef("__l"), ColumnRef("__r"))
            return evaluate(proxy, fake)
        if isinstance(expr, FunctionCall):
            fn = scalar_function(expr.name)
            args = [self.evaluate(a) for a in expr.args]
            return fn(*args)
        if isinstance(expr, ColumnRef):
            # Not a group key: take each group's first value (Hive-style
            # strictness would reject this; we allow it as FIRST semantics
            # for functionally-dependent columns).
            values = np.asarray(evaluate(expr, self._child))
            return values[self._first_idx]
        raise SQLAnalysisError(
            f"unsupported expression in aggregate context: {expr!r}"
        )

    def _aggregate_call(self, expr: FunctionCall) -> np.ndarray:
        if expr.name == "COUNT" and (
            not expr.args or isinstance(expr.args[0], Star)
        ):
            values = None
        else:
            if len(expr.args) != 1:
                raise SQLAnalysisError(f"{expr.name} takes exactly one argument")
            values = np.asarray(evaluate(expr.args[0], self._child))
        return aggregate_grouped(
            expr.name, values, self._group_ids, self._n_groups, expr.distinct
        )


def _factorize(
    key_values: list[np.ndarray],
) -> tuple[np.ndarray, int, np.ndarray]:
    """Dense group ids for one or more key arrays, plus representative rows."""
    if len(key_values) == 1:
        uniq, first_idx, ids = np.unique(
            key_values[0], return_index=True, return_inverse=True
        )
        return ids.astype(np.int64), len(uniq), first_idx.astype(np.intp)
    combined = np.zeros(len(key_values[0]), dtype=np.int64)
    for arr in key_values:
        uniq, ids = np.unique(arr, return_inverse=True)
        combined = combined * (len(uniq) + 1) + ids
    uniq, first_idx, ids = np.unique(
        combined, return_index=True, return_inverse=True
    )
    return ids.astype(np.int64), len(uniq), first_idx.astype(np.intp)


# ----------------------------------------------------------------------
# Projection materialization
# ----------------------------------------------------------------------


def _default_name(expr: Expr, index: int) -> str:
    if isinstance(expr, ColumnRef):
        return expr.name
    return f"col_{index}"


def _materialize_items(items: tuple[SelectItem, ...], child: Table) -> Table:
    columns: dict[str, np.ndarray] = {}
    cols: list[Column] = []
    for idx, item in enumerate(items):
        if isinstance(item.expr, Star):
            prefix = f"{item.expr.table}." if item.expr.table else None
            for name in child.schema.names:
                if prefix is not None and not name.startswith(prefix):
                    continue
                bare = name.rsplit(".", 1)[-1]
                out_name = bare if bare not in columns else name
                arr = child.column(name)
                columns[out_name] = arr
                cols.append(Column(out_name, ColumnType.infer(arr)))
            continue
        name = item.alias or _default_name(item.expr, idx)
        arr = np.asarray(evaluate(item.expr, child))
        if arr.ndim == 0:
            arr = np.full(child.num_rows, arr[()])
        columns[name] = arr
        cols.append(Column(name, ColumnType.infer(arr)))
    return Table(Schema(cols), columns)


def _equi_keys(
    condition: Expr, left: Table, right: Table
) -> tuple[list[str], list[str], Expr | None]:
    """Split a join condition into equi-key column pairs plus a residual.

    Returns qualified column names on each side.  Conjuncts of the form
    ``a.x = b.y`` where one side resolves in the left table and the other in
    the right become join keys; everything else is evaluated post-join.
    """
    left_keys: list[str] = []
    right_keys: list[str] = []
    residual: list[Expr] = []

    def resolve_side(ref: ColumnRef) -> tuple[str, str] | None:
        """(side, qualified_name) if the ref resolves in exactly one table."""
        for side, table in (("left", left), ("right", right)):
            try:
                resolve_column(ref, table)
            except SQLAnalysisError:
                continue
            if ref.table is not None:
                return side, ref.qualified
            if ref.name in table.schema:
                return side, ref.name
            matches = [
                n for n in table.schema.names if n.endswith(f".{ref.name}")
            ]
            return side, matches[0]
        return None

    def walk(expr: Expr) -> None:
        if isinstance(expr, BinaryOp) and expr.op == "AND":
            walk(expr.left)
            walk(expr.right)
            return
        if (
            isinstance(expr, BinaryOp)
            and expr.op == "="
            and isinstance(expr.left, ColumnRef)
            and isinstance(expr.right, ColumnRef)
        ):
            a = resolve_side(expr.left)
            b = resolve_side(expr.right)
            if a and b and {a[0], b[0]} == {"left", "right"}:
                if a[0] == "left":
                    left_keys.append(a[1])
                    right_keys.append(b[1])
                else:
                    left_keys.append(b[1])
                    right_keys.append(a[1])
                return
        residual.append(expr)

    walk(condition)
    residual_expr: Expr | None = None
    if residual:
        residual_expr = residual[0]
        for term in residual[1:]:
            residual_expr = BinaryOp("AND", residual_expr, term)
    return left_keys, right_keys, residual_expr
