"""Differential SQL fuzzing: seeded query generator + naive reference.

The vectorized executor keeps growing fast paths (factorized DISTINCT,
whole-column LIKE kernels, grouped aggregation) — each one a chance to
silently diverge from SQL semantics.  This module pins them down
differentially: a seeded generator produces random-but-valid queries over
small synthetic tables, each query runs through the full production stack
(parser → planner → optimizer → vectorized executor) *and* through a naive
row-at-a-time interpreter written with none of the vectorized machinery,
and the two row sets must match (sorted, with float tolerance).

Everything is seeded through ``numpy.random.default_rng``, so the same seed
always yields the same query list — a failing seed is a reproducer, not a
flake.  ``tests/test_sql_fuzz.py`` drives this with ≥200 queries per run and
writes the failing query to an artifact file for CI to upload.
"""

from __future__ import annotations

import math

import numpy as np

from ...errors import SQLAnalysisError
from ..schema import ColumnType, Schema
from ..table import Table
from .ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    SelectStatement,
    Star,
    UnaryOp,
)
from .executor import _like_regex
from .parser import parse

__all__ = [
    "make_fuzz_tables",
    "generate_queries",
    "reference_query",
    "normalize_rows",
    "rows_equal",
]


# ----------------------------------------------------------------------
# Fuzz corpus tables
# ----------------------------------------------------------------------

#: String vocabulary chosen to exercise every LIKE fast path: empty string,
#: shared prefixes/suffixes, substrings, and underscores in the *data*.
_WORDS = ("alpha", "beta", "gamma", "delta", "alde", "a_pha", "", "betamax")


def make_fuzz_tables(seed: int, num_rows: int = 96) -> dict[str, Table]:
    """Three small tables (``t``, ``u``, ``v``) with int/float/string columns.

    Floats are quarter-integer multiples so sums and averages stay exactly
    representable — the engine and the reference then agree bit-for-bit and
    the comparison tolerance only has to absorb genuine rounding, not
    accumulation-order noise.  ``v`` is the smallest and uses a wider
    ``grp`` range so join-chain keys mix selectivities (``grp`` fans out,
    ``id`` is near-unique); it is drawn *after* ``t`` and ``u`` so their
    contents are unchanged for any fixed seed.
    """
    rng = np.random.default_rng((seed, 0xF022))
    t = Table.from_arrays(
        id=np.arange(num_rows, dtype=np.int64),
        grp=rng.integers(0, 6, size=num_rows),
        val=rng.integers(-12, 13, size=num_rows) * 0.25,
        dur=rng.integers(0, 40, size=num_rows) * 0.25,
        cat=np.asarray(rng.choice(_WORDS, size=num_rows)),
    )
    m = max(num_rows // 2, 4)
    u = Table.from_arrays(
        id=np.arange(m, dtype=np.int64),
        grp=rng.integers(0, 6, size=m),
        val2=rng.integers(-8, 9, size=m) * 0.25,
        cat2=np.asarray(rng.choice(_WORDS, size=m)),
    )
    m2 = max(num_rows // 3, 4)
    v = Table.from_arrays(
        id=np.arange(m2, dtype=np.int64),
        grp=rng.integers(0, 7, size=m2),
        val3=rng.integers(-6, 7, size=m2) * 0.25,
        cat3=np.asarray(rng.choice(_WORDS, size=m2)),
    )
    return {"t": t, "u": u, "v": v}


# ----------------------------------------------------------------------
# Seeded query generator
# ----------------------------------------------------------------------

_NUMERIC_COLS = ("id", "grp", "val", "dur")

#: String column per join-alias qualifier (``t a``, ``u b``, ``v c``).
_QUAL_STRING = {"": "cat", "a.": "cat", "b.": "cat2", "c.": "cat3"}
_LIKE_PATTERNS = (
    "al%",       # prefix fast path
    "%ta",       # suffix fast path
    "%a%",       # substring fast path
    "alpha",     # equality fast path
    "",          # empty equality
    "%",         # match-all
    "a_pha",     # underscore → regex path
    "_eta",      # leading underscore → regex path
    "%m%a%",     # interior % → regex path
    "be%ax",     # interior % → regex path
)


def _gen_numeric_expr(rng, depth: int = 0) -> str:
    """A numeric scalar expression over ``t``'s columns."""
    if depth >= 2 or rng.random() < 0.4:
        if rng.random() < 0.5:
            return str(rng.choice(_NUMERIC_COLS))
        return str(int(rng.integers(-6, 7)))
    op = rng.choice(["+", "-", "*", "/", "%"])
    left = _gen_numeric_expr(rng, depth + 1)
    right = _gen_numeric_expr(rng, depth + 1)
    if op in ("/", "%") and rng.random() < 0.5:
        right = str(int(rng.integers(1, 7)))  # often a safe divisor
    return f"({left} {op} {right})"


def _gen_predicate(rng, depth: int = 0, qualifier: str = "") -> str:
    """A boolean expression; ``qualifier`` prefixes column references."""
    q = qualifier
    if depth < 2 and rng.random() < 0.35:
        op = rng.choice(["AND", "OR"])
        left = _gen_predicate(rng, depth + 1, qualifier)
        right = _gen_predicate(rng, depth + 1, qualifier)
        pred = f"({left} {op} {right})"
        if rng.random() < 0.2:
            pred = f"NOT {pred}"
        return pred
    kind = rng.random()
    if kind < 0.45:
        col = rng.choice(_NUMERIC_COLS if not q else ("id", "grp"))
        cmp_op = rng.choice(["=", "<>", "<", "<=", ">", ">="])
        lit = (
            int(rng.integers(-4, 8))
            if col in ("id", "grp")
            else float(rng.integers(-8, 9)) * 0.25
        )
        return f"{q}{col} {cmp_op} {lit}"
    if kind < 0.65:
        pattern = rng.choice(_LIKE_PATTERNS)
        negated = "NOT " if rng.random() < 0.25 else ""
        col = f"{q}{_QUAL_STRING[q]}"
        return f"{col} {negated}LIKE '{pattern}'"
    if kind < 0.8:
        col = rng.choice(("grp", "id"))
        items = ", ".join(
            str(int(v)) for v in rng.integers(0, 8, size=rng.integers(1, 4))
        )
        negated = "NOT " if rng.random() < 0.25 else ""
        return f"{q}{col} {negated}IN ({items})"
    if kind < 0.95:
        col = rng.choice(_NUMERIC_COLS if not q else ("id", "grp"))
        lo = int(rng.integers(-4, 4))
        hi = lo + int(rng.integers(0, 8))
        negated = "NOT " if rng.random() < 0.2 else ""
        return f"{q}{col} {negated}BETWEEN {lo} AND {hi}"
    col = rng.choice(_NUMERIC_COLS if not q else ("id", "grp"))
    negated = " NOT" if rng.random() < 0.5 else ""
    return f"{q}{col} IS{negated} NULL"


def _alias(items: list[str]) -> list[str]:
    """Unique output aliases (the engine rejects duplicate column names)."""
    return [f"{item} AS c{i}" for i, item in enumerate(items)]


def _gen_plain_query(rng) -> str:
    """SELECT [DISTINCT] exprs FROM t [WHERE ...]."""
    n_items = int(rng.integers(1, 4))
    items = []
    for _ in range(n_items):
        roll = rng.random()
        if roll < 0.45:
            items.append(str(rng.choice(_NUMERIC_COLS + ("cat",))))
        elif roll < 0.8:
            items.append(_gen_numeric_expr(rng))
        else:
            thr = float(rng.integers(-4, 5)) * 0.25
            items.append(
                f"CASE WHEN val > {thr} THEN 1 "
                f"WHEN dur > {thr + 2} THEN 2 ELSE 0 END"
            )
    distinct = "DISTINCT " if rng.random() < 0.35 else ""
    if distinct and rng.random() < 0.4:
        items = [str(rng.choice(("grp", "cat")))]  # low-cardinality DISTINCT
    items = _alias(items)
    sql = f"SELECT {distinct}{', '.join(items)} FROM t"
    if rng.random() < 0.75:
        sql += f" WHERE {_gen_predicate(rng)}"
    return sql


def _gen_group_query(rng) -> str:
    """GROUP BY over one or two keys with a random aggregate mix."""
    keys = ["grp"] if rng.random() < 0.6 else ["grp", "cat"]
    if rng.random() < 0.25:
        keys = ["cat"]
    aggs = []
    for _ in range(int(rng.integers(1, 4))):
        roll = rng.random()
        if roll < 0.25:
            aggs.append("COUNT(*)")
        elif roll < 0.4:
            aggs.append(f"COUNT(DISTINCT {rng.choice(('cat', 'grp'))})")
        else:
            fn = rng.choice(["SUM", "AVG", "MIN", "MAX"])
            aggs.append(f"{fn}({rng.choice(('val', 'dur', 'id'))})")
    items = _alias(keys + aggs)
    sql = f"SELECT {', '.join(items)} FROM t"
    if rng.random() < 0.6:
        sql += f" WHERE {_gen_predicate(rng)}"
    sql += f" GROUP BY {', '.join(keys)}"
    if rng.random() < 0.3:
        sql += f" HAVING COUNT(*) >= {int(rng.integers(1, 4))}"
    return sql


def _gen_global_agg_query(rng) -> str:
    """Aggregates with no GROUP BY (one output row, even over zero input)."""
    aggs = []
    for _ in range(int(rng.integers(1, 4))):
        fn = rng.choice(["COUNT", "SUM", "AVG", "MIN", "MAX"])
        if fn == "COUNT" and rng.random() < 0.5:
            aggs.append("COUNT(*)")
        else:
            aggs.append(f"{fn}({rng.choice(('val', 'dur', 'id'))})")
    sql = f"SELECT {', '.join(_alias(aggs))} FROM t"
    if rng.random() < 0.7:
        sql += f" WHERE {_gen_predicate(rng)}"
    return sql


def _gen_join_query(rng) -> str:
    """Equi-join, inner or LEFT, optionally with a residual ON conjunct.

    The residual case pins the LEFT JOIN semantics bug class: the residual
    may only filter *matched* rows, never drop the null-extended ones.
    """
    items = []
    for _ in range(int(rng.integers(1, 4))):
        items.append(
            rng.choice(["a.id", "a.val", "a.cat", "b.val2", "b.cat2", "b.id"])
        )
    distinct = "DISTINCT " if rng.random() < 0.25 else ""
    key = rng.choice(["grp", "id"])
    kind = "LEFT JOIN" if rng.random() < 0.4 else "JOIN"
    condition = f"a.{key} = b.{key}"
    if rng.random() < 0.5:
        side = rng.choice(["a.", "b."])
        condition += f" AND {_gen_predicate(rng, depth=1, qualifier=side)}"
    sql = (
        f"SELECT {distinct}{', '.join(_alias(items))} FROM t a "
        f"{kind} u b ON {condition}"
    )
    conjuncts = []
    if rng.random() < 0.6:
        conjuncts.append(_gen_predicate(rng, depth=1, qualifier="a."))
    if rng.random() < 0.6:
        conjuncts.append(_gen_predicate(rng, depth=1, qualifier="b."))
    if conjuncts:
        sql += f" WHERE {' AND '.join(conjuncts)}"
    return sql


def _gen_join_chain_query(rng) -> str:
    """Three-table chains (``t a ⋈ u b ⋈ c``) with mixed key selectivities.

    ``grp`` keys fan out (few distinct values), ``id`` keys are near-unique,
    and the second join may anchor on either earlier table — exactly the
    shapes the cost-based reorderer and aggregate pushdown rewrite, so the
    differential suite pins their result-invariance.
    """
    cols = (
        "a.id", "a.val", "a.cat", "a.dur",
        "b.val2", "b.cat2", "b.id",
        "c.val3", "c.cat3", "c.grp",
    )
    items = [str(rng.choice(cols)) for _ in range(int(rng.integers(2, 6)))]
    distinct = "DISTINCT " if rng.random() < 0.2 else ""
    key1 = str(rng.choice(["grp", "id"]))
    kind1 = "LEFT JOIN" if rng.random() < 0.25 else "JOIN"
    cond1 = f"a.{key1} = b.{key1}"
    if rng.random() < 0.4:
        side = str(rng.choice(["a.", "b."]))
        cond1 += f" AND {_gen_predicate(rng, depth=1, qualifier=side)}"
    anchor = str(rng.choice(["a", "b"]))
    key2 = str(rng.choice(["grp", "id"]))
    kind2 = "LEFT JOIN" if rng.random() < 0.25 else "JOIN"
    cond2 = f"{anchor}.{key2} = c.{key2}"
    if rng.random() < 0.4:
        cond2 += f" AND {_gen_predicate(rng, depth=1, qualifier='c.')}"
    sql = (
        f"SELECT {distinct}{', '.join(_alias(items))} FROM t a "
        f"{kind1} u b ON {cond1} {kind2} v c ON {cond2}"
    )
    conjuncts = []
    if rng.random() < 0.5:
        conjuncts.append(_gen_predicate(rng, depth=1, qualifier="a."))
    if rng.random() < 0.4:
        conjuncts.append(_gen_predicate(rng, depth=1, qualifier="b."))
    if rng.random() < 0.4:
        conjuncts.append(_gen_predicate(rng, depth=1, qualifier="c."))
    if conjuncts:
        sql += f" WHERE {' AND '.join(conjuncts)}"
    return sql


def generate_queries(seed: int, count: int) -> list[str]:
    """``count`` deterministic queries for ``seed`` (same seed, same list)."""
    rng = np.random.default_rng((seed, 0x50F7))
    out = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.34:
            out.append(_gen_plain_query(rng))
        elif roll < 0.62:
            out.append(_gen_group_query(rng))
        elif roll < 0.76:
            out.append(_gen_global_agg_query(rng))
        elif roll < 0.90:
            out.append(_gen_join_query(rng))
        else:
            out.append(_gen_join_chain_query(rng))
    return out


# ----------------------------------------------------------------------
# Naive reference evaluator (row at a time, no numpy kernels)
# ----------------------------------------------------------------------


def _table_rows(table: Table, binding: str) -> list[dict]:
    """Rows as ``{binding.column: python value}`` dicts."""
    names = list(table.schema.names)
    columns = {n: table.column(n).tolist() for n in names}
    return [
        {f"{binding}.{n}": columns[n][i] for n in names}
        for i in range(table.num_rows)
    ]


def _resolve_ref(ref: ColumnRef, row: dict):
    if ref.table is not None:
        key = f"{ref.table}.{ref.name}"
        if key in row:
            return row[key]
        raise SQLAnalysisError(f"unknown column {key!r}")
    matches = [k for k in row if k.endswith(f".{ref.name}")]
    if len(matches) != 1:
        raise SQLAnalysisError(f"cannot resolve column {ref.name!r}: {matches}")
    return row[matches[0]]


def _as_float(value) -> float:
    return float(value)


def _truthy(value) -> bool:
    if isinstance(value, bool):
        return value
    return float(value) != 0.0


def _eval_scalar(expr: Expr, row: dict):
    """Evaluate one expression against one row, Python semantics only."""
    if isinstance(expr, Literal):
        return float("nan") if expr.value is None else expr.value
    if isinstance(expr, ColumnRef):
        return _resolve_ref(expr, row)
    if isinstance(expr, UnaryOp):
        operand = _eval_scalar(expr.operand, row)
        if expr.op == "-":
            return -_as_float(operand)
        if expr.op == "NOT":
            return not _truthy(operand)
        raise SQLAnalysisError(f"unknown unary operator {expr.op!r}")
    if isinstance(expr, BinaryOp):
        if expr.op == "AND":
            return _truthy(_eval_scalar(expr.left, row)) and _truthy(
                _eval_scalar(expr.right, row)
            )
        if expr.op == "OR":
            return _truthy(_eval_scalar(expr.left, row)) or _truthy(
                _eval_scalar(expr.right, row)
            )
        left = _eval_scalar(expr.left, row)
        right = _eval_scalar(expr.right, row)
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            try:
                if expr.op == "=":
                    return left == right
                if expr.op == "<>":
                    return left != right
                if expr.op == "<":
                    return left < right
                if expr.op == "<=":
                    return left <= right
                if expr.op == ">":
                    return left > right
                return left >= right
            except TypeError:  # mixed str/number never matches
                return expr.op == "<>"
        lf, rf = _as_float(left), _as_float(right)
        if expr.op == "+":
            return lf + rf
        if expr.op == "-":
            return lf - rf
        if expr.op == "*":
            return lf * rf
        if expr.op == "/":
            # Engine semantics: x / 0 = 0.
            return lf / rf if rf != 0 else 0.0
        if expr.op == "%":
            # Engine semantics: modulo by 0 becomes modulo by 1.
            return math.fmod(math.fmod(lf, rf or 1.0) + (rf or 1.0), rf or 1.0)
        raise SQLAnalysisError(f"unknown operator {expr.op!r}")
    if isinstance(expr, CaseWhen):
        # Engine semantics: branch values coerce to float, default 0.
        for cond, value in expr.branches:
            if _truthy(_eval_scalar(cond, row)):
                return _as_float(_eval_scalar(value, row))
        if expr.otherwise is not None:
            return _as_float(_eval_scalar(expr.otherwise, row))
        return 0.0
    if isinstance(expr, InList):
        operand = _eval_scalar(expr.operand, row)
        hit = any(operand == item.value for item in expr.items)
        return not hit if expr.negated else hit
    if isinstance(expr, Between):
        operand = _as_float(_eval_scalar(expr.operand, row))
        low = _as_float(_eval_scalar(expr.low, row))
        high = _as_float(_eval_scalar(expr.high, row))
        hit = low <= operand <= high
        return not hit if expr.negated else hit
    if isinstance(expr, IsNull):
        operand = _eval_scalar(expr.operand, row)
        hit = isinstance(operand, float) and math.isnan(operand)
        return not hit if expr.negated else hit
    if isinstance(expr, Like):
        operand = str(_eval_scalar(expr.operand, row))
        hit = bool(_like_regex(expr.pattern).fullmatch(operand))
        return not hit if expr.negated else hit
    raise SQLAnalysisError(f"reference cannot evaluate {expr!r}")


def _eval_aggregate(call: FunctionCall, rows: list[dict]):
    """One aggregate over one group's rows (engine's empty-group semantics)."""
    name = call.name
    if name == "COUNT" and (not call.args or isinstance(call.args[0], Star)):
        return len(rows)
    if len(call.args) != 1:
        raise SQLAnalysisError(f"{name} takes exactly one argument")
    values = [_eval_scalar(call.args[0], row) for row in rows]
    if name == "COUNT":
        if call.distinct:
            return len(set(values))
        return len(values)
    numeric = [_as_float(v) for v in values]
    if name == "SUM":
        return float(sum(numeric))
    if name == "AVG":
        return float(sum(numeric) / len(numeric)) if numeric else 0.0
    if name == "MIN":
        return float(min(numeric)) if numeric else 0.0
    if name == "MAX":
        return float(max(numeric)) if numeric else 0.0
    if name == "MEDIAN":
        if not numeric:
            return 0.0
        ordered = sorted(numeric)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return float(ordered[mid])
        return float((ordered[mid - 1] + ordered[mid]) / 2)
    if name in ("STDDEV", "VARIANCE"):
        if not numeric:
            return 0.0
        mean = sum(numeric) / len(numeric)
        var = max(sum((v - mean) ** 2 for v in numeric) / len(numeric), 0.0)
        return float(math.sqrt(var)) if name == "STDDEV" else float(var)
    raise SQLAnalysisError(f"unknown aggregate {name}")


def _has_aggregate(expr: Expr) -> bool:
    return expr.has_aggregate()


def _eval_group_item(expr: Expr, group_keys: tuple, key_exprs: tuple, rows: list[dict]):
    """Evaluate a select item in GROUP BY context (keys or aggregates)."""
    for key_expr, key_value in zip(key_exprs, group_keys):
        if expr == key_expr:
            return key_value
    if isinstance(expr, FunctionCall) and expr.name in (
        "COUNT", "SUM", "AVG", "MIN", "MAX", "MEDIAN", "STDDEV", "VARIANCE",
    ):
        return _eval_aggregate(expr, rows)
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, BinaryOp):
        left = _eval_group_item(expr.left, group_keys, key_exprs, rows)
        right = _eval_group_item(expr.right, group_keys, key_exprs, rows)
        proxy_row = {"__g.l": left, "__g.r": right}
        proxy = BinaryOp(expr.op, ColumnRef("l", "__g"), ColumnRef("r", "__g"))
        return _eval_scalar(proxy, proxy_row)
    if isinstance(expr, ColumnRef):
        # FIRST semantics for functionally-dependent columns, like the engine.
        return _eval_scalar(expr, rows[0])
    raise SQLAnalysisError(f"reference cannot evaluate group item {expr!r}")


#: Fill values the engine pads unmatched LEFT JOIN right columns with.
_JOIN_FILL = {
    ColumnType.STRING: "",
    ColumnType.BOOL: False,
    ColumnType.INT: 0,
    ColumnType.FLOAT: 0.0,
}


def _split_join_condition(
    condition: Expr, right_binding: str
) -> tuple[list[Expr], list[Expr]]:
    """ON conjuncts split into cross-side equalities and residual terms."""
    equi: list[Expr] = []
    residual: list[Expr] = []

    def walk(expr: Expr) -> None:
        if isinstance(expr, BinaryOp) and expr.op == "AND":
            walk(expr.left)
            walk(expr.right)
            return
        if (
            isinstance(expr, BinaryOp)
            and expr.op == "="
            and isinstance(expr.left, ColumnRef)
            and isinstance(expr.right, ColumnRef)
            and expr.left.table is not None
            and expr.right.table is not None
            and (expr.left.table == right_binding)
            != (expr.right.table == right_binding)
        ):
            equi.append(expr)
            return
        residual.append(expr)

    walk(condition)
    return equi, residual


def reference_query(sql: str, tables: dict[str, Table]) -> list[tuple]:
    """Execute ``sql`` naively over ``tables``; returns rows as tuples.

    Supports the subset :func:`generate_queries` produces: single table,
    inner or LEFT equi-joins (with residual ON conjuncts), WHERE, GROUP
    BY/HAVING, global aggregates, DISTINCT, and scalar expressions — all
    evaluated one row at a time.  LEFT JOIN mirrors the engine contract:
    rows match on the cross-side equalities, the residual filters only
    matched rows, and left rows with no equi-match come back once, their
    right columns padded with type fill values.
    """
    stmt = parse(sql)
    if not isinstance(stmt, SelectStatement):
        raise SQLAnalysisError("reference evaluator handles single SELECTs")

    binding = stmt.table.binding
    rows = _table_rows(tables[stmt.table.name], binding)
    for join in stmt.joins:
        right_rows = _table_rows(tables[join.table.name], join.table.binding)
        joined = []
        if join.kind == "inner":
            for left_row in rows:
                for right_row in right_rows:
                    merged = {**left_row, **right_row}
                    if _truthy(_eval_scalar(join.condition, merged)):
                        joined.append(merged)
            rows = joined
            continue
        if join.kind != "left":
            raise SQLAnalysisError(
                f"reference evaluator: unsupported join kind {join.kind!r}"
            )
        equi, residual = _split_join_condition(
            join.condition, join.table.binding
        )
        if not equi:
            raise SQLAnalysisError(
                "reference evaluator: LEFT JOIN needs an equality key"
            )
        pad = {
            f"{join.table.binding}.{col.name}": _JOIN_FILL[col.ctype]
            for col in tables[join.table.name].schema
        }
        for left_row in rows:
            matches = []
            for right_row in right_rows:
                merged = {**left_row, **right_row}
                if all(_truthy(_eval_scalar(e, merged)) for e in equi):
                    matches.append(merged)
            if not matches:
                joined.append({**left_row, **pad})
                continue
            for merged in matches:
                if all(_truthy(_eval_scalar(e, merged)) for e in residual):
                    joined.append(merged)
        rows = joined

    if stmt.where is not None:
        rows = [r for r in rows if _truthy(_eval_scalar(stmt.where, r))]

    needs_aggregate = bool(stmt.group_by) or any(
        _has_aggregate(item.expr) for item in stmt.items
    )
    if needs_aggregate:
        if stmt.group_by:
            groups: dict[tuple, list[dict]] = {}
            for row in rows:
                key = tuple(
                    _eval_scalar(e, row) for e in stmt.group_by
                )
                groups.setdefault(key, []).append(row)
            group_items = list(groups.items())
        else:
            group_items = [((), rows)]  # global aggregate: always one group
        out = []
        for key, group_rows in group_items:
            if stmt.having is not None and not _truthy(
                _eval_group_item(
                    stmt.having, key, stmt.group_by, group_rows
                )
            ):
                continue
            out.append(
                tuple(
                    _eval_group_item(
                        item.expr, key, stmt.group_by, group_rows
                    )
                    for item in stmt.items
                )
            )
    else:
        out = []
        for row in rows:
            values = []
            for item in stmt.items:
                if isinstance(item.expr, Star):
                    prefix = (
                        f"{item.expr.table}." if item.expr.table else None
                    )
                    for k in row:
                        if prefix is None or k.startswith(prefix):
                            values.append(row[k])
                else:
                    values.append(_eval_scalar(item.expr, row))
            out.append(tuple(values))

    if stmt.distinct:
        seen = set()
        deduped = []
        for row in out:
            key = normalize_rows([row])[0]
            if key not in seen:
                seen.add(key)
                deduped.append(row)
        out = deduped
    if stmt.limit is not None:
        out = out[: stmt.limit]
    return out


# ----------------------------------------------------------------------
# Result comparison
# ----------------------------------------------------------------------


def _norm_value(value):
    """Hashable, sortable normal form of one cell."""
    if isinstance(value, (bool, np.bool_)):
        return (0, float(value))
    if isinstance(value, (int, float, np.integer, np.floating)):
        f = float(value)
        if math.isnan(f):
            return (0, float("inf"), "nan")
        return (0, round(f, 9))
    return (1, str(value))


def normalize_rows(rows) -> list[tuple]:
    """Rows (any iterable of cell sequences) → sorted normalized tuples."""
    return sorted(tuple(_norm_value(v) for v in row) for row in rows)


def table_rows(table: Table) -> list[tuple]:
    """An engine result table as a list of row tuples (column order)."""
    columns = [table.column(n).tolist() for n in table.schema.names]
    return [tuple(col[i] for col in columns) for i in range(table.num_rows)]


def rows_equal(engine_rows, reference_rows) -> bool:
    """Sorted row-for-row equality with float tolerance."""
    a = normalize_rows(engine_rows)
    b = normalize_rows(reference_rows)
    if len(a) != len(b):
        return False
    for row_a, row_b in zip(a, b):
        if len(row_a) != len(row_b):
            return False
        for cell_a, cell_b in zip(row_a, row_b):
            if cell_a[0] != cell_b[0]:
                return False
            if cell_a[0] == 1:
                if cell_a != cell_b:
                    return False
            elif not math.isclose(
                cell_a[1], cell_b[1], rel_tol=1e-9, abs_tol=1e-9
            ) or cell_a[2:] != cell_b[2:]:
                return False
    return True
