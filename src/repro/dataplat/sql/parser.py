"""Recursive-descent parser for the SQL dialect.

Grammar (roughly)::

    select   := SELECT [DISTINCT] items FROM table_ref join* [WHERE expr]
                [GROUP BY expr_list [HAVING expr]]
                [ORDER BY order_list] [LIMIT number]
    items    := item ("," item)*
    item     := "*" | ident "." "*" | expr [[AS] ident]
    join     := [INNER|LEFT] JOIN table_ref ON expr
    expr     := or_expr
    or_expr  := and_expr (OR and_expr)*
    and_expr := not_expr (AND not_expr)*
    not_expr := NOT not_expr | comparison
    comparison := additive (op additive | [NOT] IN (...)
                 | [NOT] BETWEEN x AND y | [NOT] LIKE 'pattern'
                 | IS [NOT] NULL)?
    additive := multiplicative (("+"|"-") multiplicative)*
    multiplicative := unary (("*"|"/"|"%") unary)*
    unary    := "-" unary | primary
    primary  := literal | column | function | CASE ... END | "(" expr ")"
"""

from __future__ import annotations

from ...errors import SQLSyntaxError
from .ast_nodes import (
    Between,
    BinaryOp,
    ExplainStatement,
    Like,
    UnionAllStatement,
    CaseWhen,
    ColumnRef,
    Expr,
    FunctionCall,
    InList,
    IsNull,
    JoinClause,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    Star,
    TableRef,
    UnaryOp,
)
from .lexer import Token, TokenType, tokenize


def parse(sql: str) -> "SelectStatement | UnionAllStatement | ExplainStatement":
    """Parse one SELECT statement, a UNION ALL chain, or an EXPLAIN."""
    parser = _Parser(tokenize(sql))
    explain = parser._match_keyword("EXPLAIN") is not None
    analyze = explain and parser._match_keyword("ANALYZE") is not None
    selects = [parser.parse_select(top_level=False)]
    while parser._match_keyword("UNION"):
        parser._expect_keyword("ALL")
        selects.append(parser.parse_select(top_level=False))
    tail = parser._peek()
    if tail.ttype is not TokenType.EOF:
        raise SQLSyntaxError(
            f"unexpected trailing input: {tail.value!r}", position=tail.position
        )
    stmt = selects[0] if len(selects) == 1 else UnionAllStatement(tuple(selects))
    return ExplainStatement(stmt, analyze=analyze) if explain else stmt


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.ttype is not TokenType.EOF:
            self._pos += 1
        return tok

    def _expect_keyword(self, word: str) -> Token:
        tok = self._peek()
        if not tok.is_keyword(word):
            raise SQLSyntaxError(
                f"expected {word}, found {tok.value or 'end of input'!r}",
                position=tok.position,
            )
        return self._advance()

    def _expect_punct(self, ch: str) -> Token:
        tok = self._peek()
        if tok.ttype is not TokenType.PUNCT or tok.value != ch:
            raise SQLSyntaxError(
                f"expected {ch!r}, found {tok.value or 'end of input'!r}",
                position=tok.position,
            )
        return self._advance()

    def _match_keyword(self, *words: str) -> Token | None:
        tok = self._peek()
        if tok.ttype is TokenType.KEYWORD and tok.value in words:
            return self._advance()
        return None

    def _match_punct(self, ch: str) -> Token | None:
        tok = self._peek()
        if tok.ttype is TokenType.PUNCT and tok.value == ch:
            return self._advance()
        return None

    def _match_operator(self, *ops: str) -> Token | None:
        tok = self._peek()
        if tok.ttype is TokenType.OPERATOR and tok.value in ops:
            return self._advance()
        return None

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.ttype is not TokenType.IDENT:
            raise SQLSyntaxError(
                f"expected identifier, found {tok.value or 'end of input'!r}",
                position=tok.position,
            )
        return self._advance()

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_select(self, top_level: bool = False) -> SelectStatement:
        self._expect_keyword("SELECT")
        distinct = self._match_keyword("DISTINCT") is not None
        items = self._parse_select_items()
        self._expect_keyword("FROM")
        table = self._parse_table_ref()
        joins = []
        while True:
            kind_tok = self._match_keyword("JOIN", "INNER", "LEFT")
            if kind_tok is None:
                break
            kind = "inner"
            if kind_tok.value in ("INNER", "LEFT"):
                kind = kind_tok.value.lower()
                self._expect_keyword("JOIN")
            joins.append(
                JoinClause(
                    table=self._parse_table_ref(),
                    kind=kind,
                    condition=self._parse_on_condition(),
                )
            )
        where = None
        if self._match_keyword("WHERE"):
            where = self._parse_expr()
        group_by: tuple[Expr, ...] = ()
        having = None
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = tuple(self._parse_expr_list())
            if self._match_keyword("HAVING"):
                having = self._parse_expr()
        order_by: list[OrderItem] = []
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                expr = self._parse_expr()
                descending = False
                if self._match_keyword("DESC"):
                    descending = True
                else:
                    self._match_keyword("ASC")
                order_by.append(OrderItem(expr, descending))
                if not self._match_punct(","):
                    break
        limit = None
        if self._match_keyword("LIMIT"):
            tok = self._peek()
            if tok.ttype is not TokenType.NUMBER:
                raise SQLSyntaxError("LIMIT requires a number", position=tok.position)
            self._advance()
            limit = int(float(tok.value))
        if top_level:
            tail = self._peek()
            if tail.ttype is not TokenType.EOF:
                raise SQLSyntaxError(
                    f"unexpected trailing input: {tail.value!r}",
                    position=tail.position,
                )
        return SelectStatement(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_items(self) -> list[SelectItem]:
        items = []
        while True:
            if self._match_operator("*"):
                items.append(SelectItem(Star()))
            else:
                expr = self._parse_expr()
                alias = None
                if self._match_keyword("AS"):
                    alias = self._expect_ident().value
                elif self._peek().ttype is TokenType.IDENT:
                    alias = self._advance().value
                items.append(SelectItem(expr, alias))
            if not self._match_punct(","):
                return items

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_ident().value
        if self._match_punct("."):
            name = f"{name}.{self._expect_ident().value}"
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_ident().value
        elif self._peek().ttype is TokenType.IDENT:
            alias = self._advance().value
        return TableRef(name, alias)

    def _parse_on_condition(self) -> Expr:
        self._expect_keyword("ON")
        return self._parse_expr()

    def _parse_expr_list(self) -> list[Expr]:
        out = [self._parse_expr()]
        while self._match_punct(","):
            out.append(self._parse_expr())
        return out

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._match_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._match_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._match_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        op = self._match_operator("=", "<>", "!=", "<=", ">=", "<", ">")
        if op is not None:
            value = "<>" if op.value == "!=" else op.value
            return BinaryOp(value, left, self._parse_additive())
        negated = False
        if self._peek().is_keyword("NOT"):
            nxt = self._tokens[self._pos + 1]
            if nxt.ttype is TokenType.KEYWORD and nxt.value in (
                "IN", "BETWEEN", "LIKE",
            ):
                self._advance()
                negated = True
        if self._match_keyword("IN"):
            self._expect_punct("(")
            items = tuple(self._parse_expr_list())
            self._expect_punct(")")
            return InList(left, items, negated=negated)
        if self._match_keyword("BETWEEN"):
            low = self._parse_additive()
            self._expect_keyword("AND")
            high = self._parse_additive()
            return Between(left, low, high, negated=negated)
        if self._match_keyword("LIKE"):
            tok = self._peek()
            if tok.ttype is not TokenType.STRING:
                raise SQLSyntaxError(
                    "LIKE requires a string pattern", position=tok.position
                )
            self._advance()
            return Like(left, tok.value, negated=negated)
        if self._match_keyword("IS"):
            is_negated = self._match_keyword("NOT") is not None
            self._expect_keyword("NULL")
            return IsNull(left, negated=is_negated)
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            op = self._match_operator("+", "-")
            if op is None:
                return left
            left = BinaryOp(op.value, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            op = self._match_operator("*", "/", "%")
            if op is None:
                return left
            left = BinaryOp(op.value, left, self._parse_unary())

    def _parse_unary(self) -> Expr:
        if self._match_operator("-"):
            return UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        tok = self._peek()
        if tok.ttype is TokenType.NUMBER:
            self._advance()
            text = tok.value
            if "." in text or "e" in text or "E" in text:
                return Literal(float(text))
            return Literal(int(text))
        if tok.ttype is TokenType.STRING:
            self._advance()
            return Literal(tok.value)
        if tok.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if tok.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if tok.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if tok.is_keyword("CASE"):
            return self._parse_case()
        if self._match_punct("("):
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        if tok.ttype is TokenType.IDENT:
            return self._parse_ident_expr()
        raise SQLSyntaxError(
            f"unexpected token {tok.value or 'end of input'!r}",
            position=tok.position,
        )

    def _parse_case(self) -> Expr:
        self._expect_keyword("CASE")
        branches = []
        while self._match_keyword("WHEN"):
            cond = self._parse_expr()
            self._expect_keyword("THEN")
            value = self._parse_expr()
            branches.append((cond, value))
        if not branches:
            raise SQLSyntaxError(
                "CASE requires at least one WHEN branch",
                position=self._peek().position,
            )
        otherwise = None
        if self._match_keyword("ELSE"):
            otherwise = self._parse_expr()
        self._expect_keyword("END")
        return CaseWhen(tuple(branches), otherwise)

    def _parse_ident_expr(self) -> Expr:
        first = self._expect_ident().value
        # Function call?
        if self._match_punct("("):
            distinct = self._match_keyword("DISTINCT") is not None
            args: tuple[Expr, ...]
            if self._match_operator("*"):
                args = (Star(),)
            elif self._match_punct(")"):
                return FunctionCall(first.upper(), (), distinct=distinct)
            else:
                args = tuple(self._parse_expr_list())
            if args and not (len(args) == 1 and isinstance(args[0], Star)):
                pass
            self._expect_punct(")")
            return FunctionCall(first.upper(), args, distinct=distinct)
        # Qualified column or star?
        if self._match_punct("."):
            if self._match_operator("*"):
                return Star(table=first)
            second = self._expect_ident().value
            return ColumnRef(second, table=first)
        return ColumnRef(first)
