"""SQL front-end of the mini data platform.

The paper's feature engineering runs join and aggregation queries through
Spark SQL over Hive tables.  This package is a small but real SQL engine:

* :mod:`.lexer` tokenizes SQL text,
* :mod:`.parser` builds an AST (:mod:`.ast_nodes`) by recursive descent,
* :mod:`.planner` turns the AST into a logical plan (:mod:`.plan`) and runs
  rule-based optimizations (predicate pushdown, projection pruning),
* :mod:`.executor` evaluates plans over :class:`~repro.dataplat.catalog.Catalog`
  tables with vectorized numpy kernels,
* :mod:`.functions` is the scalar/aggregate function registry,
* :mod:`.profile` records per-operator runtime profiles (EXPLAIN ANALYZE),
* :mod:`.feedback` learns cardinality corrections from those profiles.

The public entry point is :class:`SQLEngine`.
"""

from .engine import SQLEngine
from .feedback import CardinalityFeedback
from .profile import QueryProfile, fingerprint
from .scatter import ShardedSQLEngine

__all__ = [
    "SQLEngine",
    "ShardedSQLEngine",
    "CardinalityFeedback",
    "QueryProfile",
    "fingerprint",
]
