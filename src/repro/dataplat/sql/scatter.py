"""Scatter-gather SQL over a :class:`~repro.dataplat.sharding.ShardedCatalog`.

:class:`ShardedSQLEngine` plans a statement once (against shard 0, whose
schema every shard mirrors), then splits the bound plan into the maximal
shard-executable subtrees and a central remainder:

- A **distribution** is tracked bottom-up: ``hash`` tables start out
  distributed by their shard-key column, ``replicated`` tables are whole
  everywhere, and join equalities extend the set of columns known to be
  hash-aligned.  An aligned equi-join (co-partitioning contract) or a join
  against a replicated side stays shard-local; a misaligned scan side is
  repartitioned through the :class:`~repro.dataplat.sharding.ShuffleExchange`;
  a replicated side that a LEFT join needs hash-distributed is *realigned*
  — filtered locally to its shard's key range, no data movement at all.
- Each maximal shard-executable subtree becomes a :class:`Gather` node: the
  subplan fans out per shard over the existing
  :class:`~repro.dataplat.executor.ExecutorBackend` (the widetable-prefetch
  worker pattern: fresh per-worker tracer, spans shipped home tagged with
  their shard) and the pieces concatenate in shard order.
- An aggregate sitting on a Gather is decomposed into per-shard partial
  aggregates merged at the gather node, reusing the PR 7 aggregate-pushdown
  algebra: ``COUNT → SUM(__cnt__)``, SUM/MIN/MAX merge as themselves,
  ``AVG → SUM(partial sums) / SUM(__cnt__)``.  Non-decomposable aggregates
  (DISTINCT counts, MEDIAN, STDDEV, VARIANCE) fall back to gathering the
  input rows and aggregating centrally — still scan/join-parallel.

Results are bit-identical to the single-catalog engine up to row order
(hash partitioning permutes rows; aggregates see identical per-group row
sequences because shard splits preserve input order).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import observability
from ...errors import SQLAnalysisError
from ..executor import ExecutorBackend, resolve_backend
from ..observability import get_metrics, span
from ..sharding import (
    _AUTO,
    DEFAULT_SPILL_BYTES,
    SHUFFLE_DATABASE,
    ShardedCatalog,
    ShuffleExchange,
    shard_of,
)
from ..table import Table
from .ast_nodes import (
    BinaryOp,
    ColumnRef,
    ExplainStatement,
    FunctionCall,
    Literal,
    SelectItem,
    Star,
)
from .cbo import _rebuild
from .engine import SQLEngine
from .executor import Executor
from .functions import AGGREGATE_FUNCTIONS
from .plan import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Narrow,
    PlanNode,
    Project,
    Scan,
)
from .planner import _split_conjuncts

__all__ = ["Gather", "Realign", "ShardedSQLEngine"]

#: Distribution sentinel: the subtree's full output exists on every shard.
_REPLICATED = "replicated"


@dataclass
class Gather(PlanNode):
    """Barrier between scattered and central execution.

    The ``subplan`` runs on every shard (shard 0 only when ``replicated``
    — every copy is identical, concatenating N of them would duplicate
    rows) and the results concatenate in shard order.  The coordinator
    stores the gathered table on the node before running the central
    remainder.
    """

    subplan: PlanNode
    replicated: bool = False

    #: Gathered table, attached by the coordinator at execution time.  A
    #: plain attribute (not a field) so node equality ignores it.
    result = None

    def children(self) -> tuple[PlanNode, ...]:
        return (self.subplan,)

    def _label(self) -> str:
        return "Gather(shard 0 of replicated)" if self.replicated else "Gather"


@dataclass
class Realign(PlanNode):
    """Locally filter a replicated subtree to the executing shard's keys.

    Every shard holds the subtree's full output, so hash-distributing it
    by ``column`` is a free local filter (``shard_of(column) == shard``)
    rather than a network shuffle.  Inserted when a LEFT join's replicated
    left side must align with a hash-distributed right side.
    """

    child: PlanNode
    column: str

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def _label(self) -> str:
        return f"Realign(by {self.column})"


class _ShardExecutor(Executor):
    """Per-shard executor: the stock operators plus :class:`Realign`."""

    def __init__(
        self,
        catalog,
        database: str,
        scan_pruning: bool,
        shard_id: int,
        num_shards: int,
    ) -> None:
        super().__init__(catalog, database, scan_pruning=scan_pruning)
        self._shard_id = shard_id
        self._num_shards = num_shards

    def _dispatch(self, node: PlanNode) -> Table:
        if isinstance(node, Realign):
            child = self._run(node.child)
            codes = shard_of(child.column(node.column), self._num_shards)
            return child.mask(codes == self._shard_id)
        return super()._dispatch(node)


class _GatherExecutor(Executor):
    """Central executor: :class:`Gather` leaves yield their stored table."""

    def _dispatch(self, node: PlanNode) -> Table:
        if isinstance(node, Gather):
            if node.result is None:
                raise SQLAnalysisError("Gather executed before scatter phase")
            return node.result
        return super()._dispatch(node)


def _execute_shard_plan(args):
    """Run one scattered subplan on one shard (top-level for pickling).

    Mirrors the widetable prefetch worker: a fresh tracer is installed when
    the submitter had tracing on, and the exported spans — rooted at a
    ``shard.execute`` span tagged with the shard id — travel back for
    :meth:`Tracer.attach`, so scatter skew is visible per shard.
    """
    catalog, database, scan_pruning, plan, shard_id, num_shards, traced = args
    worker_tracer = observability.Tracer() if traced else None
    previous = observability.set_tracer(worker_tracer) if traced else None
    try:
        with span("shard.execute", shard=shard_id) as sp:
            executor = _ShardExecutor(
                catalog, database, scan_pruning, shard_id, num_shards
            )
            table = executor.execute(plan)
            sp.incr("rows", table.num_rows)
    finally:
        if traced:
            observability.set_tracer(previous)
    spans = worker_tracer.export() if worker_tracer is not None else None
    return table, spans


class _Abort(Exception):
    """Raised mid-rewrite when an aggregate blocks partial decomposition."""


class _Scatterer:
    """Splits one bound plan into Gather subtrees plus a central remainder."""

    def __init__(
        self,
        catalog: ShardedCatalog,
        database: str,
        exchange: ShuffleExchange,
    ) -> None:
        self._catalog = catalog
        self._database = database
        self._exchange = exchange

    # -- distribution analysis -----------------------------------------

    def split(self, node: PlanNode) -> PlanNode:
        rewritten, dist = self._analyze(node)
        if dist is not None:
            return Gather(rewritten, replicated=dist is _REPLICATED)
        return _rebuild(node, self.split)

    def _analyze(self, node: PlanNode):
        """Return ``(node', dist)``: the shard-executable rewrite and its
        distribution, or ``(node, None)`` when the subtree must gather.

        ``dist`` is ``_REPLICATED``, or a frozenset of qualified column
        names whose equal values are proven co-located (possibly empty:
        hash-distributed, but by no surviving column).
        """
        if isinstance(node, Scan):
            return self._analyze_scan(node)
        if isinstance(node, (Filter, Narrow)):
            child, dist = self._analyze(node.child)
            if dist is None:
                return node, None
            return _rebuild(node, lambda _: child), dist
        if isinstance(node, Join):
            return self._analyze_join(node)
        if isinstance(node, Aggregate):
            return self._analyze_aggregate(node)
        if isinstance(node, Project):
            child, dist = self._analyze(node.child)
            if dist is None:
                return node, None
            out = _REPLICATED if dist is _REPLICATED else frozenset()
            return Project(child, node.items), out
        if isinstance(node, Distinct):
            child, dist = self._analyze(node.child)
            # Identical rows share every column, so a local Distinct is
            # globally correct only when rows are placed by an output
            # column (nonempty dist) — or trivially on a replicated copy.
            if dist is _REPLICATED:
                return Distinct(child), _REPLICATED
            if dist:
                return Distinct(child), dist
            return node, None
        # Sort/Limit/UnionAll and anything unknown run centrally: a
        # per-shard sort order would not survive the gather concat anyway.
        return node, None

    def _analyze_scan(self, node: Scan):
        database, name = self._resolve(node.table)
        placement = self._catalog.placement(name, database)
        if placement is None:
            return node, None
        if placement.kind == "replicated":
            return node, _REPLICATED
        key = f"{node.binding}.{placement.key}"
        return node, frozenset((key,))

    def _analyze_join(self, node: Join):
        left, ld = self._analyze(node.left)
        right, rd = self._analyze(node.right)
        if ld is None or rd is None:
            return node, None
        pairs = _equi_pairs(node, left, right)
        if ld is _REPLICATED and rd is _REPLICATED:
            joined = Join(left, right, node.kind, node.condition, node.strategy)
            return joined, _REPLICATED
        if rd is _REPLICATED:
            # Replicated right: both inner and LEFT run shard-local — every
            # left row sees the full right side on its own shard.
            joined = Join(left, right, node.kind, node.condition, node.strategy)
            return joined, _closure(ld, pairs)
        if ld is _REPLICATED:
            if node.kind == "inner":
                joined = Join(
                    left, right, node.kind, node.condition, node.strategy
                )
                return joined, _closure(rd, pairs)
            # LEFT join from a replicated side would emit each shard's
            # unmatched copy: realign the left locally on a column the
            # join equates to the right's hash column.
            for lc, rc in pairs:
                if rc in rd:
                    left = Realign(left, lc)
                    ld = frozenset((lc,))
                    joined = Join(
                        left, right, node.kind, node.condition, node.strategy
                    )
                    return joined, _closure(ld | rd, pairs)
            return node, None
        aligned = any(lc in ld and rc in rd for lc, rc in pairs)
        if not aligned:
            left, ld, right, rd, aligned = self._try_shuffle(
                left, ld, right, rd, pairs
            )
        if not aligned:
            return node, None
        joined = Join(left, right, node.kind, node.condition, node.strategy)
        return joined, _closure(ld | rd, pairs)

    def _try_shuffle(self, left, ld, right, rd, pairs):
        """Repartition misaligned scan sides through the exchange.

        When one side is already hash-placed on a join column, only the
        other moves; when neither is, both repartition onto the join key
        pair — the classic shuffle join.
        """
        for lc, rc in pairs:
            if lc in ld:
                shuffled = self._shuffle_side(right, rc)
                if shuffled is not None:
                    return left, ld, shuffled, frozenset((rc,)), True
            if rc in rd:
                shuffled = self._shuffle_side(left, lc)
                if shuffled is not None:
                    return shuffled, frozenset((lc,)), right, rd, True
        for lc, rc in pairs:
            shuffled_left = self._shuffle_side(left, lc)
            if shuffled_left is None:
                continue
            shuffled_right = self._shuffle_side(right, rc)
            if shuffled_right is None:
                continue
            return (
                shuffled_left,
                frozenset((lc,)),
                shuffled_right,
                frozenset((rc,)),
                True,
            )
        return left, ld, right, rd, False

    def _shuffle_side(self, node: PlanNode, qualified_key: str):
        """Rewrite a Scan / Filter(Scan) chain to read the repartition.

        Only single-scan chains shuffle — their output is the stored table,
        so the repartition is a plain catalog-level exchange.  Anything
        richer (a pushed pre-aggregate, a join) gathers instead.
        """
        chain: list[PlanNode] = []
        cur = node
        while isinstance(cur, (Filter, Narrow)):
            chain.append(cur)
            cur = cur.child
        if not isinstance(cur, Scan):
            return None
        binding_prefix = f"{cur.binding}."
        if not qualified_key.startswith(binding_prefix):
            return None
        key = qualified_key[len(binding_prefix):]
        database, name = self._resolve(cur.table)
        placement = self._catalog.placement(name, database)
        if placement is None or placement.kind != "hash":
            return None
        columns = None if cur.columns is None else list(cur.columns)
        shuffled = self._exchange.repartition(
            name, key, database=database, columns=columns
        )
        out: PlanNode = Scan(
            f"{SHUFFLE_DATABASE}.{shuffled}",
            cur.binding,
            cur.columns,
            cur.predicate,
        )
        for wrapper in reversed(chain):
            out = _rebuild(wrapper, lambda _: out)
        return out

    def _analyze_aggregate(self, node: Aggregate):
        child, dist = self._analyze(node.child)
        if dist is None:
            return node, None
        if dist is _REPLICATED:
            agg = Aggregate(child, node.group_by, node.items, node.having)
            return agg, _REPLICATED
        keys = [k for k in node.group_by if isinstance(k, ColumnRef)]
        if len(keys) != len(node.group_by):
            return node, None
        aligned = frozenset(k.qualified for k in keys) & dist
        if not aligned:
            return node, None
        # Whole groups live on one shard: the aggregate (HAVING included)
        # runs shard-local, its output still hash-placed by the group key.
        agg = Aggregate(child, node.group_by, node.items, node.having)
        return agg, aligned

    def _resolve(self, table: str) -> tuple[str, str]:
        if "." in table:
            database, name = table.split(".", 1)
            return database, name
        return self._database, table


def _equi_pairs(node: Join, left: PlanNode, right: PlanNode):
    """(left qualified, right qualified) column pairs equated by the join."""
    left_b = _bindings(left)
    right_b = _bindings(right)
    pairs: list[tuple[str, str]] = []
    for term in _split_conjuncts(node.condition):
        if not (
            isinstance(term, BinaryOp)
            and term.op == "="
            and isinstance(term.left, ColumnRef)
            and isinstance(term.right, ColumnRef)
            and term.left.table is not None
            and term.right.table is not None
        ):
            continue
        if term.left.table in left_b and term.right.table in right_b:
            pairs.append((term.left.qualified, term.right.qualified))
        elif term.right.table in left_b and term.left.table in right_b:
            pairs.append((term.right.qualified, term.left.qualified))
    return pairs


def _bindings(node: PlanNode) -> set[str]:
    if isinstance(node, Scan):
        return {node.binding}
    out: set[str] = set()
    for child in node.children():
        out |= _bindings(child)
    return out


def _closure(dist: frozenset, pairs) -> frozenset:
    """Grow the co-located column set through join equalities."""
    cols = set(dist)
    changed = True
    while changed:
        changed = False
        for lc, rc in pairs:
            if lc in cols and rc not in cols:
                cols.add(rc)
                changed = True
            if rc in cols and lc not in cols:
                cols.add(lc)
                changed = True
    return frozenset(cols)


# ----------------------------------------------------------------------
# Partial-aggregate merge at the gather node (PR 7 algebra)
# ----------------------------------------------------------------------


def _push_partials(node: PlanNode) -> PlanNode:
    if (
        isinstance(node, Aggregate)
        and isinstance(node.child, Gather)
        and not node.child.replicated
    ):
        pushed = _decompose(node, node.child)
        if pushed is not None:
            get_metrics().counter("shard.partials_pushed").inc()
            return pushed
    if isinstance(node, Distinct) and isinstance(node.child, Gather):
        # Pre-distinct per shard: cheap transfer shrink, still centrally
        # deduped (identical rows may live on different shards).
        inner = node.child
        if not isinstance(inner.subplan, Distinct):
            return Distinct(
                Gather(Distinct(inner.subplan), inner.replicated)
            )
        return node
    return _rebuild(node, _push_partials)


def _decompose(agg: Aggregate, gather: Gather) -> PlanNode | None:
    """Split ``agg`` into per-shard partials plus a merging aggregate.

    The merge algebra mirrors :mod:`.cbo`'s aggregate pushdown —
    ``__partial{i}__`` aliases, a ``__cnt__`` row count, ``COUNT`` merged
    as ``SUM(__cnt__)`` — extended with AVG as total-sum over total-count.
    A ``__cnt__ > 0`` filter between the gather and the merge drops the
    placeholder row an *empty* shard emits for a global aggregate, whose
    zero-fill MIN/MAX would otherwise poison the merge.
    """
    if not all(isinstance(k, ColumnRef) for k in agg.group_by):
        return None
    partials: list[SelectItem] = []

    def partial_ref(call: FunctionCall) -> ColumnRef:
        alias = f"__partial{len(partials)}__"
        partials.append(SelectItem(call, alias))
        return ColumnRef(alias)

    def rewrite(expr):
        for key in agg.group_by:
            if expr == key:
                return expr
        if isinstance(expr, Literal):
            return expr
        if isinstance(expr, FunctionCall) and expr.name in AGGREGATE_FUNCTIONS:
            if expr.distinct:
                raise _Abort
            if expr.name == "COUNT":
                return FunctionCall("SUM", (ColumnRef("__cnt__"),))
            if expr.name == "AVG" and len(expr.args) == 1:
                total = partial_ref(FunctionCall("SUM", expr.args))
                return BinaryOp(
                    "/",
                    FunctionCall("SUM", (total,)),
                    FunctionCall("SUM", (ColumnRef("__cnt__"),)),
                )
            if expr.name in ("SUM", "MIN", "MAX") and len(expr.args) == 1:
                return FunctionCall(expr.name, (partial_ref(expr),))
            raise _Abort  # MEDIAN/STDDEV/VARIANCE need the raw rows
        if isinstance(expr, BinaryOp):
            return BinaryOp(expr.op, rewrite(expr.left), rewrite(expr.right))
        raise _Abort  # bare non-key columns, CASE over aggregates, ...

    try:
        items = tuple(
            SelectItem(rewrite(item.expr), item.alias) for item in agg.items
        )
        having = rewrite(agg.having) if agg.having is not None else None
    except _Abort:
        return None

    pre_items = [SelectItem(k, k.qualified) for k in agg.group_by]
    pre_items.extend(partials)
    pre_items.append(SelectItem(FunctionCall("COUNT", (Star(),)), "__cnt__"))
    pre = Aggregate(gather.subplan, agg.group_by, tuple(pre_items), None)
    nonempty = Filter(
        Gather(pre), BinaryOp(">", ColumnRef("__cnt__"), Literal(0))
    )
    return Aggregate(nonempty, agg.group_by, items, having)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


class ShardedSQLEngine:
    """Drop-in SQL entry point over a :class:`ShardedCatalog`.

    Statements plan against shard 0 (schemas are identical on every shard;
    statistics differ only by the 1/N row slice, steering plan shape, not
    correctness), scatter over ``backend`` and gather centrally.  ``EXPLAIN``
    renders the scatter-gather plan — Gather barriers, Realign filters and
    shuffled scans included.
    """

    def __init__(
        self,
        catalog: ShardedCatalog,
        database: str = "default",
        scan_pruning: bool = True,
        cost_based: bool | None = None,
        backend: "ExecutorBackend | str | None" = None,
        spill_bytes: int = DEFAULT_SPILL_BYTES,
    ) -> None:
        self._sharded = catalog
        self._database = database
        self._scan_pruning = scan_pruning
        self._backend = backend
        self._planner = SQLEngine(
            catalog.shards[0],
            database,
            scan_pruning=scan_pruning,
            cost_based=cost_based,
            profiling=False,
            feedback=False,
        )
        self._exchange = ShuffleExchange(catalog, spill_bytes=spill_bytes)

    @property
    def catalog(self) -> ShardedCatalog:
        return self._sharded

    @property
    def exchange(self) -> ShuffleExchange:
        return self._exchange

    def register(self, table: Table, name: str, key=_AUTO) -> None:
        """Register a temp view, sharded like :meth:`ShardedCatalog.save`.

        By default the shard-key column decides the placement; ``key="col"``
        forces hashing on another column, ``key=None`` forces replication.
        """
        self._sharded.register_temp(
            table, name, database=self._database, key=key
        )

    def plan(self, sql: str) -> PlanNode:
        """The scatter-gather plan of ``sql`` (EXPLAIN-transparent)."""
        from .parser import parse

        stmt = parse(sql)
        if isinstance(stmt, ExplainStatement):
            stmt = stmt.statement
        return self._scatter_plan(stmt)

    def explain(self, sql: str) -> str:
        return self.plan(sql).describe()

    def query(self, sql: str) -> Table:
        from .parser import parse

        with span("shard.query", sql=sql.strip()[:80]) as sp:
            with span("sql.parse"):
                stmt = parse(sql)
            if isinstance(stmt, ExplainStatement):
                if stmt.analyze:
                    raise SQLAnalysisError(
                        "EXPLAIN ANALYZE is not supported on a sharded "
                        "engine; profile per-shard engines directly"
                    )
                plan = self._scatter_plan(stmt.statement)
                lines = plan.describe().split("\n")
                return Table.from_arrays(
                    plan=np.asarray(lines, dtype=object)
                )
            plan = self._scatter_plan(stmt)
            out = self._execute(plan)
            sp.incr("rows", out.num_rows)
        return out

    # -- internals ------------------------------------------------------

    def _scatter_plan(self, stmt) -> PlanNode:
        with span("shard.plan"):
            base = self._planner._plan_statement(stmt)
            scatterer = _Scatterer(
                self._sharded, self._database, self._exchange
            )
            plan = scatterer.split(base)
            plan = _push_partials(plan)
        return plan

    def _execute(self, plan: PlanNode) -> Table:
        backend = resolve_backend(self._backend)
        metrics = get_metrics()
        traced = observability.enabled()
        tracer = observability.get_tracer()
        for gather in _walk_gathers(plan):
            with span(
                "shard.scatter",
                backend=backend.name,
                replicated=gather.replicated,
            ) as sp:
                if gather.replicated:
                    shards = self._sharded.shards[:1]
                else:
                    shards = self._sharded.shards
                tasks = [
                    (
                        catalog,
                        self._database,
                        self._scan_pruning,
                        gather.subplan,
                        i,
                        self._sharded.num_shards,
                        traced,
                    )
                    for i, catalog in enumerate(shards)
                ]
                pieces: list[Table] = []
                for table, spans in backend.map(_execute_shard_plan, tasks):
                    pieces.append(table)
                    if spans and tracer is not None:
                        tracer.attach(spans)
                out = pieces[0]
                for piece in pieces[1:]:
                    out = out.concat_rows(piece)
                gather.result = out
                metrics.counter("shard.scatter_tasks").inc(len(tasks))
                metrics.counter("shard.rows_gathered").inc(out.num_rows)
                sp.incr("tasks", len(tasks))
                sp.incr("rows", out.num_rows)
        executor = _GatherExecutor(
            self._sharded.shards[0],
            self._database,
            scan_pruning=self._scan_pruning,
        )
        with span("shard.merge"):
            return executor.execute(plan)


def _walk_gathers(plan: PlanNode):
    """All Gather nodes, children-first (a plan may hold several)."""
    out = []

    def visit(node: PlanNode) -> None:
        for child in node.children():
            visit(child)
        if isinstance(node, Gather):
            out.append(node)

    visit(plan)
    return out
