"""Per-operator query profiles (the runtime side of EXPLAIN ANALYZE).

A :class:`ProfileCollector` shadows the executor's recursion: every plan
node gets one :class:`OperatorProfile` frame with depth-first pre-order
ids (the same numbering the telemetry warehouse uses for spans), inclusive
wall/CPU time, and *exclusive* storage-counter deltas — bytes decoded in a
scan are attributed to the scan, not to every join above it.  The finished
:class:`QueryProfile` feeds three consumers: the annotated plan text
returned by ``EXPLAIN ANALYZE``, the ``__telemetry.query_profiles``
warehouse table, and the :class:`~.feedback.CardinalityFeedback` store.
"""

from __future__ import annotations

import hashlib
import re
import time
from dataclasses import dataclass, field

from .feedback import node_signature
from .plan import PlanNode, format_rows

__all__ = [
    "OperatorProfile",
    "ProfileCollector",
    "QueryProfile",
    "annotate_plan",
    "fingerprint",
    "normalize_sql",
]

_WS = re.compile(r"\s+")
_EXPLAIN_PREFIX = re.compile(r"^\s*EXPLAIN(\s+ANALYZE)?\s+", re.IGNORECASE)


def normalize_sql(sql: str) -> str:
    """Whitespace-collapsed statement text with EXPLAIN [ANALYZE] stripped.

    ``EXPLAIN ANALYZE <q>`` and ``<q>`` normalize identically, so their
    profiles share a fingerprint and cross-run comparisons line up.
    """
    return _WS.sub(" ", _EXPLAIN_PREFIX.sub("", sql)).strip().rstrip(";").strip()


def fingerprint(sql: str) -> str:
    """Stable 16-hex-digit id of a normalized statement."""
    digest = hashlib.sha1(normalize_sql(sql).encode("utf-8")).hexdigest()
    return digest[:16]


@dataclass
class OperatorProfile:
    """One executed plan operator: estimates, actuals, time, storage I/O.

    ``wall_s``/``cpu_s`` are inclusive of children (classic EXPLAIN
    ANALYZE); the storage counters are exclusive.  ``est_rows`` is the
    binder's (possibly feedback-corrected) annotation, ``est_rows_raw``
    the uncorrected System-R estimate the feedback store learns against;
    both are −1 when the node was never bound.  ``actual_rows`` is −1 when
    the operator raised instead of returning.
    """

    op_id: int
    parent_id: int
    depth: int
    operator: str
    label: str
    rel: str
    shape: str
    est_rows: float
    est_rows_raw: float
    actual_rows: int = -1
    wall_s: float = 0.0
    cpu_s: float = 0.0
    bytes_decoded: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    chunks_skipped: int = 0
    partitions_pruned: int = 0

    @property
    def q_error(self) -> float:
        """Smoothed q-error, 0.0 where no estimate applies.

        Only operators the binder genuinely estimates (those with a
        feedback key) report a q-error — pass-through nodes would just
        duplicate their child's.
        """
        if not self.rel or self.est_rows < 0 or self.actual_rows < 0:
            return 0.0
        est, actual = self.est_rows, float(self.actual_rows)
        return (max(est, actual) + 1.0) / (min(est, actual) + 1.0)


@dataclass
class QueryProfile:
    """A query's operator profiles in depth-first pre-order."""

    fingerprint: str
    sql: str
    operators: list[OperatorProfile] = field(default_factory=list)
    _by_node: dict[int, OperatorProfile] = field(
        default_factory=dict, repr=False
    )

    def root(self) -> OperatorProfile | None:
        return self.operators[0] if self.operators else None

    @property
    def wall_s(self) -> float:
        """Total execution wall time (the root operator is inclusive)."""
        root = self.root()
        return root.wall_s if root is not None else 0.0

    def for_node(self, node: PlanNode) -> OperatorProfile | None:
        """The profile recorded for one plan-tree node (by identity)."""
        return self._by_node.get(id(node))

    def max_q_error(self) -> float:
        return max((op.q_error for op in self.operators), default=0.0)

    def mean_q_error(self) -> float:
        errors = [op.q_error for op in self.operators if op.q_error > 0]
        return sum(errors) / len(errors) if errors else 0.0


class _Frame:
    __slots__ = (
        "node",
        "op_id",
        "parent_id",
        "depth",
        "wall0",
        "cpu0",
        "counters0",
        "child_counters",
    )

    def __init__(self, node, op_id, parent_id, depth, wall0, cpu0, counters0):
        self.node = node
        self.op_id = op_id
        self.parent_id = parent_id
        self.depth = depth
        self.wall0 = wall0
        self.cpu0 = cpu0
        self.counters0 = counters0
        self.child_counters = (0, 0, 0, 0, 0)


class ProfileCollector:
    """Builds a :class:`QueryProfile` as the executor walks the plan.

    The executor brackets every operator with :meth:`enter`/:meth:`exit`;
    frames nest on a stack, so each exit knows how much of its counter
    delta belongs to already-finished children and subtracts it.
    """

    def __init__(self, health=None) -> None:
        self._health = health
        self._stack: list[_Frame] = []
        self._profiles: list[OperatorProfile] = []
        self._by_node: dict[int, OperatorProfile] = {}
        self._next_id = 0

    def _counters(self) -> tuple[int, int, int, int, int]:
        health = self._health
        if health is None:
            return (0, 0, 0, 0, 0)
        return (
            health.bytes_decoded,
            health.cache_hits,
            health.cache_misses,
            health.chunks_skipped,
            health.partitions_pruned,
        )

    def enter(self, node: PlanNode) -> _Frame:
        parent_id = self._stack[-1].op_id if self._stack else -1
        frame = _Frame(
            node,
            self._next_id,
            parent_id,
            len(self._stack),
            time.perf_counter(),
            time.process_time(),
            self._counters(),
        )
        self._next_id += 1
        self._stack.append(frame)
        return frame

    def exit(self, frame: _Frame, actual_rows: int) -> OperatorProfile:
        wall = time.perf_counter() - frame.wall0
        cpu = time.process_time() - frame.cpu0
        now = self._counters()
        totals = tuple(n - c for n, c in zip(now, frame.counters0))
        own = tuple(t - c for t, c in zip(totals, frame.child_counters))
        popped = self._stack.pop()
        assert popped is frame, "profile frames must nest"
        if self._stack:
            parent = self._stack[-1]
            parent.child_counters = tuple(
                a + b for a, b in zip(parent.child_counters, totals)
            )
        node = frame.node
        key = node_signature(node)
        rel, shape = key if key is not None else ("", "")
        est = node.est_rows if node.est_rows is not None else -1.0
        est_raw = (
            node.est_rows_raw if node.est_rows_raw is not None else -1.0
        )
        profile = OperatorProfile(
            op_id=frame.op_id,
            parent_id=frame.parent_id,
            depth=frame.depth,
            operator=type(node).__name__,
            label=node._label(),
            rel=rel,
            shape=shape,
            est_rows=float(est),
            est_rows_raw=float(est_raw),
            actual_rows=int(actual_rows),
            wall_s=wall,
            cpu_s=cpu,
            bytes_decoded=int(own[0]),
            cache_hits=int(own[1]),
            cache_misses=int(own[2]),
            chunks_skipped=int(own[3]),
            partitions_pruned=int(own[4]),
        )
        self._profiles.append(profile)
        self._by_node[id(node)] = profile
        return profile

    def finish(self, sql: str) -> QueryProfile:
        """Seal the collection into a :class:`QueryProfile`."""
        if self._stack:
            raise RuntimeError(
                f"{len(self._stack)} profile frames still open"
            )
        operators = sorted(self._profiles, key=lambda op: op.op_id)
        return QueryProfile(
            fingerprint=fingerprint(sql),
            sql=normalize_sql(sql),
            operators=operators,
            _by_node=dict(self._by_node),
        )


def annotate_plan(plan: PlanNode, profile: QueryProfile) -> list[str]:
    """EXPLAIN ANALYZE text: one line per operator, actual vs. estimated."""
    lines: list[str] = []

    def visit(node: PlanNode, indent: int) -> None:
        pad = "  " * indent
        op = profile.for_node(node)
        if op is None:
            lines.append(f"{pad}{node._label()} [not executed]")
        else:
            est = format_rows(op.est_rows) if op.est_rows >= 0 else "?"
            parts = [
                f"est_rows={est}",
                f"actual_rows={op.actual_rows}",
            ]
            if op.q_error > 0:
                parts.append(f"q={op.q_error:.2f}")
            parts.extend(
                [
                    f"wall_ms={op.wall_s * 1e3:.3f}",
                    f"cpu_ms={op.cpu_s * 1e3:.3f}",
                    f"bytes_decoded={op.bytes_decoded}",
                    f"cache_hits={op.cache_hits}",
                    f"cache_misses={op.cache_misses}",
                    f"chunks_skipped={op.chunks_skipped}",
                    f"partitions_pruned={op.partitions_pruned}",
                ]
            )
            lines.append(f"{pad}{node._label()} [{' '.join(parts)}]")
        for child in node.children():
            visit(child, indent + 1)

    visit(plan, 0)
    return lines
