"""Scalar and aggregate function registry for the SQL engine.

Scalar functions operate on whole numpy arrays (vectorized).  Aggregate
functions receive the column values of one group plus optional distinct flag
and return a scalar; the executor vectorizes common ones (SUM/COUNT/AVG/...)
via grouped kernels and only falls back to the per-group path for the rest.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ...errors import SQLAnalysisError

ScalarFn = Callable[..., np.ndarray]

#: Aggregate function names understood by the planner.  ``count`` supports
#: ``COUNT(*)`` and ``COUNT(DISTINCT x)``.
AGGREGATE_FUNCTIONS = {
    "COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "VARIANCE", "MEDIAN",
}


def _as_float(arr: np.ndarray) -> np.ndarray:
    return np.asarray(arr, dtype=np.float64)


def _abs(x: np.ndarray) -> np.ndarray:
    return np.abs(x)


def _coalesce(*args: np.ndarray) -> np.ndarray:
    """First non-NaN value across arguments (numeric columns)."""
    out = _as_float(args[0]).copy()
    for arr in args[1:]:
        nan_mask = np.isnan(out)
        if not nan_mask.any():
            break
        out[nan_mask] = _as_float(arr)[nan_mask] if np.ndim(arr) else arr
    return out


def _greatest(*args: np.ndarray) -> np.ndarray:
    out = _as_float(args[0])
    for arr in args[1:]:
        out = np.maximum(out, _as_float(arr))
    return out


def _least(*args: np.ndarray) -> np.ndarray:
    out = _as_float(args[0])
    for arr in args[1:]:
        out = np.minimum(out, _as_float(arr))
    return out


def _log(x: np.ndarray) -> np.ndarray:
    return np.log(np.maximum(_as_float(x), 1e-300))


def _log1p(x: np.ndarray) -> np.ndarray:
    return np.log1p(np.maximum(_as_float(x), 0.0))


def _safe_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """a / b with 0 where b == 0 (telco rate features divide by counts)."""
    a = _as_float(a)
    b = _as_float(b)
    b_arr = np.broadcast_to(b, np.broadcast_shapes(np.shape(a), np.shape(b)))
    a_arr = np.broadcast_to(a, b_arr.shape)
    out = np.zeros(b_arr.shape, dtype=np.float64)
    nz = b_arr != 0
    out[nz] = a_arr[nz] / b_arr[nz]
    return out


def _length(x: np.ndarray) -> np.ndarray:
    return np.asarray([len(str(v)) for v in np.atleast_1d(x)], dtype=np.int64)


def _lower(x: np.ndarray) -> np.ndarray:
    return np.asarray([str(v).lower() for v in np.atleast_1d(x)], dtype=object)


def _upper(x: np.ndarray) -> np.ndarray:
    return np.asarray([str(v).upper() for v in np.atleast_1d(x)], dtype=object)


SCALAR_FUNCTIONS: dict[str, ScalarFn] = {
    "ABS": _abs,
    "SQRT": lambda x: np.sqrt(np.maximum(_as_float(x), 0.0)),
    "LOG": _log,
    "LOG1P": _log1p,
    "EXP": lambda x: np.exp(_as_float(x)),
    "FLOOR": lambda x: np.floor(_as_float(x)),
    "CEIL": lambda x: np.ceil(_as_float(x)),
    "ROUND": lambda x: np.round(_as_float(x)),
    "COALESCE": _coalesce,
    "GREATEST": _greatest,
    "LEAST": _least,
    "SAFE_DIV": _safe_div,
    "LENGTH": _length,
    "LOWER": _lower,
    "UPPER": _upper,
}


def scalar_function(name: str) -> ScalarFn:
    """Look up a scalar function, raising on unknown names."""
    try:
        return SCALAR_FUNCTIONS[name]
    except KeyError:
        raise SQLAnalysisError(
            f"unknown function {name}; "
            f"scalar functions: {sorted(SCALAR_FUNCTIONS)}"
        ) from None


def aggregate_grouped(
    name: str,
    values: np.ndarray | None,
    group_ids: np.ndarray,
    n_groups: int,
    distinct: bool = False,
) -> np.ndarray:
    """Vectorized grouped aggregation.

    ``values`` is ``None`` only for ``COUNT(*)``.  ``group_ids`` are dense
    group indices in ``[0, n_groups)``.
    """
    if name == "COUNT":
        if values is None:
            return np.bincount(group_ids, minlength=n_groups).astype(np.int64)
        if distinct:
            out = np.zeros(n_groups, dtype=np.int64)
            seen: dict[int, set] = {}
            for gid, val in zip(group_ids.tolist(), values.tolist()):
                seen.setdefault(gid, set()).add(val)
            for gid, vals in seen.items():
                out[gid] = len(vals)
            return out
        return np.bincount(group_ids, minlength=n_groups).astype(np.int64)
    if values is None:
        raise SQLAnalysisError(f"{name} requires an argument")
    if distinct:
        raise SQLAnalysisError(f"DISTINCT is only supported inside COUNT, not {name}")
    numeric = _as_float(values)
    if name == "SUM":
        # bincount returns int64 on empty input even with float weights.
        return np.bincount(
            group_ids, weights=numeric, minlength=n_groups
        ).astype(np.float64)
    if name == "AVG":
        totals = np.bincount(group_ids, weights=numeric, minlength=n_groups)
        counts = np.bincount(group_ids, minlength=n_groups)
        return totals / np.maximum(counts, 1)
    if name in ("MIN", "MAX"):
        sentinel = np.inf if name == "MIN" else -np.inf
        out = np.full(n_groups, sentinel)
        if name == "MIN":
            np.minimum.at(out, group_ids, numeric)
        else:
            np.maximum.at(out, group_ids, numeric)
        # Zero only the genuinely empty groups — a group whose true
        # extremum is ±inf (e.g. an infinite PSI) must keep it.
        out[np.bincount(group_ids, minlength=n_groups) == 0] = 0.0
        return out
    if name == "MEDIAN":
        out = np.zeros(n_groups)
        order = np.argsort(group_ids, kind="mergesort")
        sorted_ids = group_ids[order]
        sorted_vals = numeric[order]
        boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [len(sorted_ids)]])
        for lo, hi in zip(starts.tolist(), ends.tolist()):
            if hi > lo:
                out[sorted_ids[lo]] = np.median(sorted_vals[lo:hi])
        return out
    if name in ("STDDEV", "VARIANCE"):
        counts = np.bincount(group_ids, minlength=n_groups)
        totals = np.bincount(group_ids, weights=numeric, minlength=n_groups)
        sq = np.bincount(group_ids, weights=numeric * numeric, minlength=n_groups)
        denom = np.maximum(counts, 1)
        mean = totals / denom
        var = np.maximum(sq / denom - mean * mean, 0.0)
        return np.sqrt(var) if name == "STDDEV" else var
    raise SQLAnalysisError(f"unknown aggregate function {name}")
