"""AST → logical plan, plus rule-based optimization.

Two classic optimizations are implemented — the ones that matter for the
feature-engineering workload of wide scans over monthly telco tables:

* **Predicate pushdown** — conjuncts of the WHERE clause move below joins to
  the side whose bindings they reference, shrinking join inputs.
* **Projection pruning** — scans read only the columns any operator above
  them references, which matters for the 140-column BSS tables.
* **Scan-conjunct attachment** — column-vs-literal conjuncts of a filter
  sitting directly on a scan are additionally *copied* (never moved) onto
  the :class:`~.plan.Scan` as storage-level
  :class:`~..columnar.ScanPredicate` hints, letting the catalog skip v2
  partitions whose zone maps prove them empty.  The filter stays in place,
  so pruning is semantically invisible.
"""

from __future__ import annotations

from ..columnar import ScanPredicate
from .ast_nodes import (
    Between,
    BinaryOp,
    ColumnRef,
    Expr,
    InList,
    IsNull,
    Literal,
    OrderItem,
    SelectStatement,
    Star,
    UnionAllStatement,
)
from .plan import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    PlanNode,
    Project,
    Scan,
    Sort,
    UnionAll,
)


def build_plan(stmt: "SelectStatement | UnionAllStatement") -> PlanNode:
    """Lower a parsed statement into an unoptimized logical plan."""
    if isinstance(stmt, UnionAllStatement):
        return UnionAll(tuple(build_plan(s) for s in stmt.selects))
    node: PlanNode = Scan(stmt.table.name, stmt.table.binding)
    for join in stmt.joins:
        right: PlanNode = Scan(join.table.name, join.table.binding)
        node = Join(node, right, join.kind, join.condition)
    if stmt.where is not None:
        node = Filter(node, stmt.where)
    needs_aggregate = bool(stmt.group_by) or any(
        item.expr.has_aggregate() for item in stmt.items
    )
    if needs_aggregate:
        node = Aggregate(node, stmt.group_by, stmt.items, stmt.having)
        if stmt.distinct:
            node = Distinct(node)
        if stmt.order_by:
            node = Sort(node, stmt.order_by)
    else:
        # ORDER BY may reference source columns that the projection drops
        # (``SELECT imsi FROM cdr ORDER BY dur``), so sort below the
        # projection, first rewriting alias references to their expressions.
        order_by = tuple(
            OrderItem(_dealias(item.expr, stmt.items), item.descending)
            for item in stmt.order_by
        )
        if order_by:
            node = Sort(node, order_by)
        node = Project(node, stmt.items)
        if stmt.distinct:
            node = Distinct(node)
    if stmt.limit is not None:
        node = Limit(node, stmt.limit)
    return node


def _dealias(expr: Expr, items: tuple) -> Expr:
    """Replace a bare reference to a select alias with the aliased expr."""
    if isinstance(expr, ColumnRef) and expr.table is None:
        for item in items:
            if item.alias == expr.name:
                return item.expr
    return expr


def optimize(plan: PlanNode) -> PlanNode:
    """Apply the rewrite rules until a fixed point (max two passes needed)."""
    plan = _push_down_predicates(plan)
    plan = _prune_projections(plan, required=set())
    plan = _attach_scan_predicates(plan)
    return plan


# ----------------------------------------------------------------------
# Predicate pushdown
# ----------------------------------------------------------------------


def _split_conjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _combine_conjuncts(conjuncts: list[Expr]) -> Expr:
    out = conjuncts[0]
    for term in conjuncts[1:]:
        out = BinaryOp("AND", out, term)
    return out


def _bindings_of(node: PlanNode) -> set[str]:
    """Table bindings visible at the output of ``node``."""
    if isinstance(node, Scan):
        return {node.binding}
    out: set[str] = set()
    for child in node.children():
        out |= _bindings_of(child)
    return out


def _expr_bindings(expr: Expr) -> set[str] | None:
    """Bindings referenced by ``expr``; None if any reference is unqualified.

    Unqualified references cannot be attributed to one join side safely, so
    predicates containing them stay above the join.
    """
    out: set[str] = set()
    for name in expr.columns():
        if "." not in name:
            return None
        out.add(name.split(".", 1)[0])
    return out


def _push_down_predicates(node: PlanNode) -> PlanNode:
    if isinstance(node, Filter):
        child = _push_down_predicates(node.child)
        if isinstance(child, Join):
            remaining: list[Expr] = []
            left_terms: list[Expr] = []
            right_terms: list[Expr] = []
            left_bindings = _bindings_of(child.left)
            right_bindings = _bindings_of(child.right)
            for term in _split_conjuncts(node.predicate):
                refs = _expr_bindings(term)
                if refs is not None and refs and refs <= left_bindings:
                    left_terms.append(term)
                elif (
                    refs is not None
                    and refs
                    and refs <= right_bindings
                    and child.kind == "inner"
                ):
                    # For left joins, filtering the right side early would
                    # change which rows get null-extended; keep above.
                    right_terms.append(term)
                else:
                    remaining.append(term)
            left = child.left
            right = child.right
            if left_terms:
                left = _push_down_predicates(
                    Filter(left, _combine_conjuncts(left_terms))
                )
            if right_terms:
                right = _push_down_predicates(
                    Filter(right, _combine_conjuncts(right_terms))
                )
            new_join = Join(left, right, child.kind, child.condition)
            if remaining:
                return Filter(new_join, _combine_conjuncts(remaining))
            return new_join
        return Filter(child, node.predicate)
    # Recurse structurally for the other operators.
    if isinstance(node, Join):
        return Join(
            _push_down_predicates(node.left),
            _push_down_predicates(node.right),
            node.kind,
            node.condition,
        )
    if isinstance(node, Project):
        return Project(_push_down_predicates(node.child), node.items)
    if isinstance(node, Aggregate):
        return Aggregate(
            _push_down_predicates(node.child),
            node.group_by,
            node.items,
            node.having,
        )
    if isinstance(node, Sort):
        return Sort(_push_down_predicates(node.child), node.order_by)
    if isinstance(node, Limit):
        return Limit(_push_down_predicates(node.child), node.count)
    if isinstance(node, Distinct):
        return Distinct(_push_down_predicates(node.child))
    if isinstance(node, UnionAll):
        return UnionAll(tuple(_push_down_predicates(c) for c in node.inputs))
    return node


# ----------------------------------------------------------------------
# Projection pruning
# ----------------------------------------------------------------------


def _referenced_columns(node: PlanNode) -> set[str] | None:
    """Columns an operator itself references (qualified or bare).

    Returns None to mean "everything" (e.g. ``SELECT *``).
    """
    if isinstance(node, (Project, Aggregate)):
        out: set[str] = set()
        for item in node.items:
            if isinstance(item.expr, Star):
                return None
            out |= item.expr.columns()
        if isinstance(node, Aggregate):
            for expr in node.group_by:
                out |= expr.columns()
            if node.having is not None:
                out |= node.having.columns()
        return out
    if isinstance(node, Filter):
        return node.predicate.columns()
    if isinstance(node, Join):
        return node.condition.columns()
    if isinstance(node, Sort):
        out = set()
        for item in node.order_by:
            out |= item.expr.columns()
        return out
    return set()


def _prune_projections(node: PlanNode, required: set[str] | None = None) -> PlanNode:
    """Push the set of required columns down to the scans.

    ``required`` is the set of (possibly qualified) names needed above this
    node, or None for "all columns".
    """
    own = _referenced_columns(node)
    if own is None or required is None:
        needed: set[str] | None = None
    else:
        needed = required | own

    if isinstance(node, Scan):
        if needed is None:
            return node
        cols = set()
        prefix = f"{node.binding}."
        for name in needed:
            if name.startswith(prefix):
                cols.add(name[len(prefix):])
            elif "." not in name:
                cols.add(name)
        return Scan(node.table, node.binding, tuple(sorted(cols)) if cols else None)
    if isinstance(node, Filter):
        return Filter(_prune_projections(node.child, needed), node.predicate)
    if isinstance(node, Join):
        return Join(
            _prune_projections(node.left, needed),
            _prune_projections(node.right, needed),
            node.kind,
            node.condition,
        )
    if isinstance(node, Project):
        return Project(_prune_projections(node.child, needed), node.items)
    if isinstance(node, Aggregate):
        return Aggregate(
            _prune_projections(node.child, needed),
            node.group_by,
            node.items,
            node.having,
        )
    if isinstance(node, Sort):
        # Below-projection sorts contribute their key columns; an
        # above-aggregate sort references output columns, which resolve via
        # the executor's bare-name fallback — pruning keys is still safe
        # because the aggregate declares everything it needs itself.
        return Sort(_prune_projections(node.child, needed), node.order_by)
    if isinstance(node, Limit):
        return Limit(_prune_projections(node.child, required), node.count)
    if isinstance(node, Distinct):
        return Distinct(_prune_projections(node.child, required))
    if isinstance(node, UnionAll):
        # Each branch has its own projection; prune independently.
        return UnionAll(
            tuple(_prune_projections(c, set()) for c in node.inputs)
        )
    return node


# ----------------------------------------------------------------------
# Scan-conjunct attachment (zone-map pruning hints)
# ----------------------------------------------------------------------

#: Comparison operators mirrored when the literal sits on the left.
_FLIP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _scan_column(ref: ColumnRef, binding: str) -> str | None:
    """Storage-level column name of a ref against one scan, else None."""
    if ref.table is not None and ref.table != binding:
        return None
    return ref.name


def _as_scan_predicate(term: Expr, binding: str) -> ScanPredicate | None:
    """One WHERE conjunct as a storage predicate, or None if not pushable.

    Only column-vs-literal shapes convert; anything else (functions,
    column-vs-column, OR trees, negated IN/BETWEEN, NULL literals whose
    NaN comparison semantics zone maps cannot mirror) stays residual-only.
    """
    if isinstance(term, BinaryOp) and term.op in _FLIP:
        if isinstance(term.left, ColumnRef) and isinstance(term.right, Literal):
            ref, op, value = term.left, term.op, term.right.value
        elif isinstance(term.left, Literal) and isinstance(term.right, ColumnRef):
            ref, op, value = term.right, _FLIP[term.op], term.left.value
        else:
            return None
        if value is None or isinstance(value, bool):
            # NULL compares as NaN; bools reach zone maps as ints via the
            # IN path only, where numpy's bool/int equivalence is explicit.
            value = int(value) if isinstance(value, bool) else None
        if value is None:
            return None
        column = _scan_column(ref, binding)
        if column is None:
            return None
        return ScanPredicate(column, op, value)
    if isinstance(term, InList) and not term.negated:
        if not isinstance(term.operand, ColumnRef):
            return None
        column = _scan_column(term.operand, binding)
        if column is None:
            return None
        values = []
        for item in term.items:
            if not isinstance(item, Literal) or item.value is None:
                return None
            value = item.value
            values.append(int(value) if isinstance(value, bool) else value)
        return ScanPredicate(column, "in", tuple(values))
    if isinstance(term, IsNull) and isinstance(term.operand, ColumnRef):
        # Zone maps track null_count, so IS [NOT] NULL prunes exactly:
        # only float NaN is null, and all-null chunks keep min/max=None.
        column = _scan_column(term.operand, binding)
        if column is None:
            return None
        return ScanPredicate(column, "notnull" if term.negated else "isnull")
    return None


def _between_predicates(term: Expr, binding: str) -> list[ScanPredicate]:
    """``x BETWEEN lo AND hi`` as a >=/<= pair (empty when not pushable)."""
    if not (isinstance(term, Between) and not term.negated):
        return []
    if not isinstance(term.operand, ColumnRef):
        return []
    column = _scan_column(term.operand, binding)
    if column is None:
        return []
    out = []
    for bound, op in ((term.low, ">="), (term.high, "<=")):
        if (
            isinstance(bound, Literal)
            and bound.value is not None
            and not isinstance(bound.value, bool)
            and not isinstance(bound.value, str)
        ):
            # The executor evaluates BETWEEN in float space, so string
            # bounds would raise there; never let them prune first.
            out.append(ScanPredicate(column, op, bound.value))
    return out


def _attach_scan_predicates(node: PlanNode) -> PlanNode:
    if isinstance(node, Filter) and isinstance(node.child, Scan):
        scan = node.child
        preds: list[ScanPredicate] = []
        for term in _split_conjuncts(node.predicate):
            pred = _as_scan_predicate(term, scan.binding)
            if pred is not None:
                preds.append(pred)
            else:
                preds.extend(_between_predicates(term, scan.binding))
        if preds:
            return Filter(
                Scan(scan.table, scan.binding, scan.columns, tuple(preds)),
                node.predicate,
            )
        return node
    if isinstance(node, Filter):
        return Filter(_attach_scan_predicates(node.child), node.predicate)
    if isinstance(node, Join):
        return Join(
            _attach_scan_predicates(node.left),
            _attach_scan_predicates(node.right),
            node.kind,
            node.condition,
        )
    if isinstance(node, Project):
        return Project(_attach_scan_predicates(node.child), node.items)
    if isinstance(node, Aggregate):
        return Aggregate(
            _attach_scan_predicates(node.child),
            node.group_by,
            node.items,
            node.having,
        )
    if isinstance(node, Sort):
        return Sort(_attach_scan_predicates(node.child), node.order_by)
    if isinstance(node, Limit):
        return Limit(_attach_scan_predicates(node.child), node.count)
    if isinstance(node, Distinct):
        return Distinct(_attach_scan_predicates(node.child))
    if isinstance(node, UnionAll):
        return UnionAll(
            tuple(_attach_scan_predicates(c) for c in node.inputs)
        )
    return node
